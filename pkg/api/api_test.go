package api

import (
	"encoding/json"
	"testing"
)

// TestErrorEnvelopeRoundTrip pins the wire shape of the error envelope —
// the one structure every client decodes.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	e := &Error{
		Code:    CodeNotCalibrated,
		Message: "exam final has no calibrated item parameters",
		Details: map[string]any{"examId": "final"},
	}
	raw, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Error
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Code != CodeNotCalibrated || back.Message != e.Message {
		t.Errorf("round trip = %+v", back)
	}
	if back.Error() != "EXAM_NOT_CALIBRATED: exam final has no calibrated item parameters" {
		t.Errorf("Error() = %q", back.Error())
	}
}

// TestAdaptiveStartRequestShape pins the embedded-config JSON layout: the
// AdaptiveConfig fields must flatten into the request object, not nest.
func TestAdaptiveStartRequestShape(t *testing.T) {
	req := StartAdaptiveSessionRequest{
		ExamID:    "pool",
		StudentID: "alice",
		Seed:      7,
		AdaptiveConfig: AdaptiveConfig{
			MaxItems: 20, TargetSE: 0.35, Selector: SelectorRandomesque, RandomesqueK: 4,
		},
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(raw, &flat); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"examId", "studentId", "seed", "maxItems", "targetSE", "selector"} {
		if _, ok := flat[key]; !ok {
			t.Errorf("key %q missing from flattened request: %s", key, raw)
		}
	}
	var back StartAdaptiveSessionRequest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.MaxItems != 20 || back.Selector != SelectorRandomesque {
		t.Errorf("round trip = %+v", back)
	}
}

// TestDomainAliasesUsable constructs domain payloads through their public
// names — the external-module authoring path the aliases exist for.
func TestDomainAliasesUsable(t *testing.T) {
	p := Problem{ID: "q1", Question: "2+2?"}
	if p.ID != "q1" {
		t.Fatal("Problem alias not usable")
	}
	rec := ExamRecord{
		ID:         "pool",
		ProblemIDs: []string{"q1"},
		ItemParams: map[string]IRTParams{"q1": {A: 1.5, B: 0}},
	}
	if got := rec.CalibratedPool(); len(got) != 1 || got[0] != "q1" {
		t.Errorf("CalibratedPool through alias = %v", got)
	}
}
