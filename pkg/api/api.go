// Package api is the public contract of the LMS /v1 HTTP API: every
// request/response wire type, the machine-readable error taxonomy, and
// named aliases for the domain payloads (problems, exam records, session
// statuses, results) that travel in their canonical JSON forms.
//
// The server (internal/httpapi) and the Go SDK (pkg/client) are both built
// from these exact types, so they can never drift — and because the package
// lives outside internal/, external modules can import it to construct
// requests and destructure responses with real type names instead of raw
// JSON. Domain payloads are exported as type aliases (see domain.go): the
// alias is the public name of the same type the engine uses internally, so
// no conversion layer sits between the wire and the core.
package api

// StartSessionRequest opens a fixed-form session. ExamID is taken from the
// URL on the v1 route (POST /v1/exams/{id}/sessions) and from the body on
// the legacy alias (POST /api/session/start).
type StartSessionRequest struct {
	ExamID    string `json:"examId,omitempty"`
	StudentID string `json:"studentId"`
	Seed      int64  `json:"seed"`
}

// StartSessionResponse reports the opened session and its presentation
// order.
type StartSessionResponse struct {
	SessionID string   `json:"sessionId"`
	Order     []string `json:"order"`
}

// AnswerRequest records one response (POST /v1/sessions/{id}:answer and
// POST /v1/adaptive-sessions/{id}:respond).
type AnswerRequest struct {
	ProblemID string `json:"problemId"`
	Response  string `json:"response"`
}

// ActionResponse acknowledges a state-changing session action.
type ActionResponse struct {
	Status string `json:"status"`
}

// RTERequest is one SCORM RTE call bridged over HTTP
// (POST /v1/sessions/{id}/rte).
type RTERequest struct {
	Method  string `json:"method"`
	Element string `json:"element,omitempty"`
	Value   string `json:"value,omitempty"`
}

// RTEResponse carries the RTE result and the API's last error code.
type RTEResponse struct {
	Result    string `json:"result"`
	LastError string `json:"lastError"`
}

// GradeRequest assigns manual credit to an answered, not-auto-graded
// response (POST /v1/grades).
type GradeRequest struct {
	SessionID string  `json:"sessionId"`
	ProblemID string  `json:"problemId"`
	Credit    float64 `json:"credit"`
}

// ProblemList is the GET /v1/problems response.
type ProblemList struct {
	Problems []*Problem `json:"problems"`
	Total    int        `json:"total"`
}

// ExamList is the GET /v1/exams response.
type ExamList struct {
	ExamIDs []string `json:"examIds"`
}

// BlueprintCell is one (concept, cognition level) requirement of an
// assembly request. Level uses the cognition package's text form
// ("Knowledge".."Evaluation" or letters A-F).
type BlueprintCell struct {
	ConceptID string `json:"conceptId"`
	Level     Level  `json:"level"`
	Count     int    `json:"count"`
}

// AssembleExamRequest drives blueprint assembly (POST /v1/exams:assemble):
// the server selects problems satisfying every cell, finalizes the exam, and
// stores it. Display 0 defaults to FixedOrder.
type AssembleExamRequest struct {
	ID              string          `json:"id"`
	Title           string          `json:"title"`
	Display         DisplayOrder    `json:"display,omitempty"`
	TestTimeSeconds int             `json:"testTimeSeconds,omitempty"`
	Require         []BlueprintCell `json:"require"`
}

// AssembleExamResponse returns the stored exam record.
type AssembleExamResponse struct {
	Exam *ExamRecord `json:"exam"`
}

// --- Adaptive (CAT) delivery ---

// StartAdaptiveSessionRequest opens a live adaptive session on a calibrated
// exam (POST /v1/adaptive-sessions). The embedded AdaptiveConfig fields
// (maxItems, minItems, targetSE, selector, randomesqueK, maxExposure)
// select the stopping rules and item-selection strategy; zero values mean
// whole-pool max-information with no SE target or exposure cap.
type StartAdaptiveSessionRequest struct {
	ExamID    string `json:"examId"`
	StudentID string `json:"studentId"`
	Seed      int64  `json:"seed"`
	AdaptiveConfig
}

// StartAdaptiveSessionResponse reports the opened session and the first
// item to administer.
type StartAdaptiveSessionResponse struct {
	SessionID string        `json:"sessionId"`
	MaxItems  int           `json:"maxItems"`
	Next      *AdaptiveItem `json:"next"`
}

// RecalibrateRequest tunes a recalibration pass
// (POST /v1/exams/{id}:recalibrate). MinObservations 0 uses the server
// default.
type RecalibrateRequest struct {
	MinObservations int `json:"minObservations,omitempty"`
}

// RecalibrateResponse summarizes a recalibration pass: the refitted
// parameters now stored on the exam, the items skipped for thin data (with
// their observation counts), and the total responses consumed.
type RecalibrateResponse struct {
	Updated      map[string]IRTParams `json:"updated"`
	Skipped      map[string]int       `json:"skipped,omitempty"`
	Observations int                  `json:"observations"`
}

// PurgeAdaptiveSessionsResponse reports a retention pass
// (POST /v1/adaptive-sessions:purge): how many finished sessions were
// removed from the registry and the storage backend, and how many idle
// live-statistics exam aggregates were dropped alongside them.
type PurgeAdaptiveSessionsResponse struct {
	Purged int `json:"purged"`
	// StatsPurged counts live-statistics exam aggregates released (exams
	// with no active sessions and no open sittings); 0 when the server runs
	// without live statistics.
	StatsPurged int `json:"statsPurged,omitempty"`
}

// --- Metrics ---

// RouteMetrics is one route's exported counters (GET /v1/metrics). The
// latency fields beyond AvgMs come from a log-bucketed histogram, so the
// quantiles are interpolated within a bucket (~19% relative bucket width).
type RouteMetrics struct {
	Route    string           `json:"route"`
	Count    int64            `json:"count"`
	ByStatus map[string]int64 `json:"byStatus"`
	AvgMs    float64          `json:"avgMs"`
	P50Ms    float64          `json:"p50Ms"`
	P99Ms    float64          `json:"p99Ms"`
	P999Ms   float64          `json:"p999Ms"`
	MaxMs    float64          `json:"maxMs"`
}

// SubsystemMetric is one named sample from the process-wide metrics
// registry (journal, event bus, live statistics, ...). Histogram series
// appear as <name>_count/_sum/_p50/_p99/_p999/_max samples.
type SubsystemMetric struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// TraceID is the histogram exemplar on _p99 samples: a retained trace
	// ID whose observation landed in the p99 bucket, resolvable to a span
	// tree via GET /debug/traces?id= on the ops listener.
	TraceID string `json:"traceId,omitempty"`
}

// MetricsSnapshot is the GET /v1/metrics response body. Subsystems is
// present only when the server runs with a process metrics registry; old
// clients that ignore unknown fields are unaffected.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptimeSeconds"`
	InFlight      int64             `json:"inFlight"`
	Requests      int64             `json:"requests"`
	Errors5xx     int64             `json:"errors5xx"`
	RateLimited   int64             `json:"rateLimited"`
	Panics        int64             `json:"panics"`
	Routes        []RouteMetrics    `json:"routes"`
	Subsystems    []SubsystemMetric `json:"subsystems,omitempty"`
}
