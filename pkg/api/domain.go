package api

import (
	"mineassess/internal/analysis"
	"mineassess/internal/bank"
	"mineassess/internal/catdelivery"
	"mineassess/internal/cognition"
	"mineassess/internal/delivery"
	"mineassess/internal/item"
	"mineassess/internal/simulate"
)

// Domain payload aliases. These are ALIASES (= not named types): an
// api.Problem IS an item.Problem, so values flow between the public API and
// the engine with zero conversion, and external modules get a public name
// for every type that crosses the wire. The alias is the supported way to
// reference these types from outside the module; the internal packages
// behind them remain unimportable.

// Problem is one authored question with its assessment metadata.
type Problem = item.Problem

// Option is one selectable answer of a multiple-choice problem.
type Option = item.Option

// Style is a problem's answering style (MultipleChoice, TrueFalse, ...).
type Style = item.Style

// DisplayOrder is an exam's presentation-order policy.
type DisplayOrder = item.DisplayOrder

// Level is a Bloom cognition level ("Knowledge".."Evaluation", letters A-F
// in text form).
type Level = cognition.Level

// ExamRecord is a stored exam definition, including the optional per-item
// IRT parameters (ItemParams) that make it a calibrated adaptive pool.
type ExamRecord = bank.ExamRecord

// ExamGroup is one presentation group of an exam.
type ExamGroup = bank.ExamGroup

// IRTParams are one item's 3PL response-model parameters (discrimination a,
// difficulty b, guessing floor c).
type IRTParams = simulate.IRTParams

// SessionStatus is a fixed-form session's externally visible summary
// (GET /v1/sessions/{id}).
type SessionStatus = delivery.Status

// MonitorSnapshot is one captured monitor event
// (GET /v1/sessions/{id}/monitor).
type MonitorSnapshot = delivery.Snapshot

// PendingGrade is one response awaiting manual credit
// (GET /v1/exams/{id}/grades).
type PendingGrade = delivery.PendingGrade

// StudentResult is one student's graded sitting
// (POST /v1/sessions/{id}:finish).
type StudentResult = analysis.StudentResult

// ExamResult is a full administration's response matrix
// (GET /v1/exams/{id}/results).
type ExamResult = analysis.ExamResult

// ResultResponse is one student's answer inside an ExamResult.
type ResultResponse = analysis.Response

// AdaptiveConfig selects an adaptive session's stopping rules and
// item-selection strategy (embedded in StartAdaptiveSessionRequest).
type AdaptiveConfig = catdelivery.Config

// AdaptiveItem is the learner-facing projection of the item to answer next
// — question and options, never the answer key.
type AdaptiveItem = catdelivery.ItemView

// AdaptiveProgress reports the session after a response: updated
// theta/SE and either the next item or the stop decision
// (POST /v1/adaptive-sessions/{id}:respond).
type AdaptiveProgress = catdelivery.Progress

// AdaptiveOutcome is a finished adaptive session's result
// (POST /v1/adaptive-sessions/{id}:finish).
type AdaptiveOutcome = catdelivery.Outcome

// AdaptiveStatus is an adaptive session's current summary
// (GET /v1/adaptive-sessions/{id}).
type AdaptiveStatus = catdelivery.Status

// Adaptive selector names accepted in AdaptiveConfig.Selector.
const (
	SelectorMaxInformation = catdelivery.SelectorMaxInformation
	SelectorRandomesque    = catdelivery.SelectorRandomesque
	SelectorRandom         = catdelivery.SelectorRandom
)
