package api

import (
	"mineassess/internal/events"
	"mineassess/internal/livestats"
)

// Live event-stream wire types (GET /v1/events:stream and
// GET /v1/exams/{id}/live). Like the rest of domain payloads these are
// aliases: an api.Event IS the bus's event type, so the SSE frames the
// server writes and the structs the SDK decodes can never drift.

// Event is one live delivery event as carried in an SSE data payload. Seq
// is the per-exam resume token (the SSE id on /v1/exams/{id}/live);
// GlobalSeq the bus-wide one (/v1/events:stream).
type Event = events.Event

// EventType names an event kind (the SSE event field).
type EventType = events.Type

// The event taxonomy, re-exported for callers.
const (
	EventSessionStarted    = events.SessionStarted
	EventResponseSubmitted = events.ResponseSubmitted
	EventSessionFinished   = events.SessionFinished
	EventSessionExpired    = events.SessionExpired
	EventAdaptiveStarted   = events.AdaptiveStarted
	EventAdaptiveResponded = events.AdaptiveResponded
	EventAdaptiveFinished  = events.AdaptiveFinished
	// EventGap marks dropped events on a slow subscription: Dropped events
	// were discarded between the previous frame and the next one. Gap
	// frames carry no SSE id, so reconnecting with the last real id
	// re-fetches what the live stream skipped.
	EventGap = events.TypeGap
)

// StatsEventName is the SSE event name of live-statistics frames on
// /v1/exams/{id}/live; their data payload is an ExamLiveStats.
const StatsEventName = "stats"

// ExamLiveStats is one exam's incremental statistics snapshot, streamed as
// "stats" frames on /v1/exams/{id}/live.
type ExamLiveStats = livestats.ExamLiveStats

// ItemLiveStats is one item's live statistics inside ExamLiveStats.
type ItemLiveStats = livestats.ItemStats
