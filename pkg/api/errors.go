package api

import "fmt"

// Code is a stable machine-readable error identifier. Codes are part of the
// v1 API contract: clients branch on them, so existing codes never change
// meaning and removed features keep their codes reserved.
type Code string

// The v1 error taxonomy. Each code maps to exactly one HTTP status (the
// server's mapping lives in internal/httpapi; API.md documents it).
const (
	CodeBadRequest         Code = "BAD_REQUEST"
	CodeValidation         Code = "VALIDATION_FAILED"
	CodeNotFound           Code = "NOT_FOUND"
	CodeMethodNotAllowed   Code = "METHOD_NOT_ALLOWED"
	CodeSessionNotFound    Code = "SESSION_NOT_FOUND"
	CodeExamNotFound       Code = "EXAM_NOT_FOUND"
	CodeProblemNotFound    Code = "PROBLEM_NOT_FOUND"
	CodeExamExists         Code = "EXAM_EXISTS"
	CodeProblemExists      Code = "PROBLEM_EXISTS"
	CodeSessionNotActive   Code = "SESSION_NOT_ACTIVE"
	CodeSessionNotPaused   Code = "SESSION_NOT_PAUSED"
	CodeNotResumable       Code = "EXAM_NOT_RESUMABLE"
	CodeTimeExpired        Code = "TIME_EXPIRED"
	CodeUnknownProblem     Code = "UNKNOWN_PROBLEM"
	CodeAlreadyAnswered    Code = "ALREADY_ANSWERED"
	CodeNotAnswered        Code = "NOT_ANSWERED"
	CodeAutoGraded         Code = "AUTO_GRADED"
	CodeInvalidCredit      Code = "INVALID_CREDIT"
	CodeBlueprintShortfall Code = "BLUEPRINT_SHORTFALL"
	CodeRateLimited        Code = "RATE_LIMITED"
	CodeInternal           Code = "INTERNAL"

	// Adaptive (CAT) delivery codes.
	CodeNotCalibrated    Code = "EXAM_NOT_CALIBRATED"
	CodeItemNotPending   Code = "ITEM_NOT_PENDING"
	CodeInsufficientData Code = "INSUFFICIENT_DATA"
)

// Error is the wire error envelope every non-2xx response carries.
type Error struct {
	Code    Code           `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// Error implements the error interface so the envelope can be returned
// through Go call chains (the client SDK wraps it in client.APIError).
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}
