package client

// SSE subscription support for the live event endpoints. Streams are
// context-driven: the caller owns a context whose cancellation tears the
// connection down promptly, even when the server has gone silent — which is
// why these methods bypass the SDK's default 30s whole-request timeout (it
// would kill a healthy long-lived stream) and bound the connection by ctx
// alone.
//
//	ctx, cancel := context.WithCancel(context.Background())
//	defer cancel()
//	stream, err := c.StreamExamLive(ctx, "midterm", "")
//	...
//	for {
//		f, err := stream.Next()
//		if err != nil { break } // io.EOF, ctx cancellation, or transport
//		switch {
//		case f.IsStats():
//			stats, _ := f.DecodeStats()
//		default:
//			ev, _ := f.DecodeEvent()
//			lastID = f.ID // resume token for the next StreamExamLive
//		}
//	}

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"mineassess/pkg/api"
)

// StreamFrame is one decoded SSE frame.
type StreamFrame struct {
	// ID is the frame's resume token ("" on gap and stats frames); pass the
	// last seen ID as lastEventID when reconnecting to receive only what
	// was missed.
	ID string
	// Event is the SSE event name: an api.EventType value, or
	// api.StatsEventName for statistics frames.
	Event string
	// Data is the frame's JSON payload.
	Data []byte
}

// IsStats reports whether this is a live-statistics frame.
func (f *StreamFrame) IsStats() bool { return f.Event == api.StatsEventName }

// IsGap reports whether this frame marks dropped events.
func (f *StreamFrame) IsGap() bool { return f.Event == string(api.EventGap) }

// DecodeEvent unmarshals an event frame's payload.
func (f *StreamFrame) DecodeEvent() (*api.Event, error) {
	var e api.Event
	if err := json.Unmarshal(f.Data, &e); err != nil {
		return nil, fmt.Errorf("client: decode %s frame: %w", f.Event, err)
	}
	return &e, nil
}

// DecodeStats unmarshals a stats frame's payload.
func (f *StreamFrame) DecodeStats() (*api.ExamLiveStats, error) {
	var s api.ExamLiveStats
	if err := json.Unmarshal(f.Data, &s); err != nil {
		return nil, fmt.Errorf("client: decode stats frame: %w", err)
	}
	return &s, nil
}

// EventStream is one live SSE connection. Read frames with Next; Close (or
// cancel the context) to tear it down.
type EventStream struct {
	ctx  context.Context
	body io.ReadCloser
	br   *bufio.Reader
	// pending holds parsed-but-unconsumed lines: the SSE spec terminates
	// lines with CR, LF or CRLF, and a bare CR splits one LF-delimited read
	// into several protocol lines.
	pending []string
}

// StreamEvents subscribes to every event on the server
// (GET /v1/events:stream). lastEventID "" starts live; a previous frame's
// ID resumes with the missed events replayed first.
func (c *Client) StreamEvents(ctx context.Context, lastEventID string) (*EventStream, error) {
	return c.stream(ctx, "/v1/events:stream", lastEventID)
}

// StreamExamLive subscribes to one exam's events interleaved with live
// incremental item statistics (GET /v1/exams/{id}/live).
func (c *Client) StreamExamLive(ctx context.Context, examID, lastEventID string) (*EventStream, error) {
	return c.stream(ctx, "/v1/exams/"+url.PathEscape(examID)+"/live", lastEventID)
}

func (c *Client) stream(ctx context.Context, path, lastEventID string) (*EventStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	if c.learnerID != "" {
		req.Header.Set("X-Learner-ID", c.learnerID)
	}
	// The configured client's Timeout would cut a healthy stream off
	// mid-exam; reuse its transport (proxies, TLS config) without it and
	// let ctx bound the connection instead.
	httpc := &http.Client{Transport: c.http.Transport}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	return &EventStream{ctx: ctx, body: resp.Body, br: bufio.NewReader(resp.Body)}, nil
}

// Next blocks until the next frame arrives. It returns io.EOF when the
// server closes the stream, the context's error once it is cancelled, and
// skips keep-alive comments transparently.
func (s *EventStream) Next() (*StreamFrame, error) {
	f := &StreamFrame{}
	var data []string
	for {
		line, err := s.readLine()
		if err != nil {
			// Context cancellation surfaces as a closed-body read error;
			// report the cancellation itself, which is what the caller acts
			// on.
			if cerr := s.ctx.Err(); cerr != nil {
				return nil, cerr
			}
			if err == io.EOF && len(data) == 0 {
				return nil, io.EOF
			}
			return nil, err
		}
		switch {
		case line == "":
			if f.Event == "" && len(data) == 0 {
				continue // stray separator / heartbeat boundary
			}
			f.Data = []byte(strings.Join(data, "\n"))
			return f, nil
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		case strings.HasPrefix(line, "event:"):
			f.Event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "id:"):
			f.ID = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
}

// readLine returns the next SSE protocol line. The spec accepts CR, LF
// and CRLF as terminators; reading LF-delimited chunks and splitting on
// the CRs inside keeps a stray "\r" out of the ID field — where it would
// otherwise travel back to the server inside the Last-Event-ID header on
// reconnect.
func (s *EventStream) readLine() (string, error) {
	if len(s.pending) > 0 {
		line := s.pending[0]
		s.pending = s.pending[1:]
		return line, nil
	}
	raw, err := s.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	raw = strings.TrimSuffix(raw, "\n")
	raw = strings.TrimSuffix(raw, "\r")
	parts := strings.Split(raw, "\r")
	s.pending = parts[1:]
	return parts[0], nil
}

// Close releases the connection. Safe to call concurrently with a blocked
// Next, which will return with an error.
func (s *EventStream) Close() error { return s.body.Close() }
