package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mineassess/pkg/api"
)

// sseHandler writes scripted SSE traffic and then behaves per mode.
func sseHandler(frames []string, hang chan struct{}) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		fl.Flush()
		for _, f := range frames {
			fmt.Fprint(w, f)
			fl.Flush()
		}
		if hang != nil {
			// Hold the connection open, sending nothing, until released or
			// the client goes away (so httptest.Server.Close never waits on
			// a stuck handler).
			select {
			case <-hang:
			case <-r.Context().Done():
			}
		}
	}
}

func TestStreamParsesFrames(t *testing.T) {
	frames := []string{
		": keep-alive\n\n",
		"event: session.started\nid: 1\ndata: {\"seq\":1,\"type\":\"session.started\",\"examId\":\"e1\",\"sessionId\":\"s1\"}\n\n",
		"event: stats\ndata: {\"examId\":\"e1\",\"seq\":1,\"activeSessions\":1,\"items\":[],\"scoreHistogram\":[]}\n\n",
		"event: stream.gap\ndata: {\"type\":\"stream.gap\",\"dropped\":3}\n\n",
	}
	srv := httptest.NewServer(sseHandler(frames, nil))
	defer srv.Close()

	c := New(srv.URL)
	stream, err := c.StreamEvents(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	f, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Event != "session.started" || f.ID != "1" {
		t.Fatalf("frame 1: %+v", f)
	}
	ev, err := f.DecodeEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != api.EventSessionStarted || ev.SessionID != "s1" {
		t.Fatalf("decoded event: %+v", ev)
	}

	f, err = stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsStats() {
		t.Fatalf("frame 2 not stats: %+v", f)
	}
	st, err := f.DecodeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExamID != "e1" || st.ActiveSessions != 1 {
		t.Fatalf("decoded stats: %+v", st)
	}

	f, err = stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsGap() {
		t.Fatalf("frame 3 not gap: %+v", f)
	}
	ev, err = f.DecodeEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Dropped != 3 {
		t.Fatalf("gap dropped = %d", ev.Dropped)
	}

	if _, err := stream.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after server close: %v, want io.EOF", err)
	}
}

// TestStreamContextCancellationTearsDownPromptly is the satellite contract:
// a hung server (connection open, nothing arriving) must not trap the
// client — cancelling the context unblocks Next within moments, returning
// the context's error, and tears the connection down.
func TestStreamContextCancellationTearsDownPromptly(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	srv := httptest.NewServer(sseHandler([]string{
		"event: session.started\nid: 1\ndata: {\"seq\":1}\n\n",
	}, hang))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(srv.URL, WithLearnerID("alice"))
	stream, err := c.StreamExamLive(ctx, "e1", "7")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	if _, err := stream.Next(); err != nil {
		t.Fatal(err)
	}

	// Next is now blocked on a silent connection; cancel must unblock it.
	errs := make(chan error, 1)
	go func() {
		_, err := stream.Next()
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Next block in the read
	cancel()
	select {
	case err := <-errs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Next after cancel: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("context cancellation did not unblock the stream read")
	}
}

// TestStreamNotBoundByClientTimeout: the SDK's default 30s whole-request
// timeout must not apply to streams — a stream outliving the configured
// timeout keeps delivering.
func TestStreamNotBoundByClientTimeout(t *testing.T) {
	gate := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		<-gate
		fmt.Fprint(w, "event: session.finished\nid: 9\ndata: {\"seq\":9}\n\n")
		w.(http.Flusher).Flush()
	}))
	defer srv.Close()

	// A 50ms whole-request timeout would kill the stream before the frame
	// arrives if it applied.
	c := New(srv.URL, WithHTTPClient(&http.Client{Timeout: 50 * time.Millisecond}))
	stream, err := c.StreamEvents(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	time.Sleep(120 * time.Millisecond)
	close(gate)
	f, err := stream.Next()
	if err != nil {
		t.Fatalf("frame after the client timeout horizon: %v", err)
	}
	if f.ID != "9" {
		t.Fatalf("frame: %+v", f)
	}
}

// TestStreamHeadersAndErrors: Last-Event-ID and X-Learner-ID reach the
// server; non-2xx responses decode into APIError.
func TestStreamHeadersAndErrors(t *testing.T) {
	var gotLast, gotLearner string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotLast = r.Header.Get("Last-Event-ID")
		gotLearner = r.Header.Get("X-Learner-ID")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"code":"EXAM_NOT_FOUND","message":"no such exam"}`)
	}))
	defer srv.Close()

	c := New(srv.URL, WithLearnerID("bob"))
	_, err := c.StreamExamLive(context.Background(), "ghost", "42")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeExamNotFound {
		t.Fatalf("error = %v, want APIError EXAM_NOT_FOUND", err)
	}
	if gotLast != "42" || gotLearner != "bob" {
		t.Fatalf("headers: last=%q learner=%q", gotLast, gotLearner)
	}
}
