// Package client is the typed Go SDK for the LMS /v1 API. It is built
// around the same request/response structs the server serializes
// (internal/httpapi wire types plus the canonical item/bank/delivery/
// analysis payloads), so a client and server compiled from the same tree
// can never disagree about the contract.
//
// Every non-2xx response is returned as *APIError carrying the server's
// machine-readable error code; the codes are re-exported here so callers
// can branch without importing internal packages:
//
//	c := client.New(baseURL, client.WithLearnerID("alice"))
//	start, err := c.StartSession("midterm", "alice", 7)
//	var apiErr *client.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == client.CodeExamNotFound {
//		// handle the typo'd exam ID
//	}
//
// Scope: domain payloads (item.Problem, bank.ExamRecord, delivery.Status,
// analysis results) are types of this module's internal packages, so the
// SDK is for tools built inside this module (examples, benchmarks, tests,
// sibling services in this tree). Promoting the wire types to a public
// package for external importers is tracked in ROADMAP.md.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/bank"
	"mineassess/internal/delivery"
	"mineassess/internal/httpapi"
	"mineassess/internal/item"
)

// Code aliases the server's error-code type; the values below re-export
// the full taxonomy (see API.md for status mapping and semantics).
type Code = httpapi.Code

// The v1 error taxonomy, re-exported for callers.
const (
	CodeBadRequest         = httpapi.CodeBadRequest
	CodeValidation         = httpapi.CodeValidation
	CodeNotFound           = httpapi.CodeNotFound
	CodeMethodNotAllowed   = httpapi.CodeMethodNotAllowed
	CodeSessionNotFound    = httpapi.CodeSessionNotFound
	CodeExamNotFound       = httpapi.CodeExamNotFound
	CodeProblemNotFound    = httpapi.CodeProblemNotFound
	CodeExamExists         = httpapi.CodeExamExists
	CodeProblemExists      = httpapi.CodeProblemExists
	CodeSessionNotActive   = httpapi.CodeSessionNotActive
	CodeSessionNotPaused   = httpapi.CodeSessionNotPaused
	CodeNotResumable       = httpapi.CodeNotResumable
	CodeTimeExpired        = httpapi.CodeTimeExpired
	CodeUnknownProblem     = httpapi.CodeUnknownProblem
	CodeAlreadyAnswered    = httpapi.CodeAlreadyAnswered
	CodeNotAnswered        = httpapi.CodeNotAnswered
	CodeAutoGraded         = httpapi.CodeAutoGraded
	CodeInvalidCredit      = httpapi.CodeInvalidCredit
	CodeBlueprintShortfall = httpapi.CodeBlueprintShortfall
	CodeRateLimited        = httpapi.CodeRateLimited
	CodeInternal           = httpapi.CodeInternal
)

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error identifier.
	Code httpapi.Code
	// Message is the human-readable explanation.
	Message string
	// Details carries code-specific structured context (e.g. blueprint
	// shortfall cells).
	Details map[string]any
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
}

// Client talks to one LMS server. The zero value is not usable; call New.
type Client struct {
	base      string
	http      *http.Client
	learnerID string
}

// Option configures a Client.
type Option func(*Client)

// DefaultTimeout bounds every request of a default-configured client so a
// wedged server cannot hang a learner tool forever; override with
// WithHTTPClient.
const DefaultTimeout = 30 * time.Second

// WithHTTPClient substitutes the transport (custom timeouts, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithLearnerID sets the X-Learner-ID header on every request, giving the
// server's per-learner rate limiter a stable key independent of NAT.
func WithLearnerID(id string) Option {
	return func(c *Client) { c.learnerID = id }
}

// New builds a client for the server at baseURL (e.g. "http://lms:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: DefaultTimeout},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request. in == nil sends no body; out == nil discards the
// response body. Non-2xx responses become *APIError.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.learnerID != "" {
		req.Header.Set("X-Learner-ID", c.learnerID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// decodeAPIError reads the error envelope; a body that is not an envelope
// (e.g. a proxy's HTML error page) still yields a usable APIError.
func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env httpapi.Error
	if err := json.Unmarshal(raw, &env); err != nil || env.Code == "" {
		return &APIError{
			Status:  resp.StatusCode,
			Code:    httpapi.CodeInternal,
			Message: strings.TrimSpace(string(raw)),
		}
	}
	return &APIError{
		Status:  resp.StatusCode,
		Code:    env.Code,
		Message: env.Message,
		Details: env.Details,
	}
}

// --- Session delivery ---

// StartSession opens a session on an exam and returns the presentation
// order.
func (c *Client) StartSession(examID, studentID string, seed int64) (*httpapi.StartSessionResponse, error) {
	var out httpapi.StartSessionResponse
	err := c.do(http.MethodPost, "/v1/exams/"+url.PathEscape(examID)+"/sessions",
		httpapi.StartSessionRequest{StudentID: studentID, Seed: seed}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Session reports a session's current status.
func (c *Client) Session(sessionID string) (*delivery.Status, error) {
	var out delivery.Status
	if err := c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(sessionID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Answer records a learner's response.
func (c *Client) Answer(sessionID, problemID, response string) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":answer",
		httpapi.AnswerRequest{ProblemID: problemID, Response: response}, nil)
}

// Pause suspends a resumable session.
func (c *Client) Pause(sessionID string) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":pause", nil, nil)
}

// Resume reactivates a paused session.
func (c *Client) Resume(sessionID string) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":resume", nil, nil)
}

// Finish closes a session and returns its graded result row.
func (c *Client) Finish(sessionID string) (*analysis.StudentResult, error) {
	var out analysis.StudentResult
	if err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":finish", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Monitor returns the session's captured monitor snapshots.
func (c *Client) Monitor(sessionID string) ([]delivery.Snapshot, error) {
	var out []delivery.Snapshot
	if err := c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(sessionID)+"/monitor", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RTE bridges one SCORM RTE call (getvalue, setvalue, commit,
// geterrorstring) for SCO content.
func (c *Client) RTE(sessionID string, req httpapi.RTERequest) (*httpapi.RTEResponse, error) {
	var out httpapi.RTEResponse
	if err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/rte", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Problem authoring ---

// CreateProblem stores a new problem in the bank.
func (c *Client) CreateProblem(p *item.Problem) error {
	return c.do(http.MethodPost, "/v1/problems", p, nil)
}

// Problem fetches one problem by ID.
func (c *Client) Problem(id string) (*item.Problem, error) {
	var out item.Problem
	if err := c.do(http.MethodGet, "/v1/problems/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UpdateProblem replaces an existing problem (the previous version is kept
// in the bank's revision history).
func (c *Client) UpdateProblem(p *item.Problem) error {
	return c.do(http.MethodPut, "/v1/problems/"+url.PathEscape(p.ID), p, nil)
}

// DeleteProblem removes a problem from the bank.
func (c *Client) DeleteProblem(id string) error {
	return c.do(http.MethodDelete, "/v1/problems/"+url.PathEscape(id), nil, nil)
}

// ProblemQuery filters ListProblems; zero-valued fields are wildcards.
// Style and Level use their text forms (e.g. "MultipleChoice", "Knowledge"
// or "A"). The difficulty/discrimination bounds mirror bank.Query: both
// difficulty bounds zero means unbounded, and unmeasured items match only
// when no bound is set.
type ProblemQuery struct {
	Subject           string
	Keyword           string
	Style             string
	Level             string
	ConceptID         string
	MinDifficulty     float64
	MaxDifficulty     float64
	MinDiscrimination float64
	Limit             int
}

// ListProblems searches the bank.
func (c *Client) ListProblems(q ProblemQuery) (*httpapi.ProblemList, error) {
	v := url.Values{}
	set := func(key, val string) {
		if val != "" {
			v.Set(key, val)
		}
	}
	set("subject", q.Subject)
	set("keyword", q.Keyword)
	set("style", q.Style)
	set("level", q.Level)
	set("concept", q.ConceptID)
	setF := func(key string, val float64) {
		if val != 0 {
			v.Set(key, strconv.FormatFloat(val, 'g', -1, 64))
		}
	}
	setF("minDifficulty", q.MinDifficulty)
	setF("maxDifficulty", q.MaxDifficulty)
	setF("minDiscrimination", q.MinDiscrimination)
	if q.Limit > 0 {
		v.Set("limit", fmt.Sprint(q.Limit))
	}
	path := "/v1/problems"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	var out httpapi.ProblemList
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Exam authoring ---

// CreateExam stores an exam record referencing existing problems.
func (c *Client) CreateExam(rec *bank.ExamRecord) error {
	return c.do(http.MethodPost, "/v1/exams", rec, nil)
}

// Exam fetches one exam record.
func (c *Client) Exam(id string) (*bank.ExamRecord, error) {
	var out bank.ExamRecord
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteExam removes an exam record.
func (c *Client) DeleteExam(id string) error {
	return c.do(http.MethodDelete, "/v1/exams/"+url.PathEscape(id), nil, nil)
}

// ListExams returns all exam IDs.
func (c *Client) ListExams() ([]string, error) {
	var out httpapi.ExamList
	if err := c.do(http.MethodGet, "/v1/exams", nil, &out); err != nil {
		return nil, err
	}
	return out.ExamIDs, nil
}

// AssembleExam runs blueprint-driven assembly server-side and returns the
// stored exam. An underfilled bank yields an *APIError with
// httpapi.CodeBlueprintShortfall and per-cell details.
func (c *Client) AssembleExam(req httpapi.AssembleExamRequest) (*bank.ExamRecord, error) {
	var out httpapi.AssembleExamResponse
	if err := c.do(http.MethodPost, "/v1/exams:assemble", req, &out); err != nil {
		return nil, err
	}
	return out.Exam, nil
}

// --- Administration ---

// SessionSummaries lists the status of every session on an exam.
func (c *Client) SessionSummaries(examID string) ([]delivery.Status, error) {
	var out []delivery.Status
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(examID)+"/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// PendingGrades lists responses awaiting manual credit.
func (c *Client) PendingGrades(examID string) ([]delivery.PendingGrade, error) {
	var out []delivery.PendingGrade
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(examID)+"/grades", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// AssignGrade records an instructor's credit for a manually graded
// response.
func (c *Client) AssignGrade(sessionID, problemID string, credit float64) error {
	return c.do(http.MethodPost, "/v1/grades",
		httpapi.GradeRequest{SessionID: sessionID, ProblemID: problemID, Credit: credit}, nil)
}

// Results exports the exam's collected response matrix for analysis.
func (c *Client) Results(examID string) (*analysis.ExamResult, error) {
	var out analysis.ExamResult
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(examID)+"/results", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics() (*httpapi.MetricsSnapshot, error) {
	var out httpapi.MetricsSnapshot
	if err := c.do(http.MethodGet, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
