// Package client is the typed Go SDK for the LMS /v1 API. It is built
// around the same request/response structs the server serializes (the
// public pkg/api wire types plus the canonical domain payloads aliased
// there), so a client and server compiled from the same tree can never
// disagree about the contract.
//
// Every non-2xx response is returned as *APIError carrying the server's
// machine-readable error code; the codes are re-exported here so callers
// can branch without importing internal packages:
//
//	c := client.New(baseURL, client.WithLearnerID("alice"))
//	start, err := c.StartSession("midterm", "alice", 7)
//	var apiErr *client.APIError
//	if errors.As(err, &apiErr) && apiErr.Code == client.CodeExamNotFound {
//		// handle the typo'd exam ID
//	}
//
// External modules construct requests and destructure responses through
// pkg/api's public names (api.Problem, api.ExamRecord, api.SessionStatus,
// ...), which alias the exact types this module uses internally — no
// conversion layer, no drift.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/bank"
	"mineassess/internal/delivery"
	"mineassess/internal/item"
	"mineassess/pkg/api"
)

// Code aliases the server's error-code type; the values below re-export
// the full taxonomy (see API.md for status mapping and semantics).
type Code = api.Code

// The v1 error taxonomy, re-exported for callers.
const (
	CodeBadRequest         = api.CodeBadRequest
	CodeValidation         = api.CodeValidation
	CodeNotFound           = api.CodeNotFound
	CodeMethodNotAllowed   = api.CodeMethodNotAllowed
	CodeSessionNotFound    = api.CodeSessionNotFound
	CodeExamNotFound       = api.CodeExamNotFound
	CodeProblemNotFound    = api.CodeProblemNotFound
	CodeExamExists         = api.CodeExamExists
	CodeProblemExists      = api.CodeProblemExists
	CodeSessionNotActive   = api.CodeSessionNotActive
	CodeSessionNotPaused   = api.CodeSessionNotPaused
	CodeNotResumable       = api.CodeNotResumable
	CodeTimeExpired        = api.CodeTimeExpired
	CodeUnknownProblem     = api.CodeUnknownProblem
	CodeAlreadyAnswered    = api.CodeAlreadyAnswered
	CodeNotAnswered        = api.CodeNotAnswered
	CodeAutoGraded         = api.CodeAutoGraded
	CodeInvalidCredit      = api.CodeInvalidCredit
	CodeBlueprintShortfall = api.CodeBlueprintShortfall
	CodeRateLimited        = api.CodeRateLimited
	CodeInternal           = api.CodeInternal
	CodeNotCalibrated      = api.CodeNotCalibrated
	CodeItemNotPending     = api.CodeItemNotPending
	CodeInsufficientData   = api.CodeInsufficientData
)

// APIError is a non-2xx response decoded from the server's error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error identifier.
	Code api.Code
	// Message is the human-readable explanation.
	Message string
	// Details carries code-specific structured context (e.g. blueprint
	// shortfall cells).
	Details map[string]any
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
}

// Client talks to one LMS server. The zero value is not usable; call New.
type Client struct {
	base      string
	http      *http.Client
	learnerID string
}

// Option configures a Client.
type Option func(*Client)

// DefaultTimeout bounds every request of a default-configured client so a
// wedged server cannot hang a learner tool forever; override with
// WithHTTPClient.
const DefaultTimeout = 30 * time.Second

// WithHTTPClient substitutes the transport (custom timeouts, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithLearnerID sets the X-Learner-ID header on every request, giving the
// server's per-learner rate limiter a stable key independent of NAT.
func WithLearnerID(id string) Option {
	return func(c *Client) { c.learnerID = id }
}

// New builds a client for the server at baseURL (e.g. "http://lms:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: DefaultTimeout},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request. in == nil sends no body; out == nil discards the
// response body. Non-2xx responses become *APIError.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.learnerID != "" {
		req.Header.Set("X-Learner-ID", c.learnerID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// decodeAPIError reads the error envelope; a body that is not an envelope
// (e.g. a proxy's HTML error page) still yields a usable APIError.
func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var env api.Error
	if err := json.Unmarshal(raw, &env); err != nil || env.Code == "" {
		return &APIError{
			Status:  resp.StatusCode,
			Code:    api.CodeInternal,
			Message: strings.TrimSpace(string(raw)),
		}
	}
	return &APIError{
		Status:  resp.StatusCode,
		Code:    env.Code,
		Message: env.Message,
		Details: env.Details,
	}
}

// --- Session delivery ---

// StartSession opens a session on an exam and returns the presentation
// order.
func (c *Client) StartSession(examID, studentID string, seed int64) (*api.StartSessionResponse, error) {
	var out api.StartSessionResponse
	err := c.do(http.MethodPost, "/v1/exams/"+url.PathEscape(examID)+"/sessions",
		api.StartSessionRequest{StudentID: studentID, Seed: seed}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Session reports a session's current status.
func (c *Client) Session(sessionID string) (*delivery.Status, error) {
	var out delivery.Status
	if err := c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(sessionID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Answer records a learner's response.
func (c *Client) Answer(sessionID, problemID, response string) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":answer",
		api.AnswerRequest{ProblemID: problemID, Response: response}, nil)
}

// Pause suspends a resumable session.
func (c *Client) Pause(sessionID string) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":pause", nil, nil)
}

// Resume reactivates a paused session.
func (c *Client) Resume(sessionID string) error {
	return c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":resume", nil, nil)
}

// Finish closes a session and returns its graded result row.
func (c *Client) Finish(sessionID string) (*analysis.StudentResult, error) {
	var out analysis.StudentResult
	if err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+":finish", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Monitor returns the session's captured monitor snapshots.
func (c *Client) Monitor(sessionID string) ([]delivery.Snapshot, error) {
	var out []delivery.Snapshot
	if err := c.do(http.MethodGet, "/v1/sessions/"+url.PathEscape(sessionID)+"/monitor", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RTE bridges one SCORM RTE call (getvalue, setvalue, commit,
// geterrorstring) for SCO content.
func (c *Client) RTE(sessionID string, req api.RTERequest) (*api.RTEResponse, error) {
	var out api.RTEResponse
	if err := c.do(http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/rte", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Problem authoring ---

// CreateProblem stores a new problem in the bank.
func (c *Client) CreateProblem(p *item.Problem) error {
	return c.do(http.MethodPost, "/v1/problems", p, nil)
}

// Problem fetches one problem by ID.
func (c *Client) Problem(id string) (*item.Problem, error) {
	var out item.Problem
	if err := c.do(http.MethodGet, "/v1/problems/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UpdateProblem replaces an existing problem (the previous version is kept
// in the bank's revision history).
func (c *Client) UpdateProblem(p *item.Problem) error {
	return c.do(http.MethodPut, "/v1/problems/"+url.PathEscape(p.ID), p, nil)
}

// DeleteProblem removes a problem from the bank.
func (c *Client) DeleteProblem(id string) error {
	return c.do(http.MethodDelete, "/v1/problems/"+url.PathEscape(id), nil, nil)
}

// ProblemQuery filters ListProblems; zero-valued fields are wildcards.
// Style and Level use their text forms (e.g. "MultipleChoice", "Knowledge"
// or "A"). The difficulty/discrimination bounds mirror bank.Query: both
// difficulty bounds zero means unbounded, and unmeasured items match only
// when no bound is set.
type ProblemQuery struct {
	Subject           string
	Keyword           string
	Style             string
	Level             string
	ConceptID         string
	MinDifficulty     float64
	MaxDifficulty     float64
	MinDiscrimination float64
	Limit             int
}

// ListProblems searches the bank.
func (c *Client) ListProblems(q ProblemQuery) (*api.ProblemList, error) {
	v := url.Values{}
	set := func(key, val string) {
		if val != "" {
			v.Set(key, val)
		}
	}
	set("subject", q.Subject)
	set("keyword", q.Keyword)
	set("style", q.Style)
	set("level", q.Level)
	set("concept", q.ConceptID)
	setF := func(key string, val float64) {
		if val != 0 {
			v.Set(key, strconv.FormatFloat(val, 'g', -1, 64))
		}
	}
	setF("minDifficulty", q.MinDifficulty)
	setF("maxDifficulty", q.MaxDifficulty)
	setF("minDiscrimination", q.MinDiscrimination)
	if q.Limit > 0 {
		v.Set("limit", fmt.Sprint(q.Limit))
	}
	path := "/v1/problems"
	if enc := v.Encode(); enc != "" {
		path += "?" + enc
	}
	var out api.ProblemList
	if err := c.do(http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Exam authoring ---

// CreateExam stores an exam record referencing existing problems.
func (c *Client) CreateExam(rec *bank.ExamRecord) error {
	return c.do(http.MethodPost, "/v1/exams", rec, nil)
}

// Exam fetches one exam record.
func (c *Client) Exam(id string) (*bank.ExamRecord, error) {
	var out bank.ExamRecord
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteExam removes an exam record.
func (c *Client) DeleteExam(id string) error {
	return c.do(http.MethodDelete, "/v1/exams/"+url.PathEscape(id), nil, nil)
}

// ListExams returns all exam IDs.
func (c *Client) ListExams() ([]string, error) {
	var out api.ExamList
	if err := c.do(http.MethodGet, "/v1/exams", nil, &out); err != nil {
		return nil, err
	}
	return out.ExamIDs, nil
}

// AssembleExam runs blueprint-driven assembly server-side and returns the
// stored exam. An underfilled bank yields an *APIError with
// api.CodeBlueprintShortfall and per-cell details.
func (c *Client) AssembleExam(req api.AssembleExamRequest) (*bank.ExamRecord, error) {
	var out api.AssembleExamResponse
	if err := c.do(http.MethodPost, "/v1/exams:assemble", req, &out); err != nil {
		return nil, err
	}
	return out.Exam, nil
}

// --- Administration ---

// SessionSummaries lists the status of every session on an exam.
func (c *Client) SessionSummaries(examID string) ([]delivery.Status, error) {
	var out []delivery.Status
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(examID)+"/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// PendingGrades lists responses awaiting manual credit.
func (c *Client) PendingGrades(examID string) ([]delivery.PendingGrade, error) {
	var out []delivery.PendingGrade
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(examID)+"/grades", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// AssignGrade records an instructor's credit for a manually graded
// response.
func (c *Client) AssignGrade(sessionID, problemID string, credit float64) error {
	return c.do(http.MethodPost, "/v1/grades",
		api.GradeRequest{SessionID: sessionID, ProblemID: problemID, Credit: credit}, nil)
}

// Results exports the exam's collected response matrix for analysis.
func (c *Client) Results(examID string) (*analysis.ExamResult, error) {
	var out analysis.ExamResult
	if err := c.do(http.MethodGet, "/v1/exams/"+url.PathEscape(examID)+"/results", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the server's metrics snapshot.
func (c *Client) Metrics() (*api.MetricsSnapshot, error) {
	var out api.MetricsSnapshot
	if err := c.do(http.MethodGet, "/v1/metrics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- Adaptive (CAT) delivery ---

// StartAdaptiveSession opens a live adaptive session on a calibrated exam
// and returns the first item to administer. Uncalibrated exams yield an
// *APIError with CodeNotCalibrated.
func (c *Client) StartAdaptiveSession(req api.StartAdaptiveSessionRequest) (*api.StartAdaptiveSessionResponse, error) {
	var out api.StartAdaptiveSessionResponse
	if err := c.do(http.MethodPost, "/v1/adaptive-sessions", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdaptiveStatus reports an adaptive session's current summary (state,
// theta, SE, administered count, pending item).
func (c *Client) AdaptiveStatus(sessionID string) (*api.AdaptiveStatus, error) {
	var out api.AdaptiveStatus
	if err := c.do(http.MethodGet, "/v1/adaptive-sessions/"+url.PathEscape(sessionID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdaptiveNext re-fetches the pending item without mutating the session —
// safe after a client crash mid-test.
func (c *Client) AdaptiveNext(sessionID string) (*api.AdaptiveItem, error) {
	var out api.AdaptiveItem
	if err := c.do(http.MethodGet, "/v1/adaptive-sessions/"+url.PathEscape(sessionID)+"/next", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdaptiveRespond answers the pending item and returns the updated ability
// estimate plus either the next item or the stop decision.
func (c *Client) AdaptiveRespond(sessionID, problemID, response string) (*api.AdaptiveProgress, error) {
	var out api.AdaptiveProgress
	err := c.do(http.MethodPost, "/v1/adaptive-sessions/"+url.PathEscape(sessionID)+":respond",
		api.AnswerRequest{ProblemID: problemID, Response: response}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// FinishAdaptiveSession closes an adaptive session (idempotent) and returns
// its outcome.
func (c *Client) FinishAdaptiveSession(sessionID string) (*api.AdaptiveOutcome, error) {
	var out api.AdaptiveOutcome
	if err := c.do(http.MethodPost, "/v1/adaptive-sessions/"+url.PathEscape(sessionID)+":finish", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AdaptiveMonitor returns the adaptive session's captured monitor
// snapshots.
func (c *Client) AdaptiveMonitor(sessionID string) ([]api.MonitorSnapshot, error) {
	var out []api.MonitorSnapshot
	if err := c.do(http.MethodGet, "/v1/adaptive-sessions/"+url.PathEscape(sessionID)+"/monitor", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RecalibrateExam folds the server's logged adaptive responses back into
// the exam's stored item parameters and reports what changed.
// minObservations 0 uses the server default.
func (c *Client) RecalibrateExam(examID string, minObservations int) (*api.RecalibrateResponse, error) {
	var out api.RecalibrateResponse
	err := c.do(http.MethodPost, "/v1/exams/"+url.PathEscape(examID)+":recalibrate",
		api.RecalibrateRequest{MinObservations: minObservations}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// PurgeAdaptiveSessions removes finished adaptive sessions from the
// server's registry and storage (retention pass); run after
// RecalibrateExam to keep calibration input.
func (c *Client) PurgeAdaptiveSessions() (int, error) {
	var out api.PurgeAdaptiveSessionsResponse
	if err := c.do(http.MethodPost, "/v1/adaptive-sessions:purge", nil, &out); err != nil {
		return 0, err
	}
	return out.Purged, nil
}
