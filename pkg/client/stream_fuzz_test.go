package client

// In-package fuzz coverage for the SSE frame parser: EventStream's fields
// are unexported, so the harness builds one directly around an in-memory
// body, exactly as c.stream does around a response body.

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
)

func streamOver(data []byte) *EventStream {
	r := bytes.NewReader(data)
	return &EventStream{
		ctx:  context.Background(),
		body: io.NopCloser(r),
		br:   bufio.NewReader(r),
	}
}

func FuzzEventStreamNext(f *testing.F) {
	f.Add([]byte("id: 7\nevent: session.answered\ndata: {\"seq\":7}\n\n"))
	f.Add([]byte("event: stats\ndata: {\"answered\":1}\ndata: {\"more\":2}\n\n"))
	f.Add([]byte(": keep-alive\n\n: another\n\nid: 1\ndata: x\n\n"))
	f.Add([]byte("id: 3\r\nevent: gap\r\ndata: {}\r\n\r\n"))
	f.Add([]byte("data only, no frame separator"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("id:\nevent:\ndata:\n\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s := streamOver(data)
		// A finite input yields finitely many frames; every returned frame
		// must be internally consistent and the final error must be EOF (or
		// a frame cut off mid-assembly reported as EOF on the next call).
		for i := 0; ; i++ {
			if i > len(data)+2 {
				t.Fatalf("parser failed to terminate after %d frames on %d input bytes", i, len(data))
			}
			frame, err := s.Next()
			if err != nil {
				if err != io.EOF {
					t.Fatalf("non-EOF error from in-memory stream: %v", err)
				}
				return
			}
			if frame.Data == nil {
				t.Fatal("frame returned with nil Data")
			}
			if strings.ContainsAny(frame.ID, "\r\n") || strings.ContainsAny(frame.Event, "\r\n") {
				t.Fatalf("field leaked line terminators: id=%q event=%q", frame.ID, frame.Event)
			}
		}
	})
}
