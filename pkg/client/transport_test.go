package client

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// barrierServer serves GET /v1/exams but holds every request until the
// whole round has arrived, guaranteeing `conc` simultaneous connections —
// parallelism by construction, not by racing goroutine startup. ConnState
// counts connections the server actually accepted.
type barrierServer struct {
	srv     *httptest.Server
	conns   atomic.Int64
	arrived atomic.Int64
	release chan struct{}
}

func newBarrierServer(t *testing.T) *barrierServer {
	t.Helper()
	b := &barrierServer{release: make(chan struct{})}
	b.srv = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.arrived.Add(1)
		<-b.release
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"examIds":["e1"]}`))
	}))
	b.srv.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			b.conns.Add(1)
		}
	}
	b.srv.Start()
	t.Cleanup(b.srv.Close)
	return b
}

// round fires conc ListExams calls in parallel and releases them only once
// all conc are in-flight on the server.
func (b *barrierServer) round(t *testing.T, c *Client, conc int) {
	t.Helper()
	b.arrived.Store(0)
	b.release = make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.ListExams(); err != nil {
				t.Errorf("ListExams: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.arrived.Load() < int64(conc) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests arrived", b.arrived.Load(), conc)
		}
		time.Sleep(time.Millisecond)
	}
	close(b.release)
	wg.Wait()
}

// TestTunedTransportReusesConnections proves the point of TunedTransport:
// under repeated bursts of conc parallel requests the tuned pool opens conc
// connections once and reuses them every later round, while the stdlib
// default (2 idle conns per host) closes all but 2 after each round and
// redials the rest — measured here as accepted-connection counts on the
// server, the ground truth the client cannot fake.
func TestTunedTransportReusesConnections(t *testing.T) {
	const conc, rounds = 12, 4

	run := func(rt http.RoundTripper) int64 {
		b := newBarrierServer(t)
		c := New(b.srv.URL, WithTransport(rt), WithLearnerID("pool-test"))
		for r := 0; r < rounds; r++ {
			b.round(t, c, conc)
		}
		tr, _ := rt.(*http.Transport)
		if tr != nil {
			defer tr.CloseIdleConnections()
		}
		return b.conns.Load()
	}

	tuned := run(TunedTransport(conc))
	if tuned > conc {
		t.Errorf("tuned transport opened %d connections over %d rounds, want at most the burst size %d",
			tuned, rounds, conc)
	}

	small := http.DefaultTransport.(*http.Transport).Clone() // keeps MaxIdleConnsPerHost=2
	churned := run(small)
	// Every round beyond the first must redial the conc-2 connections the
	// 2-idle-conn default threw away; allow generous slack for keep-alive
	// races and still require visible churn.
	if churned < tuned+int64(conc) {
		t.Errorf("default transport opened %d connections, tuned %d — expected the default to churn well past the tuned pool",
			churned, tuned)
	}
}

// TestWithTransportInstalls: the option must install the RoundTripper on
// the client's HTTP stack (streams share it too).
func TestWithTransportInstalls(t *testing.T) {
	rt := TunedTransport(8)
	c := New("http://example.invalid", WithTransport(rt))
	if c.http.Transport != http.RoundTripper(rt) {
		t.Fatal("WithTransport did not install the transport")
	}
	if got := rt.MaxIdleConnsPerHost; got != 8 {
		t.Errorf("MaxIdleConnsPerHost = %d, want 8", got)
	}
	if rt.MaxConnsPerHost != 0 {
		t.Errorf("MaxConnsPerHost = %d, want 0 (no in-transport queueing)", rt.MaxConnsPerHost)
	}
}
