package client

import (
	"net/http"
	"time"
)

// TunedTransport returns an *http.Transport sized for `concurrency`
// parallel requests against one host.
//
// The stdlib default keeps at most 2 idle connections per host
// (DefaultMaxIdleConnsPerHost): under thousands of concurrent virtual
// learners every burst beyond 2 in-flight requests churns TCP connections
// — each returned connection is closed instead of pooled, and the next
// request pays a fresh handshake. That both throttles the client and
// measures connection setup instead of the server. A load generator (or
// any high-fan-in service client) should install this transport via
// WithTransport or share one http.Client built around it.
func TunedTransport(concurrency int) *http.Transport {
	if concurrency < 1 {
		concurrency = 1
	}
	t := http.DefaultTransport.(*http.Transport).Clone()
	// Pool as many idle connections as there are concurrent callers, so a
	// learner finishing an exam hands its connection to the next arrival
	// instead of closing it.
	t.MaxIdleConns = concurrency
	t.MaxIdleConnsPerHost = concurrency
	// No hard per-host cap: under open-loop load a cap would queue requests
	// inside the transport and reintroduce the coordinated omission the
	// harness exists to avoid.
	t.MaxConnsPerHost = 0
	t.IdleConnTimeout = 90 * time.Second
	return t
}

// WithTransport installs a custom RoundTripper (e.g. TunedTransport) on
// the client's underlying http.Client, keeping its timeout. The streaming
// endpoints reuse the same transport. Apply after WithHTTPClient if both
// are used — options run in order.
func WithTransport(rt http.RoundTripper) Option {
	return func(c *Client) { c.http.Transport = rt }
}
