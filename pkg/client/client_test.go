package client

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/delivery"
	"mineassess/internal/httpapi"
	"mineassess/internal/item"
)

// newLMS spins up a full /v1 server over an empty reference store.
func newLMS(t *testing.T) (*Client, *bank.Store) {
	t.Helper()
	store := bank.New()
	engine := delivery.NewEngine(store, nil, 4)
	srv := httptest.NewServer(httpapi.NewServer(engine, store, httpapi.Options{}))
	t.Cleanup(srv.Close)
	return New(srv.URL, WithLearnerID("sdk-test")), store
}

func seedExam(t *testing.T, c *Client, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%d", i+1), "SDK question",
			[]string{"w", "x", "y", "z"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.ConceptID = "c1"
		p.Level = cognition.Knowledge
		if err := c.CreateProblem(p); err != nil {
			t.Fatal(err)
		}
	}
	rec := &bank.ExamRecord{ID: "sdk", Title: "SDK exam"}
	for i := 0; i < n; i++ {
		rec.ProblemIDs = append(rec.ProblemIDs, fmt.Sprintf("q%d", i+1))
	}
	if err := c.CreateExam(rec); err != nil {
		t.Fatal(err)
	}
}

func TestSDKSessionRoundTrip(t *testing.T) {
	c, _ := newLMS(t)
	seedExam(t, c, 3)

	start, err := c.StartSession("sdk", "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(start.Order) != 3 {
		t.Fatalf("order = %v", start.Order)
	}
	for _, pid := range start.Order {
		if err := c.Answer(start.SessionID, pid, "A"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Session(start.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Answered != 3 || st.StateName != "running" {
		t.Errorf("status = %+v", st)
	}
	snaps, err := c.Monitor(start.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 { // start + 3 answers
		t.Errorf("snapshots = %d", len(snaps))
	}
	rr, err := c.RTE(start.SessionID, httpapi.RTERequest{
		Method: "getvalue", Element: "cmi.core.student_id"})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Result != "alice" {
		t.Errorf("rte = %+v", rr)
	}
	res, err := c.Finish(start.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if res.StudentID != "alice" || len(res.Responses) != 3 {
		t.Errorf("result = %+v", res)
	}
	sums, err := c.SessionSummaries("sdk")
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].StateName != "finished" {
		t.Errorf("summaries = %+v", sums)
	}
	out, err := c.Results("sdk")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Students) != 1 {
		t.Errorf("results students = %d", len(out.Students))
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Error("metrics should have counted this traffic")
	}
}

func TestSDKTypedErrors(t *testing.T) {
	c, _ := newLMS(t)
	seedExam(t, c, 1)

	_, err := c.StartSession("ghost", "alice", 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v, want *APIError", err, err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != httpapi.CodeExamNotFound {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if apiErr.Error() == "" {
		t.Error("empty error string")
	}

	if err := c.DeleteProblem("ghost"); err == nil {
		t.Fatal("delete of missing problem should fail")
	} else if !errors.As(err, &apiErr) || apiErr.Code != httpapi.CodeProblemNotFound {
		t.Errorf("delete err = %v", err)
	}

	// Deleting the only problem an exam uses is legal bank semantics; the
	// SDK surfaces no error.
	if err := c.DeleteProblem("q1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteExam("sdk"); err != nil {
		t.Fatal(err)
	}
	exams, err := c.ListExams()
	if err != nil {
		t.Fatal(err)
	}
	if len(exams) != 0 {
		t.Errorf("exams = %v", exams)
	}
}

// TestSDKNonEnvelopeError: a proxy-style plain-text error still yields a
// usable APIError instead of a decode failure.
func TestSDKNonEnvelopeError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL)
	_, err := c.ListExams()
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %T %v", err, err)
	}
	if apiErr.Status != http.StatusBadGateway || apiErr.Message != "bad gateway" {
		t.Errorf("apiErr = %+v", apiErr)
	}
}

func TestSDKLearnerHeader(t *testing.T) {
	var got string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("X-Learner-ID")
		w.Write([]byte(`{"examIds":[]}`))
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithLearnerID("alice"))
	if _, err := c.ListExams(); err != nil {
		t.Fatal(err)
	}
	if got != "alice" {
		t.Errorf("X-Learner-ID = %q", got)
	}
}
