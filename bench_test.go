package mineassess

// One benchmark per experiment in DESIGN.md's index (E1-E17). Each bench
// exercises the code path that regenerates the corresponding table or
// figure; correctness is asserted by the package tests, the benches measure
// the cost of regeneration.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"mineassess/internal/adaptive"
	"mineassess/internal/analysis"
	"mineassess/internal/authoring"
	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/delivery"
	"mineassess/internal/feedback"
	"mineassess/internal/item"
	"mineassess/internal/report"
	"mineassess/internal/scorm"
	"mineassess/internal/simulate"
	"mineassess/internal/stats"
)

func paperTable(id, correct string, high, low map[string]int, size int) *analysis.OptionTable {
	return analysis.FromCounts(id, correct, []string{"A", "B", "C", "D", "E"},
		high, low, size, size)
}

func benchExample1() *analysis.OptionTable {
	return paperTable("ex1", "A",
		map[string]int{"A": 12, "B": 2, "C": 0, "D": 3, "E": 3},
		map[string]int{"A": 6, "B": 4, "C": 0, "D": 5, "E": 5}, 20)
}

// benchClass builds a simulated class result with the given shape.
func benchClass(b *testing.B, students, questions int) (*analysis.ExamResult, *analysis.ExamAnalysis) {
	b.Helper()
	specs := make([]simulate.ItemSpec, 0, questions)
	for i := 0; i < questions; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%03d", i+1), "bench",
			[]string{"1", "2", "3", "4"}, i%4)
		if err != nil {
			b.Fatal(err)
		}
		p.Level = cognition.Levels()[i%cognition.NumLevels]
		p.ConceptID = fmt.Sprintf("c%d", i%5+1)
		specs = append(specs, simulate.ItemSpec{
			Problem: p,
			Params:  simulate.IRTParams{A: 1.6, B: -1.5 + 3*float64(i)/float64(questions)},
		})
	}
	pop, err := simulate.NewPopulation(simulate.PopulationConfig{N: students, SD: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	res, err := simulate.Run(simulate.ExamConfig{
		ExamID: "bench", Items: specs, Seed: 2,
		TestTime: time.Duration(questions) * time.Minute,
	}, pop)
	if err != nil {
		b.Fatal(err)
	}
	a, err := analysis.Analyze(res, analysis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return res, a
}

// E1 — Table 1: building the option table from a raw class result.
func BenchmarkTable1OptionTable(b *testing.B) {
	res, a := benchClass(b, 44, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := analysis.BuildOptionTable(res, a.Groups, "q001")
		if err != nil {
			b.Fatal(err)
		}
		_ = report.OptionTable(tab)
	}
}

// E2-E5 — the four diagnostic rules on the paper's matrices.
func BenchmarkRule1(b *testing.B) {
	tab := benchExample1()
	for i := 0; i < b.N; i++ {
		_ = analysis.EvaluateRule1(tab)
	}
}

func BenchmarkRule2(b *testing.B) {
	tab := paperTable("ex2", "C",
		map[string]int{"A": 1, "B": 2, "C": 10, "D": 0, "E": 7},
		map[string]int{"A": 2, "B": 2, "C": 13, "D": 1, "E": 2}, 20)
	for i := 0; i < b.N; i++ {
		_ = analysis.EvaluateRule2(tab)
	}
}

func BenchmarkRule3(b *testing.B) {
	tab := paperTable("ex3", "A",
		map[string]int{"A": 15, "B": 2, "C": 2, "D": 0, "E": 1},
		map[string]int{"A": 5, "B": 4, "C": 5, "D": 4, "E": 2}, 20)
	for i := 0; i < b.N; i++ {
		_ = analysis.EvaluateRule3(tab)
	}
}

func BenchmarkRule4(b *testing.B) {
	tab := paperTable("ex4", "E",
		map[string]int{"A": 4, "B": 4, "C": 4, "D": 2, "E": 6},
		map[string]int{"A": 5, "B": 4, "C": 5, "D": 4, "E": 2}, 20)
	for i := 0; i < b.N; i++ {
		_ = analysis.EvaluateRule4(tab)
	}
}

// E6 — Table 2: deriving statuses from matched rules.
func BenchmarkStatusMatrix(b *testing.B) {
	tab := benchExample1()
	rules := analysis.EvaluateRules(tab)
	for i := 0; i < b.N; i++ {
		_ = analysis.StatusesFor(rules)
	}
}

// E7 — Table 3: the signal policy over a D sweep.
func BenchmarkSignal(b *testing.B) {
	tab := benchExample1()
	rules := analysis.EvaluateRules(tab)
	for i := 0; i < b.N; i++ {
		for d := 0.0; d < 1.0; d += 0.01 {
			_ = analysis.EvaluateSignal(d, rules)
		}
	}
}

// E8/E9 — the worked questions end to end (tabulate + indices + rules +
// signal) at the paper's class size.
func BenchmarkWorkedQuestions(b *testing.B) {
	res, a := benchClass(b, 44, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range []string{"q001", "q002"} {
			tab, err := analysis.BuildOptionTable(res, a.Groups, q)
			if err != nil {
				b.Fatal(err)
			}
			rules := analysis.EvaluateRules(tab)
			_ = analysis.EvaluateSignal(tab.Discrimination(), rules)
		}
	}
}

// E10 — Figure 2: full analysis + signal board for a 10-question class.
func BenchmarkSignalBoard(b *testing.B) {
	res, _ := benchClass(b, 44, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := analysis.Analyze(res, analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_ = report.SignalBoard(a)
	}
}

// E11 — the time-vs-answered figure.
func BenchmarkTimeCurve(b *testing.B) {
	res, _ := benchClass(b, 100, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := analysis.TimeCurve(res, 40)
		_ = report.TimeCurve(pts, 8)
	}
}

// E12 — the score-vs-difficulty distribution.
func BenchmarkScoreDifficulty(b *testing.B) {
	res, a := benchClass(b, 120, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := analysis.ScoreDifficulty(res, a, 8, 6)
		_ = report.ScoreDifficulty(grid)
	}
}

// E13 — Table 4: two-way specification table construction + rendering.
func BenchmarkTwoWayTable(b *testing.B) {
	concepts := cognition.NumberedConcepts(10)
	for i := 0; i < b.N; i++ {
		tab := cognition.NewTwoWayTable(concepts)
		for q := 0; q < 60; q++ {
			if err := tab.Add(fmt.Sprintf("q%03d", q),
				fmt.Sprintf("c%d", q%10+1),
				cognition.Levels()[q%cognition.NumLevels]); err != nil {
				b.Fatal(err)
			}
		}
		_ = report.TwoWayTable(tab)
	}
}

// E14 — the §4.2.3 coverage analyses.
func BenchmarkCoverageAnalysis(b *testing.B) {
	tab := cognition.NewTwoWayTable(cognition.NumberedConcepts(10))
	for q := 0; q < 60; q++ {
		if err := tab.Add(fmt.Sprintf("q%03d", q),
			fmt.Sprintf("c%d", q%9+1), // concept 10 lost
			cognition.Levels()[q%cognition.NumLevels]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Analyze()
	}
}

// E15 — the Instructional Sensitivity Index over pre/post sittings.
func BenchmarkSensitivity(b *testing.B) {
	pre, _ := benchClass(b, 80, 10)
	post, _ := benchClass(b, 80, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.InstructionalSensitivity(pre, post); err != nil {
			b.Fatal(err)
		}
	}
}

// E16 — SCORM packaging of a 50-item exam, zip round trip included.
func BenchmarkSCORMPackage(b *testing.B) {
	store := bank.New()
	var ids []string
	for i := 0; i < 50; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%03d", i+1), "bench",
			[]string{"1", "2", "3", "4"}, i%4)
		if err != nil {
			b.Fatal(err)
		}
		p.Level = cognition.Knowledge
		if err := store.AddProblem(p); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	draft := authoring.NewExamDraft("bench", "Bench exam")
	if err := draft.Add(ids...); err != nil {
		b.Fatal(err)
	}
	rec, err := draft.Finalize(store)
	if err != nil {
		b.Fatal(err)
	}
	problems, err := store.Problems(rec.ProblemIDs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkg, err := scorm.BuildPackage(rec, problems)
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pkg.WriteZip(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := scorm.ReadZip(buf.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// E17 — adaptive versus fixed test over a cohort.
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	pool := adaptive.UniformPool(200, 1.8, 3)
	rng := rand.New(rand.NewSource(11))
	abilities := make([]float64, 20)
	for i := range abilities {
		abilities[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adaptive.Compare(adaptive.Config{MaxItems: 15}, pool, abilities, 11); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension: whole-sample psychometrics (KR-20, point-biserial) over a
// simulated class.
func BenchmarkStatistics(b *testing.B) {
	res, _ := benchClass(b, 200, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Compute(res); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension: the assessment-feedback bundle (per-student + class advice).
func BenchmarkFeedback(b *testing.B) {
	res, a := benchClass(b, 200, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := feedback.Build(res, a); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the paper's upper/lower D against the point-biserial.
func BenchmarkDiscriminationAblation(b *testing.B) {
	res, a := benchClass(b, 200, 20)
	st, err := stats.Compute(res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.CompareDiscrimination(a, st); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the group-fraction sweep (paper default 25% vs Kelly 27% vs
// 33%) over the same class.
func BenchmarkGroupFractionSweep(b *testing.B) {
	res, _ := benchClass(b, 200, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range []float64{0.25, 0.27, 0.33} {
			if _, err := analysis.SplitGroups(res, f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Ablation: full simulated administration at increasing class sizes.
func BenchmarkSimulatedAdministration(b *testing.B) {
	for _, size := range []int{44, 200, 1000} {
		b.Run(fmt.Sprintf("class%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchClass(b, size, 20)
			}
		})
	}
}

// benchDeliveryExam authors an unlimited-time 10-question exam into any
// storage backend for engine benchmarks.
func benchDeliveryExam(b *testing.B, store bank.Storage) string {
	b.Helper()
	var ids []string
	for i := 0; i < 10; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%02d", i+1), "bench",
			[]string{"a", "b", "c", "d"}, i%4)
		if err != nil {
			b.Fatal(err)
		}
		if err := store.AddProblem(p); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	rec := &bank.ExamRecord{ID: "bench-delivery", Title: "Delivery bench",
		ProblemIDs: ids, Display: item.FixedOrder}
	if err := store.AddExam(rec); err != nil {
		b.Fatal(err)
	}
	return rec.ID
}

// BenchmarkEngineParallelSessions measures per-operation latency while
// b.RunParallel spreads independent learner sessions over the engine. The
// 1-shard configuration serializes every registry lookup on one shard lock
// (per-session locks still apply, so it is a conservative stand-in for —
// not a reproduction of — the old single exclusive engine mutex); the
// sharded configuration is the production engine. Run with -cpu 1,2,4,8 to
// watch the sharded engine scale with GOMAXPROCS.
func BenchmarkEngineParallelSessions(b *testing.B) {
	configs := []struct {
		name     string
		newStore func() bank.Storage
		shards   int
	}{
		{"1shard", func() bank.Storage { return bank.New() }, 1},
		{"sharded", func() bank.Storage { return bank.NewSharded(0) }, delivery.DefaultSessionShards},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			store := cfg.newStore()
			examID := benchDeliveryExam(b, store)
			eng := delivery.NewShardedEngine(store, nil, 0, cfg.shards)
			var students atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var sess *delivery.Session
				qi := 0
				for pb.Next() {
					if sess == nil || qi == len(sess.Order) {
						if sess != nil {
							if _, err := eng.Finish(sess.ID); err != nil {
								b.Error(err)
								return
							}
						}
						n := students.Add(1)
						var err error
						sess, err = eng.Start(examID, fmt.Sprintf("s%06d", n), n)
						if err != nil {
							b.Error(err)
							return
						}
						qi = 0
					}
					if err := eng.Answer(sess.ID, sess.Order[qi], "A"); err != nil {
						b.Error(err)
						return
					}
					qi++
				}
			})
		})
	}
}
