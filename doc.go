// Package mineassess is the root of the MINE Assess library, a
// reproduction of "A Cognition Assessment Authoring System for E-Learning"
// (Hung et al., 2004). The implementation lives under internal/ (see
// DESIGN.md for the system inventory); runnable tools are under cmd/ and
// examples under examples/. The benchmarks in bench_test.go regenerate
// every table and figure of the paper (DESIGN.md's experiment index maps
// them) and measure the sharded delivery engine's parallel throughput.
package mineassess
