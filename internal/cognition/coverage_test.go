package cognition

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAnalyzeConceptLost(t *testing.T) {
	tab := newTestTable(t, 3)
	mustAdd(t, tab, "q1", "c1", Knowledge)
	mustAdd(t, tab, "q2", "c3", Application)

	rep := tab.Analyze()
	if len(rep.LostConcepts) != 1 || rep.LostConcepts[0] != "c2" {
		t.Errorf("LostConcepts = %v, want [c2]", rep.LostConcepts)
	}
}

func TestAnalyzeNoConceptLost(t *testing.T) {
	tab := newTestTable(t, 2)
	mustAdd(t, tab, "q1", "c1", Knowledge)
	mustAdd(t, tab, "q2", "c2", Evaluation)
	if rep := tab.Analyze(); len(rep.LostConcepts) != 0 {
		t.Errorf("LostConcepts = %v, want none", rep.LostConcepts)
	}
}

func TestAnalyzeSumRelationHolds(t *testing.T) {
	tab := newTestTable(t, 1)
	// 3 Knowledge, 2 Comprehension, 1 Application: monotone non-increasing.
	id := 0
	add := func(l Level, n int) {
		for i := 0; i < n; i++ {
			mustAdd(t, tab, fmt.Sprintf("q%d", id), "c1", l)
			id++
		}
	}
	add(Knowledge, 3)
	add(Comprehension, 2)
	add(Application, 1)

	rep := tab.Analyze()
	if !rep.SumRelationHolds {
		t.Errorf("sum relation should hold; violations: %v", rep.SumRelationViolations)
	}
}

func TestAnalyzeSumRelationViolated(t *testing.T) {
	tab := newTestTable(t, 1)
	mustAdd(t, tab, "q1", "c1", Evaluation)
	mustAdd(t, tab, "q2", "c1", Evaluation)
	mustAdd(t, tab, "q3", "c1", Knowledge)

	rep := tab.Analyze()
	if rep.SumRelationHolds {
		t.Fatal("sum relation should be violated (more Evaluation than Synthesis)")
	}
	if len(rep.SumRelationViolations) == 0 {
		t.Fatal("expected at least one violation recorded")
	}
	v := rep.SumRelationViolations[len(rep.SumRelationViolations)-1]
	if v.Higher != Evaluation {
		t.Errorf("last violation Higher = %v, want Evaluation", v.Higher)
	}
	if v.HigherSum != 2 {
		t.Errorf("violation HigherSum = %d, want 2", v.HigherSum)
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	tab := newTestTable(t, 2)
	rep := tab.Analyze()
	if len(rep.LostConcepts) != 2 {
		t.Errorf("all concepts should be lost in an empty table, got %v", rep.LostConcepts)
	}
	if !rep.SumRelationHolds {
		t.Error("vacuous sum relation should hold for all-zero sums")
	}
	for i, d := range rep.Distribution {
		if d != 0 {
			t.Errorf("Distribution[%d] = %v, want 0", i, d)
		}
	}
	for i, s := range rep.Shades {
		if s != 0 {
			t.Errorf("Shades[%d] = %d, want 0", i, s)
		}
	}
}

func TestPaintDistributionSumsToOne(t *testing.T) {
	tab := newTestTable(t, 2)
	for i := 0; i < 10; i++ {
		mustAdd(t, tab, fmt.Sprintf("q%d", i), "c1", Levels()[i%NumLevels])
	}
	rep := tab.Analyze()
	sum := 0.0
	for _, d := range rep.Distribution {
		sum += d
	}
	if diff := sum - 1.0; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("distribution sums to %v, want 1", sum)
	}
}

func TestPaintShadesDensestIsFour(t *testing.T) {
	tab := newTestTable(t, 1)
	id := 0
	for i := 0; i < 8; i++ {
		mustAdd(t, tab, fmt.Sprintf("q%d", id), "c1", Knowledge)
		id++
	}
	mustAdd(t, tab, fmt.Sprintf("q%d", id), "c1", Evaluation)

	rep := tab.Analyze()
	if rep.Shades[0] != 4 {
		t.Errorf("densest level shade = %d, want 4", rep.Shades[0])
	}
	if rep.Shades[int(Evaluation)-1] != 1 {
		t.Errorf("sparse level shade = %d, want 1", rep.Shades[int(Evaluation)-1])
	}
	if rep.Shades[int(Comprehension)-1] != 0 {
		t.Errorf("empty level shade = %d, want 0", rep.Shades[int(Comprehension)-1])
	}
}

// Property: shades are 0 iff the level count is 0, and the max shade is
// always 4 when any question exists.
func TestPaintShadeProperty(t *testing.T) {
	f := func(counts [NumLevels]uint8) bool {
		tab := NewTwoWayTable(NumberedConcepts(1))
		id := 0
		total := 0
		for li, n := range counts {
			for i := 0; i < int(n%7); i++ {
				if err := tab.Add(fmt.Sprintf("q%d", id), "c1", Levels()[li]); err != nil {
					return false
				}
				id++
				total++
			}
		}
		rep := tab.Analyze()
		maxShade := 0
		for li, s := range rep.Shades {
			if (s == 0) != (rep.LevelSums[li] == 0) {
				return false
			}
			if s > maxShade {
				maxShade = s
			}
		}
		if total > 0 && maxShade != 4 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaintGrid(t *testing.T) {
	tab := newTestTable(t, 2)
	id := 0
	addN := func(c string, l Level, n int) {
		for i := 0; i < n; i++ {
			mustAdd(t, tab, fmt.Sprintf("pg%d", id), c, l)
			id++
		}
	}
	addN("c1", Knowledge, 8) // densest cell
	addN("c1", Analysis, 4)  // half density -> shade 3
	addN("c2", Evaluation, 1)

	grid := tab.PaintGrid()
	if len(grid) != 2 {
		t.Fatalf("rows = %d", len(grid))
	}
	if grid[0][int(Knowledge)-1] != 4 {
		t.Errorf("densest shade = %d, want 4", grid[0][int(Knowledge)-1])
	}
	if grid[0][int(Analysis)-1] != 2 { // 4/8 = 0.5 -> shade 2
		t.Errorf("half-density shade = %d, want 2", grid[0][int(Analysis)-1])
	}
	if grid[1][int(Evaluation)-1] != 1 {
		t.Errorf("sparse shade = %d, want 1", grid[1][int(Evaluation)-1])
	}
	if grid[1][int(Knowledge)-1] != 0 {
		t.Errorf("empty cell shade = %d, want 0", grid[1][int(Knowledge)-1])
	}
}

func TestPaintGridEmpty(t *testing.T) {
	tab := newTestTable(t, 3)
	for _, row := range tab.PaintGrid() {
		for _, shade := range row {
			if shade != 0 {
				t.Fatal("empty table should paint all zeros")
			}
		}
	}
}

func TestConceptValidate(t *testing.T) {
	if err := (Concept{ID: "c1"}).Validate(); err != nil {
		t.Errorf("valid concept rejected: %v", err)
	}
	if err := (Concept{ID: "  "}).Validate(); err == nil {
		t.Error("blank concept ID should be rejected")
	}
}

func TestConceptString(t *testing.T) {
	if got := (Concept{ID: "c1"}).String(); got != "c1" {
		t.Errorf("String = %q", got)
	}
	if got := (Concept{ID: "c1", Name: "Loops"}).String(); got != "Loops (c1)" {
		t.Errorf("String = %q", got)
	}
}

func TestNumberedConcepts(t *testing.T) {
	cs := NumberedConcepts(3)
	if len(cs) != 3 {
		t.Fatalf("len = %d, want 3", len(cs))
	}
	if cs[2].ID != "c3" || cs[2].Name != "Concept 3" {
		t.Errorf("cs[2] = %+v", cs[2])
	}
}
