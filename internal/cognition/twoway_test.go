package cognition

import (
	"fmt"
	"testing"
	"testing/quick"
)

func newTestTable(t *testing.T, nConcepts int) *TwoWayTable {
	t.Helper()
	return NewTwoWayTable(NumberedConcepts(nConcepts))
}

func mustAdd(t *testing.T, tab *TwoWayTable, q, c string, l Level) {
	t.Helper()
	if err := tab.Add(q, c, l); err != nil {
		t.Fatalf("Add(%s,%s,%v): %v", q, c, l, err)
	}
}

func TestTwoWayTableCounts(t *testing.T) {
	tab := newTestTable(t, 3)
	mustAdd(t, tab, "q1", "c1", Knowledge)
	mustAdd(t, tab, "q2", "c1", Knowledge)
	mustAdd(t, tab, "q3", "c1", Evaluation)
	mustAdd(t, tab, "q4", "c2", Comprehension)

	if got := tab.Count("c1", Knowledge); got != 2 {
		t.Errorf("Count(c1,Knowledge) = %d, want 2", got)
	}
	if got := tab.Count("c1", Evaluation); got != 1 {
		t.Errorf("Count(c1,Evaluation) = %d, want 1", got)
	}
	if got := tab.Count("c2", Comprehension); got != 1 {
		t.Errorf("Count(c2,Comprehension) = %d, want 1", got)
	}
	if got := tab.Count("c3", Knowledge); got != 0 {
		t.Errorf("Count(c3,Knowledge) = %d, want 0", got)
	}
	if got := tab.Count("nope", Knowledge); got != 0 {
		t.Errorf("Count(nope,Knowledge) = %d, want 0", got)
	}
}

// TestTwoWayPaperExampleSUMF3 checks the paper's §4.2.2(4) example:
// SUM(F3)=3 means three Evaluation-level questions in concept 3.
func TestTwoWayPaperExampleSUMF3(t *testing.T) {
	tab := newTestTable(t, 5)
	for i := 1; i <= 3; i++ {
		mustAdd(t, tab, fmt.Sprintf("q%d", i), "c3", Evaluation)
	}
	if got := tab.Count("c3", Evaluation); got != 3 {
		t.Errorf("SUM(F3) = %d, want 3", got)
	}
}

// TestTwoWayPaperExampleConceptSum checks §4.2.2(5): SUM(A10-F10)=8 means 8
// questions total in concept 10.
func TestTwoWayPaperExampleConceptSum(t *testing.T) {
	tab := newTestTable(t, 10)
	levels := Levels()
	for i := 0; i < 8; i++ {
		mustAdd(t, tab, fmt.Sprintf("q%d", i), "c10", levels[i%NumLevels])
	}
	if got := tab.ConceptSum("c10"); got != 8 {
		t.Errorf("SUM(A10-F10) = %d, want 8", got)
	}
}

// TestTwoWayPaperExampleLevelSum checks §4.2.2(6): the column sum
// SUM(C1-C7) counts Application questions across concepts 1..7.
func TestTwoWayPaperExampleLevelSum(t *testing.T) {
	tab := newTestTable(t, 7)
	for i := 1; i <= 7; i++ {
		mustAdd(t, tab, fmt.Sprintf("q%d", i), fmt.Sprintf("c%d", i), Application)
	}
	if got := tab.LevelSum(Application); got != 7 {
		t.Errorf("SUM(C1-C7) = %d, want 7", got)
	}
}

func TestTwoWayPresence(t *testing.T) {
	tab := newTestTable(t, 2)
	mustAdd(t, tab, "q1", "c1", Knowledge)
	if !tab.Present("c1", Knowledge) {
		t.Error("A1 should be TRUE after adding a Knowledge question to concept 1")
	}
	if tab.Present("c1", Synthesis) {
		t.Error("E1 should be FALSE with no Synthesis question")
	}
	if tab.Present("c2", Knowledge) {
		t.Error("A2 should be FALSE with no question at all")
	}
}

func TestTwoWayDuplicateQuestionIgnored(t *testing.T) {
	tab := newTestTable(t, 1)
	mustAdd(t, tab, "q1", "c1", Knowledge)
	mustAdd(t, tab, "q1", "c1", Knowledge)
	if got := tab.Count("c1", Knowledge); got != 1 {
		t.Errorf("duplicate add counted: got %d, want 1", got)
	}
	if got := tab.Total(); got != 1 {
		t.Errorf("Total = %d, want 1", got)
	}
}

func TestTwoWayAddErrors(t *testing.T) {
	tab := newTestTable(t, 1)
	if err := tab.Add("q1", "missing", Knowledge); err == nil {
		t.Error("adding to unknown concept should fail")
	}
	if err := tab.Add("q1", "c1", Level(0)); err == nil {
		t.Error("adding invalid level should fail")
	}
	if err := tab.Add("q1", "c1", Level(7)); err == nil {
		t.Error("adding out-of-range level should fail")
	}
}

func TestTwoWayQuestionsSortedCopy(t *testing.T) {
	tab := newTestTable(t, 1)
	mustAdd(t, tab, "qb", "c1", Knowledge)
	mustAdd(t, tab, "qa", "c1", Knowledge)
	got := tab.Questions("c1", Knowledge)
	if len(got) != 2 || got[0] != "qa" || got[1] != "qb" {
		t.Fatalf("Questions = %v, want [qa qb]", got)
	}
	got[0] = "mutated"
	if again := tab.Questions("c1", Knowledge); again[0] != "qa" {
		t.Error("Questions must return a copy")
	}
}

func TestTwoWayDuplicateConceptCollapsed(t *testing.T) {
	tab := NewTwoWayTable([]Concept{{ID: "c1", Name: "first"}, {ID: "c1", Name: "second"}})
	if got := len(tab.Concepts()); got != 1 {
		t.Fatalf("concepts = %d, want 1", got)
	}
	if tab.Concepts()[0].Name != "first" {
		t.Error("first occurrence should win")
	}
}

func TestTwoWayRow(t *testing.T) {
	tab := newTestTable(t, 2)
	mustAdd(t, tab, "q1", "c2", Analysis)
	row, ok := tab.Row("c2")
	if !ok {
		t.Fatal("Row(c2) not found")
	}
	want := [NumLevels]int{0, 0, 0, 1, 0, 0}
	if row != want {
		t.Errorf("Row(c2) = %v, want %v", row, want)
	}
	if _, ok := tab.Row("absent"); ok {
		t.Error("Row(absent) should report !ok")
	}
}

func TestTwoWayLevelSumsMatchTotal(t *testing.T) {
	tab := newTestTable(t, 4)
	n := 0
	for i := 0; i < 24; i++ {
		mustAdd(t, tab, fmt.Sprintf("q%d", i), fmt.Sprintf("c%d", i%4+1), Levels()[i%NumLevels])
		n++
	}
	sums := tab.LevelSums()
	total := 0
	for _, s := range sums {
		total += s
	}
	if total != n || tab.Total() != n {
		t.Errorf("sum of LevelSums = %d, Total = %d, want %d", total, tab.Total(), n)
	}
}

// Property: row sums always equal column sums equal Total, for arbitrary
// placements.
func TestTwoWaySumInvariantProperty(t *testing.T) {
	f := func(placements []uint16) bool {
		tab := NewTwoWayTable(NumberedConcepts(5))
		for i, p := range placements {
			c := fmt.Sprintf("c%d", int(p)%5+1)
			l := Levels()[int(p/5)%NumLevels]
			if err := tab.Add(fmt.Sprintf("q%d", i), c, l); err != nil {
				return false
			}
		}
		rowTotal := 0
		for _, c := range tab.Concepts() {
			rowTotal += tab.ConceptSum(c.ID)
		}
		colTotal := 0
		for _, l := range Levels() {
			colTotal += tab.LevelSum(l)
		}
		return rowTotal == colTotal && colTotal == tab.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
