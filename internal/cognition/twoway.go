package cognition

import (
	"fmt"
	"sort"
)

// TwoWayTable is the paper's two-way specification table (Table 4): a matrix
// of question counts indexed by concept (row) and cognition level (column).
//
// The paper records both a boolean presence (A1 is TRUE when at least one
// Knowledge question covers Concept 1) and counts (SUM(Xi)). The table keeps
// counts; presence is derived (count > 0).
//
// A TwoWayTable is not safe for concurrent mutation; build it, then share it
// read-only.
type TwoWayTable struct {
	concepts []Concept
	index    map[string]int       // concept ID -> row
	counts   [][NumLevels]int     // row -> per-level question count
	seen     map[string]struct{}  // question IDs already added (dedup)
	byCell   map[cellKey][]string // row,level -> question IDs
}

type cellKey struct {
	row   int
	level Level
}

// NewTwoWayTable creates a table over the given concepts. Concept order is
// preserved for rendering. Duplicate concept IDs are collapsed to the first
// occurrence.
func NewTwoWayTable(concepts []Concept) *TwoWayTable {
	t := &TwoWayTable{
		index:  make(map[string]int, len(concepts)),
		seen:   make(map[string]struct{}),
		byCell: make(map[cellKey][]string),
	}
	for _, c := range concepts {
		if _, dup := t.index[c.ID]; dup {
			continue
		}
		t.index[c.ID] = len(t.concepts)
		t.concepts = append(t.concepts, c)
		t.counts = append(t.counts, [NumLevels]int{})
	}
	return t
}

// Concepts returns the table's concepts in row order. The returned slice is a
// copy.
func (t *TwoWayTable) Concepts() []Concept {
	out := make([]Concept, len(t.concepts))
	copy(out, t.concepts)
	return out
}

// Add records one question with the given ID covering conceptID at level.
// Adding the same question ID twice is a no-op, so callers may feed a whole
// item bank without deduplicating first. Unknown concepts and invalid levels
// are rejected.
func (t *TwoWayTable) Add(questionID, conceptID string, level Level) error {
	row, ok := t.index[conceptID]
	if !ok {
		return fmt.Errorf("cognition: concept %q not in table", conceptID)
	}
	if !level.Valid() {
		return fmt.Errorf("cognition: invalid level %d for question %q", int(level), questionID)
	}
	if _, dup := t.seen[questionID]; dup {
		return nil
	}
	t.seen[questionID] = struct{}{}
	t.counts[row][int(level)-1]++
	key := cellKey{row: row, level: level}
	t.byCell[key] = append(t.byCell[key], questionID)
	return nil
}

// Count returns SUM(Xi): the number of questions of the given level covering
// the concept. Unknown concepts count zero.
func (t *TwoWayTable) Count(conceptID string, level Level) int {
	row, ok := t.index[conceptID]
	if !ok || !level.Valid() {
		return 0
	}
	return t.counts[row][int(level)-1]
}

// Present reports the paper's boolean cell value: whether at least one
// question of the given level covers the concept.
func (t *TwoWayTable) Present(conceptID string, level Level) bool {
	return t.Count(conceptID, level) > 0
}

// Questions returns the IDs of questions recorded for the cell, sorted, as a
// copy.
func (t *TwoWayTable) Questions(conceptID string, level Level) []string {
	row, ok := t.index[conceptID]
	if !ok || !level.Valid() {
		return nil
	}
	ids := t.byCell[cellKey{row: row, level: level}]
	out := make([]string, len(ids))
	copy(out, ids)
	sort.Strings(out)
	return out
}

// LevelSum returns SUM(X1-Xi): the total number of questions at the given
// level across all concepts (a column sum in Table 4).
func (t *TwoWayTable) LevelSum(level Level) int {
	if !level.Valid() {
		return 0
	}
	sum := 0
	for _, row := range t.counts {
		sum += row[int(level)-1]
	}
	return sum
}

// ConceptSum returns SUM(Ai-Fi): the total number of questions covering the
// concept across all levels (a row sum in Table 4).
func (t *TwoWayTable) ConceptSum(conceptID string) int {
	row, ok := t.index[conceptID]
	if !ok {
		return 0
	}
	sum := 0
	for _, n := range t.counts[row] {
		sum += n
	}
	return sum
}

// Total returns the total number of distinct questions recorded.
func (t *TwoWayTable) Total() int {
	return len(t.seen)
}

// LevelSums returns all six column sums in taxonomy order.
func (t *TwoWayTable) LevelSums() [NumLevels]int {
	var sums [NumLevels]int
	for _, row := range t.counts {
		for i, n := range row {
			sums[i] += n
		}
	}
	return sums
}

// Row returns the per-level counts for a concept in taxonomy order.
func (t *TwoWayTable) Row(conceptID string) ([NumLevels]int, bool) {
	row, ok := t.index[conceptID]
	if !ok {
		return [NumLevels]int{}, false
	}
	return t.counts[row], true
}
