// Package cognition models Bloom's taxonomy of educational objectives in the
// cognitive domain and the two-way specification table the paper uses to
// relate test concepts to cognition levels (Table 4, §4.2).
//
// The paper labels the six levels A through F:
//
//	Knowledge Comprehension Application Analysis Synthesis Evaluation
//	A         B             C           D        E         F
//
// and defines, per concept i and level X, SUM(Xi) as the number of questions
// of level X covering concept i. On top of the table it defines three
// analyses (§4.2.3): concept-lost detection, the cognition-level sum
// relation, and the paint (distribution) algorithm.
package cognition

import (
	"fmt"
	"strings"
)

// Level is one of Bloom's six cognitive-domain levels.
type Level int

// The six cognition levels in the paper's order. The zero value is invalid so
// that an unset Level is detectable.
const (
	Knowledge Level = iota + 1
	Comprehension
	Application
	Analysis
	Synthesis
	Evaluation
)

// NumLevels is the number of cognition levels.
const NumLevels = 6

// Levels returns all six levels in taxonomy order (Knowledge first).
func Levels() [NumLevels]Level {
	return [NumLevels]Level{
		Knowledge, Comprehension, Application, Analysis, Synthesis, Evaluation,
	}
}

var _levelNames = map[Level]string{
	Knowledge:     "Knowledge",
	Comprehension: "Comprehension",
	Application:   "Application",
	Analysis:      "Analysis",
	Synthesis:     "Synthesis",
	Evaluation:    "Evaluation",
}

// String returns the level's full English name, e.g. "Comprehension".
func (l Level) String() string {
	if name, ok := _levelNames[l]; ok {
		return name
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Letter returns the paper's single-letter code for the level: A for
// Knowledge through F for Evaluation. Invalid levels return '?'.
func (l Level) Letter() byte {
	if !l.Valid() {
		return '?'
	}
	return byte('A' + int(l) - 1)
}

// Valid reports whether l is one of the six defined levels.
func (l Level) Valid() bool {
	return l >= Knowledge && l <= Evaluation
}

// ParseLevel parses a level from its full name (case-insensitive) or its
// single-letter code A-F.
func ParseLevel(s string) (Level, error) {
	if len(s) == 1 {
		c := strings.ToUpper(s)[0]
		if c >= 'A' && c <= 'F' {
			return Level(int(c-'A') + 1), nil
		}
		return 0, fmt.Errorf("cognition: unknown level letter %q", s)
	}
	for lvl, name := range _levelNames {
		if strings.EqualFold(name, s) {
			return lvl, nil
		}
	}
	return 0, fmt.Errorf("cognition: unknown level %q", s)
}

// MarshalText implements encoding.TextMarshaler using the full name.
func (l Level) MarshalText() ([]byte, error) {
	if !l.Valid() {
		return nil, fmt.Errorf("cognition: cannot marshal invalid level %d", int(l))
	}
	return []byte(l.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (l *Level) UnmarshalText(text []byte) error {
	lvl, err := ParseLevel(string(text))
	if err != nil {
		return err
	}
	*l = lvl
	return nil
}
