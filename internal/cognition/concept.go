package cognition

import (
	"errors"
	"fmt"
	"strings"
)

// Concept identifies one learning-content subject ("concept" in the paper's
// §4.2.2, named Concept 1 .. Concept i). Concepts are referenced by a stable
// string ID and carry a human-readable name.
type Concept struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

// ErrEmptyConceptID is returned when a concept with an empty ID is used.
var ErrEmptyConceptID = errors.New("cognition: concept ID must not be empty")

// Validate checks the concept for structural problems.
func (c Concept) Validate() error {
	if strings.TrimSpace(c.ID) == "" {
		return ErrEmptyConceptID
	}
	return nil
}

// String returns "Name (ID)" or just the ID when no name is set.
func (c Concept) String() string {
	if c.Name == "" {
		return c.ID
	}
	return fmt.Sprintf("%s (%s)", c.Name, c.ID)
}

// NumberedConcepts builds n concepts named "Concept 1".."Concept n" with IDs
// "c1".."cn", matching the paper's naming scheme. It is a convenience for
// examples, tests and benchmarks.
func NumberedConcepts(n int) []Concept {
	out := make([]Concept, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, Concept{
			ID:   fmt.Sprintf("c%d", i),
			Name: fmt.Sprintf("Concept %d", i),
		})
	}
	return out
}
