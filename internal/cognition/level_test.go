package cognition

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestLevelString(t *testing.T) {
	tests := []struct {
		level Level
		want  string
	}{
		{Knowledge, "Knowledge"},
		{Comprehension, "Comprehension"},
		{Application, "Application"},
		{Analysis, "Analysis"},
		{Synthesis, "Synthesis"},
		{Evaluation, "Evaluation"},
		{Level(0), "Level(0)"},
		{Level(7), "Level(7)"},
	}
	for _, tt := range tests {
		if got := tt.level.String(); got != tt.want {
			t.Errorf("Level(%d).String() = %q, want %q", int(tt.level), got, tt.want)
		}
	}
}

func TestLevelLetter(t *testing.T) {
	// Paper §4.2.2: Knowledge..Evaluation named A..F.
	tests := []struct {
		level Level
		want  byte
	}{
		{Knowledge, 'A'},
		{Comprehension, 'B'},
		{Application, 'C'},
		{Analysis, 'D'},
		{Synthesis, 'E'},
		{Evaluation, 'F'},
		{Level(0), '?'},
		{Level(9), '?'},
	}
	for _, tt := range tests {
		if got := tt.level.Letter(); got != tt.want {
			t.Errorf("Level(%d).Letter() = %c, want %c", int(tt.level), got, tt.want)
		}
	}
}

func TestLevelValid(t *testing.T) {
	for _, l := range Levels() {
		if !l.Valid() {
			t.Errorf("level %v should be valid", l)
		}
	}
	for _, l := range []Level{0, -1, 7, 100} {
		if l.Valid() {
			t.Errorf("level %d should be invalid", int(l))
		}
	}
}

func TestParseLevelNames(t *testing.T) {
	for _, l := range Levels() {
		got, err := ParseLevel(l.String())
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", l.String(), err)
		}
		if got != l {
			t.Errorf("ParseLevel(%q) = %v, want %v", l.String(), got, l)
		}
	}
}

func TestParseLevelCaseInsensitive(t *testing.T) {
	got, err := ParseLevel("knowledge")
	if err != nil || got != Knowledge {
		t.Errorf("ParseLevel(knowledge) = %v, %v; want Knowledge", got, err)
	}
	got, err = ParseLevel("EVALUATION")
	if err != nil || got != Evaluation {
		t.Errorf("ParseLevel(EVALUATION) = %v, %v; want Evaluation", got, err)
	}
}

func TestParseLevelLetters(t *testing.T) {
	for _, l := range Levels() {
		got, err := ParseLevel(string(l.Letter()))
		if err != nil {
			t.Fatalf("ParseLevel(%c): %v", l.Letter(), err)
		}
		if got != l {
			t.Errorf("ParseLevel(%c) = %v, want %v", l.Letter(), got, l)
		}
	}
	// lowercase letter also accepted
	got, err := ParseLevel("b")
	if err != nil || got != Comprehension {
		t.Errorf("ParseLevel(b) = %v, %v; want Comprehension", got, err)
	}
}

func TestParseLevelErrors(t *testing.T) {
	for _, s := range []string{"", "G", "Z", "bogus", "Knowledg"} {
		if _, err := ParseLevel(s); err == nil {
			t.Errorf("ParseLevel(%q) should fail", s)
		}
	}
}

func TestLevelJSONRoundTrip(t *testing.T) {
	type wrapper struct {
		L Level `json:"l"`
	}
	for _, l := range Levels() {
		raw, err := json.Marshal(wrapper{L: l})
		if err != nil {
			t.Fatalf("marshal %v: %v", l, err)
		}
		var back wrapper
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if back.L != l {
			t.Errorf("round trip %v -> %v", l, back.L)
		}
	}
}

func TestLevelMarshalInvalid(t *testing.T) {
	if _, err := Level(0).MarshalText(); err == nil {
		t.Error("marshaling invalid level should fail")
	}
}

func TestParseLetterRoundTripProperty(t *testing.T) {
	f := func(n uint8) bool {
		l := Level(int(n%NumLevels) + 1)
		got, err := ParseLevel(string(l.Letter()))
		return err == nil && got == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
