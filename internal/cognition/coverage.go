package cognition

import "sort"

// CoverageReport is the result of the paper's §4.2.3 analyses over a two-way
// specification table: which concepts the exam lost entirely, whether the
// cognition-level sum relation holds, and the paint distribution of questions
// across the level axis.
type CoverageReport struct {
	// LostConcepts lists concept IDs with no question at any level
	// ((A1|B1|...|F1) = FALSE in the paper), sorted.
	LostConcepts []string
	// SumRelationHolds reports whether
	// SUM(A) >= SUM(B) >= SUM(C) >= SUM(D) >= SUM(E) >= SUM(F),
	// the paper's expected shape for a well-balanced exam (lower cognition
	// levels should not be underrepresented relative to higher ones).
	SumRelationHolds bool
	// SumRelationViolations lists each adjacent level pair that violates the
	// relation, in taxonomy order.
	SumRelationViolations []SumViolation
	// LevelSums holds the six column sums in taxonomy order.
	LevelSums [NumLevels]int
	// Distribution is the paint-algorithm output: each level's share of all
	// questions in [0,1]. All zeros when the table is empty.
	Distribution [NumLevels]float64
	// Shades maps Distribution onto discrete paint intensities 0..4 used by
	// renderers (0 = empty cell, 4 = densest).
	Shades [NumLevels]int
}

// SumViolation records one adjacent-level violation of the sum relation:
// SUM(Lower) < SUM(Higher) where Lower precedes Higher in the taxonomy.
type SumViolation struct {
	Lower, Higher Level
	LowerSum      int
	HigherSum     int
}

// Analyze runs all §4.2.3 analyses over the table.
func (t *TwoWayTable) Analyze() CoverageReport {
	var rep CoverageReport
	for _, c := range t.concepts {
		if t.ConceptSum(c.ID) == 0 {
			rep.LostConcepts = append(rep.LostConcepts, c.ID)
		}
	}
	sort.Strings(rep.LostConcepts)

	rep.LevelSums = t.LevelSums()
	rep.SumRelationHolds = true
	levels := Levels()
	for i := 0; i < NumLevels-1; i++ {
		if rep.LevelSums[i] < rep.LevelSums[i+1] {
			rep.SumRelationHolds = false
			rep.SumRelationViolations = append(rep.SumRelationViolations, SumViolation{
				Lower:     levels[i],
				Higher:    levels[i+1],
				LowerSum:  rep.LevelSums[i],
				HigherSum: rep.LevelSums[i+1],
			})
		}
	}

	rep.Distribution = paintDistribution(rep.LevelSums)
	rep.Shades = paintShades(rep.Distribution)
	return rep
}

// paintDistribution normalizes level sums into shares. This is the numeric
// half of the paper's "paint algorithm": the density of questions along the
// cognition-level axis that the UI shades.
func paintDistribution(sums [NumLevels]int) [NumLevels]float64 {
	total := 0
	for _, n := range sums {
		total += n
	}
	var dist [NumLevels]float64
	if total == 0 {
		return dist
	}
	for i, n := range sums {
		dist[i] = float64(n) / float64(total)
	}
	return dist
}

// PaintGrid returns the full two-dimensional paint of the table — the
// §4.2.3(3) "distribution of cognition level and question": one shade 0..4
// per (concept, level) cell, scaled so the densest cell paints at full
// intensity. Rows follow the table's concept order, columns the taxonomy.
func (t *TwoWayTable) PaintGrid() [][NumLevels]int {
	grid := make([][NumLevels]int, len(t.concepts))
	maxCount := 0
	for _, row := range t.counts {
		for _, n := range row {
			if n > maxCount {
				maxCount = n
			}
		}
	}
	if maxCount == 0 {
		return grid
	}
	for ri, row := range t.counts {
		for ci, n := range row {
			if n == 0 {
				continue
			}
			rel := float64(n) / float64(maxCount)
			switch {
			case rel > 0.75:
				grid[ri][ci] = 4
			case rel > 0.50:
				grid[ri][ci] = 3
			case rel > 0.25:
				grid[ri][ci] = 2
			default:
				grid[ri][ci] = 1
			}
		}
	}
	return grid
}

// paintShades quantizes shares into five paint intensities. A zero share is
// intensity 0; positive shares are bucketed relative to the densest level so
// the densest level always paints at full intensity.
func paintShades(dist [NumLevels]float64) [NumLevels]int {
	maxShare := 0.0
	for _, d := range dist {
		if d > maxShare {
			maxShare = d
		}
	}
	var shades [NumLevels]int
	if maxShare == 0 {
		return shades
	}
	for i, d := range dist {
		if d == 0 {
			continue
		}
		rel := d / maxShare
		switch {
		case rel > 0.75:
			shades[i] = 4
		case rel > 0.50:
			shades[i] = 3
		case rel > 0.25:
			shades[i] = 2
		default:
			shades[i] = 1
		}
	}
	return shades
}
