package scorm

import "testing"

func newRunningAPI(t *testing.T) *API {
	t.Helper()
	api := NewAPI(NewDataModel("s1", "Student One"), nil)
	if got := api.LMSInitialize(""); got != "true" {
		t.Fatalf("LMSInitialize = %q", got)
	}
	return api
}

func TestAPILifecycle(t *testing.T) {
	var commits int
	api := NewAPI(NewDataModel("s1", "n"), func(map[string]string) { commits++ })
	if api.Running() {
		t.Error("fresh API should not be running")
	}
	if got := api.LMSInitialize(""); got != "true" {
		t.Fatalf("init = %q", got)
	}
	if !api.Running() {
		t.Error("initialized API should be running")
	}
	if got := api.LMSInitialize(""); got != "false" {
		t.Error("double init should fail")
	}
	if api.LMSGetLastError() != "101" {
		t.Errorf("last error = %s, want 101", api.LMSGetLastError())
	}
	if got := api.LMSCommit(""); got != "true" {
		t.Errorf("commit = %q", got)
	}
	if got := api.LMSFinish(""); got != "true" {
		t.Errorf("finish = %q", got)
	}
	if commits != 2 { // one commit + one at finish
		t.Errorf("commits = %d, want 2", commits)
	}
	if api.Running() {
		t.Error("finished API should not be running")
	}
	if got := api.LMSFinish(""); got != "false" {
		t.Error("double finish should fail")
	}
}

func TestAPIArgumentValidation(t *testing.T) {
	api := NewAPI(NewDataModel("s1", "n"), nil)
	if got := api.LMSInitialize("x"); got != "false" {
		t.Error("non-empty init arg should fail")
	}
	if api.LMSGetLastError() != "201" {
		t.Errorf("last error = %s, want 201", api.LMSGetLastError())
	}
	api = newRunningAPI(t)
	if got := api.LMSCommit("x"); got != "false" {
		t.Error("non-empty commit arg should fail")
	}
	if got := api.LMSFinish("x"); got != "false" {
		t.Error("non-empty finish arg should fail")
	}
}

func TestAPIBeforeInitialize(t *testing.T) {
	api := NewAPI(NewDataModel("s1", "n"), nil)
	if got := api.LMSGetValue("cmi.core.student_id"); got != "" {
		t.Errorf("get before init = %q", got)
	}
	if api.LMSGetLastError() != "301" {
		t.Errorf("last error = %s, want 301", api.LMSGetLastError())
	}
	if got := api.LMSSetValue("cmi.core.score.raw", "50"); got != "false" {
		t.Error("set before init should fail")
	}
	if got := api.LMSCommit(""); got != "false" {
		t.Error("commit before init should fail")
	}
	if got := api.LMSFinish(""); got != "false" {
		t.Error("finish before init should fail")
	}
}

func TestAPIGetSetFlow(t *testing.T) {
	api := newRunningAPI(t)
	// The paper's API functions: set learner record/progress/status.
	if got := api.LMSSetValue("cmi.core.lesson_status", "completed"); got != "true" {
		t.Fatalf("set status = %q (err %s)", got, api.LMSGetLastError())
	}
	if got := api.LMSGetValue("cmi.core.lesson_status"); got != "completed" {
		t.Errorf("get status = %q", got)
	}
	if got := api.LMSSetValue("cmi.core.score.raw", "88"); got != "true" {
		t.Errorf("set score = %q", got)
	}
	if got := api.LMSGetValue("cmi.core.student_name"); got != "Student One" {
		t.Errorf("student name = %q", got)
	}
	if api.LMSGetLastError() != "0" {
		t.Errorf("last error = %s, want 0", api.LMSGetLastError())
	}
}

func TestAPIErrorHandling(t *testing.T) {
	api := newRunningAPI(t)
	if got := api.LMSSetValue("cmi.core.student_id", "x"); got != "false" {
		t.Error("read-only set should fail")
	}
	if api.LMSGetLastError() != "403" {
		t.Errorf("last error = %s, want 403", api.LMSGetLastError())
	}
	if got := api.LMSGetErrorString("403"); got != "Element is read only" {
		t.Errorf("error string = %q", got)
	}
	if got := api.LMSGetErrorString("nonsense"); got != "General exception" {
		t.Errorf("bad code string = %q", got)
	}
	if got := api.LMSGetDiagnostic(""); got != "Element is read only" {
		t.Errorf("diagnostic of last error = %q", got)
	}
	if got := api.LMSGetDiagnostic("201"); got != "Invalid argument error" {
		t.Errorf("diagnostic = %q", got)
	}
}

func TestAPIFinishAccumulatesTime(t *testing.T) {
	var last map[string]string
	api := NewAPI(NewDataModel("s1", "n"), func(snap map[string]string) { last = snap })
	if api.LMSInitialize("") != "true" {
		t.Fatal("init failed")
	}
	if api.LMSSetValue("cmi.core.session_time", "0000:45:00") != "true" {
		t.Fatal("set session_time failed")
	}
	if api.LMSFinish("") != "true" {
		t.Fatal("finish failed")
	}
	if last == nil {
		t.Fatal("no commit snapshot")
	}
	if got := last["cmi.core.total_time"]; got != "0000:45:00" {
		t.Errorf("committed total_time = %q, want 0000:45:00", got)
	}
}

func TestItoaAtoi(t *testing.T) {
	for _, n := range []int{0, 5, 101, 403, 9999} {
		s := itoa(n)
		back, ok := atoi(s)
		if !ok || back != n {
			t.Errorf("itoa/atoi round trip %d -> %s -> %d (%v)", n, s, back, ok)
		}
	}
	if _, ok := atoi(""); ok {
		t.Error("empty atoi should fail")
	}
	if _, ok := atoi("1a"); ok {
		t.Error("non-digit atoi should fail")
	}
}
