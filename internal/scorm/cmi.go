package scorm

import (
	"fmt"
	"strconv"
	"strings"
)

// RTE error codes from the SCORM 1.2 API signature ("Some API functions are
// used to set value ... get value, error handler", §5.5).
const (
	ErrCodeNoError           = 0
	ErrCodeGeneral           = 101
	ErrCodeInvalidArgument   = 201
	ErrCodeNotInitialized    = 301
	ErrCodeNotImplemented    = 401
	ErrCodeInvalidSetValue   = 402
	ErrCodeElementReadOnly   = 403
	ErrCodeElementWriteOnly  = 404
	ErrCodeIncorrectDataType = 405
)

// errText maps error codes to LMSGetErrorString output.
var _errText = map[int]string{
	ErrCodeNoError:           "No error",
	ErrCodeGeneral:           "General exception",
	ErrCodeInvalidArgument:   "Invalid argument error",
	ErrCodeNotInitialized:    "Not initialized",
	ErrCodeNotImplemented:    "Not implemented error",
	ErrCodeInvalidSetValue:   "Invalid set value, element is a keyword",
	ErrCodeElementReadOnly:   "Element is read only",
	ErrCodeElementWriteOnly:  "Element is write only",
	ErrCodeIncorrectDataType: "Incorrect data type",
}

// ErrorText returns the standard string for a code; unknown codes report a
// general exception.
func ErrorText(code int) string {
	if s, ok := _errText[code]; ok {
		return s
	}
	return _errText[ErrCodeGeneral]
}

// cmiAccess describes one data-model element's permissions.
type cmiAccess int

const (
	accessReadWrite cmiAccess = iota + 1
	accessReadOnly
	accessWriteOnly
)

// cmiElement is one supported element of the SCORM 1.2 CMI data model.
type cmiElement struct {
	access   cmiAccess
	validate func(string) bool
}

// Vocabularies for validated elements.
var (
	_lessonStatusVocab = map[string]bool{
		"passed": true, "completed": true, "failed": true,
		"incomplete": true, "browsed": true, "not attempted": true,
	}
	_exitVocab = map[string]bool{
		"time-out": true, "suspend": true, "logout": true, "": true,
	}
)

func isScore(s string) bool {
	if s == "" {
		return true
	}
	f, err := strconv.ParseFloat(s, 64)
	return err == nil && f >= 0 && f <= 100
}

func isCMITime(s string) bool {
	// HHHH:MM:SS[.ss] with minutes/seconds < 60.
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return false
	}
	h, errH := strconv.Atoi(parts[0])
	m, errM := strconv.Atoi(parts[1])
	secParts := strings.SplitN(parts[2], ".", 2)
	sec, errS := strconv.Atoi(secParts[0])
	if errH != nil || errM != nil || errS != nil {
		return false
	}
	if len(secParts) == 2 {
		if _, err := strconv.Atoi(secParts[1]); err != nil {
			return false
		}
	}
	return h >= 0 && m >= 0 && m < 60 && sec >= 0 && sec < 60
}

// _cmiModel lists the supported elements. The paper's API functions set
// learner record, learner progress and learner status; those map onto the
// cmi.core.* elements below.
var _cmiModel = map[string]cmiElement{
	"cmi.core.student_id":            {access: accessReadOnly},
	"cmi.core.student_name":          {access: accessReadOnly},
	"cmi.core.lesson_location":       {access: accessReadWrite},
	"cmi.core.credit":                {access: accessReadOnly},
	"cmi.core.lesson_status":         {access: accessReadWrite, validate: func(s string) bool { return _lessonStatusVocab[s] }},
	"cmi.core.entry":                 {access: accessReadOnly},
	"cmi.core.score.raw":             {access: accessReadWrite, validate: isScore},
	"cmi.core.score.min":             {access: accessReadWrite, validate: isScore},
	"cmi.core.score.max":             {access: accessReadWrite, validate: isScore},
	"cmi.core.total_time":            {access: accessReadOnly},
	"cmi.core.exit":                  {access: accessWriteOnly, validate: func(s string) bool { return _exitVocab[s] }},
	"cmi.core.session_time":          {access: accessWriteOnly, validate: isCMITime},
	"cmi.suspend_data":               {access: accessReadWrite},
	"cmi.launch_data":                {access: accessReadOnly},
	"cmi.comments":                   {access: accessReadWrite},
	"cmi.comments_from_lms":          {access: accessReadOnly},
	"cmi.student_data.mastery_score": {access: accessReadOnly},
}

// childrenElements supports the _children discovery convention.
var _childrenElements = map[string]string{
	"cmi.core._children": "student_id,student_name,lesson_location,credit," +
		"lesson_status,entry,score,total_time,exit,session_time",
	"cmi.core.score._children": "raw,min,max",
}

// DataModel is one learner attempt's CMI storage.
type DataModel struct {
	values map[string]string
}

// NewDataModel seeds an attempt with its read-only identity elements.
func NewDataModel(studentID, studentName string) *DataModel {
	return &DataModel{values: map[string]string{
		"cmi.core.student_id":    studentID,
		"cmi.core.student_name":  studentName,
		"cmi.core.lesson_status": "not attempted",
		"cmi.core.credit":        "credit",
		"cmi.core.entry":         "ab-initio",
		"cmi.core.total_time":    "0000:00:00",
	}}
}

// Get reads an element, returning the SCORM error code.
func (d *DataModel) Get(element string) (string, int) {
	if v, ok := _childrenElements[element]; ok {
		return v, ErrCodeNoError
	}
	spec, ok := _cmiModel[element]
	if !ok {
		return "", ErrCodeNotImplemented
	}
	if spec.access == accessWriteOnly {
		return "", ErrCodeElementWriteOnly
	}
	return d.values[element], ErrCodeNoError
}

// Set writes an element, returning the SCORM error code.
func (d *DataModel) Set(element, value string) int {
	if _, ok := _childrenElements[element]; ok {
		return ErrCodeInvalidSetValue
	}
	spec, ok := _cmiModel[element]
	if !ok {
		return ErrCodeNotImplemented
	}
	if spec.access == accessReadOnly {
		return ErrCodeElementReadOnly
	}
	if spec.validate != nil && !spec.validate(value) {
		return ErrCodeIncorrectDataType
	}
	d.values[element] = value
	return ErrCodeNoError
}

// Snapshot returns a copy of all stored values for persistence.
func (d *DataModel) Snapshot() map[string]string {
	out := make(map[string]string, len(d.values))
	for k, v := range d.values {
		out[k] = v
	}
	return out
}

// AccumulateSessionTime adds a committed session_time into total_time,
// mirroring LMS behaviour at LMSFinish.
func (d *DataModel) AccumulateSessionTime() error {
	session := d.values["cmi.core.session_time"]
	if session == "" {
		return nil
	}
	total, err := parseCMITimeSeconds(d.values["cmi.core.total_time"])
	if err != nil {
		return fmt.Errorf("scorm: total_time corrupt: %w", err)
	}
	add, err := parseCMITimeSeconds(session)
	if err != nil {
		return fmt.Errorf("scorm: session_time corrupt: %w", err)
	}
	d.values["cmi.core.total_time"] = formatCMITime(total + add)
	delete(d.values, "cmi.core.session_time")
	return nil
}

func parseCMITimeSeconds(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	if !isCMITime(s) {
		return 0, fmt.Errorf("bad cmi time %q", s)
	}
	parts := strings.Split(s, ":")
	h, _ := strconv.Atoi(parts[0])
	m, _ := strconv.Atoi(parts[1])
	secStr := strings.SplitN(parts[2], ".", 2)[0]
	sec, _ := strconv.Atoi(secStr)
	return h*3600 + m*60 + sec, nil
}

func formatCMITime(seconds int) string {
	h := seconds / 3600
	m := (seconds % 3600) / 60
	s := seconds % 60
	return fmt.Sprintf("%04d:%02d:%02d", h, m, s)
}
