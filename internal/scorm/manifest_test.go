package scorm

import (
	"errors"
	"strings"
	"testing"
)

func validManifest() *Manifest {
	return &Manifest{
		Identifier: "MANIFEST-1",
		Version:    "1.2",
		Metadata:   &Metadata{Schema: "ADL SCORM", SchemaVersion: "1.2"},
		Organizations: Organizations{
			Default: "ORG-1",
			Organizations: []Organization{{
				Identifier: "ORG-1",
				Title:      "Course",
				Items: []Item{
					{Identifier: "ITEM-1", IdentifierRef: "RES-1", Title: "Lesson 1"},
					{Identifier: "ITEM-2", Title: "Chapter", Items: []Item{
						{Identifier: "ITEM-2-1", IdentifierRef: "RES-2", Title: "Lesson 2"},
					}},
				},
			}},
		},
		Resources: Resources{Resources: []Resource{
			{Identifier: "RES-1", Type: "webcontent", ScormType: ScormTypeSCO,
				Href: "a.html", Files: []File{{Href: "a.html"}}},
			{Identifier: "RES-2", Type: "webcontent", ScormType: ScormTypeAsset,
				Href: "b.html", Files: []File{{Href: "b.html"}}},
		}},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := validManifest()
	raw, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.HasPrefix(string(raw), "<?xml") {
		t.Error("missing XML header")
	}
	back, err := ParseManifest(raw)
	if err != nil {
		t.Fatalf("ParseManifest: %v", err)
	}
	if back.Identifier != "MANIFEST-1" {
		t.Errorf("Identifier = %q", back.Identifier)
	}
	if len(back.Organizations.Organizations) != 1 {
		t.Fatalf("organizations = %d", len(back.Organizations.Organizations))
	}
	org := back.Organizations.Organizations[0]
	if len(org.Items) != 2 || org.Items[1].Items[0].IdentifierRef != "RES-2" {
		t.Errorf("nested items lost: %+v", org.Items)
	}
	if len(back.Resources.Resources) != 2 {
		t.Errorf("resources = %d", len(back.Resources.Resources))
	}
}

func TestManifestValidateErrors(t *testing.T) {
	m := validManifest()
	m.Identifier = " "
	if err := m.Validate(); !errors.Is(err, ErrNoIdentifier) {
		t.Errorf("err = %v, want ErrNoIdentifier", err)
	}

	m = validManifest()
	m.Organizations.Organizations = nil
	if err := m.Validate(); !errors.Is(err, ErrNoOrganization) {
		t.Errorf("err = %v, want ErrNoOrganization", err)
	}

	m = validManifest()
	m.Organizations.Organizations[0].Items[0].IdentifierRef = "GHOST"
	if err := m.Validate(); !errors.Is(err, ErrDanglingItemRef) {
		t.Errorf("err = %v, want ErrDanglingItemRef", err)
	}

	m = validManifest()
	m.Resources.Resources[1].Identifier = "RES-1"
	if err := m.Validate(); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("err = %v, want ErrDuplicateID", err)
	}

	m = validManifest()
	m.Organizations.Organizations[0].Items[1].Identifier = "ITEM-1"
	if err := m.Validate(); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate item ID err = %v, want ErrDuplicateID", err)
	}
}

func TestParseManifestBadXML(t *testing.T) {
	if _, err := ParseManifest([]byte("<manifest")); err == nil {
		t.Error("bad XML should fail")
	}
	if _, err := ParseManifest([]byte("<manifest/>")); err == nil {
		t.Error("empty manifest should fail validation")
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	d := &Descriptor{Href: "content/p1.html", Title: "Q1", MimeType: "text/html"}
	raw, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDescriptor(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Href != d.Href || back.MimeType != d.MimeType {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestDescriptorErrors(t *testing.T) {
	if _, err := (&Descriptor{}).Encode(); err == nil {
		t.Error("empty href should fail")
	}
	if _, err := ParseDescriptor([]byte("<nope")); err == nil {
		t.Error("bad XML should fail")
	}
}

func TestDescriptorPath(t *testing.T) {
	if got := DescriptorPath("dir/lesson.html"); got != "dir/lesson.html.desc.xml" {
		t.Errorf("DescriptorPath = %q", got)
	}
}
