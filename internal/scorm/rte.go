package scorm

// rteState is the API instance's lifecycle state.
type rteState int

const (
	stateNotInitialized rteState = iota + 1
	stateRunning
	stateFinished
)

// API is one SCO attempt's run-time API instance, mirroring the SCORM 1.2
// JavaScript adapter: LMSInitialize, LMSGetValue, LMSSetValue, LMSCommit,
// LMSFinish, LMSGetLastError, LMSGetErrorString. The booleans-as-strings
// convention of the specification ("true"/"false") is preserved so the HTTP
// adapter can pass results straight through.
//
// API is not safe for concurrent use; each learner session owns one
// instance (the delivery engine serializes access per session).
type API struct {
	state     rteState
	lastError int
	data      *DataModel
	// committed receives a snapshot on every successful LMSCommit and
	// LMSFinish; the LMS persists it. Nil is allowed.
	committed func(map[string]string)
}

// NewAPI builds an API instance over a learner's data model. onCommit, if
// non-nil, is invoked with a snapshot at every commit point.
func NewAPI(data *DataModel, onCommit func(map[string]string)) *API {
	return &API{
		state:     stateNotInitialized,
		data:      data,
		committed: onCommit,
	}
}

const (
	apiTrue  = "true"
	apiFalse = "false"
)

// LMSInitialize begins the attempt ("course beginning", §5.5). The argument
// must be the empty string per the specification.
func (a *API) LMSInitialize(arg string) string {
	if arg != "" {
		a.lastError = ErrCodeInvalidArgument
		return apiFalse
	}
	if a.state != stateNotInitialized {
		a.lastError = ErrCodeGeneral
		return apiFalse
	}
	a.state = stateRunning
	a.lastError = ErrCodeNoError
	return apiTrue
}

// LMSFinish ends the attempt ("course ... ending"), accumulating session
// time and committing.
func (a *API) LMSFinish(arg string) string {
	if arg != "" {
		a.lastError = ErrCodeInvalidArgument
		return apiFalse
	}
	if a.state != stateRunning {
		a.lastError = ErrCodeNotInitialized
		return apiFalse
	}
	if err := a.data.AccumulateSessionTime(); err != nil {
		a.lastError = ErrCodeGeneral
		return apiFalse
	}
	a.state = stateFinished
	a.lastError = ErrCodeNoError
	a.commit()
	return apiTrue
}

// LMSGetValue reads a data-model element.
func (a *API) LMSGetValue(element string) string {
	if a.state != stateRunning {
		a.lastError = ErrCodeNotInitialized
		return ""
	}
	v, code := a.data.Get(element)
	a.lastError = code
	if code != ErrCodeNoError {
		return ""
	}
	return v
}

// LMSSetValue writes a data-model element.
func (a *API) LMSSetValue(element, value string) string {
	if a.state != stateRunning {
		a.lastError = ErrCodeNotInitialized
		return apiFalse
	}
	code := a.data.Set(element, value)
	a.lastError = code
	if code != ErrCodeNoError {
		return apiFalse
	}
	return apiTrue
}

// LMSCommit persists the data model.
func (a *API) LMSCommit(arg string) string {
	if arg != "" {
		a.lastError = ErrCodeInvalidArgument
		return apiFalse
	}
	if a.state != stateRunning {
		a.lastError = ErrCodeNotInitialized
		return apiFalse
	}
	a.lastError = ErrCodeNoError
	a.commit()
	return apiTrue
}

// LMSGetLastError returns the last error code as a string, per spec.
func (a *API) LMSGetLastError() string {
	return itoa(a.lastError)
}

// LMSGetErrorString returns the text for a code string; bad input maps to
// the general exception text.
func (a *API) LMSGetErrorString(codeStr string) string {
	code, ok := atoi(codeStr)
	if !ok {
		return ErrorText(ErrCodeGeneral)
	}
	return ErrorText(code)
}

// LMSGetDiagnostic returns vendor diagnostics; we echo the error string.
func (a *API) LMSGetDiagnostic(codeStr string) string {
	if codeStr == "" {
		return ErrorText(a.lastError)
	}
	return a.LMSGetErrorString(codeStr)
}

// Running reports whether the attempt is between Initialize and Finish.
func (a *API) Running() bool {
	return a.state == stateRunning
}

func (a *API) commit() {
	if a.committed != nil {
		a.committed(a.data.Snapshot())
	}
}

func itoa(n int) string {
	// Error codes are small non-negative ints; avoid fmt on this hot path.
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func atoi(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
