// Package scorm implements the SCORM 1.2 machinery the paper's authoring
// system emits (§5.5): the imsmanifest.xml course-structure manifest,
// per-file descriptor XML documents, a content-package builder (PIF zip),
// the CMI run-time data model, and the LMS run-time API
// (LMSInitialize/LMSGetValue/LMSSetValue/LMSCommit/LMSFinish) with the
// standard error codes.
package scorm

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
)

// Manifest is the root imsmanifest.xml document. "With this
// imsmanifest.xml, we can parse the whole course structure" (§5.5).
type Manifest struct {
	XMLName       xml.Name      `xml:"manifest"`
	Identifier    string        `xml:"identifier,attr"`
	Version       string        `xml:"version,attr,omitempty"`
	Metadata      *Metadata     `xml:"metadata,omitempty"`
	Organizations Organizations `xml:"organizations"`
	Resources     Resources     `xml:"resources"`
}

// Metadata is the manifest-level metadata block.
type Metadata struct {
	Schema        string `xml:"schema,omitempty"`
	SchemaVersion string `xml:"schemaversion,omitempty"`
}

// Organizations holds the course structure trees.
type Organizations struct {
	Default       string         `xml:"default,attr,omitempty"`
	Organizations []Organization `xml:"organization"`
}

// Organization is one course structure tree.
type Organization struct {
	Identifier string `xml:"identifier,attr"`
	Title      string `xml:"title"`
	Items      []Item `xml:"item"`
}

// Item is a node in the course structure; leaves reference resources.
type Item struct {
	Identifier    string `xml:"identifier,attr"`
	IdentifierRef string `xml:"identifierref,attr,omitempty"`
	Title         string `xml:"title"`
	Items         []Item `xml:"item,omitempty"`
}

// Resources lists the package's deliverable content.
type Resources struct {
	Resources []Resource `xml:"resource"`
}

// Resource types used by the paper's output: SCOs communicate with the LMS
// API; assets do not.
const (
	ScormTypeSCO   = "sco"
	ScormTypeAsset = "asset"
)

// Resource is one launchable or supporting content object.
type Resource struct {
	Identifier string `xml:"identifier,attr"`
	Type       string `xml:"type,attr"`
	ScormType  string `xml:"adlcp:scormtype,attr,omitempty"`
	Href       string `xml:"href,attr,omitempty"`
	Files      []File `xml:"file"`
}

// File is one physical file of a resource.
type File struct {
	Href string `xml:"href,attr"`
}

// Validation errors.
var (
	ErrNoIdentifier    = errors.New("scorm: manifest identifier must not be empty")
	ErrNoOrganization  = errors.New("scorm: manifest needs at least one organization")
	ErrDanglingItemRef = errors.New("scorm: item references unknown resource")
	ErrDuplicateID     = errors.New("scorm: duplicate identifier")
)

// Validate checks structural integrity: identifiers present and unique, and
// every item's identifierref resolving to a resource.
func (m *Manifest) Validate() error {
	if strings.TrimSpace(m.Identifier) == "" {
		return ErrNoIdentifier
	}
	if len(m.Organizations.Organizations) == 0 {
		return ErrNoOrganization
	}
	ids := make(map[string]struct{})
	claim := func(id string) error {
		if id == "" {
			return nil
		}
		if _, dup := ids[id]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateID, id)
		}
		ids[id] = struct{}{}
		return nil
	}
	resourceIDs := make(map[string]struct{}, len(m.Resources.Resources))
	for _, r := range m.Resources.Resources {
		if err := claim(r.Identifier); err != nil {
			return err
		}
		resourceIDs[r.Identifier] = struct{}{}
	}
	var walk func(items []Item) error
	walk = func(items []Item) error {
		for _, it := range items {
			if err := claim(it.Identifier); err != nil {
				return err
			}
			if it.IdentifierRef != "" {
				if _, ok := resourceIDs[it.IdentifierRef]; !ok {
					return fmt.Errorf("%w: item %s -> %s",
						ErrDanglingItemRef, it.Identifier, it.IdentifierRef)
				}
			}
			if err := walk(it.Items); err != nil {
				return err
			}
		}
		return nil
	}
	for _, org := range m.Organizations.Organizations {
		if err := claim(org.Identifier); err != nil {
			return err
		}
		if err := walk(org.Items); err != nil {
			return err
		}
	}
	return nil
}

// Encode serializes the manifest as indented XML with the standard header.
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	body, err := xml.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scorm: encode manifest: %w", err)
	}
	return append([]byte(xml.Header), body...), nil
}

// ParseManifest decodes and validates an imsmanifest.xml document.
func ParseManifest(raw []byte) (*Manifest, error) {
	var m Manifest
	if err := xml.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("scorm: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Descriptor is the per-file descriptive XML the paper places beside every
// content file ("each file ... has a descriptive xml file with the same
// level in the course structure", §5.5).
type Descriptor struct {
	XMLName     xml.Name `xml:"filedescriptor"`
	Href        string   `xml:"href"`
	Title       string   `xml:"title,omitempty"`
	MimeType    string   `xml:"mimetype,omitempty"`
	Description string   `xml:"description,omitempty"`
}

// Encode serializes the descriptor.
func (d *Descriptor) Encode() ([]byte, error) {
	if strings.TrimSpace(d.Href) == "" {
		return nil, errors.New("scorm: descriptor href must not be empty")
	}
	body, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scorm: encode descriptor: %w", err)
	}
	return append([]byte(xml.Header), body...), nil
}

// DescriptorPath returns the conventional sibling path of a content file's
// descriptor: "dir/lesson.html" → "dir/lesson.html.desc.xml".
func DescriptorPath(href string) string {
	return href + ".desc.xml"
}

// ParseDescriptor decodes a descriptor document.
func ParseDescriptor(raw []byte) (*Descriptor, error) {
	var d Descriptor
	if err := xml.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("scorm: parse descriptor: %w", err)
	}
	return &d, nil
}
