package scorm

import (
	"bytes"
	"strings"
	"testing"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
	"mineassess/internal/metadata"
)

func packableExam(t *testing.T, n int) (*bank.ExamRecord, []*item.Problem) {
	t.Helper()
	var problems []*item.Problem
	var ids []string
	for i := 0; i < n; i++ {
		p, err := item.NewMultipleChoice(
			"q"+string(rune('a'+i)), "What is <answer> #"+string(rune('a'+i))+"?",
			[]string{"one", "two", "three", "four"}, i%4)
		if err != nil {
			t.Fatal(err)
		}
		p.Level = cognition.Knowledge
		p.Hint = "think & verify"
		problems = append(problems, p)
		ids = append(ids, p.ID)
	}
	rec := &bank.ExamRecord{ID: "exam1", Title: "Packaged Exam",
		ProblemIDs: ids, Display: item.FixedOrder}
	return rec, problems
}

func TestBuildPackageStructure(t *testing.T) {
	rec, problems := packableExam(t, 3)
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatalf("BuildPackage: %v", err)
	}
	if _, ok := pkg.Files[ManifestName]; !ok {
		t.Error("missing imsmanifest.xml")
	}
	if _, ok := pkg.Files[APIAdapterName]; !ok {
		t.Error("missing API adapter script")
	}
	// One HTML + one descriptor + one metadata record per problem, plus
	// adapter + its descriptor + manifest.
	want := 3*3 + 2 + 1
	if got := len(pkg.Files); got != want {
		t.Errorf("files = %d, want %d", got, want)
	}
	if missing := pkg.MissingFiles(); len(missing) != 0 {
		t.Errorf("manifest references missing files: %v", missing)
	}
	if err := pkg.Manifest.Validate(); err != nil {
		t.Errorf("manifest invalid: %v", err)
	}
	if got := len(pkg.Manifest.Resources.Resources); got != 3 {
		t.Errorf("resources = %d, want 3", got)
	}
}

func TestBuildPackageEmbedsAssessmentMetadata(t *testing.T) {
	rec, problems := packableExam(t, 2)
	problems[0].Subject = "Packaging"
	problems[0].ConceptID = "c-pack"
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := pkg.Files["metadata/problem_001.xml"]
	if !ok {
		t.Fatal("metadata record missing from package")
	}
	assessRec, err := metadata.ParseAssessmentRecord(raw)
	if err != nil {
		t.Fatalf("embedded metadata unparsable: %v", err)
	}
	if assessRec.QuestionID != problems[0].ID {
		t.Errorf("metadata question ID = %q", assessRec.QuestionID)
	}
	if assessRec.IndividualTest.Subject != "Packaging" || assessRec.ConceptID != "c-pack" {
		t.Errorf("metadata record lost fields: %+v", assessRec)
	}
}

func TestExtractAssessmentRecords(t *testing.T) {
	rec, problems := packableExam(t, 4)
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	records, err := pkg.ExtractAssessmentRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %d, want 4", len(records))
	}
	// Records come back in exam (path) order.
	for i, r := range records {
		if r.QuestionID != problems[i].ID {
			t.Errorf("record %d = %s, want %s", i, r.QuestionID, problems[i].ID)
		}
	}
	// Corrupt one record: extraction fails loudly.
	pkg.Files["metadata/problem_002.xml"] = []byte("<broken")
	if _, err := pkg.ExtractAssessmentRecords(); err == nil {
		t.Error("corrupt record should fail extraction")
	}
	// Survives the zip round trip.
	pkg2, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pkg2.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadZip(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	records2, err := back.ExtractAssessmentRecords()
	if err != nil || len(records2) != 4 {
		t.Errorf("round-trip records = %d, %v", len(records2), err)
	}
}

func TestBuildPackageEscapesHTML(t *testing.T) {
	rec, problems := packableExam(t, 1)
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	page := string(pkg.Files["content/problem_001.html"])
	if strings.Contains(page, "<answer>") {
		t.Error("question text not escaped")
	}
	if !strings.Contains(page, "&lt;answer&gt;") {
		t.Error("escaped question text missing")
	}
	if !strings.Contains(page, "think &amp; verify") {
		t.Error("hint not escaped/rendered")
	}
	if !strings.Contains(page, "type=\"radio\"") {
		t.Error("options not rendered")
	}
}

func TestBuildPackageStyles(t *testing.T) {
	problems := []*item.Problem{
		{ID: "tf", Style: item.TrueFalse, Question: "T or F?", Answer: "true",
			Level: cognition.Knowledge},
		{ID: "comp", Style: item.Completion, Question: "___ fills blanks",
			Blanks: [][]string{{"cloze"}}, Level: cognition.Knowledge},
		{ID: "match", Style: item.Match, Question: "pair up",
			Pairs: []item.MatchPair{{Left: "a", Right: "1"}, {Left: "b", Right: "2"}},
			Level: cognition.Comprehension},
		{ID: "essay", Style: item.Essay, Question: "Discuss", Level: cognition.Evaluation},
	}
	rec := &bank.ExamRecord{ID: "styles", Title: "All styles",
		ProblemIDs: []string{"tf", "comp", "match", "essay"}, Display: item.FixedOrder}
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(pkg.Files["content/problem_001.html"]), "value=\"true\"") {
		t.Error("true/false page wrong")
	}
	if !strings.Contains(string(pkg.Files["content/problem_002.html"]), "name=\"blank1\"") {
		t.Error("completion page wrong")
	}
	if !strings.Contains(string(pkg.Files["content/problem_003.html"]), "class=\"match\"") {
		t.Error("match page wrong")
	}
	if !strings.Contains(string(pkg.Files["content/problem_004.html"]), "<textarea") {
		t.Error("essay page wrong")
	}
}

func TestBuildPackageErrors(t *testing.T) {
	if _, err := BuildPackage(nil, nil); err == nil {
		t.Error("nil exam should fail")
	}
	rec, problems := packableExam(t, 1)
	rec.ProblemIDs = append(rec.ProblemIDs, "ghost")
	if _, err := BuildPackage(rec, problems); err == nil {
		t.Error("dangling problem reference should fail")
	}
}

// E16: SCORM output round trip.
func TestZipRoundTrip(t *testing.T) {
	rec, problems := packableExam(t, 5)
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pkg.WriteZip(&buf); err != nil {
		t.Fatalf("WriteZip: %v", err)
	}
	back, err := ReadZip(buf.Bytes())
	if err != nil {
		t.Fatalf("ReadZip: %v", err)
	}
	if len(back.Files) != len(pkg.Files) {
		t.Errorf("files = %d, want %d", len(back.Files), len(pkg.Files))
	}
	for path, content := range pkg.Files {
		if !bytes.Equal(back.Files[path], content) {
			t.Errorf("file %s changed in round trip", path)
		}
	}
	if back.Manifest.Identifier != pkg.Manifest.Identifier {
		t.Error("manifest identifier changed")
	}
	if missing := back.MissingFiles(); len(missing) != 0 {
		t.Errorf("round-tripped package missing files: %v", missing)
	}
}

func TestZipDeterministic(t *testing.T) {
	rec, problems := packableExam(t, 3)
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := pkg.WriteZip(&a); err != nil {
		t.Fatal(err)
	}
	if err := pkg.WriteZip(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("zip output must be byte-reproducible")
	}
}

func TestReadZipErrors(t *testing.T) {
	if _, err := ReadZip([]byte("not a zip")); err == nil {
		t.Error("garbage should fail")
	}
	// A zip without a manifest.
	var buf bytes.Buffer
	empty := &Package{Files: map[string][]byte{"readme.txt": []byte("hi")}}
	if err := empty.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadZip(buf.Bytes()); err == nil {
		t.Error("missing manifest should fail")
	}
}

func TestMissingFilesDetection(t *testing.T) {
	rec, problems := packableExam(t, 2)
	pkg, err := BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	delete(pkg.Files, "content/problem_002.html")
	missing := pkg.MissingFiles()
	if len(missing) != 1 || missing[0] != "content/problem_002.html" {
		t.Errorf("missing = %v", missing)
	}
}
