package scorm

import (
	"archive/zip"
	"bytes"
	"fmt"
	"html"
	"io"
	"sort"
	"strings"

	"mineassess/internal/bank"
	"mineassess/internal/item"
	"mineassess/internal/metadata"
)

// ManifestName is the fixed name SCORM requires at the package root.
const ManifestName = "imsmanifest.xml"

// APIAdapterName is the JavaScript adapter file the paper notes is required
// ("Without these java scripts, the learning management can't find the API
// to communicate", §5.5).
const APIAdapterName = "scripts/apiwrapper.js"

// Package is an in-memory SCORM content package (PIF).
type Package struct {
	Manifest *Manifest
	// Files maps package-relative paths to contents; includes the manifest.
	Files map[string][]byte
}

// BuildPackage renders an exam and its problems into a SCORM package:
// one XHTML page per problem (a SCO), a descriptor beside every file, the
// API adapter script, and the manifest tying it together.
func BuildPackage(rec *bank.ExamRecord, problems []*item.Problem) (*Package, error) {
	if rec == nil || len(problems) == 0 {
		return nil, fmt.Errorf("scorm: empty exam")
	}
	byID := make(map[string]*item.Problem, len(problems))
	for _, p := range problems {
		byID[p.ID] = p
	}
	man := &Manifest{
		Identifier: "MANIFEST-" + rec.ID,
		Version:    "1.2",
		Metadata:   &Metadata{Schema: "ADL SCORM", SchemaVersion: "1.2"},
		Organizations: Organizations{
			Default: "ORG-" + rec.ID,
			Organizations: []Organization{{
				Identifier: "ORG-" + rec.ID,
				Title:      rec.Title,
			}},
		},
	}
	pkg := &Package{Manifest: man, Files: make(map[string][]byte)}
	pkg.Files[APIAdapterName] = []byte(_apiAdapterJS)
	addDescriptor := func(href, title, mime string) error {
		desc := Descriptor{Href: href, Title: title, MimeType: mime}
		raw, err := desc.Encode()
		if err != nil {
			return err
		}
		pkg.Files[DescriptorPath(href)] = raw
		return nil
	}
	if err := addDescriptor(APIAdapterName, "SCORM API adapter", "text/javascript"); err != nil {
		return nil, err
	}

	org := &man.Organizations.Organizations[0]
	for i, pid := range rec.ProblemIDs {
		p, ok := byID[pid]
		if !ok {
			return nil, fmt.Errorf("scorm: exam %s references missing problem %s", rec.ID, pid)
		}
		href := fmt.Sprintf("content/problem_%03d.html", i+1)
		pkg.Files[href] = renderProblemHTML(i+1, p)
		if err := addDescriptor(href, p.Question, "text/html"); err != nil {
			return nil, err
		}
		// The MINE assessment metadata record rides beside the content it
		// describes (the paper's Figure 1 tree inside the package).
		metaHref := fmt.Sprintf("metadata/problem_%03d.xml", i+1)
		assessRec, err := metadata.FromProblem(p)
		if err != nil {
			return nil, fmt.Errorf("scorm: metadata for %s: %w", p.ID, err)
		}
		rawMeta, err := assessRec.Encode()
		if err != nil {
			return nil, fmt.Errorf("scorm: encode metadata for %s: %w", p.ID, err)
		}
		pkg.Files[metaHref] = rawMeta
		resID := fmt.Sprintf("RES-%s-%03d", rec.ID, i+1)
		man.Resources.Resources = append(man.Resources.Resources, Resource{
			Identifier: resID,
			Type:       "webcontent",
			ScormType:  ScormTypeSCO,
			Href:       href,
			Files: []File{
				{Href: href},
				{Href: DescriptorPath(href)},
				{Href: metaHref},
				{Href: APIAdapterName},
			},
		})
		org.Items = append(org.Items, Item{
			Identifier:    fmt.Sprintf("ITEM-%s-%03d", rec.ID, i+1),
			IdentifierRef: resID,
			Title:         fmt.Sprintf("Question %d", i+1),
		})
	}
	rawMan, err := man.Encode()
	if err != nil {
		return nil, err
	}
	pkg.Files[ManifestName] = rawMan
	return pkg, nil
}

// renderProblemHTML produces the deterministic learner-facing page for one
// problem.
func renderProblemHTML(number int, p *item.Problem) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>")
	fmt.Fprintf(&b, "Question %d", number)
	b.WriteString("</title><script src=\"../" + APIAdapterName + "\"></script></head><body>\n")
	fmt.Fprintf(&b, "<h1>Question %d</h1>\n", number)
	fmt.Fprintf(&b, "<p class=\"question\">%s</p>\n", html.EscapeString(p.Question))
	for _, pic := range p.Pictures {
		fmt.Fprintf(&b, "<img src=%q style=\"position:absolute;left:%dpx;top:%dpx\"/>\n",
			pic.Ref, pic.X, pic.Y)
	}
	switch p.Style {
	case item.MultipleChoice:
		b.WriteString("<ol class=\"options\">\n")
		for _, o := range p.Options {
			fmt.Fprintf(&b, "  <li><label><input type=\"radio\" name=\"answer\" value=%q/> %s</label></li>\n",
				o.Key, html.EscapeString(o.Text))
		}
		b.WriteString("</ol>\n")
	case item.TrueFalse:
		b.WriteString("<label><input type=\"radio\" name=\"answer\" value=\"true\"/> True</label>\n")
		b.WriteString("<label><input type=\"radio\" name=\"answer\" value=\"false\"/> False</label>\n")
	case item.Completion:
		for i := range p.Blanks {
			fmt.Fprintf(&b, "<input type=\"text\" name=\"blank%d\"/>\n", i+1)
		}
	case item.Match:
		b.WriteString("<table class=\"match\">\n")
		for _, pair := range p.Pairs {
			fmt.Fprintf(&b, "  <tr><td>%s</td><td><input type=\"text\" name=%q/></td></tr>\n",
				html.EscapeString(pair.Left), "match_"+pair.Left)
		}
		b.WriteString("</table>\n")
	default:
		b.WriteString("<textarea name=\"answer\" rows=\"8\" cols=\"60\"></textarea>\n")
	}
	if p.Hint != "" {
		fmt.Fprintf(&b, "<p class=\"hint\">Hint: %s</p>\n", html.EscapeString(p.Hint))
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

// WriteZip streams the package as a PIF zip. Entries are written in sorted
// path order so output bytes are reproducible.
func (p *Package) WriteZip(w io.Writer) error {
	zw := zip.NewWriter(w)
	paths := make([]string, 0, len(p.Files))
	for path := range p.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		f, err := zw.Create(path)
		if err != nil {
			return fmt.Errorf("scorm: zip create %s: %w", path, err)
		}
		if _, err := f.Write(p.Files[path]); err != nil {
			return fmt.Errorf("scorm: zip write %s: %w", path, err)
		}
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("scorm: close zip: %w", err)
	}
	return nil
}

// ReadZip opens a PIF zip produced by WriteZip (or any SCORM 1.2 package
// carrying an imsmanifest.xml at the root) back into a Package.
func ReadZip(raw []byte) (*Package, error) {
	zr, err := zip.NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return nil, fmt.Errorf("scorm: open zip: %w", err)
	}
	pkg := &Package{Files: make(map[string][]byte, len(zr.File))}
	for _, zf := range zr.File {
		rc, err := zf.Open()
		if err != nil {
			return nil, fmt.Errorf("scorm: open %s: %w", zf.Name, err)
		}
		data, err := io.ReadAll(rc)
		closeErr := rc.Close()
		if err != nil {
			return nil, fmt.Errorf("scorm: read %s: %w", zf.Name, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("scorm: close %s: %w", zf.Name, closeErr)
		}
		pkg.Files[zf.Name] = data
	}
	rawMan, ok := pkg.Files[ManifestName]
	if !ok {
		return nil, fmt.Errorf("scorm: package missing %s", ManifestName)
	}
	man, err := ParseManifest(rawMan)
	if err != nil {
		return nil, err
	}
	pkg.Manifest = man
	return pkg, nil
}

// ExtractAssessmentRecords parses every embedded MINE assessment-metadata
// record out of a package, in path order — the receiving side of the
// paper's "other instructors may reuse the problem and exam files from
// SCORM compatible external repository".
func (p *Package) ExtractAssessmentRecords() ([]*metadata.AssessmentRecord, error) {
	var paths []string
	for path := range p.Files {
		if strings.HasPrefix(path, "metadata/") && strings.HasSuffix(path, ".xml") {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	records := make([]*metadata.AssessmentRecord, 0, len(paths))
	for _, path := range paths {
		rec, err := metadata.ParseAssessmentRecord(p.Files[path])
		if err != nil {
			return nil, fmt.Errorf("scorm: %s: %w", path, err)
		}
		records = append(records, rec)
	}
	return records, nil
}

// MissingFiles cross-checks the manifest against the package contents and
// returns referenced hrefs that are absent, sorted.
func (p *Package) MissingFiles() []string {
	var missing []string
	seen := make(map[string]struct{})
	for _, r := range p.Manifest.Resources.Resources {
		for _, f := range r.Files {
			if _, dup := seen[f.Href]; dup {
				continue
			}
			seen[f.Href] = struct{}{}
			if _, ok := p.Files[f.Href]; !ok {
				missing = append(missing, f.Href)
			}
		}
	}
	sort.Strings(missing)
	return missing
}

// _apiAdapterJS is the minimal adapter locating the LMS-provided API object,
// as SCORM 1.2 content expects.
const _apiAdapterJS = `// SCORM 1.2 API adapter (generated).
function findAPI(win) {
  var tries = 0;
  while (win.API == null && win.parent != null && win.parent != win) {
    if (++tries > 7) { return null; }
    win = win.parent;
  }
  return win.API;
}
var API = findAPI(window) || (window.opener ? findAPI(window.opener) : null);
`
