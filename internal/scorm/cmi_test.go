package scorm

import "testing"

func TestDataModelSeededDefaults(t *testing.T) {
	d := NewDataModel("s1", "Ada Lovelace")
	tests := map[string]string{
		"cmi.core.student_id":    "s1",
		"cmi.core.student_name":  "Ada Lovelace",
		"cmi.core.lesson_status": "not attempted",
		"cmi.core.total_time":    "0000:00:00",
	}
	for el, want := range tests {
		got, code := d.Get(el)
		if code != ErrCodeNoError || got != want {
			t.Errorf("Get(%s) = %q, code %d; want %q", el, got, code, want)
		}
	}
}

func TestDataModelReadOnly(t *testing.T) {
	d := NewDataModel("s1", "n")
	if code := d.Set("cmi.core.student_id", "hacked"); code != ErrCodeElementReadOnly {
		t.Errorf("Set read-only = %d, want %d", code, ErrCodeElementReadOnly)
	}
}

func TestDataModelWriteOnly(t *testing.T) {
	d := NewDataModel("s1", "n")
	if code := d.Set("cmi.core.session_time", "0000:05:30"); code != ErrCodeNoError {
		t.Fatalf("Set session_time = %d", code)
	}
	if _, code := d.Get("cmi.core.session_time"); code != ErrCodeElementWriteOnly {
		t.Errorf("Get write-only = %d, want %d", code, ErrCodeElementWriteOnly)
	}
}

func TestDataModelUnknownElement(t *testing.T) {
	d := NewDataModel("s1", "n")
	if _, code := d.Get("cmi.bogus"); code != ErrCodeNotImplemented {
		t.Errorf("Get unknown = %d, want %d", code, ErrCodeNotImplemented)
	}
	if code := d.Set("cmi.bogus", "x"); code != ErrCodeNotImplemented {
		t.Errorf("Set unknown = %d, want %d", code, ErrCodeNotImplemented)
	}
}

func TestDataModelChildren(t *testing.T) {
	d := NewDataModel("s1", "n")
	v, code := d.Get("cmi.core.score._children")
	if code != ErrCodeNoError || v != "raw,min,max" {
		t.Errorf("score._children = %q, code %d", v, code)
	}
	if code := d.Set("cmi.core._children", "x"); code != ErrCodeInvalidSetValue {
		t.Errorf("Set _children = %d, want %d", code, ErrCodeInvalidSetValue)
	}
}

func TestDataModelVocabularies(t *testing.T) {
	d := NewDataModel("s1", "n")
	if code := d.Set("cmi.core.lesson_status", "passed"); code != ErrCodeNoError {
		t.Errorf("valid status rejected: %d", code)
	}
	if code := d.Set("cmi.core.lesson_status", "aced-it"); code != ErrCodeIncorrectDataType {
		t.Errorf("bad status = %d, want %d", code, ErrCodeIncorrectDataType)
	}
	if code := d.Set("cmi.core.score.raw", "85.5"); code != ErrCodeNoError {
		t.Errorf("valid score rejected: %d", code)
	}
	for _, bad := range []string{"-1", "101", "ninety"} {
		if code := d.Set("cmi.core.score.raw", bad); code != ErrCodeIncorrectDataType {
			t.Errorf("score %q = %d, want %d", bad, code, ErrCodeIncorrectDataType)
		}
	}
	for _, good := range []string{"0000:00:01", "0001:30:00", "0000:05:30.5"} {
		if code := d.Set("cmi.core.session_time", good); code != ErrCodeNoError {
			t.Errorf("time %q rejected: %d", good, code)
		}
	}
	for _, bad := range []string{"1:2", "0000:61:00", "0000:00:61", "abc", "00:00:00:00"} {
		if code := d.Set("cmi.core.session_time", bad); code != ErrCodeIncorrectDataType {
			t.Errorf("time %q = %d, want %d", bad, code, ErrCodeIncorrectDataType)
		}
	}
}

func TestAccumulateSessionTime(t *testing.T) {
	d := NewDataModel("s1", "n")
	if code := d.Set("cmi.core.session_time", "0001:30:30"); code != ErrCodeNoError {
		t.Fatal(code)
	}
	if err := d.AccumulateSessionTime(); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get("cmi.core.total_time")
	if got != "0001:30:30" {
		t.Errorf("total_time = %q, want 0001:30:30", got)
	}
	// Accumulate again.
	if code := d.Set("cmi.core.session_time", "0000:29:30"); code != ErrCodeNoError {
		t.Fatal(code)
	}
	if err := d.AccumulateSessionTime(); err != nil {
		t.Fatal(err)
	}
	got, _ = d.Get("cmi.core.total_time")
	if got != "0002:00:00" {
		t.Errorf("total_time = %q, want 0002:00:00", got)
	}
	// No session time: a no-op.
	if err := d.AccumulateSessionTime(); err != nil {
		t.Errorf("no-op accumulate: %v", err)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	d := NewDataModel("s1", "n")
	snap := d.Snapshot()
	snap["cmi.core.student_id"] = "mutated"
	got, _ := d.Get("cmi.core.student_id")
	if got != "s1" {
		t.Error("snapshot must be isolated")
	}
}

func TestErrorText(t *testing.T) {
	if ErrorText(0) != "No error" {
		t.Errorf("ErrorText(0) = %q", ErrorText(0))
	}
	if ErrorText(403) != "Element is read only" {
		t.Errorf("ErrorText(403) = %q", ErrorText(403))
	}
	if ErrorText(999) != "General exception" {
		t.Errorf("ErrorText(999) = %q", ErrorText(999))
	}
}
