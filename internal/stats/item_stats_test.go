package stats

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
	"mineassess/internal/simulate"
)

// ladder builds n students × m problems where student s answers problem i
// correctly iff s > i (strictly increasing ability ladder).
func ladder(t *testing.T, n, m int) *analysis.ExamResult {
	t.Helper()
	e := &analysis.ExamResult{ExamID: "ladder"}
	for i := 0; i < m; i++ {
		e.Problems = append(e.Problems, &item.Problem{
			ID: fmt.Sprintf("p%02d", i), Style: item.TrueFalse,
			Question: "?", Answer: "true", Level: cognition.Knowledge,
		})
	}
	for s := 0; s < n; s++ {
		sr := analysis.StudentResult{StudentID: fmt.Sprintf("s%02d", s)}
		for i := 0; i < m; i++ {
			credit, opt := 0.0, "false"
			if s > i {
				credit, opt = 1, "true"
			}
			sr.Responses = append(sr.Responses, analysis.Response{
				StudentID: sr.StudentID, ProblemID: e.Problems[i].ID,
				Option: opt, Credit: credit, Answered: true, TimeSpent: time.Second,
			})
		}
		e.Students = append(e.Students, sr)
	}
	return e
}

func TestComputeLadder(t *testing.T) {
	e := ladder(t, 10, 5)
	st, err := Compute(e)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scores.N != 10 {
		t.Errorf("N = %d", st.Scores.N)
	}
	// Problem p0 answered by students 1..9 → P = 0.9; p4 by 5..9 → 0.5.
	almost(t, "P(p0)", st.Items[0].P, 0.9, 1e-12)
	almost(t, "P(p4)", st.Items[4].P, 0.5, 1e-12)
	// A perfectly consistent (Guttman) ladder has near-1 reliability.
	if st.KR20 < 0.8 {
		t.Errorf("KR20 = %v on a Guttman ladder, want high", st.KR20)
	}
	// Every item correlates positively with the rest score.
	for _, it := range st.Items {
		if it.PointBiserial <= 0 {
			t.Errorf("point-biserial %s = %v, want positive", it.ProblemID, it.PointBiserial)
		}
	}
}

func TestComputeInvalid(t *testing.T) {
	if _, err := Compute(&analysis.ExamResult{}); err == nil {
		t.Error("invalid result should fail")
	}
}

func TestKR20UndefinedCases(t *testing.T) {
	// One item → k < 2.
	e := ladder(t, 6, 1)
	st, err := Compute(e)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(st.KR20) {
		t.Errorf("single-item KR20 = %v, want NaN", st.KR20)
	}
	// Zero score variance (everyone identical).
	e2 := ladder(t, 1, 3)
	e2.Students = append(e2.Students, e2.Students[0])
	e2.Students[1].StudentID = "twin"
	st2, err := Compute(e2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(st2.KR20) {
		t.Errorf("zero-variance KR20 = %v, want NaN", st2.KR20)
	}
}

func TestSplitHalfLadder(t *testing.T) {
	e := ladder(t, 20, 10)
	r, err := SplitHalf(e)
	if err != nil {
		t.Fatal(err)
	}
	// A Guttman ladder's halves correlate almost perfectly.
	if r < 0.9 {
		t.Errorf("split-half = %v, want near 1", r)
	}
	if r > 1.0001 {
		t.Errorf("split-half = %v exceeds 1", r)
	}
}

func TestSplitHalfAgreesWithKR20Roughly(t *testing.T) {
	e := ladder(t, 30, 12)
	sh, err := SplitHalf(e)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compute(e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sh-st.KR20) > 0.25 {
		t.Errorf("split-half %v far from KR-20 %v", sh, st.KR20)
	}
}

func TestSplitHalfErrors(t *testing.T) {
	if _, err := SplitHalf(&analysis.ExamResult{}); err == nil {
		t.Error("invalid result should fail")
	}
	if _, err := SplitHalf(ladder(t, 5, 1)); err == nil {
		t.Error("single item should fail")
	}
	// Identical students: zero variance halves.
	e := ladder(t, 1, 4)
	e.Students = append(e.Students, e.Students[0])
	e.Students[1].StudentID = "twin"
	if _, err := SplitHalf(e); err == nil {
		t.Error("zero variance should fail")
	}
}

// Ablation: over a simulated class, the paper's simple upper/lower D ranks
// items consistently with the point-biserial (strong positive correlation).
func TestCompareDiscriminationAblation(t *testing.T) {
	var specs []simulate.ItemSpec
	for i := 0; i < 20; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%02d", i), "?",
			[]string{"1", "2", "3", "4"}, i%4)
		if err != nil {
			t.Fatal(err)
		}
		p.Level = cognition.Knowledge
		// Vary discrimination so the two indices have something to rank.
		a := 0.4 + 2.0*float64(i%5)/4
		specs = append(specs, simulate.ItemSpec{Problem: p,
			Params: simulate.IRTParams{A: a, B: -1 + 2*float64(i)/19}})
	}
	pop, err := simulate.NewPopulation(simulate.PopulationConfig{N: 300, SD: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(simulate.ExamConfig{ExamID: "abl", Items: specs, Seed: 6}, pop)
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.Analyze(res, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Compute(res)
	if err != nil {
		t.Fatal(err)
	}
	r, err := CompareDiscrimination(a, st)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.6 {
		t.Errorf("D vs point-biserial correlation = %v, want strongly positive", r)
	}
}

func TestCompareDiscriminationErrors(t *testing.T) {
	a := &analysis.ExamAnalysis{Questions: []*analysis.QuestionReport{{ProblemID: "x"}}}
	st := &ExamStatistics{}
	if _, err := CompareDiscrimination(a, st); err == nil {
		t.Error("length mismatch should fail")
	}
	st = &ExamStatistics{Items: []ItemStatistics{{ProblemID: "y"}}}
	if _, err := CompareDiscrimination(a, st); err == nil {
		t.Error("too few items should fail")
	}
	a3 := &analysis.ExamAnalysis{Questions: []*analysis.QuestionReport{
		{ProblemID: "a"}, {ProblemID: "b"}, {ProblemID: "c"}}}
	st3 := &ExamStatistics{Items: []ItemStatistics{
		{ProblemID: "a"}, {ProblemID: "zzz"}, {ProblemID: "c"}}}
	if _, err := CompareDiscrimination(a3, st3); err == nil {
		t.Error("order mismatch should fail")
	}
}
