package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "Mean", s.Mean, 5, 1e-12)
	almost(t, "SD", s.SD, 2, 1e-12) // classic population-SD example
	almost(t, "Variance", s.Variance, 4, 1e-12)
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Errorf("min/max/n = %v/%v/%d", s.Min, s.Max, s.N)
	}
	almost(t, "Median", s.Median, 4.5, 1e-12)
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3.5 || s.SD != 0 || s.Median != 3.5 || s.Q1 != 3.5 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
	}
	for _, tt := range tests {
		almost(t, "Quantile", Quantile(sorted, tt.q), tt.want, 1e-12)
	}
	// Interpolation between points.
	almost(t, "Quantile(0.5, evens)", Quantile([]float64{1, 2, 3, 4}, 0.5), 2.5, 1e-12)
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	counts, width, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "width", width, 2, 1e-12)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total = %d", total)
	}
	// The max value must land in the final bucket, not overflow.
	if counts[4] == 0 {
		t.Error("max value lost")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, width, err := Histogram([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if width != 0 || counts[0] != 3 {
		t.Errorf("constant histogram = %v, width %v", counts, width)
	}
	if _, _, err := Histogram(nil, 3); err != ErrNoData {
		t.Errorf("empty err = %v", err)
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestPearsonR(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	r, err := PearsonR(x, yPos)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "r(+)", r, 1, 1e-12)
	r, err = PearsonR(x, yNeg)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "r(-)", r, -1, 1e-12)
	if _, err := PearsonR(x, x[:3]); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := PearsonR(x, []float64{1, 1, 1, 1, 1}); err == nil {
		t.Error("zero variance should fail")
	}
	if _, err := PearsonR(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

// Property: the mean always lies within [min, max] and quartiles are
// ordered.
func TestSummaryInvariantProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		if len(vals) == 0 {
			return true
		}
		s, err := Summarize(vals)
		if err != nil {
			return false
		}
		const eps = 1e-6
		return s.Mean >= s.Min-eps && s.Mean <= s.Max+eps &&
			s.Q1 <= s.Median+eps && s.Median <= s.Q3+eps &&
			s.SD >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	sorted := []float64{1, 3, 3, 7, 9, 12, 15}
	sort.Float64s(sorted)
	f := func(a, b float64) bool {
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if math.IsNaN(qa) || math.IsNaN(qb) {
			return true
		}
		lo, hi := qa, qb
		if lo > hi {
			lo, hi = hi, lo
		}
		return Quantile(sorted, lo) <= Quantile(sorted, hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
