package stats

import (
	"errors"
	"fmt"
	"math"

	"mineassess/internal/analysis"
)

// ItemStatistics augments the paper's per-question indices with classical
// whole-sample statistics.
type ItemStatistics struct {
	ProblemID string
	// P is the whole-sample difficulty (proportion full-credit).
	P float64
	// PointBiserial is the correlation between the dichotomized item score
	// and the rest-of-test score (item excluded to avoid self-correlation
	// inflation).
	PointBiserial float64
}

// ExamStatistics summarizes one administration.
type ExamStatistics struct {
	Scores Summary
	// KR20 is the Kuder-Richardson formula 20 reliability over the
	// dichotomized items; NaN when undefined (fewer than 2 items or zero
	// score variance).
	KR20  float64
	Items []ItemStatistics
}

// Compute derives the statistics from a validated exam result. Items are
// dichotomized at full credit (consistent with analysis.Response.Correct).
func Compute(res *analysis.ExamResult) (*ExamStatistics, error) {
	if err := res.Validate(); err != nil {
		return nil, err
	}
	nItems := len(res.Problems)
	nStudents := len(res.Students)

	// correct[s][i]: student s answered item i with full credit.
	correct := make([][]bool, nStudents)
	scores := make([]float64, nStudents)
	for si, s := range res.Students {
		row := make([]bool, nItems)
		byProblem := make(map[string]analysis.Response, len(s.Responses))
		for _, r := range s.Responses {
			byProblem[r.ProblemID] = r
		}
		total := 0.0
		for ii, p := range res.Problems {
			r, ok := byProblem[p.ID]
			if ok && r.Correct() {
				row[ii] = true
				total++
			}
		}
		correct[si] = row
		scores[si] = total
	}

	summary, err := Summarize(scores)
	if err != nil {
		return nil, err
	}
	out := &ExamStatistics{Scores: summary}
	out.KR20 = kr20(correct, scores, summary.Variance)

	for ii, p := range res.Problems {
		st := ItemStatistics{ProblemID: p.ID}
		right := 0
		for si := range correct {
			if correct[si][ii] {
				right++
			}
		}
		st.P = float64(right) / float64(nStudents)
		st.PointBiserial = pointBiserial(correct, scores, ii)
		out.Items = append(out.Items, st)
	}
	return out, nil
}

// kr20 computes KR-20 = k/(k-1) * (1 - sum(p*q)/var) over dichotomous
// items; NaN when undefined.
func kr20(correct [][]bool, scores []float64, variance float64) float64 {
	if len(correct) == 0 {
		return math.NaN()
	}
	k := len(correct[0])
	if k < 2 || variance == 0 {
		return math.NaN()
	}
	n := float64(len(correct))
	sumPQ := 0.0
	for ii := 0; ii < k; ii++ {
		right := 0
		for si := range correct {
			if correct[si][ii] {
				right++
			}
		}
		p := float64(right) / n
		sumPQ += p * (1 - p)
	}
	return float64(k) / float64(k-1) * (1 - sumPQ/variance)
}

// pointBiserial correlates item ii (0/1) with the rest score (total minus
// the item). Returns 0 when the item or rest score has zero variance.
func pointBiserial(correct [][]bool, scores []float64, ii int) float64 {
	x := make([]float64, len(correct))
	y := make([]float64, len(correct))
	for si := range correct {
		if correct[si][ii] {
			x[si] = 1
		}
		y[si] = scores[si] - x[si]
	}
	r, err := PearsonR(x, y)
	if err != nil {
		return 0
	}
	return r
}

// SplitHalf computes the odd/even split-half reliability with the
// Spearman-Brown correction: items are split by position parity, the two
// half scores are correlated, and the correlation is stepped up to
// full-test length. Requires at least 2 items and score variance on both
// halves.
func SplitHalf(res *analysis.ExamResult) (float64, error) {
	if err := res.Validate(); err != nil {
		return 0, err
	}
	if len(res.Problems) < 2 {
		return 0, errors.New("stats: split-half needs at least 2 items")
	}
	odd := make([]float64, len(res.Students))
	even := make([]float64, len(res.Students))
	for si, s := range res.Students {
		byProblem := make(map[string]analysis.Response, len(s.Responses))
		for _, r := range s.Responses {
			byProblem[r.ProblemID] = r
		}
		for ii, p := range res.Problems {
			r, ok := byProblem[p.ID]
			if !ok || !r.Correct() {
				continue
			}
			if ii%2 == 0 {
				even[si]++
			} else {
				odd[si]++
			}
		}
	}
	r, err := PearsonR(odd, even)
	if err != nil {
		return 0, fmt.Errorf("stats: split-half: %w", err)
	}
	// Spearman-Brown step-up to full length.
	return 2 * r / (1 + r), nil
}

// CompareDiscrimination correlates the paper's upper/lower-group D with the
// point-biserial across an analyzed exam — the ablation DESIGN.md calls
// out. A strong positive correlation means the simple group method ranks
// items like the full-information statistic.
func CompareDiscrimination(a *analysis.ExamAnalysis, st *ExamStatistics) (float64, error) {
	if len(a.Questions) != len(st.Items) {
		return 0, fmt.Errorf("stats: analysis has %d questions, statistics %d items",
			len(a.Questions), len(st.Items))
	}
	if len(a.Questions) < 3 {
		return 0, errors.New("stats: need at least 3 items to correlate")
	}
	d := make([]float64, len(a.Questions))
	pb := make([]float64, len(st.Items))
	for i := range a.Questions {
		if a.Questions[i].ProblemID != st.Items[i].ProblemID {
			return 0, fmt.Errorf("stats: item order mismatch at %d: %s vs %s",
				i, a.Questions[i].ProblemID, st.Items[i].ProblemID)
		}
		d[i] = a.Questions[i].D
		pb[i] = st.Items[i].PointBiserial
	}
	return PearsonR(d, pb)
}
