// Package stats provides the psychometric statistics that back the paper's
// "summary of test results and analytical suggestions": descriptive score
// statistics, score histograms, the KR-20 internal-consistency reliability
// coefficient, and the point-biserial correlation — the modern counterpart
// of the paper's upper/lower-group Item Discrimination Index, used here as
// an ablation comparator.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by statistics over empty inputs.
var ErrNoData = errors.New("stats: no data")

// Summary holds descriptive statistics of a score distribution.
type Summary struct {
	N                  int
	Mean, SD, Variance float64
	Min, Max           float64
	Median             float64
	Q1, Q3             float64
}

// Summarize computes descriptive statistics. The variance is the population
// variance (divide by N), matching classical test-analysis convention.
func Summarize(values []float64) (Summary, error) {
	if len(values) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: len(values)}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, v := range sorted {
		d := v - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(s.N)
	s.SD = math.Sqrt(s.Variance)
	s.Median = Quantile(sorted, 0.5)
	s.Q1 = Quantile(sorted, 0.25)
	s.Q3 = Quantile(sorted, 0.75)
	return s, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of sorted values by linear
// interpolation. The input must be sorted ascending and non-empty; out of
// range q is clamped.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram bins values into `bins` equal-width buckets over [min, max].
// Values at max land in the last bucket. Returns bucket counts and the
// bucket width.
func Histogram(values []float64, bins int) (counts []int, width float64, err error) {
	if len(values) == 0 {
		return nil, 0, ErrNoData
	}
	if bins < 1 {
		return nil, 0, errors.New("stats: bins must be positive")
	}
	minV, maxV := values[0], values[0]
	for _, v := range values {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	counts = make([]int, bins)
	if maxV == minV {
		counts[0] = len(values)
		return counts, 0, nil
	}
	width = (maxV - minV) / float64(bins)
	for _, v := range values {
		idx := int((v - minV) / width)
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	return counts, width, nil
}

// PearsonR computes the Pearson correlation of two equal-length series.
func PearsonR(x, y []float64) (float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, errors.New("stats: series must be equal-length and non-empty")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, errors.New("stats: zero variance series")
	}
	return cov / math.Sqrt(vx*vy), nil
}
