package adaptive

import (
	"errors"
	"math/rand"
	"testing"

	"mineassess/internal/simulate"
)

// TestCalibrateDifficultyRecovers simulates responses from a known item and
// checks the refit difficulty lands near the truth, starting from a wrong
// authored value.
func TestCalibrateDifficultyRecovers(t *testing.T) {
	truth := simulate.IRTParams{A: 1.6, B: 0.8}
	authored := simulate.IRTParams{A: 1.6, B: -0.5} // mis-authored
	rng := rand.New(rand.NewSource(11))
	var obs []CalibrationObservation
	for i := 0; i < 400; i++ {
		theta := rng.NormFloat64()
		obs = append(obs, CalibrationObservation{
			Theta:   theta,
			Correct: rng.Float64() < truth.ProbCorrect(theta),
		})
	}
	b, err := CalibrateDifficulty(authored, obs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := b - truth.B; diff < -0.3 || diff > 0.3 {
		t.Errorf("calibrated b = %.3f, want near %.1f", b, truth.B)
	}
}

// TestCalibrateDirection: an item answered correctly far more often than its
// authored difficulty predicts must calibrate easier (lower b), and vice
// versa.
func TestCalibrateDirection(t *testing.T) {
	p := simulate.IRTParams{A: 1.5, B: 0}
	easy := make([]CalibrationObservation, 40)
	hard := make([]CalibrationObservation, 40)
	for i := range easy {
		theta := -1.0 + 0.05*float64(i%5)
		easy[i] = CalibrationObservation{Theta: theta, Correct: true}
		hard[i] = CalibrationObservation{Theta: -theta, Correct: false}
	}
	bEasy, err := CalibrateDifficulty(p, easy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bEasy >= p.B {
		t.Errorf("all-correct calibration raised difficulty: %.3f", bEasy)
	}
	bHard, err := CalibrateDifficulty(p, hard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bHard <= p.B {
		t.Errorf("all-incorrect calibration lowered difficulty: %.3f", bHard)
	}
}

func TestCalibrateTooFew(t *testing.T) {
	p := simulate.IRTParams{A: 1, B: 0}
	_, err := CalibrateDifficulty(p, make([]CalibrationObservation, 3), 10)
	if !errors.Is(err, ErrTooFewObservations) {
		t.Errorf("err = %v, want ErrTooFewObservations", err)
	}
}

func TestCalibratePoolPartial(t *testing.T) {
	params := map[string]simulate.IRTParams{
		"q1": {A: 1.5, B: 0},
		"q2": {A: 1.5, B: 0.5},
	}
	obs := map[string][]CalibrationObservation{
		"q1":    make([]CalibrationObservation, 20),
		"q2":    make([]CalibrationObservation, 2), // below minimum
		"ghost": make([]CalibrationObservation, 20),
	}
	for i := range obs["q1"] {
		obs["q1"][i] = CalibrationObservation{Theta: 0.5, Correct: i%4 != 0}
	}
	cal := CalibratePool(params, obs, 10)
	if _, ok := cal.Updated["q1"]; !ok {
		t.Error("q1 should calibrate")
	}
	if n, ok := cal.Skipped["q2"]; !ok || n != 2 {
		t.Errorf("q2 skip = %d, %v", n, ok)
	}
	if _, ok := cal.Updated["ghost"]; ok {
		t.Error("items outside the pool must not calibrate")
	}
	if cal.Observations != 22 {
		t.Errorf("observations = %d, want 22", cal.Observations)
	}
}
