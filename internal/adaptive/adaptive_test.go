package adaptive

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mineassess/internal/simulate"
)

func responsesFor(truth float64, n int, seed int64) []ResponseRecord {
	rng := rand.New(rand.NewSource(seed))
	var out []ResponseRecord
	for i := 0; i < n; i++ {
		b := -2 + 4*float64(i)/float64(n-1)
		p := simulate.IRTParams{A: 1.5, B: b}
		out = append(out, ResponseRecord{
			Params:  p,
			Correct: rng.Float64() < p.ProbCorrect(truth),
		})
	}
	return out
}

func TestEstimateMLERecoversAbility(t *testing.T) {
	for _, truth := range []float64{-1.5, 0, 1.2} {
		rs := responsesFor(truth, 200, 42)
		got, err := EstimateMLE(rs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth) > 0.45 {
			t.Errorf("MLE for truth %v = %v", truth, got)
		}
	}
}

func TestEstimateMLEDegenerate(t *testing.T) {
	p := simulate.IRTParams{A: 1, B: 0}
	allRight := []ResponseRecord{{Params: p, Correct: true}, {Params: p, Correct: true}}
	got, err := EstimateMLE(allRight)
	if err != nil || got != 4 {
		t.Errorf("all-right MLE = %v, %v; want +4", got, err)
	}
	allWrong := []ResponseRecord{{Params: p}, {Params: p}}
	got, err = EstimateMLE(allWrong)
	if err != nil || got != -4 {
		t.Errorf("all-wrong MLE = %v, %v; want -4", got, err)
	}
	if _, err := EstimateMLE(nil); err != ErrNoResponses {
		t.Errorf("empty MLE err = %v", err)
	}
}

func TestEstimateEAPRecoversAbilityAndShrinks(t *testing.T) {
	truth := 1.0
	rs := responsesFor(truth, 80, 7)
	theta, sd, err := EstimateEAP(rs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta-truth) > 0.5 {
		t.Errorf("EAP = %v, want near %v", theta, truth)
	}
	if sd <= 0 || sd > 0.5 {
		t.Errorf("posterior SD = %v, want small positive", sd)
	}
	// Fewer responses → larger SD.
	_, sdSmall, err := EstimateEAP(rs[:5])
	if err != nil {
		t.Fatal(err)
	}
	if sdSmall <= sd {
		t.Errorf("SD with 5 items (%v) should exceed SD with 80 (%v)", sdSmall, sd)
	}
	if _, _, err := EstimateEAP(nil); err != ErrNoResponses {
		t.Errorf("empty EAP err = %v", err)
	}
}

func TestEAPDefinedForDegeneratePatterns(t *testing.T) {
	p := simulate.IRTParams{A: 1.5, B: 0}
	theta, _, err := EstimateEAP([]ResponseRecord{{Params: p, Correct: true}})
	if err != nil {
		t.Fatal(err)
	}
	if theta <= 0 || theta > 4 {
		t.Errorf("one-correct EAP = %v, want small positive", theta)
	}
}

func TestTestInformationAndSE(t *testing.T) {
	params := []simulate.IRTParams{{A: 1.5, B: 0}, {A: 1.5, B: 0.2}}
	info := TestInformation(params, 0.1)
	if info <= 0 {
		t.Fatalf("info = %v", info)
	}
	se := StandardError(info)
	if math.Abs(se-1/math.Sqrt(info)) > 1e-12 {
		t.Errorf("SE = %v", se)
	}
	if !math.IsInf(StandardError(0), 1) {
		t.Error("SE of zero information should be +Inf")
	}
}

func TestMaxInformationPicksNearTheta(t *testing.T) {
	pool := UniformPool(41, 1.5, 3)
	idx := MaxInformation(nil, pool, 1.5)
	picked := pool[idx].Params.B
	if math.Abs(picked-1.5) > 0.3 {
		t.Errorf("picked b=%v for theta=1.5", picked)
	}
}

func TestRunAdaptiveSession(t *testing.T) {
	pool := UniformPool(100, 1.8, 3)
	truth := 0.8
	oracle := SimulatedOracle(rand.New(rand.NewSource(3)), truth)
	out, err := Run(Config{MaxItems: 30}, pool, oracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Administered) != 30 || len(out.Trace) != 30 {
		t.Fatalf("administered %d, trace %d", len(out.Administered), len(out.Trace))
	}
	if math.Abs(out.Theta-truth) > 0.6 {
		t.Errorf("final estimate %v, truth %v", out.Theta, truth)
	}
	// No item repeats.
	seen := make(map[string]bool)
	for _, id := range out.Administered {
		if seen[id] {
			t.Fatalf("item %s administered twice", id)
		}
		seen[id] = true
	}
}

func TestRunStopsAtTargetSE(t *testing.T) {
	pool := UniformPool(100, 2.0, 3)
	oracle := SimulatedOracle(rand.New(rand.NewSource(5)), 0)
	out, err := Run(Config{MaxItems: 100, TargetSE: 0.4}, pool, oracle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Administered) >= 100 {
		t.Errorf("TargetSE should stop early, used %d items", len(out.Administered))
	}
	if out.SE > 0.4 {
		t.Errorf("final SE %v exceeds target", out.SE)
	}
}

func TestRunValidation(t *testing.T) {
	pool := UniformPool(5, 1, 2)
	oracle := func(PoolItem) bool { return true }
	if _, err := Run(Config{MaxItems: 0}, pool, oracle, 1); err == nil {
		t.Error("MaxItems 0 should fail")
	}
	if _, err := Run(Config{MaxItems: 3}, nil, oracle, 1); err == nil {
		t.Error("empty pool should fail")
	}
	if _, err := Run(Config{MaxItems: 9}, pool, oracle, 1); err == nil {
		t.Error("MaxItems > pool should fail")
	}
}

func TestFixedForm(t *testing.T) {
	pool := UniformPool(20, 1.5, 2)
	oracle := SimulatedOracle(rand.New(rand.NewSource(9)), 0.5)
	out, err := FixedForm(10, pool, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Administered) != 10 {
		t.Errorf("administered = %d", len(out.Administered))
	}
	if _, err := FixedForm(0, pool, oracle); err == nil {
		t.Error("size 0 should fail")
	}
	if _, err := FixedForm(21, pool, oracle); err == nil {
		t.Error("oversize should fail")
	}
}

// E17: the ablation — adaptive selection beats random/fixed at equal length.
func TestCompareAdaptiveBeatsFixed(t *testing.T) {
	pool := UniformPool(200, 1.8, 3)
	rng := rand.New(rand.NewSource(11))
	abilities := make([]float64, 60)
	for i := range abilities {
		abilities[i] = rng.NormFloat64()
	}
	res, err := Compare(Config{MaxItems: 15}, pool, abilities, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptiveRMSE >= res.FixedRMSE {
		t.Errorf("adaptive RMSE %v should beat fixed RMSE %v",
			res.AdaptiveRMSE, res.FixedRMSE)
	}
	if res.AdaptiveRMSE > 0.8 {
		t.Errorf("adaptive RMSE %v suspiciously high", res.AdaptiveRMSE)
	}
}

// Randomesque exposure control: accuracy stays close to max-information
// while spreading item exposure.
func TestRandomesqueSpreadsExposure(t *testing.T) {
	pool := UniformPool(60, 1.8, 2)
	runCohort := func(sel Selector) []*Outcome {
		var outs []*Outcome
		for i := 0; i < 40; i++ {
			seed := int64(100 + i)
			oracle := SimulatedOracle(rand.New(rand.NewSource(seed)), 0) // all at theta 0
			out, err := Run(Config{MaxItems: 10, Selector: sel}, pool, oracle, seed)
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, out)
		}
		return outs
	}
	maxInfoOuts := runCohort(nil) // default MaxInformation
	randeskOuts := runCohort(Randomesque(8))

	peak := func(outs []*Outcome) float64 {
		rates := ExposureRates(pool, outs)
		maxRate := 0.0
		for _, r := range rates {
			if r > maxRate {
				maxRate = r
			}
		}
		return maxRate
	}
	// With identical examinees, pure max-information administers the same
	// first item to everyone (exposure 1.0); randomesque must spread it.
	if got := peak(maxInfoOuts); got < 0.99 {
		t.Errorf("max-information peak exposure = %v, want ~1", got)
	}
	if got := peak(randeskOuts); got > 0.9 {
		t.Errorf("randomesque peak exposure = %v, want < 0.9", got)
	}
}

func TestRandomesqueDegeneratesToMaxInfo(t *testing.T) {
	pool := UniformPool(20, 1.5, 2)
	sel := Randomesque(1)
	rng := rand.New(rand.NewSource(1))
	if got, want := sel(rng, pool, 0.5), MaxInformation(rng, pool, 0.5); got != want {
		t.Errorf("k=1 pick = %d, want %d", got, want)
	}
}

func TestExposureRatesEmpty(t *testing.T) {
	// Every pool item gets an explicit 0 entry even with no outcomes, so
	// exposure caps never mistake "absent key" for "unconstrained".
	pool := UniformPool(3, 1, 1)
	got := ExposureRates(pool, nil)
	if len(got) != len(pool) {
		t.Fatalf("entries = %d, want one per pool item (%d): %v", len(got), len(pool), got)
	}
	for _, it := range pool {
		if rate, ok := got[it.ID]; !ok || rate != 0 {
			t.Errorf("rate[%s] = %v, %v; want explicit 0", it.ID, rate, ok)
		}
	}
}

func TestExposureRatesCoverUnadministered(t *testing.T) {
	pool := UniformPool(4, 1, 1)
	outcomes := []*Outcome{
		{Administered: []string{"pool-001", "pool-002"}},
		{Administered: []string{"pool-001"}},
	}
	got := ExposureRates(pool, outcomes)
	if len(got) != 4 {
		t.Fatalf("entries = %d, want 4: %v", len(got), got)
	}
	if got["pool-001"] != 1 || got["pool-002"] != 0.5 {
		t.Errorf("rates = %v", got)
	}
	if rate, ok := got["pool-004"]; !ok || rate != 0 {
		t.Errorf("never-administered item missing explicit 0: %v, %v", rate, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	pool := UniformPool(5, 1, 1)
	oracle := func(PoolItem) bool { return true }
	for _, cfg := range []Config{
		{MaxItems: 0},
		{MaxItems: -3},
		{MaxItems: 3, TargetSE: -0.1},
	} {
		if _, err := Run(cfg, pool, oracle, 1); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("Run(%+v) = %v, want ErrInvalidConfig", cfg, err)
		}
		if _, err := Compare(cfg, pool, []float64{0}, 1); !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("Compare(%+v) = %v, want ErrInvalidConfig", cfg, err)
		}
	}
	if _, err := Run(Config{MaxItems: 6}, pool, oracle, 1); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("MaxItems > pool = %v, want ErrInvalidConfig", err)
	}
	if _, err := Run(Config{MaxItems: 2}, nil, oracle, 1); !errors.Is(err, ErrEmptyPool) {
		t.Errorf("empty pool = %v, want ErrEmptyPool", err)
	}
}

func TestCompareValidation(t *testing.T) {
	pool := UniformPool(10, 1, 2)
	if _, err := Compare(Config{MaxItems: 5}, pool, nil, 1); err == nil {
		t.Error("no abilities should fail")
	}
}

func TestUniformPoolShape(t *testing.T) {
	pool := UniformPool(5, 1.2, 2)
	if len(pool) != 5 {
		t.Fatalf("pool = %d", len(pool))
	}
	if pool[0].Params.B != -2 || pool[4].Params.B != 2 {
		t.Errorf("spread = [%v, %v], want [-2, 2]", pool[0].Params.B, pool[4].Params.B)
	}
	one := UniformPool(1, 1, 2)
	if len(one) != 1 {
		t.Fatal("single-item pool")
	}
}
