// Package adaptive implements the adaptive test algorithm the paper lists
// as future work (§6): computerized adaptive testing over an IRT-calibrated
// item pool with maximum-information item selection, maximum-likelihood and
// expected-a-posteriori ability estimation, and standard-error stopping
// rules. The fixed-form comparator used by the ablation benchmark lives
// here too.
package adaptive

import (
	"errors"
	"math"

	"mineassess/internal/simulate"
)

// ResponseRecord is one scored response for estimation.
type ResponseRecord struct {
	Params  simulate.IRTParams
	Correct bool
}

// ErrNoResponses is returned when estimating with no data.
var ErrNoResponses = errors.New("adaptive: no responses to estimate from")

// theta search bounds: estimates are clamped to this range, standard
// practice to keep all-right/all-wrong patterns finite.
const (
	thetaMin = -4.0
	thetaMax = 4.0
)

// EstimateMLE returns the maximum-likelihood ability estimate via
// Newton-Raphson with bisection fallback, clamped to [-4,4].
func EstimateMLE(responses []ResponseRecord) (float64, error) {
	if len(responses) == 0 {
		return 0, ErrNoResponses
	}
	allRight, allWrong := true, true
	for _, r := range responses {
		if r.Correct {
			allWrong = false
		} else {
			allRight = false
		}
	}
	// Degenerate patterns have no interior maximum.
	if allRight {
		return thetaMax, nil
	}
	if allWrong {
		return thetaMin, nil
	}
	theta := 0.0
	for iter := 0; iter < 50; iter++ {
		d1, d2 := logLikDerivs(responses, theta)
		if d2 >= 0 || math.Abs(d2) < 1e-12 {
			break // fall back to grid below
		}
		step := d1 / d2
		next := theta - step
		if next < thetaMin {
			next = thetaMin
		}
		if next > thetaMax {
			next = thetaMax
		}
		if math.Abs(next-theta) < 1e-8 {
			theta = next
			return theta, nil
		}
		theta = next
	}
	// Robust fallback: golden-section-style grid refinement.
	return gridMaximize(responses), nil
}

// logLikDerivs returns the first and second derivatives of the 3PL
// log-likelihood at theta.
func logLikDerivs(responses []ResponseRecord, theta float64) (d1, d2 float64) {
	const h = 1e-4
	f := func(t float64) float64 { return logLik(responses, t) }
	d1 = (f(theta+h) - f(theta-h)) / (2 * h)
	d2 = (f(theta+h) - 2*f(theta) + f(theta-h)) / (h * h)
	return d1, d2
}

func logLik(responses []ResponseRecord, theta float64) float64 {
	ll := 0.0
	for _, r := range responses {
		p := r.Params.ProbCorrect(theta)
		if p < 1e-9 {
			p = 1e-9
		}
		if p > 1-1e-9 {
			p = 1 - 1e-9
		}
		if r.Correct {
			ll += math.Log(p)
		} else {
			ll += math.Log(1 - p)
		}
	}
	return ll
}

func gridMaximize(responses []ResponseRecord) float64 {
	best, bestLL := thetaMin, math.Inf(-1)
	for i := 0; i <= 800; i++ {
		t := thetaMin + (thetaMax-thetaMin)*float64(i)/800
		if ll := logLik(responses, t); ll > bestLL {
			bestLL = ll
			best = t
		}
	}
	return best
}

// EstimateEAP returns the expected-a-posteriori ability estimate and its
// posterior standard deviation under a standard-normal prior, evaluated on
// a fixed quadrature grid. EAP is defined even for all-right/all-wrong
// patterns, which makes it the default inside CAT loops.
func EstimateEAP(responses []ResponseRecord) (theta, sd float64, err error) {
	if len(responses) == 0 {
		return 0, 0, ErrNoResponses
	}
	const points = 81
	var sumW, sumWT, sumWT2 float64
	for i := 0; i < points; i++ {
		t := thetaMin + (thetaMax-thetaMin)*float64(i)/float64(points-1)
		w := math.Exp(logLik(responses, t)) * math.Exp(-t*t/2)
		sumW += w
		sumWT += w * t
		sumWT2 += w * t * t
	}
	if sumW == 0 {
		return 0, 0, errors.New("adaptive: EAP posterior underflow")
	}
	theta = sumWT / sumW
	variance := sumWT2/sumW - theta*theta
	if variance < 0 {
		variance = 0
	}
	return theta, math.Sqrt(variance), nil
}

// TestInformation sums item information at theta — the reciprocal square of
// the asymptotic standard error.
func TestInformation(params []simulate.IRTParams, theta float64) float64 {
	total := 0.0
	for _, p := range params {
		total += p.Information(theta)
	}
	return total
}

// StandardError converts test information into the asymptotic SE of the MLE.
func StandardError(info float64) float64 {
	if info <= 0 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(info)
}
