package adaptive

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mineassess/internal/simulate"
)

// gridPool builds a diverse 3PL pool for grid-accuracy checks.
func gridPool(n int, seed int64) []PoolItem {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]PoolItem, n)
	for i := range pool {
		pool[i] = PoolItem{
			ID: fmt.Sprintf("it-%03d", i),
			Params: simulate.IRTParams{
				A: 0.5 + 1.5*rng.Float64(),
				B: -3.5 + 7*rng.Float64(),
				C: 0.25 * rng.Float64(),
			},
		}
	}
	return pool
}

// TestInfoGridInterpolationAccuracy: interpolated information must track the
// exact 3PL computation closely across the whole theta range, including
// off-grid thetas and clamped ones outside it.
func TestInfoGridInterpolationAccuracy(t *testing.T) {
	pool := gridPool(50, 11)
	g := NewDefaultInfoGrid(pool)
	if g.Items() != len(pool) {
		t.Fatalf("Items() = %d, want %d", g.Items(), len(pool))
	}
	for theta := -4.3; theta <= 4.3; theta += 0.0137 {
		clamped := math.Max(thetaMin, math.Min(thetaMax, theta))
		for i, it := range pool {
			exact := it.Params.Information(clamped)
			got := g.Info(i, theta)
			if diff := math.Abs(got - exact); diff > 1e-3 && diff > 0.01*exact {
				t.Fatalf("item %d theta %.4f: grid %.6f vs exact %.6f", i, theta, got, exact)
			}
		}
	}
}

// TestInfoGridArgMaxMatchesExactSelection pins the grid-backed selection to
// the exact computation: across a dense theta sweep and random candidate
// subsets, the chosen item's true information must be within tolerance of
// the true maximum (near-exact ties may legitimately swap winners; a
// materially worse pick is a bug).
func TestInfoGridArgMaxMatchesExactSelection(t *testing.T) {
	pool := gridPool(120, 23)
	g := NewDefaultInfoGrid(pool)
	rng := rand.New(rand.NewSource(5))
	all := make([]int, len(pool))
	for i := range all {
		all[i] = i
	}
	subsets := [][]int{all}
	for i := 0; i < 8; i++ {
		sub := append([]int(nil), all...)
		rng.Shuffle(len(sub), func(a, b int) { sub[a], sub[b] = sub[b], sub[a] })
		sub = sub[:10+rng.Intn(60)]
		sort.Ints(sub)
		subsets = append(subsets, sub)
	}
	for theta := -4.0; theta <= 4.0; theta += 0.0317 {
		for _, candidates := range subsets {
			chosen := g.ArgMax(candidates, theta)
			exactBest := -1.0
			for _, idx := range candidates {
				if info := pool[idx].Params.Information(theta); info > exactBest {
					exactBest = info
				}
			}
			chosenExact := pool[chosen].Params.Information(theta)
			if exactBest-chosenExact > 1e-3 {
				t.Fatalf("theta %.4f: grid chose item %d (exact info %.6f), true best %.6f",
					theta, chosen, chosenExact, exactBest)
			}
		}
	}
}

// TestInfoGridTopKStaysWithinExactTopK: the randomesque grid rule must only
// draw items whose exact information reaches the exact k-th best (within
// tolerance) — grid approximation may reorder near-ties but never promote a
// materially weaker item into the pick set.
func TestInfoGridTopKStaysWithinExactTopK(t *testing.T) {
	pool := gridPool(80, 31)
	g := NewDefaultInfoGrid(pool)
	all := make([]int, len(pool))
	for i := range all {
		all[i] = i
	}
	const k = 5
	for theta := -3.5; theta <= 3.5; theta += 0.5 {
		infos := make([]float64, len(pool))
		for i, it := range pool {
			infos[i] = it.Params.Information(theta)
		}
		ranked := append([]float64(nil), infos...)
		sort.Sort(sort.Reverse(sort.Float64Slice(ranked)))
		kth := ranked[k-1]
		for draw := 0; draw < 20; draw++ {
			rng := rand.New(rand.NewSource(int64(draw)))
			chosen := g.TopK(rng, all, k, theta)
			if kth-infos[chosen] > 1e-3 {
				t.Fatalf("theta %.2f draw %d: picked item %d info %.6f below k-th best %.6f",
					theta, draw, chosen, infos[chosen], kth)
			}
		}
	}
	// k <= 1 degenerates to ArgMax.
	if got, want := g.TopK(rand.New(rand.NewSource(1)), all, 1, 0.3), g.ArgMax(all, 0.3); got != want {
		t.Fatalf("TopK(k=1) = %d, want ArgMax %d", got, want)
	}
}
