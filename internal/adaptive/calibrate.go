package adaptive

import (
	"errors"
	"fmt"
	"math"

	"mineassess/internal/simulate"
)

// Calibration: re-estimate item difficulty from collected live responses.
// This is the feedback half of the CAT loop — delivery estimates abilities
// from item parameters, calibration re-estimates item parameters from the
// responses of learners with (now-)known abilities. The method is the
// standard fixed-ability marginal step: hold each respondent's theta at its
// final estimate and each item's discrimination/guessing fixed, and fit the
// difficulty b by maximum likelihood with a weak normal prior that keeps
// tiny samples from running to the scale edges.

// CalibrationObservation is one scored response annotated with the
// respondent's ability estimate.
type CalibrationObservation struct {
	// Theta is the respondent's ability estimate at the time of scoring
	// (usually the session's final EAP estimate).
	Theta float64
	// Correct is the dichotomized response.
	Correct bool
}

// ErrTooFewObservations is returned when an item has fewer responses than
// the requested minimum.
var ErrTooFewObservations = errors.New("adaptive: too few observations to calibrate")

// priorSD is the spread of the weak normal prior centred on the item's
// current difficulty. With n observations the data term grows like n, so
// the prior washes out quickly but pins near-degenerate response patterns
// (all correct / all incorrect) to a finite update.
const priorSD = 2.0

// CalibrateDifficulty refits one item's difficulty from observations,
// keeping its discrimination and guessing fixed. minObs guards against
// recalibrating from noise; pass 0 for the package default of 10.
func CalibrateDifficulty(p simulate.IRTParams, obs []CalibrationObservation, minObs int) (float64, error) {
	if minObs <= 0 {
		minObs = DefaultMinCalibrationObs
	}
	if len(obs) < minObs {
		return 0, fmt.Errorf("%w: have %d, need %d", ErrTooFewObservations, len(obs), minObs)
	}
	// Penalized log-likelihood of difficulty b on a fixed grid, refined once
	// around the coarse optimum. The function is unimodal in b for the 3PL
	// with a <= fixed, so two grid passes land within ~1e-3 of the optimum —
	// far below calibration noise.
	best := gridFitB(p, obs, thetaMin, thetaMax, 161)
	span := (thetaMax - thetaMin) / 160
	return gridFitB(p, obs, best-span, best+span, 81), nil
}

// DefaultMinCalibrationObs is the default minimum response count per item.
const DefaultMinCalibrationObs = 10

func gridFitB(p simulate.IRTParams, obs []CalibrationObservation, lo, hi float64, points int) float64 {
	if lo < thetaMin {
		lo = thetaMin
	}
	if hi > thetaMax {
		hi = thetaMax
	}
	bestB, bestLL := lo, math.Inf(-1)
	cand := p
	for i := 0; i < points; i++ {
		b := lo + (hi-lo)*float64(i)/float64(points-1)
		cand.B = b
		ll := -((b - p.B) * (b - p.B)) / (2 * priorSD * priorSD)
		for _, o := range obs {
			prob := cand.ProbCorrect(o.Theta)
			if prob < 1e-9 {
				prob = 1e-9
			}
			if prob > 1-1e-9 {
				prob = 1 - 1e-9
			}
			if o.Correct {
				ll += math.Log(prob)
			} else {
				ll += math.Log(1 - prob)
			}
		}
		if ll > bestLL {
			bestLL = ll
			bestB = b
		}
	}
	return bestB
}

// PoolCalibration summarizes one Recalibrate pass.
type PoolCalibration struct {
	// Updated maps item ID to its refitted parameters.
	Updated map[string]simulate.IRTParams
	// Skipped maps item ID to the number of observations it had, for items
	// below the minimum.
	Skipped map[string]int
	// Observations is the total response count consumed.
	Observations int
}

// CalibratePool refits difficulty for every item with enough observations.
// params carries the current pool parameters; obs maps item ID to its
// collected observations. Items without observations are left untouched
// (and not reported as skipped — they were never up for calibration).
func CalibratePool(params map[string]simulate.IRTParams, obs map[string][]CalibrationObservation, minObs int) *PoolCalibration {
	out := &PoolCalibration{
		Updated: make(map[string]simulate.IRTParams),
		Skipped: make(map[string]int),
	}
	for id, responses := range obs {
		p, ok := params[id]
		if !ok {
			continue // not part of the calibrated pool
		}
		out.Observations += len(responses)
		b, err := CalibrateDifficulty(p, responses, minObs)
		if err != nil {
			out.Skipped[id] = len(responses)
			continue
		}
		p.B = b
		out.Updated[id] = p
	}
	return out
}
