package adaptive

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mineassess/internal/simulate"
)

// PoolItem is one item available to the adaptive test.
type PoolItem struct {
	ID     string
	Params simulate.IRTParams
}

// Config controls one adaptive session.
type Config struct {
	// MaxItems stops the test after this many administrations (required).
	MaxItems int
	// TargetSE stops early once the EAP posterior SD drops below it;
	// 0 disables early stopping.
	TargetSE float64
	// Selector picks the next item; nil means MaxInformation.
	Selector Selector
}

// Config validation errors, matchable through ErrInvalidConfig.
var (
	// ErrInvalidConfig is the common sentinel every Config rejection wraps.
	ErrInvalidConfig = errors.New("adaptive: invalid config")
	// ErrEmptyPool is returned when there are no items to administer.
	ErrEmptyPool = errors.New("adaptive: empty item pool")
)

// Validate rejects unusable configurations with typed errors — no silent
// defaulting of nonsense values.
func (c Config) Validate() error {
	if c.MaxItems <= 0 {
		return fmt.Errorf("%w: MaxItems must be positive, got %d", ErrInvalidConfig, c.MaxItems)
	}
	if c.TargetSE < 0 {
		return fmt.Errorf("%w: TargetSE must not be negative, got %v", ErrInvalidConfig, c.TargetSE)
	}
	return nil
}

// Selector chooses the next item index from the remaining pool given the
// current ability estimate.
type Selector func(rng *rand.Rand, remaining []PoolItem, theta float64) int

// MaxInformation picks the item with the greatest Fisher information at the
// current estimate — the classical CAT rule.
func MaxInformation(_ *rand.Rand, remaining []PoolItem, theta float64) int {
	best, bestInfo := 0, -1.0
	for i, it := range remaining {
		if info := it.Params.Information(theta); info > bestInfo {
			bestInfo = info
			best = i
		}
	}
	return best
}

// RandomSelection picks uniformly — the ablation baseline.
func RandomSelection(rng *rand.Rand, remaining []PoolItem, _ float64) int {
	return rng.Intn(len(remaining))
}

// Randomesque returns a selector that picks uniformly among the k most
// informative items — the standard exposure-control compromise between pure
// max-information (overexposes a few items) and random selection. k <= 1
// degenerates to MaxInformation.
func Randomesque(k int) Selector {
	return func(rng *rand.Rand, remaining []PoolItem, theta float64) int {
		if k <= 1 || len(remaining) <= 1 {
			return MaxInformation(rng, remaining, theta)
		}
		limit := k
		if limit > len(remaining) {
			limit = len(remaining)
		}
		type ranked struct {
			idx  int
			info float64
		}
		top := make([]ranked, 0, limit)
		for i, it := range remaining {
			info := it.Params.Information(theta)
			if len(top) < limit {
				top = append(top, ranked{i, info})
				continue
			}
			// Replace the weakest of the current top when beaten.
			weakest := 0
			for j := 1; j < len(top); j++ {
				if top[j].info < top[weakest].info {
					weakest = j
				}
			}
			if info > top[weakest].info {
				top[weakest] = ranked{i, info}
			}
		}
		return top[rng.Intn(len(top))].idx
	}
}

// ExposureRates counts how often each pool item was administered across
// outcomes, as a fraction of the number of sessions. Every pool item gets an
// entry — never-administered items report an explicit 0 rate even when there
// are no outcomes at all, so downstream exposure caps see unseen items as
// fully available rather than unconstrained-by-omission.
func ExposureRates(pool []PoolItem, outcomes []*Outcome) map[string]float64 {
	counts := make(map[string]int, len(pool))
	for _, o := range outcomes {
		for _, id := range o.Administered {
			counts[id]++
		}
	}
	out := make(map[string]float64, len(pool))
	for _, it := range pool {
		if len(outcomes) == 0 {
			out[it.ID] = 0
			continue
		}
		out[it.ID] = float64(counts[it.ID]) / float64(len(outcomes))
	}
	return out
}

// Outcome is the result of one adaptive session.
type Outcome struct {
	// Administered lists item IDs in administration order.
	Administered []string
	// Theta is the final EAP ability estimate; SE its posterior SD.
	Theta, SE float64
	// Trace holds the estimate after each administered item.
	Trace []float64
}

// Oracle answers items for a simulated (or live) examinee.
type Oracle func(item PoolItem) bool

// SimulatedOracle answers according to the 3PL with the given true ability,
// driven by the provided RNG.
func SimulatedOracle(rng *rand.Rand, trueTheta float64) Oracle {
	return func(it PoolItem) bool {
		return rng.Float64() < it.Params.ProbCorrect(trueTheta)
	}
}

// Run administers an adaptive test against the oracle.
func Run(cfg Config, pool []PoolItem, oracle Oracle, seed int64) (*Outcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pool) == 0 {
		return nil, ErrEmptyPool
	}
	if cfg.MaxItems > len(pool) {
		return nil, fmt.Errorf("%w: MaxItems %d exceeds pool size %d",
			ErrInvalidConfig, cfg.MaxItems, len(pool))
	}
	selector := cfg.Selector
	if selector == nil {
		selector = MaxInformation
	}
	rng := rand.New(rand.NewSource(seed))
	remaining := append([]PoolItem(nil), pool...)
	var responses []ResponseRecord
	out := &Outcome{}
	theta := 0.0 // prior mean before any data
	for len(out.Administered) < cfg.MaxItems {
		idx := selector(rng, remaining, theta)
		it := remaining[idx]
		remaining = append(remaining[:idx], remaining[idx+1:]...)
		correct := oracle(it)
		responses = append(responses, ResponseRecord{Params: it.Params, Correct: correct})
		out.Administered = append(out.Administered, it.ID)

		est, sd, err := EstimateEAP(responses)
		if err != nil {
			return nil, err
		}
		theta = est
		out.Theta = est
		out.SE = sd
		out.Trace = append(out.Trace, est)
		if cfg.TargetSE > 0 && sd <= cfg.TargetSE {
			break
		}
	}
	return out, nil
}

// FixedForm administers the first n pool items in order — the non-adaptive
// comparator for E17.
func FixedForm(n int, pool []PoolItem, oracle Oracle) (*Outcome, error) {
	if n <= 0 || n > len(pool) {
		return nil, fmt.Errorf("adaptive: fixed form size %d invalid for pool %d", n, len(pool))
	}
	var responses []ResponseRecord
	out := &Outcome{}
	for _, it := range pool[:n] {
		correct := oracle(it)
		responses = append(responses, ResponseRecord{Params: it.Params, Correct: correct})
		out.Administered = append(out.Administered, it.ID)
	}
	est, sd, err := EstimateEAP(responses)
	if err != nil {
		return nil, err
	}
	out.Theta = est
	out.SE = sd
	out.Trace = []float64{est}
	return out, nil
}

// CompareResult summarizes the adaptive-vs-fixed ablation over a cohort.
type CompareResult struct {
	AdaptiveRMSE, FixedRMSE   float64
	AdaptiveItems, FixedItems float64 // mean administered lengths
}

// Compare runs both designs over a cohort of true abilities and reports
// ability-recovery RMSE and mean test length. The expected shape: at equal
// maximum length, adaptive recovers ability with lower RMSE, and with a
// TargetSE it does so using fewer items.
func Compare(cfg Config, pool []PoolItem, abilities []float64, seed int64) (*CompareResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(abilities) == 0 {
		return nil, errors.New("adaptive: no abilities to compare")
	}
	var res CompareResult
	var sumSqA, sumSqF, sumItemsA float64
	for i, truth := range abilities {
		examSeed := seed + int64(i)*7919
		oracleA := SimulatedOracle(rand.New(rand.NewSource(examSeed)), truth)
		a, err := Run(cfg, pool, oracleA, examSeed)
		if err != nil {
			return nil, err
		}
		oracleF := SimulatedOracle(rand.New(rand.NewSource(examSeed)), truth)
		f, err := FixedForm(cfg.MaxItems, pool, oracleF)
		if err != nil {
			return nil, err
		}
		sumSqA += (a.Theta - truth) * (a.Theta - truth)
		sumSqF += (f.Theta - truth) * (f.Theta - truth)
		sumItemsA += float64(len(a.Administered))
	}
	n := float64(len(abilities))
	res.AdaptiveRMSE = math.Sqrt(sumSqA / n)
	res.FixedRMSE = math.Sqrt(sumSqF / n)
	res.AdaptiveItems = sumItemsA / n
	res.FixedItems = float64(cfg.MaxItems)
	return &res, nil
}

// UniformPool builds a pool of n items with difficulties spread evenly over
// [-spread, spread] and the given discrimination — a convenience for
// benchmarks and examples.
func UniformPool(n int, a, spread float64) []PoolItem {
	pool := make([]PoolItem, 0, n)
	for i := 0; i < n; i++ {
		b := -spread + 2*spread*float64(i)/float64(max(n-1, 1))
		pool = append(pool, PoolItem{
			ID:     fmt.Sprintf("pool-%03d", i+1),
			Params: simulate.IRTParams{A: a, B: b},
		})
	}
	return pool
}
