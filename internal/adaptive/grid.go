package adaptive

import "math/rand"

// InfoGrid precomputes every pool item's Fisher information on a fixed theta
// grid, turning the per-step item-selection inner loop — pool-size × 3PL
// information evaluations (exp calls) per administered item — into a flat
// array scan with linear interpolation. Rows are pool indices in the order
// the grid was built from; selection APIs take and return those indices, so
// callers can filter candidates (administered items, exposure caps) without
// rebuilding anything.
//
// A grid is immutable once built: share one per calibrated pool and rebuild
// only when the pool's parameters change (recalibration).
type InfoGrid struct {
	min, max float64
	step     float64
	points   int
	items    int
	// vals is theta-major: vals[j*items+i] = info(item i, grid theta j).
	// Selection fixes one grid cell (two adjacent theta rows) and scans all
	// candidates, so this layout keeps the ArgMax/TopK inner loop on two
	// contiguous slices instead of striding `points` floats per item.
	vals []float64
}

// DefaultGridPoints spans [thetaMin, thetaMax] at a 0.025 step — fine enough
// that interpolated information orders items like the exact computation does
// for any realistically separated pool.
const DefaultGridPoints = 321

// NewInfoGrid tabulates the pool's information over [min, max] at the given
// resolution (points >= 2; DefaultGridPoints when in doubt).
func NewInfoGrid(pool []PoolItem, min, max float64, points int) *InfoGrid {
	if points < 2 {
		points = 2
	}
	if max <= min {
		max = min + 1
	}
	g := &InfoGrid{
		min:    min,
		max:    max,
		step:   (max - min) / float64(points-1),
		points: points,
		items:  len(pool),
		vals:   make([]float64, len(pool)*points),
	}
	for i, it := range pool {
		for j := 0; j < points; j++ {
			g.vals[j*g.items+i] = it.Params.Information(min + float64(j)*g.step)
		}
	}
	return g
}

// NewDefaultInfoGrid tabulates over the estimator's theta range at the
// default resolution — the grid every caller without special needs wants.
func NewDefaultInfoGrid(pool []PoolItem) *InfoGrid {
	return NewInfoGrid(pool, thetaMin, thetaMax, DefaultGridPoints)
}

// Items reports the number of pool rows.
func (g *InfoGrid) Items() int { return g.items }

// locate resolves theta to its grid cell: the index of the lower bound and
// the interpolation fraction within the cell. Thetas outside the grid clamp
// to its edges (matching the estimators, which clamp to the same range).
func (g *InfoGrid) locate(theta float64) (int, float64) {
	if theta <= g.min {
		return 0, 0
	}
	if theta >= g.max {
		return g.points - 2, 1
	}
	pos := (theta - g.min) / g.step
	j := int(pos)
	if j > g.points-2 {
		j = g.points - 2
	}
	return j, pos - float64(j)
}

// Info returns item's interpolated information at theta.
func (g *InfoGrid) Info(itemIdx int, theta float64) float64 {
	j, frac := g.locate(theta)
	lo := g.vals[j*g.items+itemIdx]
	hi := g.vals[(j+1)*g.items+itemIdx]
	return lo + frac*(hi-lo)
}

// ArgMax returns the candidate pool index with the greatest information at
// theta — the grid-backed MaxInformation. Ties break to the earliest
// candidate, like the exact selector. candidates must be non-empty.
func (g *InfoGrid) ArgMax(candidates []int, theta float64) int {
	j, frac := g.locate(theta)
	lo := g.vals[j*g.items : (j+1)*g.items]
	hi := g.vals[(j+1)*g.items : (j+2)*g.items]
	best, bestInfo := candidates[0], -1.0
	for _, idx := range candidates {
		if info := lo[idx] + frac*(hi[idx]-lo[idx]); info > bestInfo {
			bestInfo = info
			best = idx
		}
	}
	return best
}

// TopK picks uniformly among the k most informative candidates at theta —
// the grid-backed Randomesque. It mirrors the exact selector's algorithm
// (fill k, then replace the weakest on strict improvement) so a given rng
// stream draws the same item whenever the information ordering agrees.
// k <= 1 degenerates to ArgMax.
func (g *InfoGrid) TopK(rng *rand.Rand, candidates []int, k int, theta float64) int {
	if k <= 1 || len(candidates) <= 1 {
		return g.ArgMax(candidates, theta)
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	j, frac := g.locate(theta)
	lo := g.vals[j*g.items : (j+1)*g.items]
	hi := g.vals[(j+1)*g.items : (j+2)*g.items]
	type ranked struct {
		idx  int
		info float64
	}
	top := make([]ranked, 0, k)
	for _, idx := range candidates {
		info := lo[idx] + frac*(hi[idx]-lo[idx])
		if len(top) < k {
			top = append(top, ranked{idx, info})
			continue
		}
		weakest := 0
		for w := 1; w < len(top); w++ {
			if top[w].info < top[weakest].info {
				weakest = w
			}
		}
		if info > top[weakest].info {
			top[weakest] = ranked{idx, info}
		}
	}
	return top[rng.Intn(len(top))].idx
}
