package delivery

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2004, 3, 1, 9, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// examFixture stores 4 MC problems and an exam with a 10-minute limit.
func examFixture(t *testing.T, resumable bool) (*bank.Store, string) {
	t.Helper()
	s := bank.New()
	var ids []string
	for i := 0; i < 4; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%d", i+1), "?",
			[]string{"w", "x", "y", "z"}, 0) // correct A
		if err != nil {
			t.Fatal(err)
		}
		p.Level = cognition.Knowledge
		p.Resumable = resumable
		if err := s.AddProblem(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	rec := &bank.ExamRecord{ID: "exam1", Title: "Quiz", ProblemIDs: ids,
		Display: item.FixedOrder, TestTimeSeconds: 600}
	if err := s.AddExam(rec); err != nil {
		t.Fatal(err)
	}
	return s, rec.ID
}

func TestSessionLifecycle(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 16)

	sess, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if len(sess.Order) != 4 {
		t.Fatalf("order = %v", sess.Order)
	}

	clock.Advance(time.Minute)
	if err := eng.Answer(sess.ID, "q1", "A"); err != nil {
		t.Fatalf("Answer q1: %v", err)
	}
	clock.Advance(2 * time.Minute)
	if err := eng.Answer(sess.ID, "q2", "B"); err != nil {
		t.Fatalf("Answer q2: %v", err)
	}
	if err := eng.Answer(sess.ID, "q2", "C"); !errors.Is(err, ErrAlreadyAnswered) {
		t.Errorf("re-answer = %v, want ErrAlreadyAnswered", err)
	}
	if err := eng.Answer(sess.ID, "ghost", "A"); !errors.Is(err, ErrUnknownProblem) {
		t.Errorf("unknown problem = %v, want ErrUnknownProblem", err)
	}

	st, err := eng.Status(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Answered != 2 || st.Total != 4 || st.State != StateRunning {
		t.Errorf("status = %+v", st)
	}
	if st.RemainingSeconds != 420 { // 10m - 3m
		t.Errorf("remaining = %d, want 420", st.RemainingSeconds)
	}

	res, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Responses) != 4 {
		t.Fatalf("responses = %d", len(res.Responses))
	}
	// q1 correct (A), q2 wrong (B), q3/q4 unanswered.
	if !res.Responses[0].Correct() || res.Responses[1].Correct() {
		t.Errorf("grading wrong: %+v", res.Responses[:2])
	}
	if res.Responses[0].TimeSpent != time.Minute {
		t.Errorf("q1 time = %v, want 1m", res.Responses[0].TimeSpent)
	}
	if res.Responses[2].Answered {
		t.Error("q3 should be unanswered")
	}
	// Finishing again is idempotent.
	res2, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Responses) != 4 {
		t.Error("idempotent finish broke result")
	}
}

// TestStatusRemainingSecondsRoundsUp: a running session with a sub-second
// remainder must not report RemainingSeconds == 0 — integer truncation used
// to show 0 while the session still accepted answers, so clients could not
// distinguish "about to expire" from "expired". Zero now uniquely means the
// clock has run out.
func TestStatusRemainingSecondsRoundsUp(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	sess, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Burn the 10-minute limit down to 400ms.
	clock.Advance(10*time.Minute - 400*time.Millisecond)
	st, err := eng.Status(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning {
		t.Fatalf("state = %v, want running", st.State)
	}
	if st.RemainingSeconds != 1 {
		t.Errorf("RemainingSeconds = %d, want 1 (400ms left rounds up)", st.RemainingSeconds)
	}
	// The session genuinely is still live: an answer lands.
	if err := eng.Answer(sess.ID, "q1", "A"); err != nil {
		t.Fatalf("answer with time on the clock: %v", err)
	}
	// Once the limit passes, 0 appears together with the expired state.
	clock.Advance(time.Second)
	st, err = eng.Status(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateExpired || st.RemainingSeconds != 0 {
		t.Errorf("after expiry: state = %v remaining = %d, want expired/0",
			st.State, st.RemainingSeconds)
	}

	// The boundary itself is exhausted time: a session at exactly its
	// limit is expired, never "running with 0 seconds left".
	sess2, err := eng.Start(examID, "brinkman", 2)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Minute)
	st, err = eng.Status(sess2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateExpired || st.RemainingSeconds != 0 {
		t.Errorf("at exact limit: state = %v remaining = %d, want expired/0",
			st.State, st.RemainingSeconds)
	}
}

func TestSessionTimeExpiry(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	sess, err := eng.Start(examID, "bob", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(sess.ID, "q1", "A"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(11 * time.Minute) // past the 10-minute limit
	if err := eng.Answer(sess.ID, "q2", "A"); !errors.Is(err, ErrTimeExpired) {
		t.Fatalf("late answer = %v, want ErrTimeExpired", err)
	}
	st, err := eng.Status(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateExpired {
		t.Errorf("state = %v, want expired", st.State)
	}
	// An expired session still yields a result with what was answered.
	res, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Responses[0]; !got.Correct() {
		t.Error("pre-expiry answer lost")
	}
}

func TestPauseResumeExcludesPausedTime(t *testing.T) {
	store, examID := examFixture(t, true)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	sess, err := eng.Start(examID, "carol", 1)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	if err := eng.Pause(sess.ID); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	if err := eng.Answer(sess.ID, "q1", "A"); !errors.Is(err, ErrSessionNotActive) {
		t.Errorf("answer while paused = %v, want ErrSessionNotActive", err)
	}
	if err := eng.Pause(sess.ID); !errors.Is(err, ErrSessionNotActive) {
		t.Errorf("double pause = %v", err)
	}
	// A paused session reports the remainder it would resume with — 0 is
	// reserved for an exhausted clock, and the pause stops the clock.
	clock.Advance(30 * time.Minute) // a long break, beyond the 10m limit
	if st, err := eng.Status(sess.ID); err != nil || st.RemainingSeconds != 480 {
		t.Errorf("paused status = %+v, %v; want 480s remaining", st, err)
	}
	if err := eng.Resume(sess.ID); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := eng.Resume(sess.ID); !errors.Is(err, ErrNotPaused) {
		t.Errorf("double resume = %v", err)
	}
	// Only 2 active minutes have passed: the session must still be alive.
	if err := eng.Answer(sess.ID, "q1", "A"); err != nil {
		t.Fatalf("answer after resume: %v", err)
	}
	st, err := eng.Status(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning {
		t.Errorf("state = %v", st.State)
	}
	if st.RemainingSeconds != 480 { // 10m - 2m
		t.Errorf("remaining = %d, want 480", st.RemainingSeconds)
	}
}

func TestPauseRequiresResumableProblems(t *testing.T) {
	store, examID := examFixture(t, false)
	eng := NewEngine(store, newFakeClock().Now, 0)
	sess, err := eng.Start(examID, "dan", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Pause(sess.ID); !errors.Is(err, ErrNotResumable) {
		t.Errorf("pause = %v, want ErrNotResumable", err)
	}
}

func TestFinishWritesCMI(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	sess, err := eng.Start(examID, "eve", 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 of 4 correct = 75% -> passed.
	for _, q := range []string{"q1", "q2", "q3"} {
		clock.Advance(time.Minute)
		if err := eng.Answer(sess.ID, q, "A"); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(time.Minute)
	if err := eng.Answer(sess.ID, "q4", "B"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(sess.ID); err != nil {
		t.Fatal(err)
	}
	api, err := eng.RTE(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if api.Running() {
		t.Error("RTE should be finished")
	}
	// Inspect via a fresh snapshot: the engine wrote score and status
	// before LMSFinish, visible through the session's data model.
	// (LMSGetValue is unavailable after finish per the state machine.)
}

func TestCollectResultsFeedsAnalysis(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	// 8 students of descending skill: student i answers i questions
	// correctly.
	for i := 0; i < 8; i++ {
		sess, err := eng.Start(examID, fmt.Sprintf("s%d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 4; q++ {
			opt := "B" // wrong
			if q < i/2 {
				opt = "A"
			}
			clock.Advance(30 * time.Second)
			if err := eng.Answer(sess.ID, fmt.Sprintf("q%d", q+1), opt); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Finish(sess.ID); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.CollectResults(examID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Students) != 8 {
		t.Fatalf("students = %d, want 8", len(res.Students))
	}
	if res.TestTime != 10*time.Minute {
		t.Errorf("TestTime = %v", res.TestTime)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("collected result invalid: %v", err)
	}
	if _, err := analysis.Analyze(res, analysis.Options{}); err != nil {
		t.Fatalf("analysis over collected results: %v", err)
	}
}

func TestCollectResultsSkipsOpenSessions(t *testing.T) {
	store, examID := examFixture(t, false)
	eng := NewEngine(store, newFakeClock().Now, 0)
	if _, err := eng.Start(examID, "open", 1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.CollectResults(examID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Students) != 0 {
		t.Errorf("open sessions must not appear in results: %d", len(res.Students))
	}
}

func TestStartErrors(t *testing.T) {
	store, _ := examFixture(t, false)
	eng := NewEngine(store, nil, 0)
	if _, err := eng.Start("ghost", "x", 1); !errors.Is(err, bank.ErrExamNotFound) {
		t.Errorf("unknown exam = %v", err)
	}
	if _, err := eng.Status("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("unknown session = %v", err)
	}
	if _, err := eng.Finish("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("finish unknown = %v", err)
	}
	if err := eng.Resume("nope"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("resume unknown = %v", err)
	}
}

// TestRandomOrderShufflesOptions: a RandomOrder exam presents shuffled
// options per sitting, yet collected results report authored keys.
func TestRandomOrderShufflesOptions(t *testing.T) {
	store, _ := examFixture(t, false)
	rec := &bank.ExamRecord{ID: "rand", Title: "Shuffled",
		ProblemIDs: []string{"q1", "q2", "q3", "q4"}, Display: item.RandomOrder}
	if err := store.AddExam(rec); err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)

	// Find a seed where q1's options actually moved (A no longer correct).
	var sess *Session
	for seed := int64(1); seed < 50; seed++ {
		s, err := eng.Start("rand", fmt.Sprintf("stu%d", seed), seed)
		if err != nil {
			t.Fatal(err)
		}
		if s.problems["q1"].Answer != "A" {
			sess = s
			break
		}
	}
	if sess == nil {
		t.Fatal("no seed shuffled q1's answer away from A in 50 tries")
	}
	shuffledKey := sess.problems["q1"].Answer
	// Answer q1 with the shuffled correct key: full credit.
	if err := eng.Answer(sess.ID, "q1", shuffledKey); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Responses {
		if r.ProblemID != "q1" {
			continue
		}
		if !r.Correct() {
			t.Error("shuffled correct answer should earn credit")
		}
		// The collected option must be the authored key A.
		if r.Option != "A" {
			t.Errorf("collected option = %q, want authored key A", r.Option)
		}
	}
}

func TestFixedOrderDoesNotShuffleOptions(t *testing.T) {
	store, examID := examFixture(t, false)
	eng := NewEngine(store, newFakeClock().Now, 0)
	sess, err := eng.Start(examID, "plain", 77)
	if err != nil {
		t.Fatal(err)
	}
	if sess.problems["q1"].Answer != "A" {
		t.Error("fixed-order exam must keep authored option order")
	}
	if len(sess.optionMaps) != 0 {
		t.Errorf("fixed-order exam has option maps: %v", sess.optionMaps)
	}
}

func TestSessionStateString(t *testing.T) {
	names := map[SessionState]string{
		StateRunning:    "running",
		StatePaused:     "paused",
		StateFinished:   "finished",
		StateExpired:    "expired",
		SessionState(9): "state(9)",
	}
	for st, want := range names {
		if got := st.String(); got != want {
			t.Errorf("%d = %q, want %q", int(st), got, want)
		}
	}
}
