package delivery

import (
	"hash/fnv"
	"sync"
	"time"
)

// Snapshot is one captured "client picture" event. The paper's monitor
// captures webcam pictures during the exam; here the frame payload is
// simulated by a deterministic hash (what matters to the LMS plumbing is the
// capture/record/query path, not pixels).
type Snapshot struct {
	SessionID string    `json:"sessionId"`
	Seq       int       `json:"seq"`
	At        time.Time `json:"at"`
	// FrameHash stands in for the captured frame's content digest.
	FrameHash uint64 `json:"frameHash"`
}

// Monitor is the on-line exam monitor subsystem: a bounded per-session ring
// of snapshots an administrator can query while exams run.
type Monitor struct {
	mu       sync.Mutex
	capacity int
	rings    map[string][]Snapshot
	seqs     map[string]int
}

// NewMonitor builds a monitor keeping up to capacity snapshots per session;
// capacity <= 0 disables capture.
func NewMonitor(capacity int) *Monitor {
	return &Monitor{
		capacity: capacity,
		rings:    make(map[string][]Snapshot),
		seqs:     make(map[string]int),
	}
}

// Enabled reports whether capture is active.
func (m *Monitor) Enabled() bool {
	return m.capacity > 0
}

// Capture records one snapshot for the session; oldest entries fall off the
// ring when the capacity is reached.
func (m *Monitor) Capture(sessionID string, at time.Time) {
	if m.capacity <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seqs[sessionID]++
	seq := m.seqs[sessionID]
	snap := Snapshot{
		SessionID: sessionID,
		Seq:       seq,
		At:        at,
		FrameHash: frameHash(sessionID, seq),
	}
	ring := append(m.rings[sessionID], snap)
	if len(ring) > m.capacity {
		ring = ring[len(ring)-m.capacity:]
	}
	m.rings[sessionID] = ring
}

// Snapshots returns a copy of the session's retained snapshots in capture
// order.
func (m *Monitor) Snapshots(sessionID string) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	ring := m.rings[sessionID]
	out := make([]Snapshot, len(ring))
	copy(out, ring)
	return out
}

// Captured returns the total number of captures ever taken for the session
// (including ones that have fallen off the ring).
func (m *Monitor) Captured(sessionID string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seqs[sessionID]
}

// frameHash simulates a frame digest deterministically from identity and
// sequence so tests and replays are stable.
func frameHash(sessionID string, seq int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sessionID))
	var b [4]byte
	b[0] = byte(seq)
	b[1] = byte(seq >> 8)
	b[2] = byte(seq >> 16)
	b[3] = byte(seq >> 24)
	_, _ = h.Write(b[:])
	return h.Sum64()
}
