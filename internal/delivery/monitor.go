package delivery

import (
	"hash/fnv"
	"sync"
	"time"
)

// Snapshot is one captured "client picture" event. The paper's monitor
// captures webcam pictures during the exam; here the frame payload is
// simulated by a deterministic hash (what matters to the LMS plumbing is the
// capture/record/query path, not pixels).
type Snapshot struct {
	SessionID string    `json:"sessionId"`
	Seq       int       `json:"seq"`
	At        time.Time `json:"at"`
	// FrameHash stands in for the captured frame's content digest.
	FrameHash uint64 `json:"frameHash"`
}

// monitorShards spreads capture traffic: every Answer triggers a Capture, so
// a single monitor mutex would re-serialize the sessions the sharded engine
// just decoupled.
const monitorShards = 16

// Monitor is the on-line exam monitor subsystem: a bounded per-session ring
// of snapshots an administrator can query while exams run. Rings are spread
// over shards keyed by session ID so captures from unrelated sessions do not
// contend.
type Monitor struct {
	capacity int
	shards   []monitorShard
}

type monitorShard struct {
	mu    sync.Mutex
	rings map[string][]Snapshot
	seqs  map[string]int
}

// NewMonitor builds a monitor keeping up to capacity snapshots per session;
// capacity <= 0 disables capture.
func NewMonitor(capacity int) *Monitor {
	m := &Monitor{
		capacity: capacity,
		shards:   make([]monitorShard, monitorShards),
	}
	for i := range m.shards {
		m.shards[i].rings = make(map[string][]Snapshot)
		m.shards[i].seqs = make(map[string]int)
	}
	return m
}

// Enabled reports whether capture is active.
func (m *Monitor) Enabled() bool {
	return m.capacity > 0
}

func (m *Monitor) shard(sessionID string) *monitorShard {
	return &m.shards[fnvShard(sessionID, len(m.shards))]
}

// Capture records one snapshot for the session; oldest entries fall off the
// ring when the capacity is reached.
func (m *Monitor) Capture(sessionID string, at time.Time) {
	if m.capacity <= 0 {
		return
	}
	sh := m.shard(sessionID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.seqs[sessionID]++
	seq := sh.seqs[sessionID]
	snap := Snapshot{
		SessionID: sessionID,
		Seq:       seq,
		At:        at,
		FrameHash: frameHash(sessionID, seq),
	}
	ring := append(sh.rings[sessionID], snap)
	if len(ring) > m.capacity {
		ring = ring[len(ring)-m.capacity:]
	}
	sh.rings[sessionID] = ring
}

// Snapshots returns a copy of the session's retained snapshots in capture
// order.
func (m *Monitor) Snapshots(sessionID string) []Snapshot {
	sh := m.shard(sessionID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ring := sh.rings[sessionID]
	out := make([]Snapshot, len(ring))
	copy(out, ring)
	return out
}

// Forget drops a session's ring and capture counter — retention passes
// call this when a session is purged so monitor memory does not scale
// with lifetime session count.
func (m *Monitor) Forget(sessionID string) {
	sh := m.shard(sessionID)
	sh.mu.Lock()
	delete(sh.rings, sessionID)
	delete(sh.seqs, sessionID)
	sh.mu.Unlock()
}

// Captured returns the total number of captures ever taken for the session
// (including ones that have fallen off the ring).
func (m *Monitor) Captured(sessionID string) int {
	sh := m.shard(sessionID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.seqs[sessionID]
}

// frameHash simulates a frame digest deterministically from identity and
// sequence so tests and replays are stable.
func frameHash(sessionID string, seq int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(sessionID))
	var b [4]byte
	b[0] = byte(seq)
	b[1] = byte(seq >> 8)
	b[2] = byte(seq >> 16)
	b[3] = byte(seq >> 24)
	_, _ = h.Write(b[:])
	return h.Sum64()
}
