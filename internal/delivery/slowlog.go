package delivery

import (
	"context"
	"log/slog"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/trace"
)

// SetSlowOpLog arms the engine's slow-operation log: Ctx-variant calls
// that run for at least threshold emit a Warn record through logger,
// tagged layer=delivery and carrying the request ID from the context, so
// a slow access-log line can be traced to the engine call behind it.
// A nil logger or non-positive threshold disables it.
func (e *Engine) SetSlowOpLog(logger *slog.Logger, threshold time.Duration) {
	e.slowOps.Configure(logger, "delivery", threshold)
}

// StartCtx is Start with the request context threaded through for slow-op
// logging and tracing: a traced request gains an engine.start child span
// whose subtree includes the session.started bus publish. The context does
// not cancel the operation.
func (e *Engine) StartCtx(ctx context.Context, examID, studentID string, seed int64) (*Session, error) {
	t := e.slowOps.Begin()
	ctx, sp := trace.StartSpan(ctx, "engine.start")
	sp.SetStr("exam.id", examID)
	sess, err := e.startCtx(ctx, examID, studentID, seed)
	id := ""
	if sess != nil {
		id = sess.ID
	}
	if err != nil {
		sp.SetError()
	}
	sp.End()
	e.slowOps.Done(ctx, "start", id, t)
	return sess, err
}

// AnswerCtx is Answer with the request context threaded through for
// slow-op logging and tracing (engine.answer span).
func (e *Engine) AnswerCtx(ctx context.Context, sessionID, problemID, response string) error {
	t := e.slowOps.Begin()
	ctx, sp := trace.StartSpan(ctx, "engine.answer")
	sp.SetStr("problem.id", problemID)
	err := e.answerCtx(ctx, sessionID, problemID, response)
	if err != nil {
		sp.SetError()
	}
	sp.End()
	e.slowOps.Done(ctx, "answer", sessionID, t)
	return err
}

// FinishCtx is Finish with the request context threaded through for
// slow-op logging and tracing (engine.finish span).
func (e *Engine) FinishCtx(ctx context.Context, sessionID string) (*analysis.StudentResult, error) {
	t := e.slowOps.Begin()
	ctx, sp := trace.StartSpan(ctx, "engine.finish")
	res, err := e.finishCtx(ctx, sessionID)
	if err != nil {
		sp.SetError()
	}
	sp.End()
	e.slowOps.Done(ctx, "finish", sessionID, t)
	return res, err
}
