// Package delivery is the on-line exam runtime: learners take exams through
// sessions with time limits (§3.4 II), pause/resume semantics (§3.2 VI B),
// automatic grading, and a monitor subsystem that captures client pictures
// during the exam (§5). Results stream into the analysis package's response
// matrices. The HTTP front end (versioned /v1 API, SCORM RTE bridge,
// authoring CRUD) lives in internal/httpapi.
//
// Concurrency model: the engine keeps sessions in a sharded registry
// (registry.go); each Session carries its own mutex. A per-learner operation
// — Answer, Status, Pause, Resume, Finish, AssignGrade — takes one shard
// read-lock for the lookup and then only that session's lock, so unrelated
// learners never contend and a slow grade computation stalls nobody else.
// Cross-session views (CollectResults, SessionSummaries, PendingGrades)
// iterate shard by shard without any stop-the-world lock.
package delivery

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/authoring"
	"mineassess/internal/bank"
	"mineassess/internal/events"
	"mineassess/internal/item"
	"mineassess/internal/obs"
	"mineassess/internal/scorm"
	"mineassess/internal/trace"
)

// SessionState is a session's lifecycle state.
type SessionState int

// Session states.
const (
	StateRunning SessionState = iota + 1
	StatePaused
	StateFinished
	StateExpired
)

// String returns the state name.
func (s SessionState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateFinished:
		return "finished"
	case StateExpired:
		return "expired"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors callers may match.
var (
	ErrSessionNotFound  = errors.New("delivery: session not found")
	ErrSessionNotActive = errors.New("delivery: session is not running")
	ErrNotPaused        = errors.New("delivery: session is not paused")
	ErrNotResumable     = errors.New("delivery: exam is not resumable")
	ErrTimeExpired      = errors.New("delivery: test time expired")
	ErrUnknownProblem   = errors.New("delivery: problem not in this exam")
	ErrAlreadyAnswered  = errors.New("delivery: problem already answered")
)

// answer is one recorded response.
type answer struct {
	response string
	credit   float64
	gradable bool
	spent    time.Duration
}

// Session is one learner's sitting of one exam. ID, ExamID, StudentID and
// Order are fixed at Start and safe to read without locking; all other
// state — including the SCORM API and its data model — is guarded by mu.
// Engine operations and RTEExec take the lock; the raw RTE accessor is the
// single-threaded escape hatch (see its comment).
type Session struct {
	ID        string
	ExamID    string
	StudentID string
	// Order is the presentation order of problem IDs for this sitting.
	Order []string

	mu          sync.Mutex
	state       SessionState
	startedAt   time.Time
	lastEvent   time.Time // previous answer/pause boundary, for per-item time
	pausedAt    time.Time
	activeSpent time.Duration // running time excluding pauses
	limit       time.Duration // 0 = unlimited
	answers     map[string]answer
	problems    map[string]*item.Problem
	// optionMaps maps, per shuffled problem, the presented option key back
	// to the authored key (RandomOrder exams shuffle options per sitting).
	optionMaps map[string]map[string]string
	api        *scorm.API
	data       *scorm.DataModel
}

// snapshotStatus summarizes the session. Callers hold s.mu.
func (s *Session) snapshotStatus(now time.Time) Status {
	st := Status{
		SessionID: s.ID,
		ExamID:    s.ExamID,
		StudentID: s.StudentID,
		State:     s.state,
		Answered:  len(s.answers),
		Total:     len(s.Order),
	}
	if s.limit > 0 && (s.state == StateRunning || s.state == StatePaused) {
		remaining := s.limit - s.elapsedActive(now)
		if remaining < 0 {
			remaining = 0
		}
		// Round up: a live session with any time left — even a fraction of
		// a second — reports at least 1, so RemainingSeconds == 0 uniquely
		// means the clock has run out (truncation used to report 0 on a
		// session that was still accepting answers). Paused sessions report
		// the remainder they would resume with; their clock is stopped.
		st.RemainingSeconds = int((remaining + time.Second - 1) / time.Second)
	}
	return st
}

func (s *Session) elapsedActive(now time.Time) time.Duration {
	if s.state == StatePaused {
		return s.activeSpent
	}
	return s.activeSpent + now.Sub(s.lastEvent)
}

// Status is the externally visible session summary.
type Status struct {
	SessionID        string       `json:"sessionId"`
	ExamID           string       `json:"examId"`
	StudentID        string       `json:"studentId"`
	State            SessionState `json:"-"`
	StateName        string       `json:"state"`
	Answered         int          `json:"answered"`
	Total            int          `json:"total"`
	RemainingSeconds int          `json:"remainingSeconds"`
}

// Engine manages sessions over a problem/exam bank. The clock is injectable
// for tests and simulations. It holds no global lock: per-session operations
// synchronize only on the session itself (see the package comment).
type Engine struct {
	store    bank.Storage
	registry *registry
	now      func() time.Time
	monitor  *Monitor
	nextID   atomic.Int64
	// bus receives lifecycle events (nil disables emission — a nil
	// *events.Bus is a valid no-op publisher, so emit sites are
	// unconditional). Emission is fire-and-forget and never blocks, so it
	// adds only memory-op cost to the learner's request.
	bus *events.Bus
	// slowOps logs engine operations that exceed the configured threshold
	// (see SetSlowOpLog); disabled it costs one atomic load per Ctx call.
	slowOps obs.SlowOpLog
}

// SetEventBus attaches a live event bus; engine operations publish
// session.started / response.submitted / session.finished / session.expired
// events onto it. Call before serving traffic (the field is not
// synchronized against in-flight operations).
func (e *Engine) SetEventBus(b *events.Bus) { e.bus = b }

// NewEngine builds an engine over any bank.Storage with the default session
// shard count. now may be nil for wall-clock time; monitorCapacity bounds
// the per-session snapshot ring (0 disables monitoring).
func NewEngine(store bank.Storage, now func() time.Time, monitorCapacity int) *Engine {
	return NewShardedEngine(store, now, monitorCapacity, DefaultSessionShards)
}

// NewShardedEngine is NewEngine with an explicit session shard count.
// shards <= 0 means DefaultSessionShards; shards == 1 serializes all session
// lookups on one shard lock (per-session locks still apply) and exists
// mainly as a contention baseline for benchmarks.
func NewShardedEngine(store bank.Storage, now func() time.Time, monitorCapacity, shards int) *Engine {
	if now == nil {
		now = time.Now
	}
	return &Engine{
		store:    store,
		registry: newRegistry(shards),
		now:      now,
		monitor:  NewMonitor(monitorCapacity),
	}
}

// Monitor exposes the engine's monitor subsystem.
func (e *Engine) Monitor() *Monitor {
	return e.monitor
}

// SessionCount returns the number of sessions the engine has registered
// (any state).
func (e *Engine) SessionCount() int {
	return e.registry.count()
}

// HasSession reports whether a session ID is registered, in any state. The
// HTTP layer uses it to distinguish "no such session" (404) from "a session
// with no data yet" before reading monitor rings.
func (e *Engine) HasSession(sessionID string) bool {
	_, err := e.registry.get(sessionID)
	return err == nil
}

// Start opens a session for the student on the exam, computing the
// presentation order with the given seed (used only for RandomOrder exams).
// All assembly work happens before the session is published, so Start holds
// no lock while reading the bank or shuffling options.
func (e *Engine) Start(examID, studentID string, seed int64) (*Session, error) {
	return e.startCtx(context.Background(), examID, studentID, seed)
}

func (e *Engine) startCtx(ctx context.Context, examID, studentID string, seed int64) (*Session, error) {
	rec, err := e.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	order, err := authoring.PresentationOrder(rec, seed)
	if err != nil {
		return nil, err
	}
	problems, err := e.store.Problems(order)
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*item.Problem, len(problems))
	optionMaps := make(map[string]map[string]string)
	for i, p := range problems {
		// RandomOrder exams also shuffle each problem's options so
		// neighbouring learners see different letters; responses are mapped
		// back to authored keys when results are collected.
		if rec.Display == item.RandomOrder && len(p.Options) > 1 {
			shuffled, mapping, err := authoring.ShuffleOptions(p, seed+int64(i)*2654435761)
			if err != nil {
				return nil, fmt.Errorf("delivery: shuffle %s: %w", p.ID, err)
			}
			p = shuffled
			optionMaps[p.ID] = mapping
		}
		byID[p.ID] = p
	}

	now := e.now()
	s := &Session{
		ID:         fmt.Sprintf("sess-%06d", e.nextID.Add(1)),
		ExamID:     examID,
		StudentID:  studentID,
		Order:      order,
		state:      StateRunning,
		startedAt:  now,
		lastEvent:  now,
		limit:      time.Duration(rec.TestTimeSeconds) * time.Second,
		answers:    make(map[string]answer, len(order)),
		problems:   byID,
		optionMaps: optionMaps,
	}
	s.data = scorm.NewDataModel(studentID, studentID)
	s.api = scorm.NewAPI(s.data, nil)
	if got := s.api.LMSInitialize(""); got != "true" {
		return nil, fmt.Errorf("delivery: RTE initialize failed (%s)", s.api.LMSGetLastError())
	}
	e.registry.put(s)
	e.monitor.Capture(s.ID, now)
	// Publishes detach from the request context: the event outlives the
	// request (cancelation must not reach subscribers) but keeps the trace
	// span and request ID so the bus.publish span parents correctly.
	e.bus.PublishCtx(trace.Detach(ctx), events.Event{
		Type: events.SessionStarted, ExamID: examID, SessionID: s.ID,
		StudentID: studentID, Problems: order, Total: len(order), At: now,
	})
	return s, nil
}

// lock looks up the session and returns it locked. The caller must Unlock.
func (e *Engine) lock(sessionID string) (*Session, error) {
	s, err := e.registry.get(sessionID)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	return s, nil
}

// checkTime expires the session once its limit is reached. The boundary is
// inclusive (>=) so the status contract stays exact: a running session
// always has remaining time and reports RemainingSeconds >= 1, and 0
// appears only together with the expired state. ctx scopes the expiry
// event's publish (see startCtx). Callers hold s.mu.
func (e *Engine) checkTime(ctx context.Context, s *Session, now time.Time) error {
	if s.limit > 0 && s.state == StateRunning && s.elapsedActive(now) >= s.limit {
		s.activeSpent = s.limit
		s.state = StateExpired
		e.finishRTE(s)
		score, max := s.scoreLocked()
		e.bus.PublishCtx(trace.Detach(ctx), events.Event{
			Type: events.SessionExpired, ExamID: s.ExamID, SessionID: s.ID,
			StudentID: s.StudentID, Answered: len(s.answers), Total: len(s.Order),
			Score: score, MaxScore: max, At: now,
		})
		return fmt.Errorf("%w: session %s", ErrTimeExpired, s.ID)
	}
	return nil
}

// Answer records the learner's response to a problem and grades it. Every
// answer triggers a monitor capture ("monitor function captures the client
// picture", §5). Only this learner's session is locked; grading a slow
// problem never delays other sessions.
func (e *Engine) Answer(sessionID, problemID, response string) error {
	return e.answerCtx(context.Background(), sessionID, problemID, response)
}

func (e *Engine) answerCtx(ctx context.Context, sessionID, problemID, response string) error {
	s, err := e.lock(sessionID)
	if err != nil {
		return err
	}
	defer s.mu.Unlock()
	now := e.now()
	if err := e.checkTime(ctx, s, now); err != nil {
		return err
	}
	if s.state != StateRunning {
		return fmt.Errorf("%w: %s is %s", ErrSessionNotActive, s.ID, s.state)
	}
	p, ok := s.problems[problemID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProblem, problemID)
	}
	if _, dup := s.answers[problemID]; dup {
		return fmt.Errorf("%w: %s", ErrAlreadyAnswered, problemID)
	}
	credit, gradable := p.Grade(response)
	spent := now.Sub(s.lastEvent)
	s.activeSpent += spent
	s.lastEvent = now
	s.answers[problemID] = answer{
		response: response, credit: credit, gradable: gradable, spent: spent,
	}
	s.api.LMSSetValue("cmi.core.lesson_location", problemID)
	e.monitor.Capture(s.ID, now)
	e.bus.PublishCtx(trace.Detach(ctx), events.Event{
		Type: events.ResponseSubmitted, ExamID: s.ExamID, SessionID: s.ID,
		StudentID: s.StudentID, ProblemID: problemID,
		Correct: gradable && credit >= 1-1e-9, Credit: credit,
		Answered: len(s.answers), Total: len(s.Order), At: now,
	})
	return nil
}

// Pause suspends a session. Allowed only when every problem in the exam is
// resumable (§3.2 VI B: paused to resume at a later time).
func (e *Engine) Pause(sessionID string) error {
	s, err := e.lock(sessionID)
	if err != nil {
		return err
	}
	defer s.mu.Unlock()
	now := e.now()
	if err := e.checkTime(context.Background(), s, now); err != nil {
		return err
	}
	if s.state != StateRunning {
		return fmt.Errorf("%w: %s is %s", ErrSessionNotActive, s.ID, s.state)
	}
	for _, p := range s.problems {
		if !p.Resumable {
			return fmt.Errorf("%w: problem %s", ErrNotResumable, p.ID)
		}
	}
	s.activeSpent += now.Sub(s.lastEvent)
	s.pausedAt = now
	s.state = StatePaused
	s.api.LMSSetValue("cmi.core.exit", "suspend")
	return nil
}

// Resume reactivates a paused session; paused time does not count against
// the limit.
func (e *Engine) Resume(sessionID string) error {
	s, err := e.lock(sessionID)
	if err != nil {
		return err
	}
	defer s.mu.Unlock()
	if s.state != StatePaused {
		return fmt.Errorf("%w: %s is %s", ErrNotPaused, s.ID, s.state)
	}
	s.lastEvent = e.now()
	s.state = StateRunning
	return nil
}

// Finish closes the session, grades it, and writes score and status into
// the CMI data model.
func (e *Engine) Finish(sessionID string) (*analysis.StudentResult, error) {
	return e.finishCtx(context.Background(), sessionID)
}

func (e *Engine) finishCtx(ctx context.Context, sessionID string) (*analysis.StudentResult, error) {
	s, err := e.lock(sessionID)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	now := e.now()
	if s.state == StateRunning {
		_ = e.checkTime(ctx, s, now) // expiry still produces a result
	}
	finished := false
	switch s.state {
	case StateRunning:
		s.activeSpent += now.Sub(s.lastEvent)
		s.state = StateFinished
		e.finishRTE(s)
		finished = true
	case StateExpired:
		// already closed by checkTime
	case StatePaused:
		s.state = StateFinished
		e.finishRTE(s)
		finished = true
	case StateFinished:
		// idempotent: re-emit the result
	}
	if finished {
		// Only the transition emits; an idempotent re-finish does not
		// double-count the sitting in downstream aggregations.
		score, max := s.scoreLocked()
		e.bus.PublishCtx(trace.Detach(ctx), events.Event{
			Type: events.SessionFinished, ExamID: s.ExamID, SessionID: s.ID,
			StudentID: s.StudentID, Answered: len(s.answers), Total: len(s.Order),
			Score: score, MaxScore: max, At: now,
		})
	}
	res := s.result()
	return &res, nil
}

// finishRTE writes score/status and finishes the RTE attempt. Callers hold
// s.mu.
func (e *Engine) finishRTE(s *Session) {
	score, max := s.scoreLocked()
	if s.api.Running() {
		if max > 0 {
			raw := score / max * 100
			s.api.LMSSetValue("cmi.core.score.raw", fmt.Sprintf("%.2f", raw))
			status := "failed"
			if raw >= 60 {
				status = "passed"
			}
			s.api.LMSSetValue("cmi.core.lesson_status", status)
		} else {
			s.api.LMSSetValue("cmi.core.lesson_status", "completed")
		}
		secs := int(s.activeSpent / time.Second)
		s.api.LMSSetValue("cmi.core.session_time", fmt.Sprintf("%04d:%02d:%02d",
			secs/3600, (secs%3600)/60, secs%60))
		s.api.LMSFinish("")
	}
}

// scoreLocked totals earned and maximum weighted credit over the scored
// problems. Callers hold s.mu.
func (s *Session) scoreLocked() (score, max float64) {
	for _, p := range s.problems {
		if !p.Style.Scored() {
			continue
		}
		max += p.Weight()
		if a, ok := s.answers[p.ID]; ok && a.gradable {
			score += a.credit * p.Weight()
		}
	}
	return score, max
}

// result converts the session into an analysis row. Callers hold s.mu.
func (s *Session) result() analysis.StudentResult {
	res := analysis.StudentResult{StudentID: s.StudentID}
	for _, pid := range s.Order {
		p := s.problems[pid]
		r := analysis.Response{StudentID: s.StudentID, ProblemID: pid}
		if a, ok := s.answers[pid]; ok {
			r.Answered = true
			r.Credit = a.credit
			r.TimeSpent = a.spent
			// Choice answers keep their option key; questionnaire answers
			// keep the collected response for frequency analysis. Shuffled
			// sittings map presented keys back to authored keys so option
			// tables aggregate correctly across sittings.
			if p.CorrectKey() != "" || p.Style == item.Questionnaire {
				r.Option = authoring.UnshuffleResponse(s.optionMaps[pid], a.response)
			}
		}
		res.Responses = append(res.Responses, r)
	}
	return res
}

// Status reports a session's current summary.
func (e *Engine) Status(sessionID string) (Status, error) {
	s, err := e.lock(sessionID)
	if err != nil {
		return Status{}, err
	}
	defer s.mu.Unlock()
	now := e.now()
	_ = e.checkTime(context.Background(), s, now)
	st := s.snapshotStatus(now)
	st.StateName = st.State.String()
	return st, nil
}

// RTEExec runs fn against the session's SCORM API while holding the session
// lock, serializing SCO-originated RTE traffic with the learner operations
// (Answer/Pause/Finish) that write the same CMI data model. This is the only
// safe way to touch a live session's API concurrently.
func (e *Engine) RTEExec(sessionID string, fn func(api *scorm.API)) error {
	s, err := e.registry.get(sessionID)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.api)
	return nil
}

// RTE exposes a session's SCORM API without synchronization. The scorm.API
// is not thread-safe and engine operations mutate the same data model under
// the session lock, so callers must guarantee no concurrent engine calls
// for this session — single-threaded harnesses and tests only. Concurrent
// callers (the HTTP bridge) use RTEExec.
func (e *Engine) RTE(sessionID string) (*scorm.API, error) {
	s, err := e.registry.get(sessionID)
	if err != nil {
		return nil, err
	}
	return s.api, nil
}

// CollectResults assembles the full response matrix of an exam from every
// finished or expired session, ready for analysis. Sessions are visited
// shard by shard and locked one at a time — collection never blocks the
// whole engine, so learners on other exams keep answering while an
// instructor exports results.
func (e *Engine) CollectResults(examID string) (*analysis.ExamResult, error) {
	rec, err := e.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	problems, err := e.store.Problems(rec.ProblemIDs)
	if err != nil {
		return nil, err
	}
	out := &analysis.ExamResult{
		ExamID:   examID,
		Problems: problems,
		TestTime: time.Duration(rec.TestTimeSeconds) * time.Second,
	}
	for _, s := range e.registry.all() {
		if s.ExamID != examID {
			continue
		}
		s.mu.Lock()
		if s.state == StateFinished || s.state == StateExpired {
			out.Students = append(out.Students, s.result())
		}
		s.mu.Unlock()
	}
	return out, nil
}
