package delivery

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"mineassess/internal/scorm"
)

// Server is the HTTP front end: learners take exams with an Internet
// browser (§5) against these endpoints, and SCO content reaches the SCORM
// RTE API through the /api/rte bridge.
//
//	POST /api/session/start            {examId, studentId, seed}
//	GET  /api/session/{id}             session status
//	POST /api/session/{id}/answer      {problemId, response}
//	POST /api/session/{id}/pause
//	POST /api/session/{id}/resume
//	POST /api/session/{id}/finish
//	GET  /api/monitor/{id}             captured snapshots
//	POST /api/rte/{id}                 {method, element, value}
type Server struct {
	engine *Engine
	mux    *http.ServeMux
	// pkg, when mounted, is the SCORM content package served under
	// /package/ so launched SCOs load straight from the LMS.
	pkg *scorm.Package
}

var _ http.Handler = (*Server)(nil)

// NewServer builds the handler around an engine.
func NewServer(engine *Engine) *Server {
	s := &Server{engine: engine, mux: http.NewServeMux()}
	s.mux.HandleFunc("/api/session/start", s.handleStart)
	s.mux.HandleFunc("/api/session/", s.handleSession)
	s.mux.HandleFunc("/api/monitor/", s.handleMonitor)
	s.mux.HandleFunc("/api/rte/", s.handleRTE)
	s.mux.HandleFunc("/api/admin/sessions", s.handleAdminSessions)
	s.mux.HandleFunc("/api/admin/grades", s.handleAdminGrades)
	s.mux.HandleFunc("/api/admin/results", s.handleAdminResults)
	s.mux.HandleFunc("/package/", s.handlePackage)
	return s
}

// MountPackage exposes a SCORM package's files under /package/. Call before
// serving; the launch URL for a resource is "/package/" + resource href.
func (s *Server) MountPackage(pkg *scorm.Package) {
	s.pkg = pkg
}

var _contentTypes = map[string]string{
	".html": "text/html; charset=utf-8",
	".xml":  "application/xml",
	".js":   "text/javascript",
	".css":  "text/css",
	".gif":  "image/gif",
	".jpg":  "image/jpeg",
	".png":  "image/png",
}

// handlePackage serves mounted package files.
func (s *Server) handlePackage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.pkg == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no package mounted"})
		return
	}
	path := strings.TrimPrefix(r.URL.Path, "/package/")
	data, ok := s.pkg.Files[path]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such file " + path})
		return
	}
	if dot := strings.LastIndex(path, "."); dot >= 0 {
		if ct, known := _contentTypes[path[dot:]]; known {
			w.Header().Set("Content-Type", ct)
		}
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type startRequest struct {
	ExamID    string `json:"examId"`
	StudentID string `json:"studentId"`
	Seed      int64  `json:"seed"`
}

type startResponse struct {
	SessionID string   `json:"sessionId"`
	Order     []string `json:"order"`
}

type answerRequest struct {
	ProblemID string `json:"problemId"`
	Response  string `json:"response"`
}

type rteRequest struct {
	Method  string `json:"method"`
	Element string `json:"element,omitempty"`
	Value   string `json:"value,omitempty"`
}

type rteResponse struct {
	Result    string `json:"result"`
	LastError string `json:"lastError"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrSessionNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTimeExpired),
		errors.Is(err, ErrSessionNotActive),
		errors.Is(err, ErrNotPaused),
		errors.Is(err, ErrNotResumable),
		errors.Is(err, ErrAlreadyAnswered):
		code = http.StatusConflict
	case errors.Is(err, ErrUnknownProblem):
		code = http.StatusBadRequest
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req startRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
		return
	}
	sess, err := s.engine.Start(req.ExamID, req.StudentID, req.Seed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, startResponse{SessionID: sess.ID, Order: sess.Order})
}

// handleSession routes /api/session/{id}[/{action}].
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/session/")
	sessionID, action, _ := strings.Cut(rest, "/")
	if sessionID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing session ID"})
		return
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		st, err := s.engine.Status(sessionID)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case r.Method != http.MethodPost:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	case action == "answer":
		var req answerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
			return
		}
		if err := s.engine.Answer(sessionID, req.ProblemID, req.Response); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "recorded"})
	case action == "pause":
		if err := s.engine.Pause(sessionID); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "paused"})
	case action == "resume":
		if err := s.engine.Resume(sessionID); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "running"})
	case action == "finish":
		res, err := s.engine.Finish(sessionID)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	default:
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown action " + action})
	}
}

func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sessionID := strings.TrimPrefix(r.URL.Path, "/api/monitor/")
	snaps := s.engine.Monitor().Snapshots(sessionID)
	writeJSON(w, http.StatusOK, snaps)
}

// handleAdminSessions lists session statuses for ?exam=ID.
func (s *Server) handleAdminSessions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	examID := r.URL.Query().Get("exam")
	if examID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing exam parameter"})
		return
	}
	writeJSON(w, http.StatusOK, s.engine.SessionSummaries(examID))
}

type gradeRequest struct {
	SessionID string  `json:"sessionId"`
	ProblemID string  `json:"problemId"`
	Credit    float64 `json:"credit"`
}

// handleAdminGrades serves the manual-grading worklist (GET ?exam=ID) and
// accepts grade assignments (POST).
func (s *Server) handleAdminGrades(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		examID := r.URL.Query().Get("exam")
		if examID == "" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing exam parameter"})
			return
		}
		writeJSON(w, http.StatusOK, s.engine.PendingGrades(examID))
	case http.MethodPost:
		var req gradeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
			return
		}
		if err := s.engine.AssignGrade(req.SessionID, req.ProblemID, req.Credit); err != nil {
			switch {
			case errors.Is(err, ErrInvalidCredit),
				errors.Is(err, ErrNotAnswered),
				errors.Is(err, ErrAutoGraded):
				writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			default:
				writeError(w, err)
			}
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "graded"})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleAdminResults exports the collected response matrix for ?exam=ID as
// the analysis package's JSON format, ready for offline analysis.
func (s *Server) handleAdminResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	examID := r.URL.Query().Get("exam")
	if examID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing exam parameter"})
		return
	}
	res, err := s.engine.CollectResults(examID)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleRTE bridges the SCORM API over HTTP for SCO content.
func (s *Server) handleRTE(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sessionID := strings.TrimPrefix(r.URL.Path, "/api/rte/")
	var req rteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body"})
		return
	}
	var resp rteResponse
	known := true
	// RTEExec holds the session lock so SCO traffic cannot race the
	// learner's Answer/Pause/Finish writes into the same CMI data model.
	err := s.engine.RTEExec(sessionID, func(api *scorm.API) {
		switch strings.ToLower(req.Method) {
		case "getvalue":
			resp.Result = api.LMSGetValue(req.Element)
		case "setvalue":
			resp.Result = api.LMSSetValue(req.Element, req.Value)
		case "commit":
			resp.Result = api.LMSCommit("")
		case "geterrorstring":
			resp.Result = api.LMSGetErrorString(req.Value)
		default:
			known = false
			return
		}
		resp.LastError = api.LMSGetLastError()
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if !known {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown RTE method " + req.Method})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
