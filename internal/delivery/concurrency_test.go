package delivery

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestEngineConcurrentSessions hammers one engine from many goroutines:
// starts, answers, status polls, monitor reads and finishes must be safe
// under -race and leave a consistent result set.
func TestEngineConcurrentSessions(t *testing.T) {
	store, examID := examFixture(t, false)
	eng := NewEngine(store, nil, 8)

	const students = 24
	var wg sync.WaitGroup
	errs := make(chan error, students)
	for i := 0; i < students; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sid := fmt.Sprintf("stu%02d", n)
			sess, err := eng.Start(examID, sid, int64(n))
			if err != nil {
				errs <- err
				return
			}
			for q := 1; q <= 4; q++ {
				opt := "A"
				if (n+q)%3 == 0 {
					opt = "B"
				}
				if err := eng.Answer(sess.ID, fmt.Sprintf("q%d", q), opt); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Status(sess.ID); err != nil {
					errs <- err
					return
				}
				_ = eng.Monitor().Snapshots(sess.ID)
			}
			if _, err := eng.Finish(sess.ID); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res, err := eng.CollectResults(examID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Students) != students {
		t.Fatalf("collected %d students, want %d", len(res.Students), students)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("collected result invalid: %v", err)
	}
	// Every student answered all four questions.
	for _, s := range res.Students {
		if s.AnsweredCount() != 4 {
			t.Errorf("student %s answered %d", s.StudentID, s.AnsweredCount())
		}
	}
}

// TestEngineConcurrentGradingAndSummaries overlaps manual grading, summary
// listings and result collection.
func TestEngineConcurrentGradingAndSummaries(t *testing.T) {
	store, examID := essayExamFixture(t)
	eng := NewEngine(store, nil, 0)

	const n = 12
	sessIDs := make([]string, n)
	for i := 0; i < n; i++ {
		sess, err := eng.Start(examID, fmt.Sprintf("w%02d", i), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Answer(sess.ID, "essay1", "an essay"); err != nil {
			t.Fatal(err)
		}
		if err := eng.Answer(sess.ID, "mc1", "A"); err != nil {
			t.Fatal(err)
		}
		sessIDs[i] = sess.ID
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			if err := eng.AssignGrade(sessIDs[idx], "essay1", 0.5); err != nil {
				t.Errorf("grade %d: %v", idx, err)
			}
			_ = eng.SessionSummaries(examID)
			_ = eng.PendingGrades(examID)
			if _, err := eng.Finish(sessIDs[idx]); err != nil {
				t.Errorf("finish %d: %v", idx, err)
			}
		}(i)
	}
	wg.Wait()

	res, err := eng.CollectResults(examID)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Students {
		for _, r := range s.Responses {
			if r.ProblemID == "essay1" && r.Credit != 0.5 {
				t.Errorf("student %s essay credit = %v", s.StudentID, r.Credit)
			}
		}
	}
}

// TestMonitorConcurrentCapture races captures against reads.
func TestMonitorConcurrentCapture(t *testing.T) {
	m := NewMonitor(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sid := fmt.Sprintf("s%d", n%4)
			for j := 0; j < 50; j++ {
				m.Capture(sid, time.Unix(int64(j), 0))
				_ = m.Snapshots(sid)
				_ = m.Captured(sid)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		sid := fmt.Sprintf("s%d", i)
		if got := len(m.Snapshots(sid)); got != 16 {
			t.Errorf("ring %s retained %d, want 16", sid, got)
		}
		if got := m.Captured(sid); got != 100 {
			t.Errorf("captured %s = %d, want 100", sid, got)
		}
	}
}
