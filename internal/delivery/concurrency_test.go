package delivery

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
	"mineassess/internal/scorm"
)

// TestEngineConcurrentSessions hammers one engine from many goroutines:
// starts, answers, status polls, monitor reads and finishes must be safe
// under -race and leave a consistent result set.
func TestEngineConcurrentSessions(t *testing.T) {
	store, examID := examFixture(t, false)
	eng := NewEngine(store, nil, 8)

	const students = 24
	var wg sync.WaitGroup
	errs := make(chan error, students)
	for i := 0; i < students; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sid := fmt.Sprintf("stu%02d", n)
			sess, err := eng.Start(examID, sid, int64(n))
			if err != nil {
				errs <- err
				return
			}
			for q := 1; q <= 4; q++ {
				opt := "A"
				if (n+q)%3 == 0 {
					opt = "B"
				}
				if err := eng.Answer(sess.ID, fmt.Sprintf("q%d", q), opt); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Status(sess.ID); err != nil {
					errs <- err
					return
				}
				_ = eng.Monitor().Snapshots(sess.ID)
			}
			if _, err := eng.Finish(sess.ID); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res, err := eng.CollectResults(examID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Students) != students {
		t.Fatalf("collected %d students, want %d", len(res.Students), students)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("collected result invalid: %v", err)
	}
	// Every student answered all four questions.
	for _, s := range res.Students {
		if s.AnsweredCount() != 4 {
			t.Errorf("student %s answered %d", s.StudentID, s.AnsweredCount())
		}
	}
}

// TestEngineConcurrentGradingAndSummaries overlaps manual grading, summary
// listings and result collection.
func TestEngineConcurrentGradingAndSummaries(t *testing.T) {
	store, examID := essayExamFixture(t)
	eng := NewEngine(store, nil, 0)

	const n = 12
	sessIDs := make([]string, n)
	for i := 0; i < n; i++ {
		sess, err := eng.Start(examID, fmt.Sprintf("w%02d", i), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Answer(sess.ID, "essay1", "an essay"); err != nil {
			t.Fatal(err)
		}
		if err := eng.Answer(sess.ID, "mc1", "A"); err != nil {
			t.Fatal(err)
		}
		sessIDs[i] = sess.ID
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			if err := eng.AssignGrade(sessIDs[idx], "essay1", 0.5); err != nil {
				t.Errorf("grade %d: %v", idx, err)
			}
			_ = eng.SessionSummaries(examID)
			_ = eng.PendingGrades(examID)
			if _, err := eng.Finish(sessIDs[idx]); err != nil {
				t.Errorf("finish %d: %v", idx, err)
			}
		}(i)
	}
	wg.Wait()

	res, err := eng.CollectResults(examID)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Students {
		for _, r := range s.Responses {
			if r.ProblemID == "essay1" && r.Credit != 0.5 {
				t.Errorf("student %s essay credit = %v", s.StudentID, r.Credit)
			}
		}
	}
}

// TestMonitorConcurrentCapture races captures against reads.
func TestMonitorConcurrentCapture(t *testing.T) {
	m := NewMonitor(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			sid := fmt.Sprintf("s%d", n%4)
			for j := 0; j < 50; j++ {
				m.Capture(sid, time.Unix(int64(j), 0))
				_ = m.Snapshots(sid)
				_ = m.Captured(sid)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		sid := fmt.Sprintf("s%d", i)
		if got := len(m.Snapshots(sid)); got != 16 {
			t.Errorf("ring %s retained %d, want 16", sid, got)
		}
		if got := m.Captured(sid); got != 100 {
			t.Errorf("captured %s = %d, want 100", sid, got)
		}
	}
}

// shardedExamFixture authors the stress exam over the sharded bank backend,
// so the stress test exercises the full sharded stack: sharded storage,
// sharded session registry, sharded monitor.
func shardedExamFixture(t *testing.T) (bank.Storage, string) {
	t.Helper()
	s := bank.NewSharded(8)
	var ids []string
	for i := 0; i < 4; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%d", i+1), "?",
			[]string{"w", "x", "y", "z"}, 0) // correct A
		if err != nil {
			t.Fatal(err)
		}
		p.Level = cognition.Knowledge
		p.Resumable = true
		if err := s.AddProblem(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	rec := &bank.ExamRecord{ID: "stress", Title: "Stress quiz", ProblemIDs: ids,
		Display: item.FixedOrder, TestTimeSeconds: 600}
	if err := s.AddExam(rec); err != nil {
		t.Fatal(err)
	}
	return s, rec.ID
}

// TestEngineStressAcrossShards drives the full session lifecycle —
// Start/Answer/Pause/Status/Resume/Finish — from 80 learner goroutines while
// admin goroutines continuously scan summaries, pending grades, results and
// monitor rings. Run under -race (CI does); it is the regression net for the
// per-session locking model.
func TestEngineStressAcrossShards(t *testing.T) {
	store, examID := shardedExamFixture(t)
	eng := NewShardedEngine(store, nil, 8, 16)

	const (
		workers  = 80 // >= 64 per the issue; spread over 16 registry shards
		sittings = 3
	)
	var (
		wg   sync.WaitGroup
		done atomic.Bool
		errs = make(chan error, workers+8)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sitting := 0; sitting < sittings; sitting++ {
				sess, err := eng.Start(examID, fmt.Sprintf("stu%03d", w), int64(w))
				if err != nil {
					errs <- err
					return
				}
				if err := eng.Answer(sess.ID, "q1", "A"); err != nil {
					errs <- err
					return
				}
				if err := eng.Pause(sess.ID); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Status(sess.ID); err != nil {
					errs <- err
					return
				}
				if err := eng.Resume(sess.ID); err != nil {
					errs <- err
					return
				}
				for q := 2; q <= 4; q++ {
					opt := "A"
					if (w+q)%3 == 0 {
						opt = "B"
					}
					if err := eng.Answer(sess.ID, fmt.Sprintf("q%d", q), opt); err != nil {
						errs <- err
						return
					}
				}
				if _, err := eng.Finish(sess.ID); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Admin scanners overlap every learner operation.
	var adminWG sync.WaitGroup
	for a := 0; a < 8; a++ {
		adminWG.Add(1)
		go func(a int) {
			defer adminWG.Done()
			for !done.Load() {
				_ = eng.SessionSummaries(examID)
				_ = eng.PendingGrades(examID)
				if _, err := eng.CollectResults(examID); err != nil {
					errs <- err
					return
				}
				_ = eng.Monitor().Snapshots(fmt.Sprintf("sess-%06d", a+1))
				_ = eng.SessionCount()
			}
		}(a)
	}
	wg.Wait()
	done.Store(true)
	adminWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := eng.SessionCount(); got != workers*sittings {
		t.Fatalf("SessionCount = %d, want %d", got, workers*sittings)
	}
	res, err := eng.CollectResults(examID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Students) != workers*sittings {
		t.Fatalf("collected %d sittings, want %d", len(res.Students), workers*sittings)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("collected result invalid: %v", err)
	}
	for _, s := range res.Students {
		if s.AnsweredCount() != 4 {
			t.Errorf("student %s answered %d, want 4", s.StudentID, s.AnsweredCount())
		}
	}
}

// TestRTEConcurrentWithAnswers races SCO-side RTE traffic (RTEExec) against
// the learner's Answer stream on the same session; both write the CMI data
// model, so this must be clean under -race.
func TestRTEConcurrentWithAnswers(t *testing.T) {
	store, examID := shardedExamFixture(t)
	eng := NewEngine(store, nil, 0)
	sess, err := eng.Start(examID, "sco-learner", 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for q := 1; q <= 4; q++ {
			if err := eng.Answer(sess.ID, fmt.Sprintf("q%d", q), "A"); err != nil {
				t.Errorf("answer q%d: %v", q, err)
			}
		}
		if _, err := eng.Finish(sess.ID); err != nil {
			t.Errorf("finish: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			err := eng.RTEExec(sess.ID, func(api *scorm.API) {
				_ = api.LMSGetValue("cmi.core.lesson_location")
				_ = api.LMSSetValue("cmi.core.lesson_status", "incomplete")
			})
			if err != nil {
				t.Errorf("rte exec: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
