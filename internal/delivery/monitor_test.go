package delivery

import (
	"testing"
	"time"
)

func TestMonitorCaptureAndQuery(t *testing.T) {
	m := NewMonitor(3)
	if !m.Enabled() {
		t.Fatal("monitor should be enabled")
	}
	at := time.Date(2004, 3, 1, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		m.Capture("sess-1", at.Add(time.Duration(i)*time.Minute))
	}
	snaps := m.Snapshots("sess-1")
	if len(snaps) != 3 {
		t.Fatalf("retained = %d, want 3 (ring capacity)", len(snaps))
	}
	// Oldest two fell off: sequences 3,4,5 remain.
	if snaps[0].Seq != 3 || snaps[2].Seq != 5 {
		t.Errorf("sequences = %d..%d, want 3..5", snaps[0].Seq, snaps[2].Seq)
	}
	if m.Captured("sess-1") != 5 {
		t.Errorf("captured = %d, want 5", m.Captured("sess-1"))
	}
	if got := m.Snapshots("unknown"); len(got) != 0 {
		t.Errorf("unknown session snapshots = %v", got)
	}
}

func TestMonitorDisabled(t *testing.T) {
	m := NewMonitor(0)
	if m.Enabled() {
		t.Fatal("capacity 0 should disable")
	}
	m.Capture("sess-1", time.Now())
	if len(m.Snapshots("sess-1")) != 0 {
		t.Error("disabled monitor must not retain snapshots")
	}
}

func TestMonitorFrameHashDeterministic(t *testing.T) {
	a := frameHash("sess-1", 1)
	b := frameHash("sess-1", 1)
	c := frameHash("sess-1", 2)
	d := frameHash("sess-2", 1)
	if a != b {
		t.Error("same identity must hash identically")
	}
	if a == c || a == d {
		t.Error("different identities should hash differently")
	}
}

func TestMonitorSnapshotsAreCopies(t *testing.T) {
	m := NewMonitor(4)
	m.Capture("s", time.Now())
	snaps := m.Snapshots("s")
	snaps[0].Seq = 999
	if m.Snapshots("s")[0].Seq == 999 {
		t.Error("Snapshots must return a copy")
	}
}

func TestEngineCapturesOnStartAndAnswer(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 8)
	sess, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(sess.ID, "q1", "A"); err != nil {
		t.Fatal(err)
	}
	if got := eng.Monitor().Captured(sess.ID); got != 2 {
		t.Errorf("captures = %d, want 2 (start + answer)", got)
	}
}
