package delivery

import (
	"context"
	"errors"
	"fmt"
)

// Manual grading: essay answers cannot be auto-graded (item.Problem.Grade
// reports ok=false), so instructors score them after the sitting. Grades
// may be assigned on running or closed sessions; results collected after
// grading reflect the assigned credit.

// Errors for the grading workflow.
var (
	ErrNotAnswered   = errors.New("delivery: problem was not answered")
	ErrAutoGraded    = errors.New("delivery: problem was auto-graded")
	ErrInvalidCredit = errors.New("delivery: credit outside [0,1]")
)

// PendingGrade describes one response awaiting manual grading.
type PendingGrade struct {
	SessionID string `json:"sessionId"`
	StudentID string `json:"studentId"`
	ProblemID string `json:"problemId"`
	Response  string `json:"response"`
}

// PendingGrades lists every answered-but-ungradable response for the exam,
// ordered by session then problem for stable instructor worklists. Sessions
// are locked one at a time; the worklist never freezes active learners.
func (e *Engine) PendingGrades(examID string) []PendingGrade {
	var out []PendingGrade
	for _, s := range e.registry.all() {
		if s.ExamID != examID {
			continue
		}
		s.mu.Lock()
		for _, pid := range s.Order {
			a, ok := s.answers[pid]
			if !ok || a.gradable {
				continue
			}
			out = append(out, PendingGrade{
				SessionID: s.ID,
				StudentID: s.StudentID,
				ProblemID: pid,
				Response:  a.response,
			})
		}
		s.mu.Unlock()
	}
	return out
}

// AssignGrade records an instructor's credit for a manually graded
// response. Only answered, not-auto-graded responses accept a grade;
// re-grading is allowed (the last grade wins).
func (e *Engine) AssignGrade(sessionID, problemID string, credit float64) error {
	if credit < 0 || credit > 1 {
		return fmt.Errorf("%w: %v", ErrInvalidCredit, credit)
	}
	s, err := e.lock(sessionID)
	if err != nil {
		return err
	}
	defer s.mu.Unlock()
	a, ok := s.answers[problemID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotAnswered, problemID)
	}
	if a.gradable {
		return fmt.Errorf("%w: %s", ErrAutoGraded, problemID)
	}
	a.credit = credit
	s.answers[problemID] = a
	return nil
}

// SessionSummaries lists the status of every session for an exam, ordered
// by session ID — the administrator's monitor view of who is taking the
// exam right now. Summaries are taken per session without a global lock.
func (e *Engine) SessionSummaries(examID string) []Status {
	now := e.now()
	var out []Status
	for _, s := range e.registry.all() {
		if s.ExamID != examID {
			continue
		}
		s.mu.Lock()
		_ = e.checkTime(context.Background(), s, now)
		st := s.snapshotStatus(now)
		s.mu.Unlock()
		st.StateName = st.State.String()
		out = append(out, st)
	}
	return out
}
