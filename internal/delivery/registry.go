package delivery

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultSessionShards is the engine's session-registry shard count when not
// overridden. One shard reproduces the old global-map behaviour (useful as a
// benchmark baseline); production engines want enough shards that unrelated
// learners rarely hash together.
const DefaultSessionShards = 32

// registry is the sharded session index. The shard lock guards only the map
// (insert/lookup); per-session state is guarded by each Session's own mutex,
// so two learners answering different exams never contend on anything.
type registry struct {
	shards []registryShard
}

type registryShard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

func newRegistry(shards int) *registry {
	if shards <= 0 {
		shards = DefaultSessionShards
	}
	r := &registry{shards: make([]registryShard, shards)}
	for i := range r.shards {
		r.shards[i].sessions = make(map[string]*Session)
	}
	return r
}

// fnvShard maps an ID onto one of n shards with FNV-1a — the same scheme
// the bank's sharded backend uses, so hot-key behaviour is predictable
// across layers. Shared by the session registry and the monitor; inlined
// (rather than hash/fnv) because it runs twice per learner operation and
// the hash.Hash32 interface would allocate on every call.
func fnvShard(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

func (r *registry) shard(id string) *registryShard {
	return &r.shards[fnvShard(id, len(r.shards))]
}

// get returns the session by ID without locking it.
func (r *registry) get(id string) (*Session, error) {
	sh := r.shard(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionNotFound, id)
	}
	return s, nil
}

// put registers a new session.
func (r *registry) put(s *Session) {
	sh := r.shard(s.ID)
	sh.mu.Lock()
	sh.sessions[s.ID] = s
	sh.mu.Unlock()
}

// all returns every registered session sorted by ID. Shards are copied one
// at a time under their read locks — no stop-the-world; sessions started
// concurrently with the scan may or may not appear, which is the same
// guarantee any registry scan can give.
func (r *registry) all() []*Session {
	var out []*Session
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// count returns the number of registered sessions.
func (r *registry) count() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}
