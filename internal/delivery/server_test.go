package delivery

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mineassess/internal/scorm"
)

// testServer wires the fixture bank into an HTTP test server.
func testServer(t *testing.T) (*httptest.Server, *fakeClock) {
	t.Helper()
	store, _ := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 8)
	srv := httptest.NewServer(NewServer(eng))
	t.Cleanup(srv.Close)
	return srv, clock
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func startSession(t *testing.T, base string) startResponse {
	t.Helper()
	var sr startResponse
	code := postJSON(t, base+"/api/session/start",
		startRequest{ExamID: "exam1", StudentID: "alice", Seed: 1}, &sr)
	if code != http.StatusOK || sr.SessionID == "" {
		t.Fatalf("start: code %d, resp %+v", code, sr)
	}
	return sr
}

func TestHTTPFullExamFlow(t *testing.T) {
	srv, clock := testServer(t)
	sr := startSession(t, srv.URL)
	if len(sr.Order) != 4 {
		t.Fatalf("order = %v", sr.Order)
	}
	clock.Advance(time.Minute)
	code := postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/answer",
		answerRequest{ProblemID: "q1", Response: "A"}, nil)
	if code != http.StatusOK {
		t.Fatalf("answer code = %d", code)
	}

	var st Status
	if code := getJSON(t, srv.URL+"/api/session/"+sr.SessionID, &st); code != http.StatusOK {
		t.Fatalf("status code = %d", code)
	}
	if st.Answered != 1 || st.StateName != "running" {
		t.Errorf("status = %+v", st)
	}

	var result map[string]any
	if code := postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/finish", nil, &result); code != http.StatusOK {
		t.Fatalf("finish code = %d", code)
	}
	if result["studentId"] != "alice" {
		t.Errorf("finish result = %v", result)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	srv, _ := testServer(t)
	// Unknown session -> 404.
	if code := getJSON(t, srv.URL+"/api/session/ghost", nil); code != http.StatusNotFound {
		t.Errorf("unknown session = %d, want 404", code)
	}
	// Unknown exam -> 400.
	var e errorBody
	if code := postJSON(t, srv.URL+"/api/session/start",
		startRequest{ExamID: "ghost", StudentID: "x"}, &e); code != http.StatusBadRequest {
		t.Errorf("unknown exam = %d, want 400", code)
	}
	sr := startSession(t, srv.URL)
	// Unknown problem -> 400.
	if code := postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/answer",
		answerRequest{ProblemID: "ghost", Response: "A"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown problem = %d, want 400", code)
	}
	// Double answer -> 409.
	_ = postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/answer",
		answerRequest{ProblemID: "q1", Response: "A"}, nil)
	if code := postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/answer",
		answerRequest{ProblemID: "q1", Response: "B"}, nil); code != http.StatusConflict {
		t.Errorf("double answer = %d, want 409", code)
	}
	// Pause on non-resumable exam -> 409.
	if code := postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/pause", nil, nil); code != http.StatusConflict {
		t.Errorf("pause = %d, want 409", code)
	}
	// Unknown action -> 404.
	if code := postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/dance", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown action = %d, want 404", code)
	}
	// Bad JSON -> 400.
	resp, err := http.Post(srv.URL+"/api/session/start", "application/json",
		bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPMethodGuards(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/api/session/start")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET start = %d, want 405", resp.StatusCode)
	}
	sr := startSession(t, srv.URL)
	resp, err = http.Get(srv.URL + "/api/rte/" + sr.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET rte = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPMonitorEndpoint(t *testing.T) {
	srv, clock := testServer(t)
	sr := startSession(t, srv.URL)
	clock.Advance(time.Minute)
	_ = postJSON(t, srv.URL+"/api/session/"+sr.SessionID+"/answer",
		answerRequest{ProblemID: "q1", Response: "A"}, nil)
	var snaps []Snapshot
	if code := getJSON(t, srv.URL+"/api/monitor/"+sr.SessionID, &snaps); code != http.StatusOK {
		t.Fatalf("monitor code = %d", code)
	}
	if len(snaps) != 2 {
		t.Errorf("snapshots = %d, want 2", len(snaps))
	}
}

func TestHTTPPackageMount(t *testing.T) {
	store, _ := examFixture(t, false)
	eng := NewEngine(store, newFakeClock().Now, 0)
	server := NewServer(eng)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	// Without a mounted package: 404.
	resp, err := http.Get(srv.URL + "/package/imsmanifest.xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unmounted = %d, want 404", resp.StatusCode)
	}

	// Build and mount a package from the fixture exam.
	rec, err := store.Exam("exam1")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := store.Problems(rec.ProblemIDs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := scorm.BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	server.MountPackage(pkg)

	resp, err = http.Get(srv.URL + "/package/content/problem_001.html")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("content = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "Question 1") {
		t.Errorf("page body wrong:\n%.120s", body)
	}

	resp, err = http.Get(srv.URL + "/package/ghost.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing file = %d, want 404", resp.StatusCode)
	}
}

func TestHTTPRTEBridge(t *testing.T) {
	srv, _ := testServer(t)
	sr := startSession(t, srv.URL)
	url := srv.URL + "/api/rte/" + sr.SessionID

	var rr rteResponse
	if code := postJSON(t, url, rteRequest{Method: "getvalue",
		Element: "cmi.core.student_id"}, &rr); code != http.StatusOK {
		t.Fatalf("getvalue code = %d", code)
	}
	if rr.Result != "alice" || rr.LastError != "0" {
		t.Errorf("getvalue = %+v", rr)
	}
	if code := postJSON(t, url, rteRequest{Method: "setvalue",
		Element: "cmi.core.lesson_status", Value: "incomplete"}, &rr); code != http.StatusOK {
		t.Fatal("setvalue failed")
	}
	if rr.Result != "true" {
		t.Errorf("setvalue = %+v", rr)
	}
	if code := postJSON(t, url, rteRequest{Method: "commit"}, &rr); code != http.StatusOK || rr.Result != "true" {
		t.Errorf("commit = %d %+v", code, rr)
	}
	// Read-only violation surfaces the SCORM error code.
	if code := postJSON(t, url, rteRequest{Method: "setvalue",
		Element: "cmi.core.student_id", Value: "bob"}, &rr); code != http.StatusOK {
		t.Fatal("setvalue request failed")
	}
	if rr.Result != "false" || rr.LastError != "403" {
		t.Errorf("read-only setvalue = %+v", rr)
	}
	if code := postJSON(t, url, rteRequest{Method: "geterrorstring", Value: "403"}, &rr); code != http.StatusOK {
		t.Fatal("geterrorstring failed")
	}
	if rr.Result != "Element is read only" {
		t.Errorf("geterrorstring = %+v", rr)
	}
	// Unknown method -> 400.
	if code := postJSON(t, url, rteRequest{Method: "explode"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown method = %d, want 400", code)
	}
	// Unknown session -> 404.
	if code := postJSON(t, srv.URL+"/api/rte/ghost", rteRequest{Method: "commit"}, nil); code != http.StatusNotFound {
		t.Errorf("unknown session rte = %d, want 404", code)
	}
}
