package delivery

import (
	"errors"
	"testing"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// essayExamFixture: one essay + one MC problem.
func essayExamFixture(t *testing.T) (*bank.Store, string) {
	t.Helper()
	s := bank.New()
	essay := &item.Problem{ID: "essay1", Style: item.Essay,
		Question: "Discuss assessment metadata.", Level: cognition.Evaluation}
	mc, err := item.NewMultipleChoice("mc1", "?", []string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc.Level = cognition.Knowledge
	for _, p := range []*item.Problem{essay, mc} {
		if err := s.AddProblem(p); err != nil {
			t.Fatal(err)
		}
	}
	rec := &bank.ExamRecord{ID: "essayexam", Title: "Essay exam",
		ProblemIDs: []string{"essay1", "mc1"}, Display: item.FixedOrder}
	if err := s.AddExam(rec); err != nil {
		t.Fatal(err)
	}
	return s, rec.ID
}

func TestManualGradingWorkflow(t *testing.T) {
	store, examID := essayExamFixture(t)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	sess, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if err := eng.Answer(sess.ID, "essay1", "Metadata lets systems exchange assessments."); err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(sess.ID, "mc1", "A"); err != nil {
		t.Fatal(err)
	}

	pending := eng.PendingGrades(examID)
	if len(pending) != 1 || pending[0].ProblemID != "essay1" {
		t.Fatalf("pending = %+v", pending)
	}
	if pending[0].Response == "" {
		t.Error("pending grade should carry the response text")
	}

	if err := eng.AssignGrade(sess.ID, "essay1", 0.75); err != nil {
		t.Fatalf("AssignGrade: %v", err)
	}
	res, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Responses {
		if r.ProblemID == "essay1" && r.Credit != 0.75 {
			t.Errorf("essay credit = %v, want 0.75", r.Credit)
		}
	}
	// Re-grading after finish is allowed; results reflect the new grade.
	if err := eng.AssignGrade(sess.ID, "essay1", 1); err != nil {
		t.Fatalf("re-grade: %v", err)
	}
	res2, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Responses[0].Credit != 1 {
		t.Errorf("re-graded credit = %v", res2.Responses[0].Credit)
	}
}

func TestAssignGradeErrors(t *testing.T) {
	store, examID := essayExamFixture(t)
	eng := NewEngine(store, newFakeClock().Now, 0)
	sess, err := eng.Start(examID, "bob", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AssignGrade(sess.ID, "essay1", 1.5); !errors.Is(err, ErrInvalidCredit) {
		t.Errorf("credit 1.5 = %v", err)
	}
	if err := eng.AssignGrade(sess.ID, "essay1", 0.5); !errors.Is(err, ErrNotAnswered) {
		t.Errorf("unanswered = %v", err)
	}
	if err := eng.Answer(sess.ID, "mc1", "A"); err != nil {
		t.Fatal(err)
	}
	if err := eng.AssignGrade(sess.ID, "mc1", 0.5); !errors.Is(err, ErrAutoGraded) {
		t.Errorf("auto-graded = %v", err)
	}
	if err := eng.AssignGrade("ghost", "essay1", 0.5); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("unknown session = %v", err)
	}
}

func TestSessionSummaries(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	s1, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Start(examID, "bob", 1); err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(s1.ID, "q1", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(s1.ID); err != nil {
		t.Fatal(err)
	}
	sums := eng.SessionSummaries(examID)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].StateName != "finished" || sums[1].StateName != "running" {
		t.Errorf("states = %s, %s", sums[0].StateName, sums[1].StateName)
	}
	if got := eng.SessionSummaries("other"); len(got) != 0 {
		t.Errorf("other exam summaries = %v", got)
	}
}
