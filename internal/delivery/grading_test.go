package delivery

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// newTestHTTP serves the engine over HTTP for the admin-endpoint tests.
func newTestHTTP(t *testing.T, eng *Engine) string {
	t.Helper()
	srv := httptest.NewServer(NewServer(eng))
	t.Cleanup(srv.Close)
	return srv.URL
}

// essayExamFixture: one essay + one MC problem.
func essayExamFixture(t *testing.T) (*bank.Store, string) {
	t.Helper()
	s := bank.New()
	essay := &item.Problem{ID: "essay1", Style: item.Essay,
		Question: "Discuss assessment metadata.", Level: cognition.Evaluation}
	mc, err := item.NewMultipleChoice("mc1", "?", []string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc.Level = cognition.Knowledge
	for _, p := range []*item.Problem{essay, mc} {
		if err := s.AddProblem(p); err != nil {
			t.Fatal(err)
		}
	}
	rec := &bank.ExamRecord{ID: "essayexam", Title: "Essay exam",
		ProblemIDs: []string{"essay1", "mc1"}, Display: item.FixedOrder}
	if err := s.AddExam(rec); err != nil {
		t.Fatal(err)
	}
	return s, rec.ID
}

func TestManualGradingWorkflow(t *testing.T) {
	store, examID := essayExamFixture(t)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	sess, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if err := eng.Answer(sess.ID, "essay1", "Metadata lets systems exchange assessments."); err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(sess.ID, "mc1", "A"); err != nil {
		t.Fatal(err)
	}

	pending := eng.PendingGrades(examID)
	if len(pending) != 1 || pending[0].ProblemID != "essay1" {
		t.Fatalf("pending = %+v", pending)
	}
	if pending[0].Response == "" {
		t.Error("pending grade should carry the response text")
	}

	if err := eng.AssignGrade(sess.ID, "essay1", 0.75); err != nil {
		t.Fatalf("AssignGrade: %v", err)
	}
	res, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Responses {
		if r.ProblemID == "essay1" && r.Credit != 0.75 {
			t.Errorf("essay credit = %v, want 0.75", r.Credit)
		}
	}
	// Re-grading after finish is allowed; results reflect the new grade.
	if err := eng.AssignGrade(sess.ID, "essay1", 1); err != nil {
		t.Fatalf("re-grade: %v", err)
	}
	res2, err := eng.Finish(sess.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Responses[0].Credit != 1 {
		t.Errorf("re-graded credit = %v", res2.Responses[0].Credit)
	}
}

func TestAssignGradeErrors(t *testing.T) {
	store, examID := essayExamFixture(t)
	eng := NewEngine(store, newFakeClock().Now, 0)
	sess, err := eng.Start(examID, "bob", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AssignGrade(sess.ID, "essay1", 1.5); !errors.Is(err, ErrInvalidCredit) {
		t.Errorf("credit 1.5 = %v", err)
	}
	if err := eng.AssignGrade(sess.ID, "essay1", 0.5); !errors.Is(err, ErrNotAnswered) {
		t.Errorf("unanswered = %v", err)
	}
	if err := eng.Answer(sess.ID, "mc1", "A"); err != nil {
		t.Fatal(err)
	}
	if err := eng.AssignGrade(sess.ID, "mc1", 0.5); !errors.Is(err, ErrAutoGraded) {
		t.Errorf("auto-graded = %v", err)
	}
	if err := eng.AssignGrade("ghost", "essay1", 0.5); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("unknown session = %v", err)
	}
}

func TestSessionSummaries(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	s1, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Start(examID, "bob", 1); err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(s1.ID, "q1", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(s1.ID); err != nil {
		t.Fatal(err)
	}
	sums := eng.SessionSummaries(examID)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].StateName != "finished" || sums[1].StateName != "running" {
		t.Errorf("states = %s, %s", sums[0].StateName, sums[1].StateName)
	}
	if got := eng.SessionSummaries("other"); len(got) != 0 {
		t.Errorf("other exam summaries = %v", got)
	}
}

func TestHTTPAdminEndpoints(t *testing.T) {
	store, examID := essayExamFixture(t)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	srv := newTestHTTP(t, eng)

	var sr startResponse
	if code := postJSON(t, srv+"/api/session/start",
		startRequest{ExamID: examID, StudentID: "carol"}, &sr); code != http.StatusOK {
		t.Fatalf("start = %d", code)
	}
	if code := postJSON(t, srv+"/api/session/"+sr.SessionID+"/answer",
		answerRequest{ProblemID: "essay1", Response: "my essay"}, nil); code != http.StatusOK {
		t.Fatal("answer failed")
	}

	var sums []Status
	if code := getJSON(t, srv+"/api/admin/sessions?exam="+examID, &sums); code != http.StatusOK {
		t.Fatalf("admin sessions = %d", code)
	}
	if len(sums) != 1 || sums[0].StudentID != "carol" {
		t.Errorf("sums = %+v", sums)
	}
	if code := getJSON(t, srv+"/api/admin/sessions", nil); code != http.StatusBadRequest {
		t.Errorf("missing exam param = %d", code)
	}

	var pending []PendingGrade
	if code := getJSON(t, srv+"/api/admin/grades?exam="+examID, &pending); code != http.StatusOK {
		t.Fatalf("admin grades = %d", code)
	}
	if len(pending) != 1 || pending[0].ProblemID != "essay1" {
		t.Errorf("pending = %+v", pending)
	}
	if code := postJSON(t, srv+"/api/admin/grades",
		gradeRequest{SessionID: sr.SessionID, ProblemID: "essay1", Credit: 0.9}, nil); code != http.StatusOK {
		t.Error("grade post failed")
	}
	if code := postJSON(t, srv+"/api/admin/grades",
		gradeRequest{SessionID: sr.SessionID, ProblemID: "essay1", Credit: 2}, nil); code != http.StatusBadRequest {
		t.Errorf("bad credit = %d", code)
	}
}

func TestHTTPAdminResultsExport(t *testing.T) {
	store, examID := examFixture(t, false)
	clock := newFakeClock()
	eng := NewEngine(store, clock.Now, 0)
	srv := newTestHTTP(t, eng)

	var sr startResponse
	if code := postJSON(t, srv+"/api/session/start",
		startRequest{ExamID: examID, StudentID: "dora"}, &sr); code != http.StatusOK {
		t.Fatal("start failed")
	}
	for _, q := range []string{"q1", "q2", "q3", "q4"} {
		clock.Advance(20 * time.Second)
		if code := postJSON(t, srv+"/api/session/"+sr.SessionID+"/answer",
			answerRequest{ProblemID: q, Response: "A"}, nil); code != http.StatusOK {
			t.Fatal("answer failed")
		}
	}
	if code := postJSON(t, srv+"/api/session/"+sr.SessionID+"/finish", nil, nil); code != http.StatusOK {
		t.Fatal("finish failed")
	}

	var res struct {
		ExamID   string `json:"examId"`
		Students []struct {
			StudentID string `json:"studentId"`
		} `json:"students"`
	}
	if code := getJSON(t, srv+"/api/admin/results?exam="+examID, &res); code != http.StatusOK {
		t.Fatalf("results export = %d", code)
	}
	if res.ExamID != examID || len(res.Students) != 1 || res.Students[0].StudentID != "dora" {
		t.Errorf("exported result = %+v", res)
	}
	if code := getJSON(t, srv+"/api/admin/results", nil); code != http.StatusBadRequest {
		t.Errorf("missing exam param = %d", code)
	}
	if code := getJSON(t, srv+"/api/admin/results?exam=ghost", nil); code != http.StatusNotFound {
		t.Errorf("unknown exam = %d", code)
	}
}
