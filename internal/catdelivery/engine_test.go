package catdelivery

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mineassess/internal/adaptive"
	"mineassess/internal/bank"
	"mineassess/internal/item"
	"mineassess/internal/simulate"
	"mineassess/internal/stats"
)

// calibratedExam authors n multiple-choice problems (correct answer "A")
// with difficulties spread over [-spread, spread] and stores them as a
// calibrated exam.
func calibratedExam(t *testing.T, store bank.Storage, examID string, n int, a, spread float64) {
	t.Helper()
	params := make(map[string]simulate.IRTParams, n)
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-q%03d", examID, i+1)
		p, err := newMC(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.AddProblem(p); err != nil {
			t.Fatal(err)
		}
		b := 0.0
		if n > 1 {
			b = -spread + 2*spread*float64(i)/float64(n-1)
		}
		params[id] = simulate.IRTParams{A: a, B: b}
		ids = append(ids, id)
	}
	if err := store.AddExam(&bank.ExamRecord{
		ID: examID, Title: "Calibrated " + examID,
		ProblemIDs: ids, ItemParams: params,
	}); err != nil {
		t.Fatal(err)
	}
}

// answerAs drives one full adaptive session with a simulated learner of the
// given true ability: correct answers submit "A", wrong ones "B".
func answerAs(t *testing.T, e *Engine, examID, student string, truth float64, cfg Config, seed int64) *Outcome {
	t.Helper()
	s, first, err := e.Start(examID, student, cfg, seed)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	exam, err := e.store.Exam(examID)
	if err != nil {
		t.Fatal(err)
	}
	view := first
	for step := 0; step < 10_000; step++ {
		params := exam.ItemParams[view.ProblemID]
		response := "B"
		if rng.Float64() < params.ProbCorrect(truth) {
			response = "A"
		}
		prog, err := e.SubmitResponse(s.ID, view.ProblemID, response)
		if err != nil {
			t.Fatalf("submit %s: %v", view.ProblemID, err)
		}
		if prog.Done {
			out, err := e.Outcome(s.ID)
			if err != nil {
				t.Fatalf("outcome: %v", err)
			}
			return out
		}
		view = prog.Next
	}
	t.Fatal("session never stopped")
	return nil
}

// newMC builds an auto-gradable multiple-choice item whose correct answer
// is always "A".
func newMC(id string) (*item.Problem, error) {
	return item.NewMultipleChoice(id, "Adaptive question "+id,
		[]string{"alpha", "beta", "gamma", "delta"}, 0)
}

func TestSETargetStopsBeforeMaxItems(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 60, 2.0, 3)
	e, err := NewEngine(store, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := answerAs(t, e, "pool", "alice", 0.5,
		Config{MaxItems: 60, TargetSE: 0.4}, 7)
	if out.StopReason != StopSETarget {
		t.Fatalf("stop = %s, want %s (administered %d, SE %.3f)",
			out.StopReason, StopSETarget, len(out.Administered), out.SE)
	}
	if len(out.Administered) >= 60 {
		t.Errorf("SE rule should fire before max items; used %d", len(out.Administered))
	}
	if out.SE > 0.4 {
		t.Errorf("final SE = %.3f, want <= 0.4", out.SE)
	}
}

func TestMaxItemsStops(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 20, 1.2, 2)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := answerAs(t, e, "pool", "bob", 0, Config{MaxItems: 5}, 3)
	if out.StopReason != StopMaxItems || len(out.Administered) != 5 {
		t.Fatalf("stop = %s after %d items, want max-items after 5",
			out.StopReason, len(out.Administered))
	}
	// No item repeats.
	seen := make(map[string]bool)
	for _, id := range out.Administered {
		if seen[id] {
			t.Fatalf("item %s administered twice", id)
		}
		seen[id] = true
	}
}

// TestPoolExhaustionBeforeSETarget: a tiny weak pool cannot reach an
// aggressive SE target; the session must stop with pool-exhausted, not spin.
func TestPoolExhaustionBeforeSETarget(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "tiny", 3, 0.5, 1)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// MaxItems above the pool size: the SE target is unreachable with 3
	// weak items, so the session must end on pool exhaustion.
	out := answerAs(t, e, "tiny", "carol", 0, Config{MaxItems: 10, TargetSE: 0.05}, 11)
	if len(out.Administered) != 3 {
		t.Fatalf("administered = %d, want the whole pool (3)", len(out.Administered))
	}
	if out.StopReason != StopPoolExhausted {
		t.Fatalf("stop = %s, want %s", out.StopReason, StopPoolExhausted)
	}
	if out.SE <= 0.05 {
		t.Errorf("SE target should not have been reachable; got %.3f", out.SE)
	}
}

func TestSingleItemPool(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "one", 1, 1.5, 0)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := answerAs(t, e, "one", "dave", 1, Config{}, 5)
	if len(out.Administered) != 1 {
		t.Fatalf("administered = %d, want 1", len(out.Administered))
	}
	if math.IsNaN(out.Theta) || math.IsInf(out.Theta, 0) {
		t.Errorf("theta = %v", out.Theta)
	}
}

// TestAllCorrectAllIncorrectStreams: degenerate response patterns must keep
// the EAP estimate finite and inside the quadrature bounds (the divergence
// guard MLE would need is built into EAP's standard-normal prior).
func TestAllCorrectAllIncorrectStreams(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 15, 1.8, 2)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, response := range map[string]string{"all-correct": "A", "all-incorrect": "B"} {
		t.Run(name, func(t *testing.T) {
			s, view, err := e.Start("pool", name, Config{MaxItems: 15}, 9)
			if err != nil {
				t.Fatal(err)
			}
			for {
				prog, err := e.SubmitResponse(s.ID, view.ProblemID, response)
				if err != nil {
					t.Fatal(err)
				}
				if math.IsNaN(prog.Theta) || prog.Theta < -4 || prog.Theta > 4 {
					t.Fatalf("theta diverged: %v after %d items", prog.Theta, prog.Administered)
				}
				if math.IsNaN(prog.SE) || math.IsInf(prog.SE, 0) {
					t.Fatalf("SE diverged: %v", prog.SE)
				}
				if prog.Done {
					break
				}
				view = prog.Next
			}
			out, err := e.Outcome(s.ID)
			if err != nil {
				t.Fatal(err)
			}
			if name == "all-correct" && out.Theta < 1 {
				t.Errorf("all-correct theta = %.2f, want high", out.Theta)
			}
			if name == "all-incorrect" && out.Theta > -1 {
				t.Errorf("all-incorrect theta = %.2f, want low", out.Theta)
			}
		})
	}
}

func TestSubmitErrors(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 5, 1.5, 1)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Start("ghost", "x", Config{}, 1); !errors.Is(err, bank.ErrExamNotFound) {
		t.Errorf("unknown exam = %v", err)
	}
	if _, _, err := e.Start("pool", "x", Config{MaxItems: -1}, 1); !errors.Is(err, adaptive.ErrInvalidConfig) {
		t.Errorf("bad config = %v", err)
	}
	if _, err := e.SubmitResponse("cat-999999", "q", "A"); !errors.Is(err, ErrSessionNotFound) {
		t.Errorf("unknown session = %v", err)
	}
	s, view, err := e.Start("pool", "erin", Config{MaxItems: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitResponse(s.ID, "not-the-pending-item", "A"); !errors.Is(err, ErrItemNotPending) {
		t.Errorf("wrong item = %v", err)
	}
	prog, err := e.SubmitResponse(s.ID, view.ProblemID, "A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SubmitResponse(s.ID, view.ProblemID, "A"); !errors.Is(err, ErrItemNotPending) {
		t.Errorf("stale item = %v", err)
	}
	if _, err := e.SubmitResponse(s.ID, prog.Next.ProblemID, "A"); err != nil {
		t.Fatal(err)
	}
	// Session is now finished (max-items 2).
	if _, err := e.SubmitResponse(s.ID, "anything", "A"); !errors.Is(err, ErrSessionFinished) {
		t.Errorf("finished submit = %v", err)
	}
	if _, err := e.NextItem(s.ID); !errors.Is(err, ErrSessionFinished) {
		t.Errorf("finished next = %v", err)
	}
	// Finish is idempotent and reports the recorded stop reason.
	out, err := e.Finish(s.ID)
	if err != nil || out.StopReason != StopMaxItems {
		t.Errorf("finish after stop = %+v, %v", out, err)
	}
}

func TestUncalibratedExamRejected(t *testing.T) {
	store := bank.NewSharded(4)
	p, err := newMC("plain-q1")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddProblem(p); err != nil {
		t.Fatal(err)
	}
	if err := store.AddExam(&bank.ExamRecord{ID: "plain", ProblemIDs: []string{"plain-q1"}}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Start("plain", "x", Config{}, 1); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("uncalibrated start = %v, want ErrNotCalibrated", err)
	}
}

// TestExposureCapSpreadsItems: with a cap, the most informative item cannot
// be handed to every session; exposure rates stay at or near the cap with
// the least-exposed fallback keeping sessions progressing.
func TestExposureCapSpreadsItems(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 30, 1.5, 2)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 20
	uncapped, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	firstItems := make(map[string]int)
	for i := 0; i < sessions; i++ {
		student := fmt.Sprintf("s%02d", i)
		answerAs(t, e, "pool", student, 0, Config{MaxItems: 5, MaxExposure: 0.3}, int64(i))
		_, first, err := uncapped.Start("pool", student, Config{MaxItems: 5}, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		firstItems[first.ProblemID]++
	}
	// Uncapped max-information hands every session the same first item.
	if len(firstItems) != 1 {
		t.Fatalf("uncapped first items = %v, want a single hot item", firstItems)
	}
	rates, err := e.ExposureRates("pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 30 {
		t.Fatalf("rates entries = %d, want 30 (explicit zeros included)", len(rates))
	}
	over := 0
	for id, rate := range rates {
		// The cap admits the administration that crosses it, so allow one
		// session of slack.
		if rate > 0.3+1.0/sessions+1e-9 {
			over++
			t.Logf("item %s rate %.2f", id, rate)
		}
	}
	if over > 0 {
		t.Errorf("%d items exceeded the exposure cap", over)
	}
}

// TestRestartRestoresActiveSession: a mid-test session persisted through a
// journaled bank continues after an engine restart with identical state.
func TestRestartRestoresActiveSession(t *testing.T) {
	dir := t.TempDir()
	j, err := bank.OpenJournal(dir, bank.NewSharded(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	calibratedExam(t, j, "pool", 12, 1.6, 2)
	e1, err := NewEngine(j, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, view, err := e1.Start("pool", "frank", Config{MaxItems: 6, TargetSE: 0.1}, 21)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := e1.SubmitResponse(s.ID, view.ProblemID, "A")
	if err != nil {
		t.Fatal(err)
	}
	prog, err = e1.SubmitResponse(s.ID, prog.Next.ProblemID, "B")
	if err != nil {
		t.Fatal(err)
	}
	pendingBefore := prog.Next.ProblemID
	thetaBefore := prog.Theta
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the journal and build a fresh engine over it.
	j2, err := bank.OpenJournal(dir, bank.NewSharded(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	e2, err := NewEngine(j2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.HasSession(s.ID) {
		t.Fatal("restored engine lost the session")
	}
	st, err := e2.Status(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Administered != 2 || st.PendingID != pendingBefore {
		t.Fatalf("restored status = %+v, want 2 administered pending %s", st, pendingBefore)
	}
	if math.Abs(st.Theta-thetaBefore) > 1e-9 {
		t.Errorf("restored theta = %v, want %v", st.Theta, thetaBefore)
	}
	// The session continues to completion on the new engine.
	next, err := e2.NextItem(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	for {
		prog, err := e2.SubmitResponse(s.ID, next.ProblemID, "A")
		if err != nil {
			t.Fatal(err)
		}
		if prog.Done {
			break
		}
		next = prog.Next
	}
	// New sessions on the restarted engine must not reuse restored IDs.
	s2, _, err := e2.Start("pool", "grace", Config{MaxItems: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID == s.ID {
		t.Error("session ID collision after restart")
	}
}

// TestRecalibrateFeedbackLoop: sessions from an easier-than-authored item
// pull its stored difficulty down; the stats bridge sees the same data.
func TestRecalibrateFeedbackLoop(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 8, 1.5, 1.5)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := store.Exam("pool")
	if err != nil {
		t.Fatal(err)
	}
	// Learners of middling true ability answer everything correctly: the
	// pool is easier than authored, so calibration must lower difficulty.
	for i := 0; i < 6; i++ {
		s, view, err := e.Start("pool", fmt.Sprintf("h%d", i), Config{MaxItems: 8}, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		for {
			prog, err := e.SubmitResponse(s.ID, view.ProblemID, "A")
			if err != nil {
				t.Fatal(err)
			}
			if prog.Done {
				break
			}
			view = prog.Next
		}
	}
	if got := e.ResponseLog().Len(); got != 6 {
		t.Fatalf("logged sessions = %d, want 6", got)
	}
	// The stats bridge: classical item statistics over live CAT data.
	res, err := e.ExamResult("pool")
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.Compute(res)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scores.N != 6 {
		t.Errorf("stats N = %d", st.Scores.N)
	}
	cal, err := e.Recalibrate("pool", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Updated) == 0 {
		t.Fatal("no items recalibrated")
	}
	after, err := store.Exam("pool")
	if err != nil {
		t.Fatal(err)
	}
	for pid := range cal.Updated {
		if after.ItemParams[pid].B >= before.ItemParams[pid].B {
			t.Errorf("item %s difficulty did not drop: %.3f -> %.3f",
				pid, before.ItemParams[pid].B, after.ItemParams[pid].B)
		}
	}
	// Recalibrating with no new responses is still well-defined.
	if _, err := e.Recalibrate("pool", 5); err != nil {
		t.Errorf("second recalibrate: %v", err)
	}
	if _, err := e.Recalibrate("ghost", 5); !errors.Is(err, bank.ErrExamNotFound) {
		t.Errorf("ghost recalibrate = %v", err)
	}
}

// TestConcurrentAdaptiveSessions hammers one shared pool with parallel
// sessions; run under -race. Exposure accounting, the registry, the
// response log and the storage backend are all on the contended path.
func TestConcurrentAdaptiveSessions(t *testing.T) {
	store := bank.NewSharded(8)
	calibratedExam(t, store, "pool", 40, 1.5, 2)
	e, err := NewEngine(store, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 24
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			s, view, err := e.Start("pool", fmt.Sprintf("racer-%02d", w),
				Config{MaxItems: 10, TargetSE: 0.3, MaxExposure: 0.5, Selector: SelectorRandomesque}, int64(w))
			if err != nil {
				errs <- err
				return
			}
			for {
				response := "B"
				if rng.Float64() < 0.6 {
					response = "A"
				}
				prog, err := e.SubmitResponse(s.ID, view.ProblemID, response)
				if err != nil {
					errs <- err
					return
				}
				if _, err := e.Status(s.ID); err != nil {
					errs <- err
					return
				}
				if prog.Done {
					return
				}
				view = prog.Next
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.SessionCount(); got != workers {
		t.Errorf("sessions = %d, want %d", got, workers)
	}
	if got := e.ResponseLog().Len(); got != workers {
		t.Errorf("logged = %d, want %d", got, workers)
	}
}

// TestRestoreTolerance: persisted sessions whose exam was deleted must not
// crash-loop engine construction; finished sessions restore without a pool.
func TestRestoreTolerance(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 6, 1.5, 1)
	e1, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One finished, one active session.
	answerAs(t, e1, "pool", "fin", 0, Config{MaxItems: 2}, 1)
	s, _, err := e1.Start("pool", "act", Config{MaxItems: 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Delete the exam out from under both sessions (legal: no cascade).
	if err := store.DeleteExam("pool"); err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatalf("NewEngine over orphaned sessions: %v", err)
	}
	// The finished session restores (no pool needed); the active one is
	// skipped and reported.
	if got := e2.RestoreSkipped(); got != 1 {
		t.Errorf("RestoreSkipped = %d, want 1 (the active session)", got)
	}
	if e2.HasSession(s.ID) {
		t.Error("orphaned active session should not be registered")
	}
	if e2.ResponseLog().Len() != 1 {
		t.Errorf("finished session's log entry lost: len = %d", e2.ResponseLog().Len())
	}
}

// TestPurgeFinished: the retention pass drops finished sessions from both
// registry and storage while active ones keep running.
func TestPurgeFinished(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 8, 1.5, 1)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		answerAs(t, e, "pool", fmt.Sprintf("done%d", i), 0, Config{MaxItems: 2}, int64(i))
	}
	active, view, err := e.Start("pool", "live", Config{MaxItems: 8}, 9)
	if err != nil {
		t.Fatal(err)
	}
	n, err := e.PurgeFinished()
	if err != nil || n != 3 {
		t.Fatalf("PurgeFinished = %d, %v; want 3", n, err)
	}
	if got := e.SessionCount(); got != 1 {
		t.Errorf("registry after purge = %d, want 1", got)
	}
	if got := len(store.AdaptiveSessionIDs()); got != 1 {
		t.Errorf("stored records after purge = %d, want 1", got)
	}
	// The response log keeps the purged sessions' calibration data.
	if got := e.ResponseLog().Len(); got != 3 {
		t.Errorf("log after purge = %d, want 3", got)
	}
	// The active session is untouched and still answers.
	if _, err := e.SubmitResponse(active.ID, view.ProblemID, "A"); err != nil {
		t.Errorf("active session broken by purge: %v", err)
	}
	// Idempotent.
	if n, err := e.PurgeFinished(); err != nil || n != 0 {
		t.Errorf("second purge = %d, %v", n, err)
	}
}

// flakyDeleteStore fails DeleteAdaptiveSession for one session ID.
type flakyDeleteStore struct {
	bank.Storage
	failID string
}

func (f *flakyDeleteStore) DeleteAdaptiveSession(id string) error {
	if id != "" && id == f.failID {
		return errors.New("backend flake")
	}
	return f.Storage.DeleteAdaptiveSession(id)
}

// TestPurgeFinishedContinuesPastErrors: one session's storage failure must
// not abort the sweep — the other finished sessions still purge, the count
// reflects what actually happened, the failure surfaces in the joined
// error, and the failed session remains purgeable once the backend
// recovers.
func TestPurgeFinishedContinuesPastErrors(t *testing.T) {
	inner := bank.NewSharded(4)
	calibratedExam(t, inner, "pool", 8, 1.5, 1)
	store := &flakyDeleteStore{Storage: inner}
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		answerAs(t, e, "pool", fmt.Sprintf("done%d", i), 0, Config{MaxItems: 2}, int64(i))
	}
	ids := e.SessionIDs()
	if len(ids) != 3 {
		t.Fatalf("session count = %d", len(ids))
	}
	store.failID = ids[1]

	n, err := e.PurgeFinished()
	if n != 2 {
		t.Errorf("purged = %d, want 2 (sweep must continue past the failure)", n)
	}
	if err == nil || !strings.Contains(err.Error(), ids[1]) {
		t.Errorf("error = %v, want a joined error naming session %s", err, ids[1])
	}
	if got := e.SessionCount(); got != 1 {
		t.Errorf("registry after flaky purge = %d, want the failed session only", got)
	}

	// Backend recovers: the survivor purges on the next sweep.
	store.failID = ""
	if n, err := e.PurgeFinished(); err != nil || n != 1 {
		t.Errorf("retry purge = %d, %v; want 1, nil", n, err)
	}
	if got := len(inner.AdaptiveSessionIDs()); got != 0 {
		t.Errorf("stored records after retry = %d, want 0", got)
	}
}

// failingStore wraps a Storage and fails PutAdaptiveSession on demand.
type failingStore struct {
	bank.Storage
	failPuts bool
}

func (f *failingStore) PutAdaptiveSession(rec *bank.AdaptiveSessionRecord) error {
	if f.failPuts {
		return errors.New("disk full")
	}
	return f.Storage.PutAdaptiveSession(rec)
}

// TestSubmitRollsBackOnPersistFailure: a failed persist must leave the
// session exactly as before the submit, so the client's retry of the same
// item succeeds instead of hitting ITEM_NOT_PENDING.
func TestSubmitRollsBackOnPersistFailure(t *testing.T) {
	inner := bank.NewSharded(4)
	calibratedExam(t, inner, "pool", 6, 1.5, 1)
	store := &failingStore{Storage: inner}
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, view, err := e.Start("pool", "rb", Config{MaxItems: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	store.failPuts = true
	if _, err := e.SubmitResponse(s.ID, view.ProblemID, "A"); err == nil {
		t.Fatal("submit should surface the persist failure")
	}
	st, err := e.Status(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Administered != 0 || st.PendingID != view.ProblemID || st.State != bank.AdaptiveStateActive {
		t.Fatalf("state after failed submit = %+v, want untouched pre-submit state", st)
	}
	// The retry of the SAME item succeeds once the store recovers.
	store.failPuts = false
	prog, err := e.SubmitResponse(s.ID, view.ProblemID, "A")
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if prog.Administered != 1 {
		t.Errorf("retry administered = %d", prog.Administered)
	}
	// A rolled-back finish leaves no phantom log entry and stays active.
	store.failPuts = true
	if _, err := e.SubmitResponse(s.ID, prog.Next.ProblemID, "A"); err == nil {
		t.Fatal("finishing submit should surface the persist failure")
	}
	if e.ResponseLog().Len() != 0 {
		t.Error("rolled-back finish leaked a response-log entry")
	}
	store.failPuts = false
	final, err := e.SubmitResponse(s.ID, prog.Next.ProblemID, "A")
	if err != nil || !final.Done {
		t.Fatalf("final retry = %+v, %v", final, err)
	}
	if e.ResponseLog().Len() != 1 {
		t.Errorf("log after durable finish = %d, want 1", e.ResponseLog().Len())
	}
}

// TestMinItemsAboveMaxRejected: a floor above the ceiling would silently
// disable the SE rule, so Start must reject it with a typed error — both
// explicitly and when MaxItems defaults to the pool size.
func TestMinItemsAboveMaxRejected(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 5, 1.5, 1)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Start("pool", "x", Config{MaxItems: 3, MinItems: 4, TargetSE: 0.4}, 1); !errors.Is(err, adaptive.ErrInvalidConfig) {
		t.Errorf("MinItems > MaxItems = %v, want ErrInvalidConfig", err)
	}
	if _, _, err := e.Start("pool", "x", Config{MinItems: 6, TargetSE: 0.4}, 1); !errors.Is(err, adaptive.ErrInvalidConfig) {
		t.Errorf("MinItems > pool size = %v, want ErrInvalidConfig", err)
	}
	if _, _, err := e.Start("pool", "x", Config{MaxItems: 3, MinItems: 3}, 1); err != nil {
		t.Errorf("MinItems == MaxItems should be legal: %v", err)
	}
}

// TestPurgeForgetsMonitor: purged sessions must release their monitor
// rings, or monitor memory scales with lifetime session count.
func TestPurgeForgetsMonitor(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "pool", 4, 1.5, 1)
	e, err := NewEngine(store, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := answerAs(t, e, "pool", "m", 0, Config{MaxItems: 2}, 1)
	if got := len(e.Monitor().Snapshots(out.SessionID)); got == 0 {
		t.Fatal("no snapshots captured before purge")
	}
	if _, err := e.PurgeFinished(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Monitor().Snapshots(out.SessionID)); got != 0 {
		t.Errorf("monitor retained %d snapshots after purge", got)
	}
	if got := e.Monitor().Captured(out.SessionID); got != 0 {
		t.Errorf("monitor retained capture counter %d after purge", got)
	}
}

// TestInfoGridCacheSharedAndInvalidated: sessions on one exam share a single
// precomputed information table; a parameter change (what Recalibrate
// persists) rebuilds it — via explicit invalidation or the parameter
// fingerprint alone.
func TestInfoGridCacheSharedAndInvalidated(t *testing.T) {
	store := bank.NewSharded(4)
	calibratedExam(t, store, "gx", 40, 1.2, 2.5)
	e, err := NewEngine(store, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := e.Start("gx", "stu1", Config{MaxItems: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := e.Start("gx", "stu2", Config{MaxItems: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.grid == nil || s1.grid != s2.grid {
		t.Fatal("sessions on one exam must share the cached information grid")
	}
	if got := e.gridFor("gx", s1.pool); got != s1.grid {
		t.Fatal("gridFor rebuilt despite an unchanged pool fingerprint")
	}

	// A recalibration-style parameter change must yield a fresh grid.
	rec, err := store.Exam("gx")
	if err != nil {
		t.Fatal(err)
	}
	p := rec.ItemParams["gx-q001"]
	p.B += 0.5
	rec.ItemParams["gx-q001"] = p
	if err := store.UpdateExam(rec); err != nil {
		t.Fatal(err)
	}
	e.invalidateGrid("gx")
	pool, _, err := e.loadPool(rec)
	if err != nil {
		t.Fatal(err)
	}
	fresh := e.gridFor("gx", pool)
	if fresh == s1.grid {
		t.Fatal("stale grid served after invalidation")
	}
	// Fingerprint alone also catches staleness (no explicit invalidation).
	p.B += 0.5
	rec.ItemParams["gx-q001"] = p
	pool2, _, err := e.loadPool(rec)
	if err != nil {
		t.Fatal(err)
	}
	if e.gridFor("gx", pool2) == fresh {
		t.Fatal("fingerprint mismatch did not rebuild the grid")
	}
	// In-flight sessions keep their start-time snapshot.
	if s1.grid == fresh {
		t.Fatal("running session's grid must not change mid-test")
	}
}
