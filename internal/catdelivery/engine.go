// Package catdelivery is the live adaptive (CAT) delivery subsystem: the
// interactive counterpart of the offline simulator in internal/adaptive.
// Where internal/delivery hands a learner a fixed form up front, a CAT
// session hands out ONE item at a time — each response re-estimates the
// learner's ability (EAP theta and its posterior SD) and the next item is
// chosen to be maximally informative at the new estimate, subject to
// per-item exposure caps, until a stopping rule fires (SE target reached,
// max items administered, or pool exhausted).
//
// Architecture mirrors internal/delivery: sessions live in a sharded
// registry with per-session locks, captures flow into a delivery.Monitor,
// and unrelated learners never contend. Unlike fixed-form sessions, every
// adaptive session is persisted to the bank.Storage after each mutation
// (bank.AdaptiveSessionRecord), so with a journaled bank a mid-test crash
// resumes exactly where the learner stopped: the response stream re-derives
// theta/SE and item selection is re-seeded deterministically.
//
// Finished sessions drain into a ResponseLog — the calibration feedback
// loop's collection point. Recalibrate folds the logged responses back into
// the exam's stored ItemParams (fixed-ability difficulty refit, see
// internal/adaptive/calibrate.go), so pool parameters converge toward what
// real learners demonstrate instead of staying hand-authored forever.
package catdelivery

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/internal/adaptive"
	"mineassess/internal/bank"
	"mineassess/internal/delivery"
	"mineassess/internal/events"
	"mineassess/internal/item"
	"mineassess/internal/obs"
	"mineassess/internal/simulate"
	"mineassess/internal/trace"
)

// sessionCtxPutter is the optional context-carrying persist that journaled
// backends implement (bank.Journal.PutAdaptiveSessionCtx); when the store
// provides it, a traced request's WAL commit parents under the engine span.
type sessionCtxPutter interface {
	PutAdaptiveSessionCtx(ctx context.Context, rec *bank.AdaptiveSessionRecord) error
}

// persistSession stores the session record, threading ctx through to the
// journal when the backend supports it.
func (e *Engine) persistSession(ctx context.Context, rec *bank.AdaptiveSessionRecord) error {
	if p, ok := e.store.(sessionCtxPutter); ok {
		return p.PutAdaptiveSessionCtx(ctx, rec)
	}
	return e.store.PutAdaptiveSession(rec)
}

// Errors callers may match.
var (
	ErrSessionNotFound = errors.New("catdelivery: adaptive session not found")
	ErrSessionFinished = errors.New("catdelivery: adaptive session already finished")
	ErrNotCalibrated   = errors.New("catdelivery: exam has no calibrated item parameters")
	ErrItemNotPending  = errors.New("catdelivery: response is not for the pending item")
	ErrNotGradable     = errors.New("catdelivery: adaptive pools need auto-gradable items")
	ErrNoResponses     = errors.New("catdelivery: no logged adaptive responses for exam")
)

// Selector names accepted in Config.Selector.
const (
	SelectorMaxInformation = "max-information"
	SelectorRandomesque    = "randomesque"
	SelectorRandom         = "random"
)

// DefaultRandomesqueK is the top-k width used when Config.RandomesqueK is 0.
const DefaultRandomesqueK = 5

// Config controls one live adaptive session. The zero value means: whole
// pool as MaxItems, no SE target, max-information selection, no exposure
// cap.
type Config struct {
	// MaxItems caps administrations; 0 means the calibrated pool size.
	MaxItems int `json:"maxItems,omitempty"`
	// MinItems is the floor before the SE rule may stop the test.
	MinItems int `json:"minItems,omitempty"`
	// TargetSE stops the test once the EAP posterior SD drops below it and
	// MinItems is satisfied; 0 disables the rule.
	TargetSE float64 `json:"targetSE,omitempty"`
	// Selector is one of the Selector* names; empty means max-information.
	Selector string `json:"selector,omitempty"`
	// RandomesqueK is the randomesque top-k width (0 = DefaultRandomesqueK).
	RandomesqueK int `json:"randomesqueK,omitempty"`
	// MaxExposure caps any item's administration rate across sessions of
	// the same exam (administrations / sessions started); 0 disables.
	// Capped items are withheld unless every remaining item is capped, in
	// which case the least-exposed remaining item is used — the test always
	// progresses.
	MaxExposure float64 `json:"maxExposure,omitempty"`
}

// validate rejects unusable configurations with typed errors, reusing the
// adaptive package's sentinel so callers match one error family.
func (c Config) validate() error {
	if c.MaxItems < 0 {
		return fmt.Errorf("%w: MaxItems must not be negative, got %d",
			adaptive.ErrInvalidConfig, c.MaxItems)
	}
	if c.MinItems < 0 {
		return fmt.Errorf("%w: MinItems must not be negative, got %d",
			adaptive.ErrInvalidConfig, c.MinItems)
	}
	if c.TargetSE < 0 {
		return fmt.Errorf("%w: TargetSE must not be negative, got %v",
			adaptive.ErrInvalidConfig, c.TargetSE)
	}
	if c.RandomesqueK < 0 {
		return fmt.Errorf("%w: RandomesqueK must not be negative, got %d",
			adaptive.ErrInvalidConfig, c.RandomesqueK)
	}
	if c.MaxExposure < 0 || c.MaxExposure > 1 {
		return fmt.Errorf("%w: MaxExposure %v outside [0,1]",
			adaptive.ErrInvalidConfig, c.MaxExposure)
	}
	switch c.Selector {
	case "", SelectorMaxInformation, SelectorRandomesque, SelectorRandom:
	default:
		return fmt.Errorf("%w: unknown selector %q", adaptive.ErrInvalidConfig, c.Selector)
	}
	return nil
}

// selector resolves the named selection rule.
func (c Config) selector() adaptive.Selector {
	switch c.Selector {
	case SelectorRandomesque:
		k := c.RandomesqueK
		if k <= 0 {
			k = DefaultRandomesqueK
		}
		return adaptive.Randomesque(k)
	case SelectorRandom:
		return adaptive.RandomSelection
	default:
		return adaptive.MaxInformation
	}
}

// Session is one learner's live adaptive sitting. ID, ExamID and StudentID
// are fixed at start; everything else is guarded by mu. The persisted
// record (rec) is the single source of truth — in-memory derived state
// (responses, pending problem) is rebuilt from it on restart.
type Session struct {
	ID        string
	ExamID    string
	StudentID string

	mu        sync.Mutex
	rec       *bank.AdaptiveSessionRecord
	pool      []adaptive.PoolItem
	problems  map[string]*item.Problem
	responses []adaptive.ResponseRecord
	pending   *item.Problem
	// grid is the exam's shared precomputed information table, rows aligned
	// with pool. Snapshotted at start like pool itself; sessions never see a
	// mid-test recalibration.
	grid *adaptive.InfoGrid
}

// ItemView is the learner-facing projection of the pending item: question
// and options only, never the answer key.
type ItemView struct {
	ProblemID string        `json:"problemId"`
	Question  string        `json:"question"`
	Style     string        `json:"style"`
	Options   []item.Option `json:"options,omitempty"`
	// Position is the 1-based administration index of this item.
	Position int `json:"position"`
	MaxItems int `json:"maxItems"`
}

// Progress reports the session after a response: the updated estimate and
// either the next item or the stop decision.
type Progress struct {
	SessionID    string    `json:"sessionId"`
	Theta        float64   `json:"theta"`
	SE           float64   `json:"se"`
	Administered int       `json:"administered"`
	Done         bool      `json:"done"`
	StopReason   string    `json:"stopReason,omitempty"`
	Next         *ItemView `json:"next,omitempty"`
}

// Outcome is the final result of a finished adaptive session.
type Outcome struct {
	SessionID    string   `json:"sessionId"`
	ExamID       string   `json:"examId"`
	StudentID    string   `json:"studentId"`
	Theta        float64  `json:"theta"`
	SE           float64  `json:"se"`
	Administered []string `json:"administered"`
	StopReason   string   `json:"stopReason"`
}

// Stop reasons recorded on finished sessions.
const (
	StopSETarget      = "se-target"
	StopMaxItems      = "max-items"
	StopPoolExhausted = "pool-exhausted"
	StopByCaller      = "finished-by-caller"
)

// registry is the sharded session index — the same pattern as
// internal/delivery: shard locks guard only the maps, per-session state is
// guarded by each session's own mutex.
const registryShards = 32

type registry struct {
	shards []regShard
}

type regShard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

func newRegistry() *registry {
	r := &registry{shards: make([]regShard, registryShards)}
	for i := range r.shards {
		r.shards[i].sessions = make(map[string]*Session)
	}
	return r
}

func fnvShard(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

func (r *registry) get(id string) (*Session, error) {
	sh := &r.shards[fnvShard(id, len(r.shards))]
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrSessionNotFound, id)
	}
	return s, nil
}

func (r *registry) put(s *Session) {
	sh := &r.shards[fnvShard(s.ID, len(r.shards))]
	sh.mu.Lock()
	sh.sessions[s.ID] = s
	sh.mu.Unlock()
}

func (r *registry) delete(id string) {
	sh := &r.shards[fnvShard(id, len(r.shards))]
	sh.mu.Lock()
	delete(sh.sessions, id)
	sh.mu.Unlock()
}

func (r *registry) count() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// examExposure tracks per-exam administration counts for exposure control.
type examExposure struct {
	starts int
	counts map[string]int
}

// Engine manages live adaptive sessions over calibrated pools in a
// bank.Storage. Construction restores any persisted sessions (see
// NewEngine), so a restarted server carries live CAT sittings forward.
type Engine struct {
	store    bank.Storage
	registry *registry
	monitor  *delivery.Monitor
	now      func() time.Time
	nextID   atomic.Int64
	log      *ResponseLog

	// bus receives adaptive.* lifecycle events. Events are published only
	// AFTER the session record is durably persisted, so a subscriber never
	// observes state a crash could roll back; a nil bus disables emission.
	bus *events.Bus

	expoMu   sync.Mutex
	exposure map[string]*examExposure

	// gridMu guards grids, the per-exam cache of precomputed information
	// tables. Entries are fingerprinted by the pool's IRT parameters and
	// rebuilt when they change (recalibration, authoring edits).
	gridMu sync.Mutex
	grids  map[string]*examGrid

	// recalMu serializes Recalibrate's read-modify-write of an exam
	// record so two concurrent passes cannot overwrite each other.
	recalMu sync.Mutex

	restoreSkipped int // sessions NewEngine could not rehydrate

	// slowOps logs engine operations that exceed the configured threshold
	// (see SetSlowOpLog); disabled it costs one atomic load per Ctx call.
	slowOps obs.SlowOpLog
}

// NewEngine builds an adaptive engine over the storage and restores every
// persisted adaptive session: active sessions resume where they stopped
// (the pending item stays pending), finished ones re-drain into the
// response log so a restart never loses calibration data. now may be nil
// for wall-clock time; monitorCapacity bounds the per-session snapshot ring
// (0 disables monitoring).
func NewEngine(store bank.Storage, now func() time.Time, monitorCapacity int) (*Engine, error) {
	if now == nil {
		now = time.Now
	}
	e := &Engine{
		store:    store,
		registry: newRegistry(),
		monitor:  delivery.NewMonitor(monitorCapacity),
		now:      now,
		log:      NewResponseLog(),
		exposure: make(map[string]*examExposure),
		grids:    make(map[string]*examGrid),
	}
	for _, id := range store.AdaptiveSessionIDs() {
		rec, err := store.AdaptiveSession(id)
		if err != nil {
			if errors.Is(err, bank.ErrAdaptiveSessionNotFound) {
				continue // deleted between the listing and the fetch
			}
			return nil, err
		}
		if err := e.restore(rec); err != nil {
			// A session referencing a since-deleted exam or pool item is
			// a domain inconsistency, not a storage fault: skip it rather
			// than crash-loop the server on every boot. The record stays
			// in the bank for operator inspection; RestoreSkipped reports
			// the count so examserver can log it.
			e.restoreSkipped++
			continue
		}
	}
	return e, nil
}

// RestoreSkipped reports how many persisted sessions could not be
// rehydrated at construction (exam deleted, pool item removed).
func (e *Engine) RestoreSkipped() int { return e.restoreSkipped }

// SetEventBus attaches a live event bus; session mutations publish
// adaptive.* events onto it after their durable persist. Call before
// serving traffic (the field is not synchronized against in-flight
// operations).
func (e *Engine) SetEventBus(b *events.Bus) { e.bus = b }

// Monitor exposes the engine's monitor subsystem.
func (e *Engine) Monitor() *delivery.Monitor { return e.monitor }

// ResponseLog exposes the calibration sink.
func (e *Engine) ResponseLog() *ResponseLog { return e.log }

// SessionCount returns the number of registered sessions (any state).
func (e *Engine) SessionCount() int { return e.registry.count() }

// HasSession reports whether a session ID is registered.
func (e *Engine) HasSession(id string) bool {
	_, err := e.registry.get(id)
	return err == nil
}

// autoGradable reports whether a style can be scored without an instructor
// — the precondition for driving a CAT loop off the response.
func autoGradable(s item.Style) bool {
	switch s {
	case item.MultipleChoice, item.TrueFalse, item.Completion, item.Match:
		return true
	default:
		return false
	}
}

// loadPool assembles the calibrated pool of an exam: every problem with IRT
// parameters, in exam order. Non-auto-gradable calibrated items are a
// configuration error, reported rather than silently skipped.
func (e *Engine) loadPool(rec *bank.ExamRecord) ([]adaptive.PoolItem, map[string]*item.Problem, error) {
	ids := rec.CalibratedPool()
	if len(ids) == 0 {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotCalibrated, rec.ID)
	}
	problems, err := e.store.Problems(ids)
	if err != nil {
		return nil, nil, err
	}
	pool := make([]adaptive.PoolItem, 0, len(ids))
	byID := make(map[string]*item.Problem, len(ids))
	for i, pid := range ids {
		p := problems[i]
		if !autoGradable(p.Style) {
			return nil, nil, fmt.Errorf("%w: %s is %s", ErrNotGradable, pid, p.Style)
		}
		pool = append(pool, adaptive.PoolItem{ID: pid, Params: rec.ItemParams[pid]})
		byID[pid] = p
	}
	return pool, byID, nil
}

// Start opens a live adaptive session on a calibrated exam and hands out
// the first item. seed drives item selection for the randomized selectors
// (and tie-breaking determinism on restart).
func (e *Engine) Start(examID, studentID string, cfg Config, seed int64) (*Session, *ItemView, error) {
	return e.startCtx(context.Background(), examID, studentID, cfg, seed)
}

func (e *Engine) startCtx(ctx context.Context, examID, studentID string, cfg Config, seed int64) (*Session, *ItemView, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	examRec, err := e.store.Exam(examID)
	if err != nil {
		return nil, nil, err
	}
	pool, problems, err := e.loadPool(examRec)
	if err != nil {
		return nil, nil, err
	}
	// MaxItems 0 defaults to the pool size; values above it are legal — the
	// pool-exhaustion rule stops the session when the items run out.
	maxItems := cfg.MaxItems
	if maxItems == 0 {
		maxItems = len(pool)
	}
	// Checked after the default resolves: a floor above the ceiling would
	// silently disable the SE stopping rule.
	if cfg.MinItems > maxItems {
		return nil, nil, fmt.Errorf("%w: MinItems %d exceeds MaxItems %d",
			adaptive.ErrInvalidConfig, cfg.MinItems, maxItems)
	}
	rec := &bank.AdaptiveSessionRecord{
		ID:           fmt.Sprintf("cat-%06d", e.nextID.Add(1)),
		ExamID:       examID,
		StudentID:    studentID,
		Seed:         seed,
		MaxItems:     maxItems,
		MinItems:     cfg.MinItems,
		TargetSE:     cfg.TargetSE,
		Selector:     cfg.Selector,
		RandomesqueK: cfg.RandomesqueK,
		MaxExposure:  cfg.MaxExposure,
		State:        bank.AdaptiveStateActive,
	}
	s := &Session{
		ID:        rec.ID,
		ExamID:    examID,
		StudentID: studentID,
		rec:       rec,
		pool:      pool,
		problems:  problems,
		grid:      e.gridFor(examID, pool),
	}
	e.trackStart(examID)
	first := e.selectNext(s, 0)
	if first == nil {
		// Unreachable in practice (loadPool guarantees a non-empty pool),
		// kept as a guard against future selector bugs.
		return nil, nil, fmt.Errorf("%w: %s", ErrNotCalibrated, examID)
	}
	s.pending = first
	rec.PendingID = first.ID
	if err := e.persistSession(ctx, rec); err != nil {
		return nil, nil, err
	}
	e.registry.put(s)
	e.monitor.Capture(s.ID, e.now())
	e.bus.PublishCtx(trace.Detach(ctx), events.Event{
		Type: events.AdaptiveStarted, ExamID: examID, SessionID: s.ID,
		StudentID: studentID, Total: maxItems,
	})
	return s, s.itemView(first), nil
}

// trackStart bumps the exam's session counter for exposure accounting.
func (e *Engine) trackStart(examID string) {
	e.expoMu.Lock()
	defer e.expoMu.Unlock()
	ex := e.exposure[examID]
	if ex == nil {
		ex = &examExposure{counts: make(map[string]int)}
		e.exposure[examID] = ex
	}
	ex.starts++
}

// trackAdministration counts one hand-out of an item.
func (e *Engine) trackAdministration(examID, problemID string) {
	e.expoMu.Lock()
	defer e.expoMu.Unlock()
	ex := e.exposure[examID]
	if ex == nil {
		ex = &examExposure{counts: make(map[string]int)}
		e.exposure[examID] = ex
	}
	ex.counts[problemID]++
}

// ExposureRates reports each calibrated pool item's administration rate for
// an exam (administrations / sessions started), with explicit 0 entries for
// never-administered items.
func (e *Engine) ExposureRates(examID string) (map[string]float64, error) {
	rec, err := e.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	ids := rec.CalibratedPool()
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotCalibrated, examID)
	}
	out := make(map[string]float64, len(ids))
	e.expoMu.Lock()
	defer e.expoMu.Unlock()
	ex := e.exposure[examID]
	for _, id := range ids {
		if ex == nil || ex.starts == 0 {
			out[id] = 0
			continue
		}
		out[id] = float64(ex.counts[id]) / float64(ex.starts)
	}
	return out, nil
}

// examGrid is one cached information table plus the pool-parameter
// fingerprint it was built from.
type examGrid struct {
	params []simulate.IRTParams
	grid   *adaptive.InfoGrid
}

// gridFor returns the exam's shared information grid, building (or
// rebuilding, when the pool's parameters changed since it was cached) on
// demand. Rows align with pool order.
func (e *Engine) gridFor(examID string, pool []adaptive.PoolItem) *adaptive.InfoGrid {
	e.gridMu.Lock()
	defer e.gridMu.Unlock()
	if c := e.grids[examID]; c != nil && len(c.params) == len(pool) {
		match := true
		for i, it := range pool {
			if c.params[i] != it.Params {
				match = false
				break
			}
		}
		if match {
			return c.grid
		}
	}
	params := make([]simulate.IRTParams, len(pool))
	for i, it := range pool {
		params[i] = it.Params
	}
	c := &examGrid{params: params, grid: adaptive.NewDefaultInfoGrid(pool)}
	e.grids[examID] = c
	return c.grid
}

// invalidateGrid drops an exam's cached information table; the next session
// start rebuilds it from the updated parameters.
func (e *Engine) invalidateGrid(examID string) {
	e.gridMu.Lock()
	delete(e.grids, examID)
	e.gridMu.Unlock()
}

// selectNext picks the next item for the session, honouring the exposure
// cap. Callers hold s.mu (or own the session exclusively, as Start does).
// Returns nil when the pool is exhausted.
func (e *Engine) selectNext(s *Session, theta float64) *item.Problem {
	used := make(map[string]bool, len(s.rec.Administered)+1)
	for _, id := range s.rec.Administered {
		used[id] = true
	}
	rows := make([]int, 0, len(s.pool))
	for i, it := range s.pool {
		if !used[it.ID] {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	candidates := rows
	if s.rec.MaxExposure > 0 {
		if open := e.underCap(s.ExamID, s.pool, rows, s.rec.MaxExposure); len(open) > 0 {
			candidates = open
		} else {
			candidates = []int{e.leastExposed(s.ExamID, s.pool, rows)}
		}
	}
	// Deterministic per-step RNG: the seed and administration count fully
	// determine the draw, so a restarted session re-selects identically.
	step := int64(len(s.rec.Administered) + 1)
	rng := rand.New(rand.NewSource(s.rec.Seed + step*0x9E3779B9))
	chosen := s.pool[e.pickRow(s, rng, candidates, theta)]
	e.trackAdministration(s.ExamID, chosen.ID)
	return s.problems[chosen.ID]
}

// pickRow applies the session's selection rule over candidate pool rows.
// The information-driven rules scan the precomputed grid — a flat array
// walk instead of pool-size 3PL evaluations per step — and fall back to the
// exact selectors when the session has no grid.
func (e *Engine) pickRow(s *Session, rng *rand.Rand, candidates []int, theta float64) int {
	switch s.rec.Selector {
	case SelectorRandom:
		// Same draw the exact RandomSelection selector would make.
		return candidates[rng.Intn(len(candidates))]
	case SelectorRandomesque:
		if s.grid != nil {
			k := s.rec.RandomesqueK
			if k <= 0 {
				k = DefaultRandomesqueK
			}
			return s.grid.TopK(rng, candidates, k, theta)
		}
	default:
		if s.grid != nil {
			return s.grid.ArgMax(candidates, theta)
		}
	}
	items := make([]adaptive.PoolItem, len(candidates))
	for i, row := range candidates {
		items[i] = s.pool[row]
	}
	cfg := Config{Selector: s.rec.Selector, RandomesqueK: s.rec.RandomesqueK}
	return candidates[cfg.selector()(rng, items, theta)]
}

// underCap filters candidate pool rows whose administration rate is below
// the exposure limit.
func (e *Engine) underCap(examID string, pool []adaptive.PoolItem, rows []int, limit float64) []int {
	e.expoMu.Lock()
	defer e.expoMu.Unlock()
	ex := e.exposure[examID]
	if ex == nil || ex.starts == 0 {
		return rows
	}
	out := make([]int, 0, len(rows))
	for _, row := range rows {
		if float64(ex.counts[pool[row].ID])/float64(ex.starts) < limit {
			out = append(out, row)
		}
	}
	return out
}

// leastExposed returns the candidate pool row with the lowest administration
// count, breaking ties by ID for determinism.
func (e *Engine) leastExposed(examID string, pool []adaptive.PoolItem, rows []int) int {
	e.expoMu.Lock()
	defer e.expoMu.Unlock()
	ex := e.exposure[examID]
	best := rows[0]
	bestCount := -1
	for _, row := range rows {
		c := 0
		if ex != nil {
			c = ex.counts[pool[row].ID]
		}
		if bestCount == -1 || c < bestCount || (c == bestCount && pool[row].ID < pool[best].ID) {
			best, bestCount = row, c
		}
	}
	return best
}

func (s *Session) itemView(p *item.Problem) *ItemView {
	return &ItemView{
		ProblemID: p.ID,
		Question:  p.Question,
		Style:     p.Style.String(),
		Options:   append([]item.Option(nil), p.Options...),
		Position:  len(s.rec.Administered) + 1,
		MaxItems:  s.rec.MaxItems,
	}
}

// lock looks up the session and returns it locked. The caller must Unlock.
func (e *Engine) lock(id string) (*Session, error) {
	s, err := e.registry.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	return s, nil
}

// NextItem returns the item the session is waiting on, without mutating
// anything — safe to re-fetch after a client crash.
func (e *Engine) NextItem(sessionID string) (*ItemView, error) {
	s, err := e.lock(sessionID)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if s.rec.State != bank.AdaptiveStateActive || s.pending == nil {
		return nil, fmt.Errorf("%w: %s", ErrSessionFinished, s.ID)
	}
	return s.itemView(s.pending), nil
}

// SubmitResponse grades the learner's answer to the pending item,
// re-estimates ability, applies the stopping rules, and either hands out
// the next item or finishes the session. Every submission persists the
// session record and triggers a monitor capture.
func (e *Engine) SubmitResponse(sessionID, problemID, response string) (*Progress, error) {
	return e.submitResponseCtx(context.Background(), sessionID, problemID, response)
}

func (e *Engine) submitResponseCtx(ctx context.Context, sessionID, problemID, response string) (*Progress, error) {
	s, err := e.lock(sessionID)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if s.rec.State != bank.AdaptiveStateActive || s.pending == nil {
		return nil, fmt.Errorf("%w: %s", ErrSessionFinished, s.ID)
	}
	if problemID != s.pending.ID {
		return nil, fmt.Errorf("%w: got %s, pending %s", ErrItemNotPending, problemID, s.pending.ID)
	}
	credit, gradable := s.pending.Grade(response)
	if !gradable {
		// loadPool filters non-gradable styles, so this is defensive.
		return nil, fmt.Errorf("%w: %s", ErrNotGradable, problemID)
	}
	correct := credit >= 1-1e-9
	params := s.paramsOf(problemID)

	// The mutation must be all-or-nothing: if estimation or persistence
	// fails, the session rolls back to its pre-submit state so the
	// learner's retry of the same {problemId, response} still addresses
	// the pending item instead of hitting ITEM_NOT_PENDING — and a
	// crash+restart (which replays the persisted record) agrees with
	// what the client was told. Exposure counters bumped by a rolled-back
	// selection stay bumped; they are approximate accounting by design.
	prevLen := len(s.rec.Administered)
	prevTheta, prevSE := s.rec.Theta, s.rec.SE
	prevPending, prevPendingID := s.pending, s.rec.PendingID
	prevState, prevStop := s.rec.State, s.rec.StopReason
	rollback := func() {
		s.responses = s.responses[:prevLen]
		s.rec.Administered = s.rec.Administered[:prevLen]
		s.rec.Correct = s.rec.Correct[:prevLen]
		s.rec.Theta, s.rec.SE = prevTheta, prevSE
		s.pending, s.rec.PendingID = prevPending, prevPendingID
		s.rec.State, s.rec.StopReason = prevState, prevStop
	}

	s.responses = append(s.responses, adaptive.ResponseRecord{Params: params, Correct: correct})
	s.rec.Administered = append(s.rec.Administered, problemID)
	s.rec.Correct = append(s.rec.Correct, correct)

	theta, sd, err := adaptive.EstimateEAP(s.responses)
	if err != nil {
		rollback()
		return nil, err
	}
	s.rec.Theta, s.rec.SE = theta, sd

	prog := &Progress{
		SessionID:    s.ID,
		Theta:        theta,
		SE:           sd,
		Administered: len(s.rec.Administered),
	}
	n := len(s.rec.Administered)
	switch {
	case s.rec.TargetSE > 0 && sd <= s.rec.TargetSE && n >= s.rec.MinItems:
		s.finishLocked(StopSETarget)
	case n >= s.rec.MaxItems:
		s.finishLocked(StopMaxItems)
	default:
		next := e.selectNext(s, theta)
		if next == nil {
			s.finishLocked(StopPoolExhausted)
		} else {
			s.pending = next
			s.rec.PendingID = next.ID
			prog.Next = s.itemView(next)
		}
	}
	if s.rec.State == bank.AdaptiveStateFinished {
		prog.Done = true
		prog.StopReason = s.rec.StopReason
		prog.Next = nil
	}
	if err := e.persistSession(ctx, s.rec); err != nil {
		rollback()
		return nil, err
	}
	// Drain into the calibration log — and publish events — only after the
	// finish is durable, so a rolled-back mutation never leaves a phantom
	// log entry or a phantom event. Publishes detach from the request
	// context (cancelation must not reach subscribers) while keeping the
	// trace span so the bus.publish spans parent correctly.
	evctx := trace.Detach(ctx)
	e.bus.PublishCtx(evctx, events.Event{
		Type: events.AdaptiveResponded, ExamID: s.ExamID, SessionID: s.ID,
		StudentID: s.StudentID, ProblemID: problemID, Correct: correct,
		Credit: credit, Answered: len(s.rec.Administered), Total: s.rec.MaxItems,
		Theta: theta, SE: sd,
	})
	if s.rec.State == bank.AdaptiveStateFinished {
		e.log.Add(entryOf(s.rec))
		e.bus.PublishCtx(evctx, events.Event{
			Type: events.AdaptiveFinished, ExamID: s.ExamID, SessionID: s.ID,
			StudentID: s.StudentID, Answered: len(s.rec.Administered),
			Theta: s.rec.Theta, SE: s.rec.SE, StopReason: s.rec.StopReason,
		})
	}
	e.monitor.Capture(s.ID, e.now())
	return prog, nil
}

// paramsOf returns the pool parameters of an item. Callers hold s.mu.
func (s *Session) paramsOf(problemID string) simulate.IRTParams {
	for _, it := range s.pool {
		if it.ID == problemID {
			return it.Params
		}
	}
	return simulate.IRTParams{}
}

// finishLocked transitions the session to finished. Callers hold s.mu,
// must persist the record, and drain it into the response log only once
// persistence succeeds.
func (s *Session) finishLocked(reason string) {
	s.rec.State = bank.AdaptiveStateFinished
	s.rec.StopReason = reason
	s.rec.PendingID = ""
	s.pending = nil
}

// Finish closes an adaptive session early (learner walked away) and returns
// its outcome; finishing a finished session is idempotent.
func (e *Engine) Finish(sessionID string) (*Outcome, error) {
	return e.finishCtx(context.Background(), sessionID)
}

func (e *Engine) finishCtx(ctx context.Context, sessionID string) (*Outcome, error) {
	s, err := e.lock(sessionID)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if s.rec.State == bank.AdaptiveStateActive {
		prevPending, prevPendingID := s.pending, s.rec.PendingID
		s.finishLocked(StopByCaller)
		if err := e.persistSession(ctx, s.rec); err != nil {
			s.rec.State, s.rec.StopReason = bank.AdaptiveStateActive, ""
			s.pending, s.rec.PendingID = prevPending, prevPendingID
			return nil, err
		}
		e.log.Add(entryOf(s.rec))
		e.bus.PublishCtx(trace.Detach(ctx), events.Event{
			Type: events.AdaptiveFinished, ExamID: s.ExamID, SessionID: s.ID,
			StudentID: s.StudentID, Answered: len(s.rec.Administered),
			Theta: s.rec.Theta, SE: s.rec.SE, StopReason: s.rec.StopReason,
		})
		e.monitor.Capture(s.ID, e.now())
	}
	return outcomeOf(s.rec), nil
}

// Status reports the session's current progress as an Outcome-shaped
// summary plus the pending item ID.
type Status struct {
	SessionID    string  `json:"sessionId"`
	ExamID       string  `json:"examId"`
	StudentID    string  `json:"studentId"`
	State        string  `json:"state"`
	Theta        float64 `json:"theta"`
	SE           float64 `json:"se"`
	Administered int     `json:"administered"`
	MaxItems     int     `json:"maxItems"`
	PendingID    string  `json:"pendingId,omitempty"`
	StopReason   string  `json:"stopReason,omitempty"`
}

// Status reports a session's current summary.
func (e *Engine) Status(sessionID string) (Status, error) {
	s, err := e.lock(sessionID)
	if err != nil {
		return Status{}, err
	}
	defer s.mu.Unlock()
	return Status{
		SessionID:    s.ID,
		ExamID:       s.ExamID,
		StudentID:    s.StudentID,
		State:        s.rec.State,
		Theta:        s.rec.Theta,
		SE:           s.rec.SE,
		Administered: len(s.rec.Administered),
		MaxItems:     s.rec.MaxItems,
		PendingID:    s.rec.PendingID,
		StopReason:   s.rec.StopReason,
	}, nil
}

// Outcome returns a finished session's result.
func (e *Engine) Outcome(sessionID string) (*Outcome, error) {
	s, err := e.lock(sessionID)
	if err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if s.rec.State != bank.AdaptiveStateFinished {
		return nil, fmt.Errorf("%w: %s still active", ErrSessionNotFound, sessionID)
	}
	return outcomeOf(s.rec), nil
}

func outcomeOf(rec *bank.AdaptiveSessionRecord) *Outcome {
	return &Outcome{
		SessionID:    rec.ID,
		ExamID:       rec.ExamID,
		StudentID:    rec.StudentID,
		Theta:        rec.Theta,
		SE:           rec.SE,
		Administered: append([]string(nil), rec.Administered...),
		StopReason:   rec.StopReason,
	}
}

// restore rehydrates one persisted session into the registry. Finished
// sessions need no pool — they register for status/outcome queries with
// their persisted estimates and re-drain into the response log. Active
// sessions reload pool and problems from the bank and re-derive theta/SE
// from the response stream.
func (e *Engine) restore(rec *bank.AdaptiveSessionRecord) error {
	s := &Session{
		ID:        rec.ID,
		ExamID:    rec.ExamID,
		StudentID: rec.StudentID,
		rec:       rec,
	}
	if rec.State == bank.AdaptiveStateActive {
		examRec, err := e.store.Exam(rec.ExamID)
		if err != nil {
			return err
		}
		pool, problems, err := e.loadPool(examRec)
		if err != nil {
			return err
		}
		s.pool, s.problems = pool, problems
		s.grid = e.gridFor(rec.ExamID, pool)
		byID := make(map[string]adaptive.PoolItem, len(pool))
		for _, it := range pool {
			byID[it.ID] = it
		}
		for i, pid := range rec.Administered {
			it, ok := byID[pid]
			if !ok {
				return fmt.Errorf("administered item %s no longer in pool", pid)
			}
			s.responses = append(s.responses, adaptive.ResponseRecord{
				Params: it.Params, Correct: rec.Correct[i],
			})
		}
		if len(s.responses) > 0 {
			theta, sd, err := adaptive.EstimateEAP(s.responses)
			if err != nil {
				return err
			}
			rec.Theta, rec.SE = theta, sd
		}
		if rec.PendingID == "" {
			return errors.New("active session has no pending item")
		}
		p, ok := problems[rec.PendingID]
		if !ok {
			return fmt.Errorf("pending item %s no longer in pool", rec.PendingID)
		}
		s.pending = p
	} else {
		e.log.Add(entryOf(rec))
	}
	// Rebuild exposure accounting and keep new session IDs past the
	// restored ones.
	e.expoMu.Lock()
	ex := e.exposure[rec.ExamID]
	if ex == nil {
		ex = &examExposure{counts: make(map[string]int)}
		e.exposure[rec.ExamID] = ex
	}
	ex.starts++
	for _, pid := range rec.Administered {
		ex.counts[pid]++
	}
	if rec.PendingID != "" {
		ex.counts[rec.PendingID]++
	}
	e.expoMu.Unlock()
	if n, ok := numericSuffix(rec.ID); ok {
		for {
			cur := e.nextID.Load()
			if n <= cur || e.nextID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	e.registry.put(s)
	return nil
}

// numericSuffix parses the counter out of a "cat-%06d" session ID.
func numericSuffix(id string) (int64, bool) {
	idx := strings.LastIndexByte(id, '-')
	if idx < 0 {
		return 0, false
	}
	n, err := strconv.ParseInt(id[idx+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// PurgeFinished removes every finished session from the registry and the
// storage backend — the retention pass that keeps a long-lived server's
// memory, WAL, and boot time from scaling with lifetime session count.
// Purged sessions' calibration data stays in the response log for the
// rest of this process's lifetime, so Recalibrate keeps its input; purge
// after recalibrating to retain nothing.
//
// A storage failure on one session does not abort the sweep: the failed
// session stays registered (a later purge retries it) and the remaining
// finished sessions are still purged. The purged count is always valid;
// per-session failures come back joined into one error.
func (e *Engine) PurgeFinished() (int, error) {
	purged := 0
	var errs []error
	for _, id := range e.SessionIDs() {
		s, err := e.registry.get(id)
		if err != nil {
			continue // already purged concurrently
		}
		s.mu.Lock()
		if s.rec.State == bank.AdaptiveStateFinished {
			err := e.store.DeleteAdaptiveSession(id)
			if err != nil && !errors.Is(err, bank.ErrAdaptiveSessionNotFound) {
				errs = append(errs, fmt.Errorf("purge session %s: %w", id, err))
				s.mu.Unlock()
				continue
			}
			e.registry.delete(id)
			e.monitor.Forget(id)
			purged++
		}
		s.mu.Unlock()
	}
	return purged, errors.Join(errs...)
}

// SessionIDs returns every registered session ID, sorted (admin views and
// tests).
func (e *Engine) SessionIDs() []string {
	var ids []string
	for i := range e.registry.shards {
		sh := &e.registry.shards[i]
		sh.mu.RLock()
		for id := range sh.sessions {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}
