package catdelivery

import (
	"context"
	"log/slog"
	"time"

	"mineassess/internal/trace"
)

// SetSlowOpLog arms the engine's slow-operation log: Ctx-variant calls
// that run for at least threshold emit a Warn record through logger,
// tagged layer=catdelivery and carrying the request ID from the context,
// so a slow access-log line can be traced to the adaptive engine call
// behind it. A nil logger or non-positive threshold disables it.
func (e *Engine) SetSlowOpLog(logger *slog.Logger, threshold time.Duration) {
	e.slowOps.Configure(logger, "catdelivery", threshold)
}

// StartCtx is Start with the request context threaded through for slow-op
// logging and tracing: a traced request gains a cat.start child span whose
// subtree includes the session persist (wal.commit) and the
// adaptive.started bus publish. The context does not cancel the operation.
func (e *Engine) StartCtx(ctx context.Context, examID, studentID string, cfg Config, seed int64) (*Session, *ItemView, error) {
	t := e.slowOps.Begin()
	ctx, sp := trace.StartSpan(ctx, "cat.start")
	sp.SetStr("exam.id", examID)
	sess, first, err := e.startCtx(ctx, examID, studentID, cfg, seed)
	id := ""
	if sess != nil {
		id = sess.ID
	}
	if err != nil {
		sp.SetError()
	}
	sp.End()
	e.slowOps.Done(ctx, "start", id, t)
	return sess, first, err
}

// SubmitResponseCtx is SubmitResponse with the request context threaded
// through for slow-op logging and tracing (cat.respond span).
func (e *Engine) SubmitResponseCtx(ctx context.Context, sessionID, problemID, response string) (*Progress, error) {
	t := e.slowOps.Begin()
	ctx, sp := trace.StartSpan(ctx, "cat.respond")
	sp.SetStr("problem.id", problemID)
	prog, err := e.submitResponseCtx(ctx, sessionID, problemID, response)
	if err != nil {
		sp.SetError()
	}
	sp.End()
	e.slowOps.Done(ctx, "respond", sessionID, t)
	return prog, err
}

// FinishCtx is Finish with the request context threaded through for
// slow-op logging and tracing (cat.finish span).
func (e *Engine) FinishCtx(ctx context.Context, sessionID string) (*Outcome, error) {
	t := e.slowOps.Begin()
	ctx, sp := trace.StartSpan(ctx, "cat.finish")
	out, err := e.finishCtx(ctx, sessionID)
	if err != nil {
		sp.SetError()
	}
	sp.End()
	e.slowOps.Done(ctx, "finish", sessionID, t)
	return out, err
}
