package catdelivery

import (
	"context"
	"log/slog"
	"time"
)

// SetSlowOpLog arms the engine's slow-operation log: Ctx-variant calls
// that run for at least threshold emit a Warn record through logger,
// tagged layer=catdelivery and carrying the request ID from the context,
// so a slow access-log line can be traced to the adaptive engine call
// behind it. A nil logger or non-positive threshold disables it.
func (e *Engine) SetSlowOpLog(logger *slog.Logger, threshold time.Duration) {
	e.slowOps.Configure(logger, "catdelivery", threshold)
}

// StartCtx is Start with the request context threaded through for slow-op
// logging. The context does not cancel the operation.
func (e *Engine) StartCtx(ctx context.Context, examID, studentID string, cfg Config, seed int64) (*Session, *ItemView, error) {
	t := e.slowOps.Begin()
	sess, first, err := e.Start(examID, studentID, cfg, seed)
	id := ""
	if sess != nil {
		id = sess.ID
	}
	e.slowOps.Done(ctx, "start", id, t)
	return sess, first, err
}

// SubmitResponseCtx is SubmitResponse with the request context threaded
// through for slow-op logging.
func (e *Engine) SubmitResponseCtx(ctx context.Context, sessionID, problemID, response string) (*Progress, error) {
	t := e.slowOps.Begin()
	prog, err := e.SubmitResponse(sessionID, problemID, response)
	e.slowOps.Done(ctx, "respond", sessionID, t)
	return prog, err
}

// FinishCtx is Finish with the request context threaded through for
// slow-op logging.
func (e *Engine) FinishCtx(ctx context.Context, sessionID string) (*Outcome, error) {
	t := e.slowOps.Begin()
	out, err := e.Finish(sessionID)
	e.slowOps.Done(ctx, "finish", sessionID, t)
	return out, err
}
