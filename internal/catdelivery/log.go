package catdelivery

import (
	"fmt"
	"sync"

	"mineassess/internal/adaptive"
	"mineassess/internal/analysis"
	"mineassess/internal/bank"
)

// LoggedResponse is one scored administration inside a log entry.
type LoggedResponse struct {
	ProblemID string `json:"problemId"`
	Correct   bool   `json:"correct"`
}

// LogEntry is one finished adaptive session's contribution to calibration:
// the final ability estimate plus the dichotomized response stream.
type LogEntry struct {
	SessionID string           `json:"sessionId"`
	ExamID    string           `json:"examId"`
	StudentID string           `json:"studentId"`
	Theta     float64          `json:"theta"`
	SE        float64          `json:"se"`
	Items     []LoggedResponse `json:"items"`
}

// ResponseLog is the calibration sink finished adaptive sessions drain
// into. It is the bridge between live delivery and the offline feedback
// loop: ExamResult feeds internal/stats item statistics, and
// Engine.Recalibrate folds the entries back into stored pool parameters.
// Entries are deduplicated by session ID so a restart's re-drain of
// restored finished sessions cannot double-count.
type ResponseLog struct {
	mu      sync.Mutex
	entries []LogEntry
	seen    map[string]bool
}

// NewResponseLog returns an empty log.
func NewResponseLog() *ResponseLog {
	return &ResponseLog{seen: make(map[string]bool)}
}

// entryOf projects a finished session record into a log entry.
func entryOf(rec *bank.AdaptiveSessionRecord) LogEntry {
	entry := LogEntry{
		SessionID: rec.ID,
		ExamID:    rec.ExamID,
		StudentID: rec.StudentID,
		Theta:     rec.Theta,
		SE:        rec.SE,
	}
	for i, pid := range rec.Administered {
		entry.Items = append(entry.Items, LoggedResponse{ProblemID: pid, Correct: rec.Correct[i]})
	}
	return entry
}

// Add appends one finished session; duplicate session IDs are ignored.
func (l *ResponseLog) Add(entry LogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seen[entry.SessionID] {
		return
	}
	l.seen[entry.SessionID] = true
	l.entries = append(l.entries, entry)
}

// Len returns the number of logged sessions.
func (l *ResponseLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// ByExam returns copies of the entries logged for one exam, in drain order.
func (l *ResponseLog) ByExam(examID string) []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []LogEntry
	for _, entry := range l.entries {
		if entry.ExamID != examID {
			continue
		}
		cp := entry
		cp.Items = append([]LoggedResponse(nil), entry.Items...)
		out = append(out, cp)
	}
	return out
}

// observations regroups an exam's entries by item for calibration.
func (l *ResponseLog) observations(examID string) map[string][]adaptive.CalibrationObservation {
	obs := make(map[string][]adaptive.CalibrationObservation)
	for _, entry := range l.ByExam(examID) {
		for _, r := range entry.Items {
			obs[r.ProblemID] = append(obs[r.ProblemID], adaptive.CalibrationObservation{
				Theta: entry.Theta, Correct: r.Correct,
			})
		}
	}
	return obs
}

// ExamResult assembles the logged adaptive responses of an exam into the
// analysis package's response-matrix form, so the classical item statistics
// (internal/stats: P values, point-biserial, KR-20) run unchanged on live
// CAT data. Skipped pool items appear as unanswered responses — adaptive
// sessions answer a subset of the pool by design.
func (e *Engine) ExamResult(examID string) (*analysis.ExamResult, error) {
	rec, err := e.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	ids := rec.CalibratedPool()
	if len(ids) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotCalibrated, examID)
	}
	problems, err := e.store.Problems(ids)
	if err != nil {
		return nil, err
	}
	entries := e.log.ByExam(examID)
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoResponses, examID)
	}
	out := &analysis.ExamResult{ExamID: examID, Problems: problems}
	for _, entry := range entries {
		sr := analysis.StudentResult{StudentID: entry.StudentID}
		correct := make(map[string]bool, len(entry.Items))
		answered := make(map[string]bool, len(entry.Items))
		for _, r := range entry.Items {
			answered[r.ProblemID] = true
			correct[r.ProblemID] = r.Correct
		}
		for _, pid := range ids {
			resp := analysis.Response{StudentID: entry.StudentID, ProblemID: pid}
			if answered[pid] {
				resp.Answered = true
				if correct[pid] {
					resp.Credit = 1
				}
			}
			sr.Responses = append(sr.Responses, resp)
		}
		out.Students = append(out.Students, sr)
	}
	return out, nil
}

// Recalibrate refits the exam's stored pool difficulties from the logged
// adaptive responses and persists the updated parameters — the feedback
// loop's write-back half. minObs guards against recalibrating from noise
// (0 means adaptive.DefaultMinCalibrationObs). Items with too few responses
// are reported in the result's Skipped map and left untouched.
//
// Concurrent Recalibrate calls are serialized on the engine, so two passes
// cannot overwrite each other. An authoring edit to the same exam record
// racing the read-modify-write window here can still be lost — the same
// advisory window bank.Sharded documents for cross-shard validation;
// recalibration is an administrative pass, run it when the exam is not
// being re-authored.
func (e *Engine) Recalibrate(examID string, minObs int) (*adaptive.PoolCalibration, error) {
	e.recalMu.Lock()
	defer e.recalMu.Unlock()
	rec, err := e.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	if len(rec.ItemParams) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotCalibrated, examID)
	}
	obs := e.log.observations(examID)
	if len(obs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoResponses, examID)
	}
	cal := adaptive.CalibratePool(rec.ItemParams, obs, minObs)
	if len(cal.Updated) > 0 {
		for pid, params := range cal.Updated {
			rec.ItemParams[pid] = params
		}
		if err := e.store.UpdateExam(rec); err != nil {
			return nil, err
		}
		// The cached information table is now stale; new sessions rebuild it
		// from the refit parameters. (In-flight sessions keep their start-time
		// pool snapshot, grid included.)
		e.invalidateGrid(examID)
	}
	return cal, nil
}
