package metadata

import (
	"fmt"
	"time"

	"mineassess/internal/analysis"
)

// ExamMetaFromResult derives the §3.4 exam metadata from an administration:
// the class-average answering time, the configured test time, and — when a
// pre-teaching sitting is supplied — the mean Instructional Sensitivity
// Index.
func ExamMetaFromResult(res *analysis.ExamResult, pre *analysis.ExamResult) (*ExamMeta, error) {
	if err := res.Validate(); err != nil {
		return nil, fmt.Errorf("metadata: exam meta: %w", err)
	}
	ts := analysis.AnalyzeTime(res)
	meta := &ExamMeta{
		AverageTimeSeconds: int(ts.AverageTime / time.Second),
		TestTimeSeconds:    int(res.TestTime / time.Second),
	}
	if pre != nil {
		rep, err := analysis.InstructionalSensitivity(pre, res)
		if err != nil {
			return nil, fmt.Errorf("metadata: exam meta ISI: %w", err)
		}
		meta.InstructionalSensitivityIndex = rep.MeanISI
	}
	return meta, nil
}

// RecordsFromAnalysis derives one assessment record per analyzed question,
// with the measured difficulty, discrimination and distraction profile
// filled in — the metadata a SCORM export carries after an administration.
func RecordsFromAnalysis(res *analysis.ExamResult, a *analysis.ExamAnalysis) ([]*AssessmentRecord, error) {
	records := make([]*AssessmentRecord, 0, len(a.Questions))
	for _, q := range a.Questions {
		p := res.Problem(q.ProblemID)
		if p == nil {
			return nil, fmt.Errorf("metadata: problem %q missing from result", q.ProblemID)
		}
		rec, err := FromProblem(p)
		if err != nil {
			return nil, err
		}
		distraction := make(map[string]float64, len(q.Distractors))
		for _, d := range q.Distractors {
			distraction[d.Key] = d.Power
		}
		rec.ApplyMeasurement(q.P, q.D, distraction)
		records = append(records, rec)
	}
	return records, nil
}
