package metadata

import (
	"encoding/xml"
	"strings"
	"testing"

	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

func sampleRecord() *AssessmentRecord {
	return &AssessmentRecord{
		QuestionID:     "q1",
		CognitionLevel: cognition.Application,
		Style:          item.MultipleChoice,
		ConceptID:      "c1",
		IndividualTest: IndividualTest{
			Answer:              "B",
			Subject:             "Algebra",
			DifficultyIndex:     0.63,
			DiscriminationIndex: 0.55,
			Distraction: []DistractionEntry{
				{Key: "A", Power: 0.27},
				{Key: "C", Power: 0.18},
			},
		},
	}
}

func TestAssessmentRecordRoundTrip(t *testing.T) {
	rec := sampleRecord()
	raw, err := rec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(string(raw), "itemdifficultyindex") {
		t.Errorf("difficulty element missing:\n%s", raw)
	}
	back, err := ParseAssessmentRecord(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.QuestionID != "q1" || back.CognitionLevel != cognition.Application {
		t.Errorf("identity lost: %+v", back)
	}
	if back.IndividualTest.DifficultyIndex != 0.63 {
		t.Errorf("difficulty = %v", back.IndividualTest.DifficultyIndex)
	}
	if len(back.IndividualTest.Distraction) != 2 {
		t.Errorf("distraction entries = %d", len(back.IndividualTest.Distraction))
	}
}

func TestAssessmentRecordValidation(t *testing.T) {
	rec := sampleRecord()
	rec.QuestionID = " "
	if err := rec.Validate(); err == nil {
		t.Error("blank question ID should fail")
	}
	rec = sampleRecord()
	rec.Style = 0
	if err := rec.Validate(); err == nil {
		t.Error("invalid style should fail")
	}
	rec = sampleRecord()
	rec.CognitionLevel = 0
	if err := rec.Validate(); err == nil {
		t.Error("scored record without level should fail")
	}
	rec = sampleRecord()
	rec.IndividualTest.DifficultyIndex = 1.5
	if err := rec.Validate(); err == nil {
		t.Error("difficulty > 1 should fail")
	}
	rec = sampleRecord()
	rec.IndividualTest.Distraction[0].Power = 2
	if err := rec.Validate(); err == nil {
		t.Error("distraction power > 1 should fail")
	}
}

func TestQuestionnaireNeedsNoLevel(t *testing.T) {
	rec := &AssessmentRecord{
		QuestionID:    "s1",
		Style:         item.Questionnaire,
		Questionnaire: &QuestionnaireMeta{Resumable: true, Display: item.RandomOrder},
	}
	if err := rec.Validate(); err != nil {
		t.Errorf("questionnaire record rejected: %v", err)
	}
	raw, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "<resumable>true</resumable>") {
		t.Errorf("resumable flag missing:\n%s", raw)
	}
}

func TestFromProblem(t *testing.T) {
	p, err := item.NewMultipleChoice("q7", "?", []string{"x", "y"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Subject = "History"
	p.ConceptID = "c-wars"
	p.Level = cognition.Analysis
	rec, err := FromProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.QuestionID != "q7" || rec.IndividualTest.Answer != "B" ||
		rec.IndividualTest.Subject != "History" || rec.ConceptID != "c-wars" {
		t.Errorf("record = %+v", rec)
	}
	if rec.IndividualTest.DifficultyIndex >= 0 {
		t.Error("fresh problem should carry unmeasured (-1) difficulty")
	}
	if _, err := FromProblem(&item.Problem{ID: "bad"}); err == nil {
		t.Error("invalid problem should fail")
	}
}

func TestFromProblemQuestionnaire(t *testing.T) {
	p := &item.Problem{ID: "s1", Style: item.Questionnaire,
		Question: "Rate it", Resumable: true}
	rec, err := FromProblem(p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Questionnaire == nil || !rec.Questionnaire.Resumable {
		t.Errorf("questionnaire meta = %+v", rec.Questionnaire)
	}
}

func TestApplyMeasurementSortsKeys(t *testing.T) {
	rec := sampleRecord()
	rec.ApplyMeasurement(0.41, 0.09, map[string]float64{"C": 0.36, "A": 0.0, "B": 0.18})
	d := rec.IndividualTest.Distraction
	if len(d) != 3 || d[0].Key != "A" || d[1].Key != "B" || d[2].Key != "C" {
		t.Errorf("distraction = %+v", d)
	}
	if rec.IndividualTest.DifficultyIndex != 0.41 {
		t.Errorf("difficulty = %v", rec.IndividualTest.DifficultyIndex)
	}
}

func TestLOMValidateAndRoundTrip(t *testing.T) {
	l := &LOM{
		General: General{Identifier: "lom-1", Title: "Algebra course",
			Keywords: []string{"math", "equations"}},
		Lifecycle:      Lifecycle{Version: "1.0", Author: "MINE Lab"},
		Educational:    Educational{Difficulty: "medium"},
		Classification: Classification{Purpose: "educational objective"},
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("valid LOM rejected: %v", err)
	}
	raw, err := xml.MarshalIndent(l, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back LOM
	if err := xml.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.General.Title != "Algebra course" || len(back.General.Keywords) != 2 {
		t.Errorf("round trip lost fields: %+v", back.General)
	}

	if err := (&LOM{}).Validate(); err == nil {
		t.Error("empty LOM should fail")
	}
	if err := (&LOM{General: General{Identifier: "x"}}).Validate(); err == nil {
		t.Error("LOM without title should fail")
	}
}

func TestParseAssessmentRecordErrors(t *testing.T) {
	if _, err := ParseAssessmentRecord([]byte("<broken")); err == nil {
		t.Error("bad XML should fail")
	}
	if _, err := ParseAssessmentRecord([]byte("<mineassessment/>")); err == nil {
		t.Error("empty record should fail validation")
	}
}
