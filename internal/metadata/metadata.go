// Package metadata implements the MINE SCORM Meta-data Model of §3: an
// assessment metadata tree layered on SCORM/LOM that records, per question,
// its cognition level, question style and individual-test data (answer,
// subject, Item Difficulty Index, Item Discrimination Index, distraction),
// and per exam the timing data and Instructional Sensitivity Index. It also
// carries the IEEE LTSC LOM nine-category record (§2.1) used at the
// learning-resource level.
//
// Records marshal to XML so they can ride inside SCORM packages next to the
// content they describe (Figure 1's tree).
package metadata

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"

	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// LOM is the IEEE LTSC Learning Object Metadata record with its nine
// categories ("It provides nine categories to describe learning resource",
// §2.1). Each category keeps the fields the assessment system actually
// consumes; extension data belongs in Classification keywords.
type LOM struct {
	XMLName        xml.Name       `xml:"lom"`
	General        General        `xml:"general"`
	Lifecycle      Lifecycle      `xml:"lifecycle"`
	MetaMetadata   MetaMetadata   `xml:"metametadata"`
	Technical      Technical      `xml:"technical"`
	Educational    Educational    `xml:"educational"`
	Rights         Rights         `xml:"rights"`
	Relation       []Relation     `xml:"relation,omitempty"`
	Annotation     []Annotation   `xml:"annotation,omitempty"`
	Classification Classification `xml:"classification"`
}

// General is LOM category 1.
type General struct {
	Identifier  string   `xml:"identifier"`
	Title       string   `xml:"title"`
	Language    string   `xml:"language,omitempty"`
	Description string   `xml:"description,omitempty"`
	Keywords    []string `xml:"keyword,omitempty"`
}

// Lifecycle is LOM category 2.
type Lifecycle struct {
	Version string `xml:"version,omitempty"`
	Status  string `xml:"status,omitempty"`
	Author  string `xml:"author,omitempty"`
}

// MetaMetadata is LOM category 3.
type MetaMetadata struct {
	Scheme string `xml:"metadatascheme,omitempty"`
}

// Technical is LOM category 4.
type Technical struct {
	Format string `xml:"format,omitempty"`
	Size   int64  `xml:"size,omitempty"`
}

// Educational is LOM category 5.
type Educational struct {
	InteractivityType    string `xml:"interactivitytype,omitempty"`
	LearningResourceType string `xml:"learningresourcetype,omitempty"`
	TypicalAgeRange      string `xml:"typicalagerange,omitempty"`
	Difficulty           string `xml:"difficulty,omitempty"`
}

// Rights is LOM category 6.
type Rights struct {
	Cost                 string `xml:"cost,omitempty"`
	CopyrightRestriction string `xml:"copyrightandotherrestrictions,omitempty"`
}

// Relation is LOM category 7.
type Relation struct {
	Kind     string `xml:"kind,omitempty"`
	Resource string `xml:"resource,omitempty"`
}

// Annotation is LOM category 8.
type Annotation struct {
	Person      string `xml:"person,omitempty"`
	Description string `xml:"description,omitempty"`
}

// Classification is LOM category 9.
type Classification struct {
	Purpose  string   `xml:"purpose,omitempty"`
	Keywords []string `xml:"keyword,omitempty"`
}

// Validate checks the minimal LOM contract: identifier and title present.
func (l *LOM) Validate() error {
	if strings.TrimSpace(l.General.Identifier) == "" {
		return errors.New("metadata: LOM general.identifier must not be empty")
	}
	if strings.TrimSpace(l.General.Title) == "" {
		return errors.New("metadata: LOM general.title must not be empty")
	}
	return nil
}

// QuestionnaireMeta is §3.2 VI: questionnaire presentation settings.
type QuestionnaireMeta struct {
	// Resumable: "True means resumed and false means paused at a later
	// time."
	Resumable bool `xml:"resumable"`
	// Display is FixedOrder or RandomOrder.
	Display item.DisplayOrder `xml:"displaytype"`
}

// IndividualTest is §3.3: the per-question assessment record.
type IndividualTest struct {
	// Answer is the correct answer "for explaining and query".
	Answer string `xml:"answer,omitempty"`
	// Subject is the question's main subject.
	Subject string `xml:"subject,omitempty"`
	// DifficultyIndex is the Item Difficulty Index P = R/N; negative means
	// not yet measured.
	DifficultyIndex float64 `xml:"itemdifficultyindex"`
	// DiscriminationIndex is the Item Discrimination Index D = PH-PL.
	DiscriminationIndex float64 `xml:"itemdiscriminationindex"`
	// Distraction records, per wrong option, the fraction of the low score
	// group it attracted.
	Distraction []DistractionEntry `xml:"distraction>option,omitempty"`
}

// DistractionEntry is one wrong option's drawing power.
type DistractionEntry struct {
	Key   string  `xml:"key,attr"`
	Power float64 `xml:"power,attr"`
}

// ExamMeta is §3.4: per-exam assessment metadata.
type ExamMeta struct {
	// AverageTimeSeconds is the class-average answering time (§3.4 I).
	AverageTimeSeconds int `xml:"averagetimeseconds"`
	// TestTimeSeconds is the default time limit (§3.4 II).
	TestTimeSeconds int `xml:"testtimeseconds"`
	// InstructionalSensitivityIndex compares pre- and post-teaching results
	// (§3.4 III).
	InstructionalSensitivityIndex float64 `xml:"instructionalsensitivityindex"`
}

// AssessmentRecord is the full MINE SCORM assessment metadata for one
// question: the paper's tree of Figure 1 (cognition level, question style,
// questionnaire settings, individual test record) rooted next to the LOM
// record of the resource it describes.
type AssessmentRecord struct {
	XMLName xml.Name `xml:"mineassessment"`
	// QuestionID binds the record to a problem.
	QuestionID string `xml:"questionid,attr"`
	// CognitionLevel is §3.1. Unscored questionnaire records omit it.
	CognitionLevel cognition.Level `xml:"cognitionlevel,omitempty"`
	// Style is §3.2.
	Style item.Style `xml:"questionstyle"`
	// Questionnaire is present for questionnaire-style display settings.
	Questionnaire *QuestionnaireMeta `xml:"questionnaire,omitempty"`
	// IndividualTest is §3.3.
	IndividualTest IndividualTest `xml:"individualtest"`
	// Exam is present on exam-level records (§3.4).
	Exam *ExamMeta `xml:"exam,omitempty"`
	// ConceptID ties the question into the two-way specification table.
	ConceptID string `xml:"concept,omitempty"`
}

// Validate checks the record's internal consistency.
func (r *AssessmentRecord) Validate() error {
	if strings.TrimSpace(r.QuestionID) == "" {
		return errors.New("metadata: assessment record needs a question ID")
	}
	if !r.Style.Valid() {
		return fmt.Errorf("metadata: record %s has invalid style %d", r.QuestionID, int(r.Style))
	}
	if r.Style.Scored() && !r.CognitionLevel.Valid() {
		return fmt.Errorf("metadata: record %s needs a cognition level", r.QuestionID)
	}
	if p := r.IndividualTest.DifficultyIndex; p > 1 {
		return fmt.Errorf("metadata: record %s difficulty index %v > 1", r.QuestionID, p)
	}
	for _, d := range r.IndividualTest.Distraction {
		if d.Power < 0 || d.Power > 1 {
			return fmt.Errorf("metadata: record %s distraction %s power %v outside [0,1]",
				r.QuestionID, d.Key, d.Power)
		}
	}
	return nil
}

// Encode serializes the record as XML.
func (r *AssessmentRecord) Encode() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	body, err := xml.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("metadata: encode: %w", err)
	}
	return append([]byte(xml.Header), body...), nil
}

// ParseAssessmentRecord decodes and validates a record.
func ParseAssessmentRecord(raw []byte) (*AssessmentRecord, error) {
	var r AssessmentRecord
	if err := xml.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("metadata: parse: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// FromProblem derives the assessment record of an authored problem.
func FromProblem(p *item.Problem) (*AssessmentRecord, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("metadata: from problem: %w", err)
	}
	rec := &AssessmentRecord{
		QuestionID:     p.ID,
		CognitionLevel: p.Level,
		Style:          p.Style,
		ConceptID:      p.ConceptID,
		IndividualTest: IndividualTest{
			Answer:              p.Answer,
			Subject:             p.Subject,
			DifficultyIndex:     p.Difficulty,
			DiscriminationIndex: p.Discrimination,
		},
	}
	if p.Style == item.Questionnaire {
		rec.Questionnaire = &QuestionnaireMeta{Resumable: p.Resumable, Display: item.FixedOrder}
	}
	return rec, nil
}

// ApplyMeasurement copies measured indices and distraction analysis back
// into the record (the "reedit or reorganize" loop the paper closes between
// analysis and authoring).
func (r *AssessmentRecord) ApplyMeasurement(difficulty, discrimination float64, distraction map[string]float64) {
	r.IndividualTest.DifficultyIndex = difficulty
	r.IndividualTest.DiscriminationIndex = discrimination
	r.IndividualTest.Distraction = r.IndividualTest.Distraction[:0]
	keys := make([]string, 0, len(distraction))
	for k := range distraction {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r.IndividualTest.Distraction = append(r.IndividualTest.Distraction,
			DistractionEntry{Key: k, Power: distraction[k]})
	}
}
