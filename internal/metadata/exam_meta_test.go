package metadata

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// sittingFixture builds an exam of one MC question with n students, k of
// them correct (choosing A) and the rest choosing B, each taking the given
// per-question time.
func sittingFixture(t *testing.T, examID string, n, k int, perQ time.Duration) *analysis.ExamResult {
	t.Helper()
	p, err := item.NewMultipleChoice("m1", "?", []string{"1", "2", "3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Level = cognition.Comprehension
	e := &analysis.ExamResult{
		ExamID:   examID,
		Problems: []*item.Problem{p},
		TestTime: 10 * time.Minute,
	}
	for i := 0; i < n; i++ {
		opt, credit := "B", 0.0
		if i < k {
			opt, credit = "A", 1.0
		}
		id := fmt.Sprintf("s%02d", i)
		e.Students = append(e.Students, analysis.StudentResult{
			StudentID: id,
			Responses: []analysis.Response{{
				StudentID: id, ProblemID: "m1", Option: opt,
				Credit: credit, Answered: true, TimeSpent: perQ,
			}},
		})
	}
	return e
}

func TestExamMetaFromResult(t *testing.T) {
	res := sittingFixture(t, "post", 10, 5, 90*time.Second)
	meta, err := ExamMetaFromResult(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.AverageTimeSeconds != 90 {
		t.Errorf("average time = %d, want 90", meta.AverageTimeSeconds)
	}
	if meta.TestTimeSeconds != 600 {
		t.Errorf("test time = %d, want 600", meta.TestTimeSeconds)
	}
	if meta.InstructionalSensitivityIndex != 0 {
		t.Errorf("ISI without pre-test = %v, want 0", meta.InstructionalSensitivityIndex)
	}
}

func TestExamMetaWithISI(t *testing.T) {
	pre := sittingFixture(t, "pre", 10, 2, time.Minute)   // P = 0.2
	post := sittingFixture(t, "post", 10, 8, time.Minute) // P = 0.8
	meta, err := ExamMetaFromResult(post, pre)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(meta.InstructionalSensitivityIndex-0.6) > 1e-9 {
		t.Errorf("ISI = %v, want 0.6", meta.InstructionalSensitivityIndex)
	}
}

func TestExamMetaInvalid(t *testing.T) {
	if _, err := ExamMetaFromResult(&analysis.ExamResult{}, nil); err == nil {
		t.Error("invalid result should fail")
	}
}

func TestRecordsFromAnalysis(t *testing.T) {
	res := sittingFixture(t, "post", 12, 6, time.Minute)
	a, err := analysis.Analyze(res, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	records, err := RecordsFromAnalysis(res, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	rec := records[0]
	if rec.QuestionID != "m1" {
		t.Errorf("question ID = %q", rec.QuestionID)
	}
	// Measured indices must come from the analysis, not the authored -1.
	if rec.IndividualTest.DifficultyIndex < 0 {
		t.Errorf("difficulty not measured: %v", rec.IndividualTest.DifficultyIndex)
	}
	if len(rec.IndividualTest.Distraction) == 0 {
		t.Error("distraction profile missing")
	}
	// Records must encode cleanly (validated paths).
	if _, err := rec.Encode(); err != nil {
		t.Errorf("record encode: %v", err)
	}
}
