package simulate

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

func mcProblems(t *testing.T, n int) []*item.Problem {
	t.Helper()
	out := make([]*item.Problem, 0, n)
	for i := 1; i <= n; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%02d", i), "?",
			[]string{"w", "x", "y", "z"}, i%4)
		if err != nil {
			t.Fatal(err)
		}
		p.Level = cognition.Levels()[i%cognition.NumLevels]
		out = append(out, p)
	}
	return out
}

func TestNewPopulationReproducible(t *testing.T) {
	cfg := PopulationConfig{N: 50, Mean: 0, SD: 1, Seed: 7}
	a, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must give identical populations")
	}
	c, err := NewPopulation(PopulationConfig{N: 50, Mean: 0, SD: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestNewPopulationValidation(t *testing.T) {
	if _, err := NewPopulation(PopulationConfig{N: 0}); err == nil {
		t.Error("N=0 should fail")
	}
	if _, err := NewPopulation(PopulationConfig{N: 5, SD: -1}); err == nil {
		t.Error("negative SD should fail")
	}
}

func TestPopulationShifted(t *testing.T) {
	pop, err := NewPopulation(PopulationConfig{N: 10, SD: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	up := pop.Shifted(1.5)
	for i := range pop.Students {
		if got := up.Students[i].Ability - pop.Students[i].Ability; math.Abs(got-1.5) > 1e-12 {
			t.Errorf("shift = %v, want 1.5", got)
		}
		if up.Students[i].ID != pop.Students[i].ID {
			t.Error("IDs must be preserved")
		}
	}
	// Original untouched.
	if pop.Students[0].Ability == up.Students[0].Ability {
		t.Error("Shifted must not mutate the original")
	}
}

func TestRunProducesValidResult(t *testing.T) {
	pop, err := NewPopulation(PopulationConfig{N: 44, SD: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	specs := UniformSpecs(mcProblems(t, 10), IRTParams{A: 1.4, B: 0})
	res, err := Run(ExamConfig{ExamID: "sim", Items: specs, Seed: 11}, pop)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("simulated result invalid: %v", err)
	}
	if len(res.Students) != 44 || len(res.Problems) != 10 {
		t.Fatalf("result shape %dx%d, want 44x10", len(res.Students), len(res.Problems))
	}
	// Every response has positive or zero time and a known option.
	for _, s := range res.Students {
		if len(s.Responses) != 10 {
			t.Fatalf("student %s responses = %d", s.StudentID, len(s.Responses))
		}
	}
}

func TestRunReproducible(t *testing.T) {
	pop, err := NewPopulation(PopulationConfig{N: 20, SD: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	specs := UniformSpecs(mcProblems(t, 5), IRTParams{A: 1, B: 0})
	cfg := ExamConfig{ExamID: "sim", Items: specs, Seed: 42}
	r1, err := Run(cfg, pop)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, pop)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("same seeds must reproduce the identical sitting")
	}
}

func TestRunAbilityDrivesScore(t *testing.T) {
	// Two one-student populations at extreme abilities.
	weak := &Population{Students: []Student{{ID: "weak", Ability: -3}}}
	strong := &Population{Students: []Student{{ID: "strong", Ability: 3}}}
	specs := UniformSpecs(mcProblems(t, 40), IRTParams{A: 2, B: 0})
	cfg := ExamConfig{ExamID: "sim", Items: specs, Seed: 1}
	rw, err := Run(cfg, weak)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(cfg, strong)
	if err != nil {
		t.Fatal(err)
	}
	weights := rw.Weights()
	scoreW := rw.Students[0].Score(weights)
	scoreS := rs.Students[0].Score(weights)
	if scoreS <= scoreW {
		t.Errorf("strong scored %v, weak %v; strong should win", scoreS, scoreW)
	}
	if scoreS < 35 {
		t.Errorf("strong student should ace an easy exam, scored %v/40", scoreS)
	}
	if scoreW > 5 {
		t.Errorf("weak student scored %v/40, suspiciously high for a=2 2PL", scoreW)
	}
}

func TestRunDistractorWeights(t *testing.T) {
	// A single incorrect-only student; distractor "y" weighted overwhelmingly.
	p, err := item.NewMultipleChoice("q1", "?", []string{"w", "x", "y", "z"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := ItemSpec{
		Problem:     p,
		Params:      IRTParams{A: 2, B: 10}, // impossibly hard: always wrong
		Distractors: map[string]float64{"C": 1000, "B": 0.001, "D": 0.001},
	}
	pop := &Population{Students: make([]Student, 200)}
	for i := range pop.Students {
		pop.Students[i] = Student{ID: fmt.Sprintf("s%03d", i), Ability: 0}
	}
	res, err := Run(ExamConfig{ExamID: "d", Items: []ItemSpec{spec}, Seed: 2}, pop)
	if err != nil {
		t.Fatal(err)
	}
	chooseC := 0
	for _, s := range res.Students {
		if s.Responses[0].Option == "C" {
			chooseC++
		}
	}
	if chooseC < 190 {
		t.Errorf("weighted distractor C chosen %d/200 times, want nearly all", chooseC)
	}
}

func TestRunTestTimeCutsOff(t *testing.T) {
	pop := &Population{Students: []Student{{ID: "s1", Ability: 0}}}
	specs := UniformSpecs(mcProblems(t, 30), IRTParams{A: 1, B: 0})
	for i := range specs {
		specs[i].BaseTime = time.Minute
	}
	res, err := Run(ExamConfig{
		ExamID: "t", Items: specs, Seed: 9, TestTime: 5 * time.Minute,
	}, pop)
	if err != nil {
		t.Fatal(err)
	}
	answered := res.Students[0].AnsweredCount()
	if answered >= 30 {
		t.Errorf("answered %d of 30 in a 5-minute window of 1-minute items", answered)
	}
	if answered == 0 {
		t.Error("should answer at least one question")
	}
	if res.TestTime != 5*time.Minute {
		t.Errorf("TestTime = %v, want 5m", res.TestTime)
	}
}

func TestRunSkipRate(t *testing.T) {
	pop := &Population{Students: make([]Student, 100)}
	for i := range pop.Students {
		pop.Students[i] = Student{ID: fmt.Sprintf("s%03d", i), Ability: -5}
	}
	specs := UniformSpecs(mcProblems(t, 1), IRTParams{A: 2, B: 5})
	res, err := Run(ExamConfig{ExamID: "s", Items: specs, Seed: 4, SkipRate: 1}, pop)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Students {
		if s.Responses[0].Answered {
			t.Fatal("skip rate 1 on an impossible item must skip every answer")
		}
	}
}

func TestRunValidation(t *testing.T) {
	pop := &Population{Students: []Student{{ID: "s1"}}}
	if _, err := Run(ExamConfig{ExamID: "x"}, pop); err == nil {
		t.Error("no items should fail")
	}
	specs := UniformSpecs(mcProblems(t, 1), IRTParams{A: 1})
	if _, err := Run(ExamConfig{ExamID: "x", Items: specs}, nil); err == nil {
		t.Error("nil population should fail")
	}
	if _, err := Run(ExamConfig{ExamID: "x", Items: specs, SkipRate: 2}, pop); err == nil {
		t.Error("skip rate > 1 should fail")
	}
	bad := []ItemSpec{{Problem: specs[0].Problem, Params: IRTParams{A: -1}}}
	if _, err := Run(ExamConfig{ExamID: "x", Items: bad}, pop); err == nil {
		t.Error("invalid IRT params should fail")
	}
	if _, err := Run(ExamConfig{ExamID: "x", Items: []ItemSpec{{}}}, pop); err == nil {
		t.Error("nil problem should fail")
	}
}

// TestSimulatedExamAnalyzes drives the full substitution path: simulate a
// class then run the paper's analysis over it; discriminating items must
// separate the groups (D > 0) on average.
func TestSimulatedExamAnalyzes(t *testing.T) {
	pop, err := NewPopulation(PopulationConfig{N: 200, SD: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	specs := UniformSpecs(mcProblems(t, 20), IRTParams{A: 1.8, B: 0})
	res, err := Run(ExamConfig{ExamID: "sim", Items: specs, Seed: 22}, pop)
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.Analyze(res, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sumD := 0.0
	for _, q := range a.Questions {
		sumD += q.D
	}
	meanD := sumD / float64(len(a.Questions))
	if meanD < 0.3 {
		t.Errorf("mean discrimination %v on an a=1.8 pool, want >= 0.3", meanD)
	}
}
