package simulate

import (
	"fmt"
	"math/rand"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/item"
)

// ItemSpec couples an authored problem with its simulation behaviour.
type ItemSpec struct {
	Problem *item.Problem
	Params  IRTParams
	// Distractors weights the attractiveness of each wrong option key; a
	// missing key weighs 1. Only consulted for choice-style problems.
	Distractors map[string]float64
	// BaseTime is the nominal time an average student spends on the item;
	// zero defaults to 45 seconds.
	BaseTime time.Duration
}

// ExamConfig drives one simulated administration.
type ExamConfig struct {
	ExamID string
	Items  []ItemSpec
	// Seed makes the sitting reproducible (independent from the population
	// seed).
	Seed int64
	// TestTime is the configured exam time limit propagated into the
	// result; zero means unlimited. Students who would exceed it stop
	// answering (remaining questions are skipped).
	TestTime time.Duration
	// SkipRate is the probability an unsure student (one who failed the
	// correctness draw) skips instead of guessing; default 0.
	SkipRate float64
}

const _defaultBaseTime = 45 * time.Second

// Run simulates every student sitting the exam and returns the response
// matrix ready for analysis.
func Run(cfg ExamConfig, pop *Population) (*analysis.ExamResult, error) {
	if len(cfg.Items) == 0 {
		return nil, fmt.Errorf("simulate: exam %q has no items", cfg.ExamID)
	}
	if pop == nil || pop.Size() == 0 {
		return nil, fmt.Errorf("simulate: empty population")
	}
	if cfg.SkipRate < 0 || cfg.SkipRate > 1 {
		return nil, fmt.Errorf("simulate: skip rate %v outside [0,1]", cfg.SkipRate)
	}
	for i, spec := range cfg.Items {
		if spec.Problem == nil {
			return nil, fmt.Errorf("simulate: item %d has no problem", i)
		}
		if err := spec.Params.Validate(); err != nil {
			return nil, fmt.Errorf("simulate: item %q: %w", spec.Problem.ID, err)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	result := &analysis.ExamResult{
		ExamID:   cfg.ExamID,
		TestTime: cfg.TestTime,
	}
	for _, spec := range cfg.Items {
		result.Problems = append(result.Problems, spec.Problem)
	}

	for _, student := range pop.Students {
		sr := analysis.StudentResult{StudentID: student.ID}
		var elapsed time.Duration
		for _, spec := range cfg.Items {
			resp := answerItem(rng, spec, student, cfg.SkipRate)
			resp.StudentID = student.ID
			if cfg.TestTime > 0 && elapsed+resp.TimeSpent > cfg.TestTime {
				// Out of time: the question is left blank.
				resp = analysis.Response{
					StudentID: student.ID,
					ProblemID: spec.Problem.ID,
				}
			}
			elapsed += resp.TimeSpent
			sr.Responses = append(sr.Responses, resp)
		}
		result.Students = append(result.Students, sr)
	}
	return result, nil
}

// answerItem simulates one student on one item: a correctness draw under the
// IRT model, a distractor draw when wrong, and a time draw.
func answerItem(rng *rand.Rand, spec ItemSpec, student Student, skipRate float64) analysis.Response {
	p := spec.Problem
	resp := analysis.Response{ProblemID: p.ID}
	resp.TimeSpent = drawTime(rng, spec, student)

	knows := rng.Float64() < spec.Params.ProbCorrect(student.Ability)
	correctKey := p.CorrectKey()
	switch {
	case knows:
		resp.Answered = true
		resp.Credit = 1
		resp.Option = correctKey
	case rng.Float64() < skipRate:
		// Skip: not answered, no time beyond a glance.
		resp.TimeSpent /= 4
	default:
		resp.Answered = true
		resp.Credit = 0
		resp.Option = drawDistractor(rng, spec, correctKey)
	}
	if correctKey == "" {
		// Non-choice problems carry credit only.
		resp.Option = ""
	}
	return resp
}

// drawDistractor samples a wrong option proportionally to its weight.
func drawDistractor(rng *rand.Rand, spec ItemSpec, correctKey string) string {
	p := spec.Problem
	var keys []string
	switch {
	case len(p.Options) > 0:
		for _, o := range p.Options {
			if o.Key != correctKey {
				keys = append(keys, o.Key)
			}
		}
	case correctKey == "true":
		keys = []string{"false"}
	case correctKey == "false":
		keys = []string{"true"}
	}
	if len(keys) == 0 {
		return ""
	}
	total := 0.0
	weights := make([]float64, len(keys))
	for i, k := range keys {
		w := 1.0
		if spec.Distractors != nil {
			if dw, ok := spec.Distractors[k]; ok {
				w = dw
			}
		}
		if w < 0 {
			w = 0
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return keys[rng.Intn(len(keys))]
	}
	draw := rng.Float64() * total
	for i, w := range weights {
		draw -= w
		if draw <= 0 {
			return keys[i]
		}
	}
	return keys[len(keys)-1]
}

// drawTime models response time: a base per item, stretched for hard items
// relative to the student's ability and jittered log-normally.
func drawTime(rng *rand.Rand, spec ItemSpec, student Student) time.Duration {
	base := spec.BaseTime
	if base <= 0 {
		base = _defaultBaseTime
	}
	// Items above the student's ability take longer, up to 2x; items far
	// below take as little as 0.6x.
	gap := spec.Params.B - student.Ability
	factor := 1 + 0.25*gap
	if factor < 0.6 {
		factor = 0.6
	}
	if factor > 2 {
		factor = 2
	}
	jitter := 1 + 0.20*rng.NormFloat64()
	if jitter < 0.3 {
		jitter = 0.3
	}
	d := time.Duration(float64(base) * factor * jitter)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// UniformSpecs builds ItemSpecs for a slice of problems with identical IRT
// parameters — a convenience for benchmarks and examples.
func UniformSpecs(problems []*item.Problem, params IRTParams) []ItemSpec {
	specs := make([]ItemSpec, 0, len(problems))
	for _, p := range problems {
		specs = append(specs, ItemSpec{Problem: p, Params: params})
	}
	return specs
}
