package simulate

import (
	"fmt"
	"math/rand"
	"sync"
)

// Student is one simulated learner.
type Student struct {
	ID string `json:"id"`
	// Ability is the latent trait θ on the IRT scale.
	Ability float64 `json:"ability"`
}

// Population is a cohort of simulated students.
type Population struct {
	Students []Student `json:"students"`
}

// PopulationConfig describes the ability distribution of a cohort.
type PopulationConfig struct {
	// N is the cohort size.
	N int
	// Mean and SD parameterize the normal ability distribution; SD must be
	// non-negative (zero gives a uniform-ability cohort).
	Mean, SD float64
	// Seed makes the cohort reproducible.
	Seed int64
	// IDPrefix prefixes student IDs; default "s".
	IDPrefix string
}

// NewPopulation draws a cohort of N abilities from N(Mean, SD²) with the
// given seed.
func NewPopulation(cfg PopulationConfig) (*Population, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("simulate: population size %d must be positive", cfg.N)
	}
	if cfg.SD < 0 {
		return nil, fmt.Errorf("simulate: ability SD %v must be non-negative", cfg.SD)
	}
	prefix := cfg.IDPrefix
	if prefix == "" {
		prefix = "s"
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := &Population{Students: make([]Student, 0, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		pop.Students = append(pop.Students, Student{
			ID:      fmt.Sprintf("%s%04d", prefix, i+1),
			Ability: cfg.Mean + cfg.SD*rng.NormFloat64(),
		})
	}
	return pop, nil
}

// Stream is an unbounded cohort sampler: it draws students one at a time
// from the same ability distribution NewPopulation uses, without fixing the
// cohort size up front. Load generators use it when the number of virtual
// learners is decided by an arrival process rather than a roster. Next is
// safe for concurrent use.
type Stream struct {
	mu     sync.Mutex
	rng    *rand.Rand
	mean   float64
	sd     float64
	prefix string
	n      int
}

// NewStream builds a cohort sampler from the population config. N is
// ignored (the stream is unbounded); SD must be non-negative.
func NewStream(cfg PopulationConfig) (*Stream, error) {
	if cfg.SD < 0 {
		return nil, fmt.Errorf("simulate: ability SD %v must be non-negative", cfg.SD)
	}
	prefix := cfg.IDPrefix
	if prefix == "" {
		prefix = "s"
	}
	return &Stream{
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		mean:   cfg.Mean,
		sd:     cfg.SD,
		prefix: prefix,
	}, nil
}

// Next draws the stream's next student. IDs are sequential and unique
// within the stream; abilities are N(Mean, SD²) draws in a reproducible
// order for a given seed.
func (s *Stream) Next() Student {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return Student{
		ID:      fmt.Sprintf("%s%06d", s.prefix, s.n),
		Ability: s.mean + s.sd*s.rng.NormFloat64(),
	}
}

// Drawn reports how many students the stream has handed out.
func (s *Stream) Drawn() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Shifted returns a copy of the population with every ability raised by
// delta. It models a teaching intervention between a pre-test and a
// post-test for the Instructional Sensitivity experiment.
func (p *Population) Shifted(delta float64) *Population {
	out := &Population{Students: make([]Student, len(p.Students))}
	for i, s := range p.Students {
		out.Students[i] = Student{ID: s.ID, Ability: s.Ability + delta}
	}
	return out
}

// Size returns the cohort size.
func (p *Population) Size() int {
	return len(p.Students)
}
