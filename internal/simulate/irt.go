// Package simulate generates synthetic student populations and exam
// sittings. The paper evaluated its analysis model on a real class (44
// students); this package substitutes a seeded item-response-theory
// simulator so every experiment exercises the same analysis code path on
// reproducible data.
//
// The response model is the three-parameter logistic (3PL): a student with
// ability θ answers an item with discrimination a, difficulty b and guessing
// floor c correctly with probability
//
//	P(θ) = c + (1-c) / (1 + exp(-a(θ-b))).
//
// Setting c = 0 yields the 2PL used for most experiments.
package simulate

import (
	"fmt"
	"math"
)

// IRTParams are one item's response-model parameters.
type IRTParams struct {
	// A is the discrimination (slope); typical values 0.5-2.5.
	A float64 `json:"a"`
	// B is the difficulty on the ability scale; 0 is an average item.
	B float64 `json:"b"`
	// C is the pseudo-guessing floor in [0,1); 0.25 models blind guessing
	// over four options.
	C float64 `json:"c"`
}

// Validate checks the parameters are usable.
func (p IRTParams) Validate() error {
	if p.A <= 0 {
		return fmt.Errorf("simulate: discrimination a=%v must be positive", p.A)
	}
	if p.C < 0 || p.C >= 1 {
		return fmt.Errorf("simulate: guessing c=%v outside [0,1)", p.C)
	}
	return nil
}

// ProbCorrect returns P(θ) under the 3PL model.
func (p IRTParams) ProbCorrect(theta float64) float64 {
	return p.C + (1-p.C)/(1+math.Exp(-p.A*(theta-p.B)))
}

// Information returns the Fisher information of the item at ability theta,
// used by adaptive item selection. For the 3PL:
//
//	I(θ) = a² · (P-c)²/(1-c)² · Q/P, with Q = 1-P.
func (p IRTParams) Information(theta float64) float64 {
	prob := p.ProbCorrect(theta)
	if prob <= 0 || prob >= 1 {
		return 0
	}
	q := 1 - prob
	num := p.A * p.A * (prob - p.C) * (prob - p.C) * q
	den := (1 - p.C) * (1 - p.C) * prob
	return num / den
}

// DifficultyIndexAt approximates the classical Item Difficulty Index P (the
// expected proportion correct) for a normal ability population with the
// given mean and standard deviation, by Gauss-Hermite-like sampling over a
// fixed grid. It lets authors pick IRT b values that land near a target
// classical P.
func (p IRTParams) DifficultyIndexAt(mean, sd float64) float64 {
	const gridSize = 61
	const span = 4.0
	total, weightSum := 0.0, 0.0
	for i := 0; i < gridSize; i++ {
		z := -span + 2*span*float64(i)/float64(gridSize-1)
		w := math.Exp(-z * z / 2)
		total += w * p.ProbCorrect(mean+z*sd)
		weightSum += w
	}
	return total / weightSum
}

// ParamsForTargetP searches for a difficulty b giving approximately the
// target classical difficulty index over a standard-normal population, with
// the given discrimination and guessing. Target must be in (c, 1).
func ParamsForTargetP(target, a, c float64) (IRTParams, error) {
	if target <= c || target >= 1 {
		return IRTParams{}, fmt.Errorf("simulate: target P %v not in (%v,1)", target, c)
	}
	params := IRTParams{A: a, C: c}
	lo, hi := -5.0, 5.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		params.B = mid
		if params.DifficultyIndexAt(0, 1) > target {
			lo = mid // too easy: raise difficulty
		} else {
			hi = mid
		}
	}
	params.B = (lo + hi) / 2
	return params, params.Validate()
}
