package simulate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProbCorrectShape(t *testing.T) {
	p := IRTParams{A: 1.5, B: 0}
	// At θ = b the 2PL gives exactly 0.5.
	if got := p.ProbCorrect(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(b) = %v, want 0.5", got)
	}
	// Monotone increasing in ability.
	if p.ProbCorrect(-2) >= p.ProbCorrect(0) || p.ProbCorrect(0) >= p.ProbCorrect(2) {
		t.Error("P should increase with ability")
	}
	// Asymptotes.
	if p.ProbCorrect(10) < 0.99 || p.ProbCorrect(-10) > 0.01 {
		t.Error("P should approach 1 and 0 at the extremes")
	}
}

func TestProbCorrectGuessingFloor(t *testing.T) {
	p := IRTParams{A: 2, B: 0, C: 0.25}
	if got := p.ProbCorrect(-10); math.Abs(got-0.25) > 1e-3 {
		t.Errorf("floor = %v, want ~0.25", got)
	}
	if got := p.ProbCorrect(0); math.Abs(got-0.625) > 1e-12 {
		t.Errorf("P(b) = %v, want 0.625 (c + (1-c)/2)", got)
	}
}

func TestProbCorrectMonotoneProperty(t *testing.T) {
	p := IRTParams{A: 1, B: 0.5, C: 0.1}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return p.ProbCorrect(lo) <= p.ProbCorrect(hi)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInformationPeaksNearB(t *testing.T) {
	p := IRTParams{A: 1.8, B: 0.7}
	atB := p.Information(0.7)
	if p.Information(-2) >= atB || p.Information(3.5) >= atB {
		t.Error("information should peak near b for the 2PL")
	}
	if atB <= 0 {
		t.Errorf("information at b = %v, want positive", atB)
	}
}

func TestInformationNonNegativeProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		p := IRTParams{A: 1.2, B: -0.3, C: 0.2}
		return p.Information(theta) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	if err := (IRTParams{A: 1}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (IRTParams{A: 0}).Validate(); err == nil {
		t.Error("a=0 should fail")
	}
	if err := (IRTParams{A: 1, C: -0.1}).Validate(); err == nil {
		t.Error("c<0 should fail")
	}
	if err := (IRTParams{A: 1, C: 1}).Validate(); err == nil {
		t.Error("c=1 should fail")
	}
}

func TestDifficultyIndexAtTracksB(t *testing.T) {
	easy := IRTParams{A: 1.5, B: -1.5}
	hard := IRTParams{A: 1.5, B: 1.5}
	pe := easy.DifficultyIndexAt(0, 1)
	ph := hard.DifficultyIndexAt(0, 1)
	if pe <= ph {
		t.Errorf("easy item index %v should exceed hard item index %v", pe, ph)
	}
	if pe < 0.7 {
		t.Errorf("easy item index %v suspiciously low", pe)
	}
	if ph > 0.3 {
		t.Errorf("hard item index %v suspiciously high", ph)
	}
}

func TestParamsForTargetP(t *testing.T) {
	for _, target := range []float64{0.3, 0.5, 0.8} {
		params, err := ParamsForTargetP(target, 1.5, 0)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		got := params.DifficultyIndexAt(0, 1)
		if math.Abs(got-target) > 0.01 {
			t.Errorf("target %v achieved %v", target, got)
		}
	}
}

func TestParamsForTargetPErrors(t *testing.T) {
	if _, err := ParamsForTargetP(0.1, 1, 0.25); err == nil {
		t.Error("target below guessing floor should fail")
	}
	if _, err := ParamsForTargetP(1, 1, 0); err == nil {
		t.Error("target 1 should fail")
	}
}
