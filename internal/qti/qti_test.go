package qti

import (
	"strings"
	"testing"

	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

func sampleMC(t *testing.T) *item.Problem {
	t.Helper()
	p, err := item.NewMultipleChoice("q1", "Which planet is red?",
		[]string{"Venus", "Mars", "Jupiter", "Saturn"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Subject = "Astronomy"
	p.Hint = "Fourth from the sun"
	p.ConceptID = "c-planets"
	p.Level = cognition.Comprehension
	return p
}

func TestExportImportMultipleChoice(t *testing.T) {
	p := sampleMC(t)
	q, err := Export(p)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	back, err := Import(q)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if back.ID != p.ID || back.Style != item.MultipleChoice {
		t.Errorf("round trip identity: %+v", back)
	}
	if back.Answer != "B" {
		t.Errorf("answer = %q, want B", back.Answer)
	}
	if len(back.Options) != 4 || back.Options[1].Text != "Mars" {
		t.Errorf("options = %+v", back.Options)
	}
	if back.Hint != p.Hint {
		t.Errorf("hint = %q", back.Hint)
	}
	if back.Level != cognition.Comprehension {
		t.Errorf("level = %v", back.Level)
	}
	if back.ConceptID != "c-planets" {
		t.Errorf("concept = %q", back.ConceptID)
	}
	if back.Subject != "Astronomy" {
		t.Errorf("subject = %q", back.Subject)
	}
}

func TestExportImportTrueFalse(t *testing.T) {
	p := &item.Problem{ID: "tf1", Style: item.TrueFalse,
		Question: "Mars is red.", Answer: "TRUE", Level: cognition.Knowledge}
	q, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.Presentation.ResponseLid == nil ||
		len(q.Presentation.ResponseLid.RenderChoice.Labels) != 2 {
		t.Fatal("true/false should export as a two-label choice")
	}
	back, err := Import(q)
	if err != nil {
		t.Fatal(err)
	}
	if back.Style != item.TrueFalse || back.Answer != "true" {
		t.Errorf("round trip: %+v", back)
	}
}

func TestExportImportEssay(t *testing.T) {
	p := &item.Problem{ID: "e1", Style: item.Essay,
		Question: "Explain gravity.", Level: cognition.Evaluation}
	q, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.Presentation.ResponseStr == nil {
		t.Fatal("essay should export a string response")
	}
	back, err := Import(q)
	if err != nil {
		t.Fatal(err)
	}
	if back.Style != item.Essay || back.Level != cognition.Evaluation {
		t.Errorf("round trip: %+v", back)
	}
}

func TestExportInvalidProblem(t *testing.T) {
	if _, err := Export(&item.Problem{ID: "x"}); err == nil {
		t.Error("invalid problem should fail")
	}
}

func TestImportWithoutIdent(t *testing.T) {
	if _, err := Import(&QTIItem{}); err == nil {
		t.Error("missing ident should fail")
	}
}

func TestImportWithoutMetadataDefaults(t *testing.T) {
	q := &QTIItem{
		Ident: "bare",
		Presentation: Presentation{
			Material: Material{MatText: MatText{Value: "A bare item"}},
		},
	}
	p, err := Import(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Style != item.Essay {
		t.Errorf("default style = %v, want Essay", p.Style)
	}
	if !p.Level.Valid() {
		t.Error("imported scored item must get a valid level")
	}
}

func TestImportTwoLabelChoiceDetectsTrueFalse(t *testing.T) {
	q := &QTIItem{
		Ident: "tfx",
		Presentation: Presentation{
			Material: Material{MatText: MatText{Value: "T/F?"}},
			ResponseLid: &ResponseLid{
				Ident: "RESPONSE",
				RenderChoice: RenderChoice{Labels: []ResponseLabel{
					{Ident: "true", Material: Material{MatText: MatText{Value: "True"}}},
					{Ident: "false", Material: Material{MatText: MatText{Value: "False"}}},
				}},
			},
		},
		ResProcessing: &ResProcessing{
			RespCondition: []RespCondition{{
				CondVar: CondVar{VarEqual: &VarEqual{RespIdent: "RESPONSE", Value: "false"}},
				SetVar:  &SetVar{Action: "Set", Value: "1"},
			}},
		},
	}
	p, err := Import(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Style != item.TrueFalse || p.Answer != "false" {
		t.Errorf("detected %v answer %q", p.Style, p.Answer)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	p1 := sampleMC(t)
	p2 := &item.Problem{ID: "tf1", Style: item.TrueFalse,
		Question: "?", Answer: "true", Level: cognition.Knowledge}
	q1, err := Export(p1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Export(p2)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeDocument([]QTIItem{*q1, *q2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "questestinterop") {
		t.Error("document root missing")
	}
	doc, err := ParseDocument(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Items) != 2 {
		t.Fatalf("items = %d, want 2", len(doc.Items))
	}
	back, err := Import(&doc.Items[0])
	if err != nil {
		t.Fatal(err)
	}
	if back.Question != p1.Question {
		t.Errorf("question changed: %q", back.Question)
	}
}

func TestParseDocumentBadXML(t *testing.T) {
	if _, err := ParseDocument([]byte("<broken")); err == nil {
		t.Error("bad XML should fail")
	}
}
