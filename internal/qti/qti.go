// Package qti implements a working subset of IMS Question & Test
// Interoperability 1.2 ("allows systems to exchange questions and tests",
// §2.3): the questestinterop/item XML vocabulary with presentation,
// response_lid/render_choice and resprocessing blocks, mapped to and from
// the internal item model. The paper's authoring concepts reference QTI;
// this package is the exchange format its SCORM packages cite.
package qti

import (
	"encoding/xml"
	"fmt"
	"strings"

	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// parseLevel adapts cognition.ParseLevel for metadata fields.
func parseLevel(s string) (cognition.Level, error) {
	return cognition.ParseLevel(s)
}

// QuestTestInterop is the QTI 1.2 document root.
type QuestTestInterop struct {
	XMLName xml.Name  `xml:"questestinterop"`
	Items   []QTIItem `xml:"item"`
}

// QTIItem is one assessment item.
type QTIItem struct {
	Ident          string          `xml:"ident,attr"`
	Title          string          `xml:"title,attr,omitempty"`
	Presentation   Presentation    `xml:"presentation"`
	ResProcessing  *ResProcessing  `xml:"resprocessing,omitempty"`
	ItemFeedback   []ItemFeedback  `xml:"itemfeedback,omitempty"`
	QTIMetadataRaw []MetadataField `xml:"itemmetadata>qtimetadata>qtimetadatafield,omitempty"`
}

// MetadataField is one qtimetadatafield entry.
type MetadataField struct {
	Label string `xml:"fieldlabel"`
	Entry string `xml:"fieldentry"`
}

// Presentation holds the learner-visible material.
type Presentation struct {
	Material    Material     `xml:"material"`
	ResponseLid *ResponseLid `xml:"response_lid,omitempty"`
	ResponseStr *ResponseStr `xml:"response_str,omitempty"`
}

// Material wraps display text.
type Material struct {
	MatText MatText `xml:"mattext"`
}

// MatText is the text payload.
type MatText struct {
	TextType string `xml:"texttype,attr,omitempty"`
	Value    string `xml:",chardata"`
}

// ResponseLid is a logical-identifier (choice) response.
type ResponseLid struct {
	Ident        string       `xml:"ident,attr"`
	RCardinality string       `xml:"rcardinality,attr,omitempty"`
	RenderChoice RenderChoice `xml:"render_choice"`
}

// RenderChoice lists the selectable labels.
type RenderChoice struct {
	Labels []ResponseLabel `xml:"response_label"`
}

// ResponseLabel is one choice.
type ResponseLabel struct {
	Ident    string   `xml:"ident,attr"`
	Material Material `xml:"material"`
}

// ResponseStr is a string (fill-in) response.
type ResponseStr struct {
	Ident     string `xml:"ident,attr"`
	RenderFib *struct {
		Rows int `xml:"rows,attr,omitempty"`
	} `xml:"render_fib,omitempty"`
}

// ResProcessing scores the item.
type ResProcessing struct {
	Outcomes      Outcomes        `xml:"outcomes"`
	RespCondition []RespCondition `xml:"respcondition"`
}

// Outcomes declares score variables.
type Outcomes struct {
	DecVar DecVar `xml:"decvar"`
}

// DecVar is the SCORE variable declaration.
type DecVar struct {
	VarName string `xml:"varname,attr,omitempty"`
	MinVal  string `xml:"minvalue,attr,omitempty"`
	MaxVal  string `xml:"maxvalue,attr,omitempty"`
}

// RespCondition is one scoring rule.
type RespCondition struct {
	Title       string     `xml:"title,attr,omitempty"`
	CondVar     CondVar    `xml:"conditionvar"`
	SetVar      *SetVar    `xml:"setvar,omitempty"`
	DisplayFeed *DisplayFB `xml:"displayfeedback,omitempty"`
}

// CondVar matches a response value.
type CondVar struct {
	VarEqual *VarEqual `xml:"varequal,omitempty"`
}

// VarEqual is the equality predicate.
type VarEqual struct {
	RespIdent string `xml:"respident,attr"`
	Value     string `xml:",chardata"`
}

// SetVar assigns the score.
type SetVar struct {
	Action string `xml:"action,attr,omitempty"`
	Value  string `xml:",chardata"`
}

// DisplayFB triggers feedback display.
type DisplayFB struct {
	LinkRefID string `xml:"linkrefid,attr"`
}

// ItemFeedback carries hint/feedback material.
type ItemFeedback struct {
	Ident    string   `xml:"ident,attr"`
	Material Material `xml:"material"`
}

// Export converts a problem into a QTI item. Supported styles:
// MultipleChoice, TrueFalse (rendered as a two-label choice), Essay and
// Completion (string responses). Match and Questionnaire export as string
// responses with metadata marking the original style.
func Export(p *item.Problem) (*QTIItem, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("qti: export: %w", err)
	}
	q := &QTIItem{
		Ident: p.ID,
		Title: p.Subject,
		Presentation: Presentation{
			Material: Material{MatText: MatText{TextType: "text/plain", Value: p.Question}},
		},
	}
	q.QTIMetadataRaw = append(q.QTIMetadataRaw,
		MetadataField{Label: "qmd_itemtype", Entry: p.Style.String()},
		MetadataField{Label: "qmd_levelofdifficulty", Entry: fmt.Sprintf("%.3f", p.Difficulty)},
		MetadataField{Label: "mine_cognitionlevel", Entry: p.Level.String()},
		MetadataField{Label: "mine_concept", Entry: p.ConceptID},
	)
	if p.Hint != "" {
		q.ItemFeedback = append(q.ItemFeedback, ItemFeedback{
			Ident:    "HINT",
			Material: Material{MatText: MatText{Value: p.Hint}},
		})
	}
	switch p.Style {
	case item.MultipleChoice:
		exportChoice(q, p, p.Options, p.Answer)
	case item.TrueFalse:
		opts := []item.Option{{Key: "true", Text: "True"}, {Key: "false", Text: "False"}}
		exportChoice(q, p, opts, strings.ToLower(p.Answer))
	default:
		q.Presentation.ResponseStr = &ResponseStr{Ident: "RESPONSE"}
	}
	return q, nil
}

func exportChoice(q *QTIItem, p *item.Problem, opts []item.Option, answer string) {
	lid := &ResponseLid{Ident: "RESPONSE", RCardinality: "Single"}
	for _, o := range opts {
		lid.RenderChoice.Labels = append(lid.RenderChoice.Labels, ResponseLabel{
			Ident:    o.Key,
			Material: Material{MatText: MatText{Value: o.Text}},
		})
	}
	q.Presentation.ResponseLid = lid
	q.ResProcessing = &ResProcessing{
		Outcomes: Outcomes{DecVar: DecVar{VarName: "SCORE", MinVal: "0", MaxVal: "1"}},
		RespCondition: []RespCondition{{
			Title:   "correct",
			CondVar: CondVar{VarEqual: &VarEqual{RespIdent: "RESPONSE", Value: answer}},
			SetVar:  &SetVar{Action: "Set", Value: "1"},
		}},
	}
	_ = p
}

// Import converts a QTI item back to the internal model. Choice items map to
// MultipleChoice or TrueFalse (recognized by their two true/false labels or
// the qmd_itemtype field); string responses map to Essay unless metadata
// says otherwise.
func Import(q *QTIItem) (*item.Problem, error) {
	if strings.TrimSpace(q.Ident) == "" {
		return nil, fmt.Errorf("qti: item has no ident")
	}
	p := &item.Problem{
		ID:             q.Ident,
		Subject:        q.Title,
		Question:       q.Presentation.Material.MatText.Value,
		Difficulty:     -1,
		Discrimination: -1,
	}
	meta := make(map[string]string, len(q.QTIMetadataRaw))
	for _, f := range q.QTIMetadataRaw {
		meta[f.Label] = f.Entry
	}
	if styleName, ok := meta["qmd_itemtype"]; ok {
		if style, err := item.ParseStyle(styleName); err == nil {
			p.Style = style
		}
	}
	if lvl, ok := meta["mine_cognitionlevel"]; ok {
		if parsed, err := parseLevel(lvl); err == nil {
			p.Level = parsed
		}
	}
	p.ConceptID = meta["mine_concept"]
	for _, fb := range q.ItemFeedback {
		if fb.Ident == "HINT" {
			p.Hint = fb.Material.MatText.Value
		}
	}
	switch {
	case q.Presentation.ResponseLid != nil:
		importChoice(p, q)
	default:
		if p.Style == 0 {
			p.Style = item.Essay
		}
	}
	if p.Style == 0 {
		p.Style = item.Essay
	}
	if !p.Level.Valid() && p.Style.Scored() {
		p.Level = 1 // Knowledge fallback for items without MINE metadata
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("qti: import %s: %w", q.Ident, err)
	}
	return p, nil
}

func importChoice(p *item.Problem, q *QTIItem) {
	labels := q.Presentation.ResponseLid.RenderChoice.Labels
	answer := correctValue(q)
	isTF := len(labels) == 2 &&
		strings.EqualFold(labels[0].Ident, "true") &&
		strings.EqualFold(labels[1].Ident, "false")
	if p.Style == item.TrueFalse || (p.Style == 0 && isTF) {
		p.Style = item.TrueFalse
		p.Answer = strings.ToLower(answer)
		return
	}
	p.Style = item.MultipleChoice
	for _, l := range labels {
		p.Options = append(p.Options, item.Option{Key: l.Ident, Text: l.Material.MatText.Value})
	}
	p.Answer = answer
}

func correctValue(q *QTIItem) string {
	if q.ResProcessing == nil {
		return ""
	}
	for _, rc := range q.ResProcessing.RespCondition {
		if rc.SetVar != nil && rc.SetVar.Value != "0" && rc.CondVar.VarEqual != nil {
			return rc.CondVar.VarEqual.Value
		}
	}
	return ""
}

// EncodeDocument serializes items into a questestinterop document.
func EncodeDocument(items []QTIItem) ([]byte, error) {
	doc := QuestTestInterop{Items: items}
	body, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("qti: encode: %w", err)
	}
	return append([]byte(xml.Header), body...), nil
}

// ParseDocument decodes a questestinterop document.
func ParseDocument(raw []byte) (*QuestTestInterop, error) {
	var doc QuestTestInterop
	if err := xml.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("qti: parse: %w", err)
	}
	return &doc, nil
}
