package core

import (
	"math"
	"strings"
	"testing"

	"mineassess/internal/analysis"
	"mineassess/internal/item"
)

func analyzedSitting(t *testing.T) (*Pipeline, *analysis.ExamResult, *analysis.ExamAnalysis) {
	t.Helper()
	p, examID, _ := seedPipeline(t)
	res, err := p.RunSimulated(examID, classCfg(80))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(res, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, res, a
}

func TestPipelineStatistics(t *testing.T) {
	p, res, _ := analyzedSitting(t)
	st, err := p.Statistics(res)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scores.N != 80 || len(st.Items) != 12 {
		t.Errorf("stats shape: n=%d items=%d", st.Scores.N, len(st.Items))
	}
	if math.IsNaN(st.KR20) {
		t.Error("KR-20 should be defined for a 12-item exam with score variance")
	}
}

func TestPipelineStatisticsReport(t *testing.T) {
	p, res, a := analyzedSitting(t)
	out, err := p.StatisticsReport(res, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"KR-20", "point-biserial", "agreement of group D"} {
		if !strings.Contains(out, want) {
			t.Errorf("statistics report missing %q:\n%s", want, out)
		}
	}
}

func TestPipelineFeedback(t *testing.T) {
	p, res, a := analyzedSitting(t)
	rep, err := p.Feedback(res, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Students) != 80 {
		t.Errorf("students = %d", len(rep.Students))
	}
	// Ordered by score descending.
	for i := 1; i < len(rep.Students); i++ {
		if rep.Students[i].Score > rep.Students[i-1].Score {
			t.Fatal("students not ordered by score")
		}
	}
}

func TestPipelineFeedbackReport(t *testing.T) {
	p, res, a := analyzedSitting(t)
	out, err := p.FeedbackReport(res, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Class feedback") {
		t.Errorf("class section missing:\n%s", out)
	}
	if got := strings.Count(out, "Feedback for "); got != 3 {
		t.Errorf("student sections = %d, want 3", got)
	}
	all, err := p.FeedbackReport(res, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(all, "Feedback for "); got != 80 {
		t.Errorf("uncapped student sections = %d, want 80", got)
	}
}

func TestPipelineReportIncludesQuestionnaires(t *testing.T) {
	p, examID, concepts := seedPipeline(t)
	res, err := p.RunSimulated(examID, classCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	// Append a questionnaire problem and hand-collected answers.
	q := &item.Problem{ID: "survey1", Style: item.Questionnaire,
		Question: "Rate the exam 1-5."}
	res.Problems = append(res.Problems, q)
	for i := range res.Students {
		rating := []string{"5", "4", "5"}[i%3]
		res.Students[i].Responses = append(res.Students[i].Responses,
			analysis.Response{StudentID: res.Students[i].StudentID,
				ProblemID: "survey1", Option: rating, Answered: true})
	}
	a, err := p.Analyze(res, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Report(res, a, concepts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Questionnaire survey1") {
		t.Errorf("questionnaire summary missing from report:\n%.300s", out)
	}
}

func TestPipelineSignalBoardHTML(t *testing.T) {
	p, _, a := analyzedSitting(t)
	out := p.SignalBoardHTML(a)
	if !strings.Contains(out, "<table") || !strings.Contains(out, "Signal board") {
		t.Errorf("HTML board wrong:\n%.200s", out)
	}
}

func TestPipelineExamPreviewHTML(t *testing.T) {
	p, examID, _ := seedPipeline(t)
	out, err := p.ExamPreviewHTML(examID)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "<section") != 12 {
		t.Errorf("sections = %d, want 12", strings.Count(out, "<section"))
	}
	if _, err := p.ExamPreviewHTML("ghost"); err == nil {
		t.Error("unknown exam should fail")
	}
}
