// Package core is the public facade of the assessment system: one Pipeline
// wires the problem/exam bank, the simulator (or live delivery engine), the
// analysis model, the renderers and the SCORM/QTI exporters together, so a
// caller can author, administer, analyze and fix an exam — the complete
// learning-cycle loop the paper's introduction motivates.
package core

import (
	"fmt"
	"strings"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/authoring"
	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
	"mineassess/internal/qti"
	"mineassess/internal/report"
	"mineassess/internal/scorm"
	"mineassess/internal/simulate"
)

// Version identifies the library release.
const Version = "1.0.0"

// Pipeline is the assessment system facade. Construct with New, NewWith or
// Open; the zero value is not usable.
type Pipeline struct {
	store     bank.Storage
	templates *item.TemplateRegistry
}

// New builds a pipeline around an empty reference bank.
func New() *Pipeline {
	return NewWith(bank.New())
}

// NewWith builds a pipeline around any storage backend — the reference
// store, a sharded store, or a journaled one.
func NewWith(store bank.Storage) *Pipeline {
	return &Pipeline{
		store:     store,
		templates: item.NewTemplateRegistry(),
	}
}

// Open builds a pipeline around a bank loaded from disk.
func Open(path string) (*Pipeline, error) {
	store, err := bank.Load(path)
	if err != nil {
		return nil, err
	}
	return NewWith(store), nil
}

// Store exposes the underlying problem & exam database.
func (p *Pipeline) Store() bank.Storage {
	return p.store
}

// Templates exposes the presentation-template registry.
func (p *Pipeline) Templates() *item.TemplateRegistry {
	return p.templates
}

// Save persists the bank.
func (p *Pipeline) Save(path string) error {
	return p.store.Save(path)
}

// SimulationConfig drives a simulated administration of a stored exam.
type SimulationConfig struct {
	// Class is the simulated cohort; required.
	Class simulate.PopulationConfig
	// Seed drives the sitting (independent of the population seed).
	Seed int64
	// DefaultParams is used for problems without recorded difficulty;
	// zero-value means a=1.5, b=0.
	DefaultParams simulate.IRTParams
	// SkipRate is the probability an unsure student skips.
	SkipRate float64
}

// RunSimulated administers a stored exam to a simulated class and returns
// the response matrix. Problems with a recorded Item Difficulty Index get
// IRT parameters calibrated to that index; unmeasured problems use the
// default parameters.
func (p *Pipeline) RunSimulated(examID string, cfg SimulationConfig) (*analysis.ExamResult, error) {
	rec, err := p.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	problems, err := p.store.Problems(rec.ProblemIDs)
	if err != nil {
		return nil, err
	}
	defaults := cfg.DefaultParams
	if defaults.A == 0 {
		defaults = simulate.IRTParams{A: 1.5, B: 0}
	}
	specs := make([]simulate.ItemSpec, 0, len(problems))
	for _, prob := range problems {
		params := defaults
		if prob.Difficulty > 0 && prob.Difficulty < 1 {
			calibrated, err := simulate.ParamsForTargetP(prob.Difficulty, defaults.A, defaults.C)
			if err == nil {
				params = calibrated
			}
		}
		specs = append(specs, simulate.ItemSpec{Problem: prob, Params: params})
	}
	pop, err := simulate.NewPopulation(cfg.Class)
	if err != nil {
		return nil, err
	}
	return simulate.Run(simulate.ExamConfig{
		ExamID:   examID,
		Items:    specs,
		Seed:     cfg.Seed,
		TestTime: time.Duration(rec.TestTimeSeconds) * time.Second,
		SkipRate: cfg.SkipRate,
	}, pop)
}

// Analyze runs the paper's analysis model over a response matrix.
func (p *Pipeline) Analyze(res *analysis.ExamResult, opts analysis.Options) (*analysis.ExamAnalysis, error) {
	return analysis.Analyze(res, opts)
}

// ApplyMeasurements writes each question's measured Item Difficulty Index
// and Item Discrimination Index back onto the stored problems, closing the
// paper's fix-the-question loop. It returns the number of problems updated.
func (p *Pipeline) ApplyMeasurements(a *analysis.ExamAnalysis) (int, error) {
	updated := 0
	for _, q := range a.Questions {
		prob, err := p.store.Problem(q.ProblemID)
		if err != nil {
			return updated, err
		}
		prob.Difficulty = q.P
		prob.Discrimination = q.D
		if err := p.store.UpdateProblem(prob); err != nil {
			return updated, err
		}
		updated++
	}
	return updated, nil
}

// Coverage builds the two-way specification table for a stored exam over
// the given concepts.
func (p *Pipeline) Coverage(examID string, concepts []cognition.Concept) (*cognition.TwoWayTable, error) {
	rec, err := p.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	return authoring.CoverageTable(p.store, rec.ProblemIDs, concepts)
}

// Report bundles the paper's full analysis output for an exam sitting: the
// number-representation table, the signal board, per-question distraction,
// the time figure and — when concepts are supplied — the two-way
// specification table with its coverage analyses.
func (p *Pipeline) Report(res *analysis.ExamResult, a *analysis.ExamAnalysis, concepts []cognition.Concept) (string, error) {
	var b strings.Builder
	b.WriteString(report.NumberTable(a))
	b.WriteByte('\n')
	b.WriteString(report.SignalBoard(a))
	b.WriteByte('\n')
	b.WriteString(report.TimeSufficiency(analysis.AnalyzeTime(res)))
	if pts := analysis.TimeCurve(res, 40); pts != nil {
		b.WriteString(report.TimeCurve(pts, 8))
	}
	grid := analysis.ScoreDifficulty(res, a, 8, 6)
	b.WriteString(report.ScoreDifficulty(grid))
	if sums := analysis.SummarizeQuestionnaires(res); len(sums) > 0 {
		b.WriteByte('\n')
		b.WriteString(report.Questionnaires(sums))
	}
	if len(concepts) > 0 {
		table, err := p.Coverage(res.ExamID, concepts)
		if err != nil {
			return "", fmt.Errorf("core: coverage: %w", err)
		}
		b.WriteByte('\n')
		b.WriteString(report.TwoWayTable(table))
		b.WriteString(report.Coverage(table.Analyze()))
	}
	return b.String(), nil
}

// ExportSCORM renders a stored exam into a SCORM content package.
func (p *Pipeline) ExportSCORM(examID string) (*scorm.Package, error) {
	rec, err := p.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	problems, err := p.store.Problems(rec.ProblemIDs)
	if err != nil {
		return nil, err
	}
	return scorm.BuildPackage(rec, problems)
}

// ExportQTI renders a stored exam's problems as an IMS QTI document.
func (p *Pipeline) ExportQTI(examID string) ([]byte, error) {
	rec, err := p.store.Exam(examID)
	if err != nil {
		return nil, err
	}
	problems, err := p.store.Problems(rec.ProblemIDs)
	if err != nil {
		return nil, err
	}
	items := make([]qti.QTIItem, 0, len(problems))
	for _, prob := range problems {
		qi, err := qti.Export(prob)
		if err != nil {
			return nil, err
		}
		items = append(items, *qi)
	}
	return qti.EncodeDocument(items)
}

// ImportQTI loads problems from a QTI document into the bank, returning the
// imported IDs in document order.
func (p *Pipeline) ImportQTI(raw []byte) ([]string, error) {
	doc, err := qti.ParseDocument(raw)
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(doc.Items))
	for i := range doc.Items {
		prob, err := qti.Import(&doc.Items[i])
		if err != nil {
			return nil, err
		}
		if err := p.store.AddProblem(prob); err != nil {
			return nil, err
		}
		ids = append(ids, prob.ID)
	}
	return ids, nil
}
