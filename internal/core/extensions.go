package core

import (
	"fmt"
	"strings"

	"mineassess/internal/analysis"
	"mineassess/internal/feedback"
	"mineassess/internal/report"
	"mineassess/internal/stats"
)

// Statistics computes the whole-sample psychometric summary of a sitting:
// score distribution, KR-20 reliability, and per-item difficulty and
// point-biserial discrimination.
func (p *Pipeline) Statistics(res *analysis.ExamResult) (*stats.ExamStatistics, error) {
	return stats.Compute(res)
}

// Feedback builds the assessment-feedback bundle (the paper's §6 future
// work): per-student concept/level mastery reports plus class remediation
// advice derived from Rules 3 and 4.
func (p *Pipeline) Feedback(res *analysis.ExamResult, a *analysis.ExamAnalysis) (*feedback.ClassReport, error) {
	return feedback.Build(res, a)
}

// StatisticsReport renders the psychometric summary as text, including the
// D-versus-point-biserial agreement when an analysis is supplied.
func (p *Pipeline) StatisticsReport(res *analysis.ExamResult, a *analysis.ExamAnalysis) (string, error) {
	st, err := stats.Compute(res)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Score distribution: n=%d mean=%.2f sd=%.2f median=%.2f range=[%.1f, %.1f]\n",
		st.Scores.N, st.Scores.Mean, st.Scores.SD, st.Scores.Median,
		st.Scores.Min, st.Scores.Max)
	fmt.Fprintf(&b, "KR-20 reliability: %.3f\n", st.KR20)
	fmt.Fprintf(&b, "%-10s %-8s %s\n", "Item", "P", "point-biserial")
	for _, it := range st.Items {
		fmt.Fprintf(&b, "%-10s %-8.2f %+.3f\n", it.ProblemID, it.P, it.PointBiserial)
	}
	if a != nil {
		if r, err := stats.CompareDiscrimination(a, st); err == nil {
			fmt.Fprintf(&b, "agreement of group D with point-biserial: r = %.3f\n", r)
		}
	}
	return b.String(), nil
}

// FeedbackReport renders class advice plus the weakest-student reports
// (capped at maxStudents; 0 means all).
func (p *Pipeline) FeedbackReport(res *analysis.ExamResult, a *analysis.ExamAnalysis, maxStudents int) (string, error) {
	rep, err := feedback.Build(res, a)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(feedback.RenderClass(rep))
	students := rep.Students
	if maxStudents > 0 && len(students) > maxStudents {
		// Weakest students first for remediation focus.
		students = students[len(students)-maxStudents:]
	}
	for i := len(students) - 1; i >= 0; i-- {
		b.WriteString(feedback.RenderStudent(students[i]))
	}
	return b.String(), nil
}

// SignalBoardHTML renders the Figure 2 signal interface as HTML.
func (p *Pipeline) SignalBoardHTML(a *analysis.ExamAnalysis) string {
	return report.SignalBoardHTML(a)
}

// ExamPreviewHTML renders a stored exam's authoring preview (the §5.3-5.4
// presentation-style screens) using the pipeline's template registry.
func (p *Pipeline) ExamPreviewHTML(examID string) (string, error) {
	rec, err := p.store.Exam(examID)
	if err != nil {
		return "", err
	}
	problems, err := p.store.Problems(rec.ProblemIDs)
	if err != nil {
		return "", err
	}
	return report.ExamPreviewHTML(rec.Title, problems, p.templates), nil
}
