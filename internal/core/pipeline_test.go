package core

import (
	"path/filepath"
	"strings"
	"testing"

	"mineassess/internal/analysis"
	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
	"mineassess/internal/simulate"
)

// seedPipeline authors a 12-question exam over 3 concepts.
func seedPipeline(t *testing.T) (*Pipeline, string, []cognition.Concept) {
	t.Helper()
	p := New()
	concepts := cognition.NumberedConcepts(3)
	var ids []string
	levels := cognition.Levels()
	for i := 0; i < 12; i++ {
		prob, err := item.NewMultipleChoice(
			"q"+string(rune('a'+i)), "Question text", []string{"1", "2", "3", "4"}, i%4)
		if err != nil {
			t.Fatal(err)
		}
		prob.ConceptID = concepts[i%3].ID
		prob.Level = levels[i%4] // Knowledge..Analysis
		prob.Subject = "Demo"
		if err := p.Store().AddProblem(prob); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, prob.ID)
	}
	rec := &bank.ExamRecord{ID: "final", Title: "Final exam",
		ProblemIDs: ids, Display: item.FixedOrder, TestTimeSeconds: 3600}
	if err := p.Store().AddExam(rec); err != nil {
		t.Fatal(err)
	}
	return p, rec.ID, concepts
}

func classCfg(n int) SimulationConfig {
	return SimulationConfig{
		Class: simulate.PopulationConfig{N: n, Mean: 0, SD: 1, Seed: 17},
		Seed:  99,
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p, examID, concepts := seedPipeline(t)
	res, err := p.RunSimulated(examID, classCfg(44))
	if err != nil {
		t.Fatalf("RunSimulated: %v", err)
	}
	if len(res.Students) != 44 || len(res.Problems) != 12 {
		t.Fatalf("result shape %dx%d", len(res.Students), len(res.Problems))
	}
	a, err := p.Analyze(res, analysis.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.Groups.Size() != 11 {
		t.Errorf("group size = %d, want 11", a.Groups.Size())
	}
	out, err := p.Report(res, a, concepts)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	for _, want := range []string{"D=PH-PL", "Signal board", "Knowledge", "Paint distribution"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPipelineApplyMeasurements(t *testing.T) {
	p, examID, _ := seedPipeline(t)
	res, err := p.RunSimulated(examID, classCfg(60))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(res, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.ApplyMeasurements(a)
	if err != nil || n != 12 {
		t.Fatalf("ApplyMeasurements = %d, %v", n, err)
	}
	prob, err := p.Store().Problem("qa")
	if err != nil {
		t.Fatal(err)
	}
	if prob.Difficulty < 0 || prob.Discrimination == -1 {
		t.Errorf("measurements not applied: P=%v D=%v", prob.Difficulty, prob.Discrimination)
	}
	// A second simulated run now calibrates items to their measured P.
	res2, err := p.RunSimulated(examID, classCfg(44))
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineCoverage(t *testing.T) {
	p, examID, concepts := seedPipeline(t)
	table, err := p.Coverage(examID, concepts)
	if err != nil {
		t.Fatal(err)
	}
	if table.Total() != 12 {
		t.Errorf("coverage total = %d, want 12", table.Total())
	}
	rep := table.Analyze()
	if len(rep.LostConcepts) != 0 {
		t.Errorf("lost concepts = %v", rep.LostConcepts)
	}
}

func TestPipelineSCORMExport(t *testing.T) {
	p, examID, _ := seedPipeline(t)
	pkg, err := p.ExportSCORM(examID)
	if err != nil {
		t.Fatal(err)
	}
	if missing := pkg.MissingFiles(); len(missing) != 0 {
		t.Errorf("missing files: %v", missing)
	}
	if _, err := p.ExportSCORM("ghost"); err == nil {
		t.Error("unknown exam should fail")
	}
}

func TestPipelineQTIRoundTrip(t *testing.T) {
	p, examID, _ := seedPipeline(t)
	raw, err := p.ExportQTI(examID)
	if err != nil {
		t.Fatal(err)
	}
	p2 := New()
	ids, err := p2.ImportQTI(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 12 {
		t.Fatalf("imported = %d, want 12", len(ids))
	}
	prob, err := p2.Store().Problem("qa")
	if err != nil {
		t.Fatal(err)
	}
	if prob.Style != item.MultipleChoice || len(prob.Options) != 4 {
		t.Errorf("imported problem = %+v", prob)
	}
	// Importing again collides.
	if _, err := p2.ImportQTI(raw); err == nil {
		t.Error("duplicate import should fail")
	}
}

func TestPipelineSaveOpen(t *testing.T) {
	p, examID, _ := seedPipeline(t)
	path := filepath.Join(t.TempDir(), "bank.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Store().ProblemCount() != 12 {
		t.Errorf("reloaded problems = %d", p2.Store().ProblemCount())
	}
	if _, err := p2.Store().Exam(examID); err != nil {
		t.Errorf("reloaded exam: %v", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunSimulatedErrors(t *testing.T) {
	p, examID, _ := seedPipeline(t)
	if _, err := p.RunSimulated("ghost", classCfg(10)); err == nil {
		t.Error("unknown exam should fail")
	}
	bad := classCfg(0)
	if _, err := p.RunSimulated(examID, bad); err == nil {
		t.Error("empty class should fail")
	}
}

func TestTemplatesAccessor(t *testing.T) {
	p := New()
	if err := p.Templates().Add(item.Template{ID: "t1"}); err != nil {
		t.Fatal(err)
	}
	if p.Templates().Len() != 1 {
		t.Error("template registry not shared")
	}
}
