package report

import (
	"fmt"
	"strings"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/cognition"
	"mineassess/internal/stats"
)

// TimeCurve renders the §4.2.1(1) figure — elapsed time (cross axle) versus
// number of answered questions (vertical axle) — as an ASCII plot with
// `height` rows.
func TimeCurve(points []analysis.TimePoint, height int) string {
	if len(points) == 0 || height < 2 {
		return "(no time data)\n"
	}
	maxY := 0.0
	for _, p := range points {
		if p.Answered > maxY {
			maxY = p.Answered
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	var b strings.Builder
	b.WriteString("Answered questions over time\n")
	for row := height; row >= 1; row-- {
		threshold := maxY * float64(row) / float64(height)
		fmt.Fprintf(&b, "%6.1f |", threshold)
		for _, p := range points {
			if p.Answered >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%6s +%s\n", "", strings.Repeat("-", len(points)))
	fmt.Fprintf(&b, "%7s0 .. %s (elapsed)\n", "", points[len(points)-1].Elapsed.Round(time.Second))
	return b.String()
}

// TimeSufficiency renders the time summary under the curve.
func TimeSufficiency(ts analysis.TimeSufficiency) string {
	var b strings.Builder
	limit := "unlimited"
	if ts.TestTime > 0 {
		limit = ts.TestTime.Round(time.Second).String()
	}
	fmt.Fprintf(&b, "Test time: %s, average time: %s, completion rate: %.0f%%\n",
		limit, ts.AverageTime.Round(time.Second), ts.CompletionRate*100)
	if ts.Enough {
		b.WriteString("Verdict: the test time is enough\n")
	} else {
		b.WriteString("Verdict: the test time is NOT enough\n")
	}
	return b.String()
}

var _shadeRunes = [5]rune{'.', '1', '2', '3', '4'}

// ScoreDifficulty renders the §4.2.1(2) figure — test score (cross axle)
// versus degree of difficulty (vertical axle) — as a density grid. Rows run
// from hard (top) to easy (bottom); columns from low score (left) to high.
func ScoreDifficulty(g *analysis.ScoreDifficultyGrid) string {
	if g == nil {
		return "(no score/difficulty data)\n"
	}
	maxCount := 0
	for _, c := range g.Cells {
		if c.Count > maxCount {
			maxCount = c.Count
		}
	}
	var b strings.Builder
	b.WriteString("Score (→) versus difficulty (↑ hard to easy ↓ is easy)\n")
	for di := 0; di < g.DifficultyBuckets; di++ { // di=0 hardest row first
		fmt.Fprintf(&b, "P[%d] |", di)
		for si := 0; si < g.ScoreBuckets; si++ {
			n := g.Cell(si, di)
			shade := 0
			if maxCount > 0 && n > 0 {
				shade = 1 + 3*n/maxCount
				if shade > 4 {
					shade = 4
				}
			}
			b.WriteRune(_shadeRunes[shade])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", g.ScoreBuckets))
	b.WriteString("       low score  ->  high score\n")
	return b.String()
}

// ScoreHistogram renders a score distribution as a horizontal bar chart
// with `bins` buckets — the "summary of test results" view.
func ScoreHistogram(scores []float64, bins int) string {
	counts, width, err := stats.Histogram(scores, bins)
	if err != nil {
		return "(no score data)\n"
	}
	minV := scores[0]
	for _, v := range scores {
		if v < minV {
			minV = v
		}
	}
	var b strings.Builder
	b.WriteString("Score distribution\n")
	for i, n := range counts {
		lo := minV + float64(i)*width
		hi := lo + width
		fmt.Fprintf(&b, "[%6.1f, %6.1f) %-4d %s\n", lo, hi, n, strings.Repeat("#", n))
	}
	return b.String()
}

// ItemHistories renders the cross-administration aggregation table.
func ItemHistories(histories []analysis.ItemHistory) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-6s %-8s %-8s %-14s %s\n",
		"Item", "Runs", "MeanP", "MeanD", "D range", "Worst signal")
	for _, h := range histories {
		fmt.Fprintf(&b, "%-12s %-6d %-8.2f %-8.2f [%5.2f,%5.2f] %s\n",
			h.ProblemID, h.Administrations, h.MeanP, h.MeanD, h.MinD, h.MaxD, h.WorstSignal)
	}
	return b.String()
}

// TwoWayTable renders the paper's Table 4 with row and column sums.
func TwoWayTable(t *cognition.TwoWayTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "")
	for _, l := range cognition.Levels() {
		fmt.Fprintf(&b, "%-15s", l.String())
	}
	fmt.Fprintf(&b, "%s\n", "SUM")
	for _, c := range t.Concepts() {
		fmt.Fprintf(&b, "%-14s", c.Name)
		row, _ := t.Row(c.ID)
		for _, n := range row {
			fmt.Fprintf(&b, "%-15d", n)
		}
		fmt.Fprintf(&b, "%d\n", t.ConceptSum(c.ID))
	}
	fmt.Fprintf(&b, "%-14s", "SUM")
	for _, s := range t.LevelSums() {
		fmt.Fprintf(&b, "%-15d", s)
	}
	fmt.Fprintf(&b, "%d\n", t.Total())
	return b.String()
}

// PaintGrid renders the §4.2.3(3) two-dimensional paint of the two-way
// table: one shaded cell per (concept, level).
func PaintGrid(t *cognition.TwoWayTable) string {
	var b strings.Builder
	b.WriteString("Paint of concepts × cognition levels (darker = more questions)\n")
	fmt.Fprintf(&b, "%-14s", "")
	for _, l := range cognition.Levels() {
		fmt.Fprintf(&b, "%c ", l.Letter())
	}
	b.WriteByte('\n')
	grid := t.PaintGrid()
	for ri, c := range t.Concepts() {
		fmt.Fprintf(&b, "%-14s", c.Name)
		for _, shade := range grid[ri] {
			b.WriteRune(_shadeRunes[shade])
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Coverage renders the §4.2.3 analyses: lost concepts, the sum relation and
// the paint distribution.
func Coverage(rep cognition.CoverageReport) string {
	var b strings.Builder
	if len(rep.LostConcepts) == 0 {
		b.WriteString("Concept coverage: no concept lost\n")
	} else {
		fmt.Fprintf(&b, "Concept coverage: LOST %s\n", strings.Join(rep.LostConcepts, ", "))
	}
	if rep.SumRelationHolds {
		b.WriteString("Cognition sum relation: holds (SUM(A) >= ... >= SUM(F))\n")
	} else {
		b.WriteString("Cognition sum relation: VIOLATED\n")
		for _, v := range rep.SumRelationViolations {
			fmt.Fprintf(&b, "  SUM(%s)=%d < SUM(%s)=%d\n",
				v.Lower, v.LowerSum, v.Higher, v.HigherSum)
		}
	}
	b.WriteString("Paint distribution: ")
	for i, l := range cognition.Levels() {
		fmt.Fprintf(&b, "%c:%s(%.0f%%) ", l.Letter(),
			strings.Repeat("#", rep.Shades[i]), rep.Distribution[i]*100)
	}
	b.WriteByte('\n')
	return b.String()
}

// Sensitivity renders the Instructional Sensitivity report, ordered by the
// exam's problem list.
func Sensitivity(rep *analysis.SensitivityReport, problemOrder []string) string {
	var b strings.Builder
	b.WriteString("Instructional Sensitivity Index (post - pre)\n")
	for _, id := range problemOrder {
		if isi, ok := rep.Items[id]; ok {
			fmt.Fprintf(&b, "%-12s %+0.2f\n", id, isi)
		}
	}
	fmt.Fprintf(&b, "Mean P before: %.2f, after: %.2f, mean ISI: %+.2f\n",
		rep.PreMean, rep.PostMean, rep.MeanISI)
	return b.String()
}
