package report

import (
	"fmt"
	"strings"
	"testing"

	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// cognitionTestTable builds a small two-way table for paint rendering.
func cognitionTestTable(t *testing.T) *cognition.TwoWayTable {
	t.Helper()
	tab := cognition.NewTwoWayTable(cognition.NumberedConcepts(2))
	for i := 0; i < 6; i++ {
		if err := tab.Add(fmt.Sprintf("pq%d", i), "c1", cognition.Knowledge); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Add("pq9", "c2", cognition.Evaluation); err != nil {
		t.Fatal(err)
	}
	return tab
}

func previewProblem(t *testing.T) *item.Problem {
	t.Helper()
	p, err := item.NewMultipleChoice("q1", "What is <b> in HTML?",
		[]string{"bold", "break", "block"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Hint = "markup & tags"
	p.Pictures = []item.Picture{{Ref: "fig.gif", X: 30, Y: 2}}
	return p
}

func TestProblemPreviewHTMLPositions(t *testing.T) {
	p := previewProblem(t)
	tpl := item.DefaultTemplate(p)
	if !tpl.Move(item.ElementOption, "B", 10, 5) {
		t.Fatal("move failed")
	}
	out := ProblemPreviewHTML(p, tpl)
	// Escaping.
	if strings.Contains(out, "What is <b> in HTML?") {
		t.Error("question not escaped")
	}
	if !strings.Contains(out, "What is &lt;b&gt; in HTML?") {
		t.Error("escaped question missing")
	}
	if !strings.Contains(out, "markup &amp; tags") {
		t.Error("hint not escaped")
	}
	// Option B moved to (10,5): left = 80px, top = 120px.
	if !strings.Contains(out, "left:80px;top:120px") {
		t.Errorf("moved option position missing:\n%s", out)
	}
	// Picture preserves authored position (x*8, y*24).
	if !strings.Contains(out, "src=\"fig.gif\"") {
		t.Error("picture missing")
	}
	if !strings.Contains(out, "data-template=\"default\"") {
		t.Error("template attribution missing")
	}
}

func TestProblemPreviewHTMLDeterministic(t *testing.T) {
	p := previewProblem(t)
	tpl := item.DefaultTemplate(p)
	if ProblemPreviewHTML(p, tpl) != ProblemPreviewHTML(p, tpl) {
		t.Error("preview must be deterministic")
	}
}

func TestPaintGridRendering(t *testing.T) {
	tab := cognitionTestTable(t)
	out := PaintGrid(tab)
	if !strings.Contains(out, "A B C D E F") {
		t.Errorf("level header missing:\n%s", out)
	}
	if !strings.Contains(out, "Concept 1") {
		t.Errorf("concept rows missing:\n%s", out)
	}
	if !strings.Contains(out, "4") {
		t.Errorf("densest shade missing:\n%s", out)
	}
}

func TestProblemPreviewHTMLNonChoiceStyles(t *testing.T) {
	comp := &item.Problem{ID: "c1", Style: item.Completion,
		Question: "Fill ____ and ____", Blanks: [][]string{{"a"}, {"b"}},
		Level: cognition.Knowledge}
	out := ProblemPreviewHTML(comp, item.DefaultTemplate(comp))
	if !strings.Contains(out, "name=\"blank1\"") || !strings.Contains(out, "name=\"blank2\"") {
		t.Errorf("completion blanks missing:\n%s", out)
	}

	match := &item.Problem{ID: "m1", Style: item.Match, Question: "pair",
		Pairs: []item.MatchPair{{Left: "x<y", Right: "1"}, {Left: "b", Right: "2"}},
		Level: cognition.Comprehension}
	out = ProblemPreviewHTML(match, item.DefaultTemplate(match))
	if !strings.Contains(out, "class=\"match\"") {
		t.Errorf("match table missing:\n%s", out)
	}
	if strings.Contains(out, "<td>x<y</td>") {
		t.Error("match left side not escaped")
	}

	essay := &item.Problem{ID: "e1", Style: item.Essay, Question: "Discuss",
		Level: cognition.Evaluation}
	out = ProblemPreviewHTML(essay, item.DefaultTemplate(essay))
	if !strings.Contains(out, "<textarea") {
		t.Errorf("essay textarea missing:\n%s", out)
	}
}

func TestSignalBoardHTML(t *testing.T) {
	a := workedAnalysis()
	out := SignalBoardHTML(a)
	if !strings.Contains(out, "#2e7d32") {
		t.Error("green light missing")
	}
	if !strings.Contains(out, "#c62828") {
		t.Error("red light missing")
	}
	if !strings.Contains(out, "Eliminate or fix") {
		t.Error("advice missing")
	}
	if !strings.Contains(out, "<table") || !strings.Contains(out, "class 44") {
		t.Errorf("structure missing:\n%s", out)
	}
}

func TestExamPreviewHTML(t *testing.T) {
	p1 := previewProblem(t)
	p2, err := item.NewMultipleChoice("q2", "Second?", []string{"x", "y"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2.TemplateID = "wide"
	reg := item.NewTemplateRegistry()
	if err := reg.Add(item.Template{ID: "wide", Elements: []item.Element{
		{Kind: item.ElementQuestion, X: 0, Y: 0},
		{Kind: item.ElementOption, X: 40, Y: 0, Ref: "A"},
		{Kind: item.ElementOption, X: 60, Y: 0, Ref: "B"},
	}}); err != nil {
		t.Fatal(err)
	}
	out := ExamPreviewHTML("Demo exam", []*item.Problem{p1, p2}, reg)
	if strings.Count(out, "<section") != 2 {
		t.Errorf("sections = %d, want 2", strings.Count(out, "<section"))
	}
	if !strings.Contains(out, "data-template=\"wide\"") {
		t.Error("registered template not used")
	}
	if !strings.Contains(out, "Question 2") {
		t.Error("numbering missing")
	}
	// Wide template puts option B at x=60 → left:480px.
	if !strings.Contains(out, "left:480px") {
		t.Errorf("wide layout position missing:\n%s", out)
	}
	// No registry: falls back to default layout without error.
	fallback := ExamPreviewHTML("Demo", []*item.Problem{p2}, nil)
	if !strings.Contains(fallback, "data-template=\"default\"") {
		t.Error("fallback to default template missing")
	}
}
