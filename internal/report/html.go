package report

import (
	"fmt"
	"html"
	"strings"

	"mineassess/internal/analysis"
	"mineassess/internal/item"
)

// The HTML renderers substitute the paper's GUI screens (Figures 3-5): the
// problem authoring preview with positioned template elements, and the
// signal-board page an instructor would see. Output is deterministic,
// self-contained HTML with no external assets.

// ProblemPreviewHTML renders a problem laid out by a template, positioning
// each element absolutely at its authored (x, y) grid cell — the §5.3
// "edited problem presentation style" preview. Grid cells are 24px tall and
// 8px wide per x unit.
func ProblemPreviewHTML(p *item.Problem, tpl item.Template) string {
	const (
		cellW = 8
		cellH = 24
	)
	optionText := make(map[string]string, len(p.Options))
	for _, o := range p.Options {
		optionText[o.Key] = o.Text
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>")
	b.WriteString(html.EscapeString(p.ID))
	b.WriteString(" preview</title></head>\n<body>\n")
	fmt.Fprintf(&b, "<div class=\"problem\" data-problem=%q data-template=%q style=\"position:relative\">\n",
		p.ID, tpl.ID)
	for _, e := range tpl.Elements {
		style := fmt.Sprintf("position:absolute;left:%dpx;top:%dpx", e.X*cellW, e.Y*cellH)
		switch e.Kind {
		case item.ElementQuestion:
			fmt.Fprintf(&b, "  <p class=\"question\" style=%q>%s</p>\n",
				style, html.EscapeString(p.Question))
		case item.ElementOption:
			label := optionText[e.Ref]
			fmt.Fprintf(&b, "  <label class=\"option\" style=%q><input type=\"radio\" name=\"answer\" value=%q/> %s. %s</label>\n",
				style, e.Ref, e.Ref, html.EscapeString(label))
		case item.ElementPicture:
			fmt.Fprintf(&b, "  <img class=\"picture\" src=%q style=%q/>\n", e.Ref, style)
		case item.ElementHint:
			fmt.Fprintf(&b, "  <p class=\"hint\" style=%q>Hint: %s</p>\n",
				style, html.EscapeString(p.Hint))
		}
	}
	// Styles without positioned option elements render their inputs in a
	// flow block under the question.
	switch p.Style {
	case item.Completion:
		b.WriteString("  <div class=\"blanks\">\n")
		for i := range p.Blanks {
			fmt.Fprintf(&b, "    <input type=\"text\" name=\"blank%d\"/>\n", i+1)
		}
		b.WriteString("  </div>\n")
	case item.Match:
		b.WriteString("  <table class=\"match\">\n")
		for _, pair := range p.Pairs {
			fmt.Fprintf(&b, "    <tr><td>%s</td><td><input type=\"text\" name=%q/></td></tr>\n",
				html.EscapeString(pair.Left), "match_"+pair.Left)
		}
		b.WriteString("  </table>\n")
	case item.Essay, item.Questionnaire:
		b.WriteString("  <textarea name=\"answer\" rows=\"6\" cols=\"60\"></textarea>\n")
	}
	b.WriteString("</div>\n</body></html>\n")
	return b.String()
}

var _signalColors = map[analysis.Signal]string{
	analysis.SignalGreen:  "#2e7d32",
	analysis.SignalYellow: "#f9a825",
	analysis.SignalRed:    "#c62828",
}

// SignalBoardHTML renders the Figure 2 signal interface as an HTML page:
// one row per question with a coloured light, indices and advice.
func SignalBoardHTML(a *analysis.ExamAnalysis) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>Signal board</title></head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>Signal board — exam %s</h1>\n", html.EscapeString(a.ExamID))
	fmt.Fprintf(&b, "<p>class %d, upper/lower groups of %d (%.0f%%)</p>\n",
		a.Groups.ClassSize, a.Groups.Size(), a.Groups.Fraction*100)
	b.WriteString("<table border=\"1\" cellpadding=\"4\">\n")
	b.WriteString("  <tr><th>No</th><th>Light</th><th>D</th><th>P</th><th>Advice</th><th>Statuses</th></tr>\n")
	for _, q := range a.Questions {
		color := _signalColors[q.Signal]
		var statuses []string
		for _, st := range q.Statuses {
			statuses = append(statuses, html.EscapeString(st.String()))
		}
		statusCell := strings.Join(statuses, "; ")
		if statusCell == "" {
			statusCell = "&mdash;"
		}
		fmt.Fprintf(&b, "  <tr><td>%d</td><td><span class=\"light\" style=\"color:%s\">&#9679;</span> %s</td><td>%.2f</td><td>%.2f</td><td>%s</td><td>%s</td></tr>\n",
			q.Number, color, q.Signal, q.D, q.P, html.EscapeString(q.Signal.Advice()), statusCell)
	}
	b.WriteString("</table>\n</body></html>\n")
	return b.String()
}

// ExamPreviewHTML renders a whole exam in presentation order — the §5.4
// exam-authoring preview. Each problem uses its registered template when
// available, falling back to the default layout.
func ExamPreviewHTML(title string, problems []*item.Problem, templates *item.TemplateRegistry) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/><title>")
	b.WriteString(html.EscapeString(title))
	b.WriteString("</title></head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	for i, p := range problems {
		tpl := item.DefaultTemplate(p)
		if templates != nil && p.TemplateID != "" {
			if got, err := templates.Get(p.TemplateID); err == nil {
				tpl = got
			}
		}
		fmt.Fprintf(&b, "<section class=\"q\" data-number=\"%d\" style=\"position:relative;min-height:%dpx\">\n",
			i+1, (len(tpl.Elements)+2)*24)
		fmt.Fprintf(&b, "<h2>Question %d</h2>\n", i+1)
		inner := ProblemPreviewHTML(p, tpl)
		// Strip the page chrome, keeping only the positioned problem div.
		start := strings.Index(inner, "<div class=\"problem\"")
		end := strings.LastIndex(inner, "</div>")
		if start >= 0 && end > start {
			b.WriteString(inner[start : end+len("</div>")])
			b.WriteByte('\n')
		}
		b.WriteString("</section>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}
