// Package report renders the paper's tables and figures as deterministic
// plain text: the §4.1.1 number-representation table, the Table 1 option
// table, the Figure 2 signal board, the Table 4 two-way specification table,
// and ASCII versions of the §4.2.1 figures. All renderers are pure functions
// of their inputs so golden tests and diffs stay stable.
package report

import (
	"fmt"
	"strings"

	"mineassess/internal/analysis"
)

// NumberTable renders the §4.1.1 number representation:
//
//	No  PH  PL  D=PH-PL  P=(PH+PL)/2
func NumberTable(a *analysis.ExamAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-6s %-9s %-12s\n", "No", "PH", "PL", "D=PH-PL", "P=(PH+PL)/2")
	for _, q := range a.Questions {
		fmt.Fprintf(&b, "%-4d %-6.2f %-6.2f %-9.2f %-12.3f\n", q.Number, q.PH, q.PL, q.D, q.P)
	}
	return b.String()
}

// OptionTable renders the Table 1 problem-attribute table for one question.
func OptionTable(t *analysis.OptionTable) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "")
	for _, k := range t.Keys {
		label := "Option " + k
		if k == t.CorrectKey {
			label += "*"
		}
		fmt.Fprintf(&b, "%-10s", label)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "High Score Group")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%-10d", t.High[k])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-18s", "Low Score Group")
	for _, k := range t.Keys {
		fmt.Fprintf(&b, "%-10d", t.Low[k])
	}
	b.WriteByte('\n')
	return b.String()
}

// signalGlyph maps a signal to its board glyph.
func signalGlyph(s analysis.Signal) string {
	switch s {
	case analysis.SignalGreen:
		return "G"
	case analysis.SignalYellow:
		return "Y"
	case analysis.SignalRed:
		return "R"
	default:
		return "?"
	}
}

// SignalBoard renders the Figure 2 "signal represent interface for whole
// test": one row per question with its light, indices, matched rules and
// advice.
func SignalBoard(a *analysis.ExamAnalysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Signal board for exam %s (class %d, groups of %d at %.0f%%)\n",
		a.ExamID, a.Groups.ClassSize, a.Groups.Size(), a.Groups.Fraction*100)
	fmt.Fprintf(&b, "%-4s %-6s %-6s %-6s %-7s %-20s %s\n",
		"No", "Light", "D", "P", "Rules", "Advice", "Statuses")
	for _, q := range a.Questions {
		rules := make([]string, 0, 4)
		for _, r := range q.MatchedRules() {
			rules = append(rules, strings.TrimPrefix(r.String(), "Rule"))
		}
		ruleCol := "-"
		if len(rules) > 0 {
			ruleCol = strings.Join(rules, ",")
		}
		statuses := make([]string, 0, len(q.Statuses))
		for _, st := range q.Statuses {
			statuses = append(statuses, st.String())
		}
		statusCol := "-"
		if len(statuses) > 0 {
			statusCol = strings.Join(statuses, "; ")
		}
		fmt.Fprintf(&b, "%-4d [%s]    %-6.2f %-6.2f %-7s %-20s %s\n",
			q.Number, signalGlyph(q.Signal), q.D, q.P, ruleCol, q.Signal.Advice(), statusCol)
	}
	counts := a.CountBySignal()
	fmt.Fprintf(&b, "Summary: %d green, %d yellow, %d red of %d questions\n",
		counts[analysis.SignalGreen], counts[analysis.SignalYellow],
		counts[analysis.SignalRed], len(a.Questions))
	return b.String()
}

// Questionnaires renders the §3.2 VI questionnaire frequency summaries.
func Questionnaires(sums []analysis.QuestionnaireSummary) string {
	if len(sums) == 0 {
		return "(no questionnaire items)\n"
	}
	var b strings.Builder
	for _, q := range sums {
		fmt.Fprintf(&b, "Questionnaire %s: %d/%d responded (%.0f%%)\n",
			q.ProblemID, q.Answered, q.Total, q.ResponseRate()*100)
		for _, rc := range q.Counts {
			bar := strings.Repeat("#", rc.Count)
			fmt.Fprintf(&b, "  %-12s %-4d %s\n", rc.Response, rc.Count, bar)
		}
	}
	return b.String()
}

// Distractors renders the distractor profile of one question.
func Distractors(q *analysis.QuestionReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Distraction for question %d (%s)\n", q.Number, q.ProblemID)
	fmt.Fprintf(&b, "%-8s %-6s %-6s %-8s %-12s %s\n",
		"Option", "High", "Low", "Power", "Functioning", "Inverted")
	for _, d := range q.Distractors {
		fmt.Fprintf(&b, "%-8s %-6d %-6d %-8.2f %-12v %v\n",
			d.Key, d.HighCount, d.LowCount, d.Power, d.Functioning, d.Inverted)
	}
	return b.String()
}
