package report

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// workedAnalysis reproduces the paper's two worked questions via FromCounts
// and wraps them into an ExamAnalysis for rendering.
func workedAnalysis() *analysis.ExamAnalysis {
	q2 := analysis.FromCounts("no2", "C", []string{"A", "B", "C", "D"},
		map[string]int{"A": 0, "B": 0, "C": 10, "D": 1},
		map[string]int{"A": 3, "B": 2, "C": 4, "D": 2}, 11, 11)
	q6 := analysis.FromCounts("no6", "D", []string{"A", "B", "C", "D"},
		map[string]int{"A": 1, "B": 1, "C": 4, "D": 5},
		map[string]int{"A": 0, "B": 2, "C": 4, "D": 4}, 11, 11)
	a := &analysis.ExamAnalysis{
		ExamID: "paper",
		Groups: analysis.Groups{
			High: make([]string, 11), Low: make([]string, 11),
			Fraction: 0.25, ClassSize: 44,
		},
	}
	for i, tab := range []*analysis.OptionTable{q2, q6} {
		rules := analysis.EvaluateRules(tab)
		a.Questions = append(a.Questions, &analysis.QuestionReport{
			Number:      i + 1,
			ProblemID:   tab.ProblemID,
			PH:          tab.PH(),
			PL:          tab.PL(),
			D:           tab.Discrimination(),
			P:           tab.Difficulty(),
			Table:       tab,
			Rules:       rules,
			Statuses:    analysis.StatusesFor(rules),
			Signal:      analysis.EvaluateSignal(tab.Discrimination(), rules),
			Distractors: analysis.AnalyzeDistraction(tab),
		})
	}
	return a
}

func TestNumberTableContents(t *testing.T) {
	out := NumberTable(workedAnalysis())
	if !strings.Contains(out, "D=PH-PL") || !strings.Contains(out, "P=(PH+PL)/2") {
		t.Errorf("header missing paper formulas:\n%s", out)
	}
	// q2 row: PH 0.91, PL 0.36, D 0.55, P 0.635.
	if !strings.Contains(out, "0.91") || !strings.Contains(out, "0.55") || !strings.Contains(out, "0.63") {
		t.Errorf("worked values missing:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 questions
		t.Errorf("lines = %d, want 3:\n%s", lines, out)
	}
}

func TestOptionTableMarksCorrect(t *testing.T) {
	a := workedAnalysis()
	out := OptionTable(a.Questions[0].Table)
	if !strings.Contains(out, "Option C*") {
		t.Errorf("correct option not starred:\n%s", out)
	}
	if !strings.Contains(out, "High Score Group") || !strings.Contains(out, "Low Score Group") {
		t.Errorf("group rows missing:\n%s", out)
	}
}

func TestSignalBoardGlyphs(t *testing.T) {
	out := SignalBoard(workedAnalysis())
	if !strings.Contains(out, "[G]") {
		t.Errorf("green glyph for q2 missing:\n%s", out)
	}
	if !strings.Contains(out, "[R]") {
		t.Errorf("red glyph for q6 missing:\n%s", out)
	}
	if !strings.Contains(out, "1 green, 0 yellow, 1 red of 2 questions") {
		t.Errorf("summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "Eliminate or fix") {
		t.Errorf("advice column missing:\n%s", out)
	}
}

func TestSignalBoardDeterministic(t *testing.T) {
	a := workedAnalysis()
	if SignalBoard(a) != SignalBoard(a) {
		t.Error("SignalBoard must be deterministic")
	}
}

func TestDistractorsRendering(t *testing.T) {
	a := workedAnalysis()
	out := Distractors(a.Questions[1]) // q6: option A non-functioning
	if !strings.Contains(out, "false") {
		t.Errorf("non-functioning distractor missing:\n%s", out)
	}
	if !strings.Contains(out, "Option") || !strings.Contains(out, "Power") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestTimeCurveRendering(t *testing.T) {
	pts := []analysis.TimePoint{
		{Elapsed: time.Minute, Answered: 1},
		{Elapsed: 2 * time.Minute, Answered: 2.5},
		{Elapsed: 3 * time.Minute, Answered: 4},
	}
	out := TimeCurve(pts, 4)
	if !strings.Contains(out, "#") {
		t.Errorf("plot empty:\n%s", out)
	}
	if !strings.Contains(out, "3m0s") {
		t.Errorf("horizon missing:\n%s", out)
	}
	if got := TimeCurve(nil, 4); !strings.Contains(got, "no time data") {
		t.Errorf("nil points = %q", got)
	}
}

func TestTimeSufficiencyRendering(t *testing.T) {
	out := TimeSufficiency(analysis.TimeSufficiency{
		TestTime: 10 * time.Minute, AverageTime: 7 * time.Minute,
		CompletionRate: 0.97, Enough: true,
	})
	if !strings.Contains(out, "10m0s") || !strings.Contains(out, "97%") {
		t.Errorf("summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "is enough") {
		t.Errorf("verdict wrong:\n%s", out)
	}
	out = TimeSufficiency(analysis.TimeSufficiency{CompletionRate: 0.5})
	if !strings.Contains(out, "unlimited") || !strings.Contains(out, "NOT enough") {
		t.Errorf("unlimited/NOT verdict wrong:\n%s", out)
	}
}

func TestScoreDifficultyRendering(t *testing.T) {
	g := &analysis.ScoreDifficultyGrid{ScoreBuckets: 3, DifficultyBuckets: 2}
	g.Cells = []analysis.ScoreDifficultyCell{
		{ScoreBucket: 0, DifficultyBucket: 0, Count: 0},
		{ScoreBucket: 0, DifficultyBucket: 1, Count: 5},
		{ScoreBucket: 1, DifficultyBucket: 0, Count: 2},
		{ScoreBucket: 1, DifficultyBucket: 1, Count: 5},
		{ScoreBucket: 2, DifficultyBucket: 0, Count: 5},
		{ScoreBucket: 2, DifficultyBucket: 1, Count: 5},
	}
	out := ScoreDifficulty(g)
	if !strings.Contains(out, ".") || !strings.Contains(out, "4") {
		t.Errorf("density glyphs missing:\n%s", out)
	}
	if got := ScoreDifficulty(nil); !strings.Contains(got, "no score/difficulty data") {
		t.Errorf("nil grid = %q", got)
	}
}

func TestTwoWayTableRendering(t *testing.T) {
	tab := cognition.NewTwoWayTable(cognition.NumberedConcepts(2))
	for i := 0; i < 3; i++ {
		if err := tab.Add(fmt.Sprintf("q%d", i), "c1", cognition.Knowledge); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Add("q9", "c2", cognition.Evaluation); err != nil {
		t.Fatal(err)
	}
	out := TwoWayTable(tab)
	if !strings.Contains(out, "Knowledge") || !strings.Contains(out, "Evaluation") {
		t.Errorf("level headers missing:\n%s", out)
	}
	if !strings.Contains(out, "Concept 1") {
		t.Errorf("concept rows missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "SUM") || !strings.HasSuffix(last, "4") {
		t.Errorf("sum row wrong: %q", last)
	}
}

func TestCoverageRendering(t *testing.T) {
	tab := cognition.NewTwoWayTable(cognition.NumberedConcepts(2))
	if err := tab.Add("q1", "c1", cognition.Knowledge); err != nil {
		t.Fatal(err)
	}
	out := Coverage(tab.Analyze())
	if !strings.Contains(out, "LOST c2") {
		t.Errorf("lost concept missing:\n%s", out)
	}
	if !strings.Contains(out, "holds") {
		t.Errorf("sum relation line missing:\n%s", out)
	}
	if !strings.Contains(out, "A:####") {
		t.Errorf("paint shading missing:\n%s", out)
	}
}

func TestCoverageViolationRendering(t *testing.T) {
	tab := cognition.NewTwoWayTable(cognition.NumberedConcepts(1))
	if err := tab.Add("q1", "c1", cognition.Evaluation); err != nil {
		t.Fatal(err)
	}
	out := Coverage(tab.Analyze())
	if !strings.Contains(out, "VIOLATED") {
		t.Errorf("violation missing:\n%s", out)
	}
}

func TestSensitivityRendering(t *testing.T) {
	rep := &analysis.SensitivityReport{
		Items:    map[string]float64{"p1": 0.5, "p2": -0.1},
		PreMean:  0.3,
		PostMean: 0.5,
		MeanISI:  0.2,
	}
	out := Sensitivity(rep, []string{"p1", "p2"})
	if !strings.Contains(out, "+0.50") || !strings.Contains(out, "-0.10") {
		t.Errorf("per-item ISI missing:\n%s", out)
	}
	if !strings.Contains(out, "mean ISI: +0.20") {
		t.Errorf("mean line wrong:\n%s", out)
	}
}

func TestScoreHistogramRendering(t *testing.T) {
	scores := []float64{1, 2, 2, 3, 3, 3, 9}
	out := ScoreHistogram(scores, 4)
	if !strings.Contains(out, "Score distribution") || !strings.Contains(out, "###") {
		t.Errorf("histogram wrong:\n%s", out)
	}
	if got := ScoreHistogram(nil, 4); !strings.Contains(got, "no score data") {
		t.Errorf("empty = %q", got)
	}
}

func TestItemHistoriesRendering(t *testing.T) {
	out := ItemHistories([]analysis.ItemHistory{{
		ProblemID: "q1", Administrations: 3,
		MeanP: 0.55, MeanD: 0.31, MinD: 0.2, MaxD: 0.4,
		WorstSignal: analysis.SignalYellow,
	}})
	if !strings.Contains(out, "q1") || !strings.Contains(out, "Yellow") {
		t.Errorf("history table wrong:\n%s", out)
	}
	if !strings.Contains(out, "[ 0.20, 0.40]") {
		t.Errorf("D range missing:\n%s", out)
	}
}

func TestQuestionnairesRendering(t *testing.T) {
	sums := []analysis.QuestionnaireSummary{{
		ProblemID: "s1", Total: 5, Answered: 4,
		Counts: []analysis.ResponseCount{
			{Response: "5", Count: 3},
			{Response: "4", Count: 1},
		},
	}}
	out := Questionnaires(sums)
	if !strings.Contains(out, "4/5 responded (80%)") {
		t.Errorf("response rate missing:\n%s", out)
	}
	if !strings.Contains(out, "###") {
		t.Errorf("frequency bar missing:\n%s", out)
	}
	if got := Questionnaires(nil); !strings.Contains(got, "no questionnaire items") {
		t.Errorf("empty = %q", got)
	}
}

// Golden-style check: rendering the full worked analysis end-to-end stays
// stable across runs and matches the paper's key numbers.
func TestWorkedBoardGolden(t *testing.T) {
	a := workedAnalysis()
	out := NumberTable(a) + SignalBoard(a)
	for _, want := range []string{"0.91", "0.36", "0.55", "0.63", "0.09", "[G]", "[R]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Compile-time guard that report depends only on analysis/cognition/item
// data types (item used indirectly through analysis).
var _ = item.MultipleChoice
