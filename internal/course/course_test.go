package course

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func sampleCourse() *Course {
	return &Course{
		ID:    "crs1",
		Title: "Assessment 101",
		AUs:   []AU{{ID: "intro", Title: "Introduction", ResourceRef: "RES-intro"}},
		Blocks: []Block{{
			ID: "unit1", Title: "Unit 1",
			AUs: []AU{
				{ID: "lesson1", Title: "Lesson 1", ResourceRef: "RES-l1"},
				{ID: "quiz1", Title: "Quiz 1", ResourceRef: "RES-q1"},
			},
			Blocks: []Block{{
				ID: "unit1sub", Title: "Deep dive",
				AUs: []AU{{ID: "lesson2", Title: "Lesson 2", ResourceRef: "RES-l2"}},
			}},
		}},
	}
}

func TestValidateGood(t *testing.T) {
	if err := sampleCourse().Validate(); err != nil {
		t.Errorf("valid course rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	c := sampleCourse()
	c.ID = " "
	if err := c.Validate(); !errors.Is(err, ErrEmptyCourseID) {
		t.Errorf("err = %v, want ErrEmptyCourseID", err)
	}

	c = sampleCourse()
	c.AUs[0].ID = ""
	if err := c.Validate(); !errors.Is(err, ErrEmptyAUID) {
		t.Errorf("err = %v, want ErrEmptyAUID", err)
	}

	c = sampleCourse()
	c.Blocks[0].ID = ""
	if err := c.Validate(); !errors.Is(err, ErrEmptyBlockID) {
		t.Errorf("err = %v, want ErrEmptyBlockID", err)
	}

	c = sampleCourse()
	c.Blocks[0].AUs[0].ID = "intro" // duplicate
	if err := c.Validate(); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("err = %v, want ErrDuplicateID", err)
	}

	empty := &Course{ID: "c", Title: "empty"}
	if err := empty.Validate(); !errors.Is(err, ErrNoContent) {
		t.Errorf("err = %v, want ErrNoContent", err)
	}
}

func TestValidateDepthBound(t *testing.T) {
	c := &Course{ID: "deep", Title: "deep"}
	// Build nesting beyond MaxDepth.
	inner := Block{ID: "b-leaf", AUs: []AU{{ID: "au", ResourceRef: "R"}}}
	for i := 0; i < MaxDepth+1; i++ {
		inner = Block{ID: "b" + strings.Repeat("x", i+1), Blocks: []Block{inner}}
	}
	c.Blocks = []Block{inner}
	if err := c.Validate(); !errors.Is(err, ErrTooDeep) {
		t.Errorf("err = %v, want ErrTooDeep", err)
	}
}

func TestAUCountAndWalk(t *testing.T) {
	c := sampleCourse()
	if got := c.AUCount(); got != 4 {
		t.Errorf("AUCount = %d, want 4", got)
	}
	var visited []string
	c.WalkAUs(func(path []string, au AU) {
		visited = append(visited, strings.Join(path, "/")+":"+au.ID)
	})
	want := []string{
		"crs1:intro",
		"crs1/unit1:lesson1",
		"crs1/unit1:quiz1",
		"crs1/unit1/unit1sub:lesson2",
	}
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("walk = %v, want %v", visited, want)
	}
}

func TestToOrganizationAndBack(t *testing.T) {
	c := sampleCourse()
	org, err := c.ToOrganization()
	if err != nil {
		t.Fatal(err)
	}
	if org.Identifier != "ORG-crs1" || org.Title != "Assessment 101" {
		t.Errorf("org header = %q %q", org.Identifier, org.Title)
	}
	// intro AU first, then the unit1 block.
	if len(org.Items) != 2 {
		t.Fatalf("items = %d", len(org.Items))
	}
	if org.Items[0].IdentifierRef != "RES-intro" {
		t.Errorf("first item ref = %q", org.Items[0].IdentifierRef)
	}
	if org.Items[1].Title != "Unit 1" || org.Items[1].IdentifierRef != "" {
		t.Errorf("block item = %+v", org.Items[1])
	}
	// Round trip.
	back := FromOrganization(org)
	if back.ID != "crs1" || back.AUCount() != 4 {
		t.Errorf("round trip = %s with %d AUs", back.ID, back.AUCount())
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped course invalid: %v", err)
	}
	if len(back.Blocks) != 1 || len(back.Blocks[0].Blocks) != 1 {
		t.Errorf("nesting lost: %+v", back.Blocks)
	}
	if back.Blocks[0].Blocks[0].AUs[0].ID != "lesson2" {
		t.Errorf("deep AU lost: %+v", back.Blocks[0].Blocks[0])
	}
}

func TestToOrganizationInvalidCourse(t *testing.T) {
	if _, err := (&Course{}).ToOrganization(); err == nil {
		t.Error("invalid course should not convert")
	}
}
