package course

import (
	"fmt"

	"mineassess/internal/bank"
)

// FromExamRecord derives a course hierarchy from an authored exam: the
// exam's §5.4 presentation groups become blocks, ungrouped problems become
// top-level AUs. Resource references follow scorm.BuildPackage's naming
// (RES-<examID>-NNN by position in the exam), so the course's organization
// can replace or sit beside the package's flat one.
func FromExamRecord(rec *bank.ExamRecord) (*Course, error) {
	if rec == nil || len(rec.ProblemIDs) == 0 {
		return nil, fmt.Errorf("course: empty exam record")
	}
	position := make(map[string]int, len(rec.ProblemIDs))
	for i, pid := range rec.ProblemIDs {
		position[pid] = i + 1
	}
	resourceRef := func(pid string) string {
		return fmt.Sprintf("RES-%s-%03d", rec.ID, position[pid])
	}
	grouped := make(map[string]bool)
	c := &Course{ID: rec.ID, Title: rec.Title}
	for _, g := range rec.Groups {
		block := Block{ID: rec.ID + "-" + g.Name, Title: g.Name}
		for _, pid := range g.ProblemIDs {
			if _, ok := position[pid]; !ok {
				return nil, fmt.Errorf("course: group %q references %q not in exam", g.Name, pid)
			}
			grouped[pid] = true
			block.AUs = append(block.AUs, AU{
				ID:          pid,
				Title:       fmt.Sprintf("Question %d", position[pid]),
				ResourceRef: resourceRef(pid),
			})
		}
		c.Blocks = append(c.Blocks, block)
	}
	for _, pid := range rec.ProblemIDs {
		if grouped[pid] {
			continue
		}
		c.AUs = append(c.AUs, AU{
			ID:          pid,
			Title:       fmt.Sprintf("Question %d", position[pid]),
			ResourceRef: resourceRef(pid),
		})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
