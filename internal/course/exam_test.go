package course

import (
	"testing"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
	"mineassess/internal/scorm"
)

func examRecordFixture() *bank.ExamRecord {
	return &bank.ExamRecord{
		ID:         "mid",
		Title:      "Midterm",
		ProblemIDs: []string{"qa", "qb", "qc", "qd"},
		Display:    item.FixedOrder,
		Groups: []bank.ExamGroup{
			{Name: "PartA", ProblemIDs: []string{"qa", "qb"}},
		},
	}
}

func TestFromExamRecord(t *testing.T) {
	c, err := FromExamRecord(examRecordFixture())
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "mid" || c.AUCount() != 4 {
		t.Fatalf("course = %s with %d AUs", c.ID, c.AUCount())
	}
	if len(c.Blocks) != 1 || c.Blocks[0].Title != "PartA" || len(c.Blocks[0].AUs) != 2 {
		t.Errorf("blocks = %+v", c.Blocks)
	}
	// Ungrouped problems become top-level AUs in exam order.
	if len(c.AUs) != 2 || c.AUs[0].ID != "qc" || c.AUs[1].ID != "qd" {
		t.Errorf("top AUs = %+v", c.AUs)
	}
	// Resource refs follow the package naming by exam position.
	if got := c.Blocks[0].AUs[0].ResourceRef; got != "RES-mid-001" {
		t.Errorf("qa ref = %q", got)
	}
	if got := c.AUs[0].ResourceRef; got != "RES-mid-003" {
		t.Errorf("qc ref = %q", got)
	}
}

func TestFromExamRecordErrors(t *testing.T) {
	if _, err := FromExamRecord(nil); err == nil {
		t.Error("nil record should fail")
	}
	rec := examRecordFixture()
	rec.Groups[0].ProblemIDs = append(rec.Groups[0].ProblemIDs, "ghost")
	if _, err := FromExamRecord(rec); err == nil {
		t.Error("dangling group reference should fail")
	}
}

// TestCourseMatchesPackageResources proves the derived course's resource
// references all resolve inside the exam's SCORM package.
func TestCourseMatchesPackageResources(t *testing.T) {
	rec := examRecordFixture()
	var problems []*item.Problem
	for _, pid := range rec.ProblemIDs {
		p, err := item.NewMultipleChoice(pid, "?", []string{"1", "2"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.Level = cognition.Knowledge
		problems = append(problems, p)
	}
	pkg, err := scorm.BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	resources := make(map[string]bool)
	for _, r := range pkg.Manifest.Resources.Resources {
		resources[r.Identifier] = true
	}
	c, err := FromExamRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	c.WalkAUs(func(_ []string, au AU) {
		if !resources[au.ResourceRef] {
			t.Errorf("AU %s references %s, not in package", au.ID, au.ResourceRef)
		}
	})
	// The course's organization validates inside the package manifest
	// (renamed so it does not collide with the package's own flat
	// organization for the same exam).
	c.ID = rec.ID + "-structured"
	org, err := c.ToOrganization()
	if err != nil {
		t.Fatal(err)
	}
	man := *pkg.Manifest
	man.Organizations.Organizations = append(man.Organizations.Organizations, org)
	man.Organizations.Default = org.Identifier
	if err := man.Validate(); err != nil {
		t.Errorf("manifest with course organization invalid: %v", err)
	}
}
