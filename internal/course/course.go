// Package course models course hierarchy and structure (§2.2): the AICC
// view of a course as nested blocks containing assignable units (AUs), the
// predecessor of SCORM's organization/item tree ("the previous idea is
// content-block-sco"). The package validates structures and converts them
// into SCORM organizations so authored assessments slot into a course.
package course

import (
	"errors"
	"fmt"
	"strings"

	"mineassess/internal/scorm"
)

// AU is an assignable unit: the launchable leaf of the AICC structure (a
// lesson, or here an exam or problem page).
type AU struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// ResourceRef names the SCORM resource the AU launches.
	ResourceRef string `json:"resourceRef"`
}

// Block is a structural grouping of AUs and nested blocks.
type Block struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Blocks []Block `json:"blocks,omitempty"`
	AUs    []AU    `json:"aus,omitempty"`
}

// Course is the root of the hierarchy.
type Course struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Blocks []Block `json:"blocks,omitempty"`
	AUs    []AU    `json:"aus,omitempty"`
}

// Validation errors.
var (
	ErrEmptyCourseID = errors.New("course: course ID must not be empty")
	ErrEmptyAUID     = errors.New("course: AU ID must not be empty")
	ErrEmptyBlockID  = errors.New("course: block ID must not be empty")
	ErrDuplicateID   = errors.New("course: duplicate ID")
	ErrNoContent     = errors.New("course: course has no assignable units")
	ErrTooDeep       = errors.New("course: block nesting exceeds the maximum depth")
)

// MaxDepth bounds block nesting; AICC course structures are shallow trees
// and unbounded recursion usually signals cyclic authoring data.
const MaxDepth = 16

// Validate checks structural integrity: non-empty unique IDs, at least one
// AU somewhere, and bounded nesting.
func (c *Course) Validate() error {
	if strings.TrimSpace(c.ID) == "" {
		return ErrEmptyCourseID
	}
	seen := map[string]struct{}{c.ID: {}}
	total := 0
	var walk func(blocks []Block, aus []AU, depth int) error
	walk = func(blocks []Block, aus []AU, depth int) error {
		if depth > MaxDepth {
			return fmt.Errorf("%w (%d)", ErrTooDeep, depth)
		}
		for _, au := range aus {
			if strings.TrimSpace(au.ID) == "" {
				return ErrEmptyAUID
			}
			if _, dup := seen[au.ID]; dup {
				return fmt.Errorf("%w: %s", ErrDuplicateID, au.ID)
			}
			seen[au.ID] = struct{}{}
			total++
		}
		for _, b := range blocks {
			if strings.TrimSpace(b.ID) == "" {
				return ErrEmptyBlockID
			}
			if _, dup := seen[b.ID]; dup {
				return fmt.Errorf("%w: %s", ErrDuplicateID, b.ID)
			}
			seen[b.ID] = struct{}{}
			if err := walk(b.Blocks, b.AUs, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(c.Blocks, c.AUs, 1); err != nil {
		return err
	}
	if total == 0 {
		return ErrNoContent
	}
	return nil
}

// AUCount returns the number of assignable units in the course.
func (c *Course) AUCount() int {
	count := len(c.AUs)
	var walk func(blocks []Block)
	walk = func(blocks []Block) {
		for _, b := range blocks {
			count += len(b.AUs)
			walk(b.Blocks)
		}
	}
	walk(c.Blocks)
	return count
}

// WalkAUs visits every AU in document order.
func (c *Course) WalkAUs(visit func(path []string, au AU)) {
	var walk func(blocks []Block, aus []AU, path []string)
	walk = func(blocks []Block, aus []AU, path []string) {
		for _, au := range aus {
			visit(path, au)
		}
		for _, b := range blocks {
			walk(b.Blocks, b.AUs, append(path, b.ID))
		}
	}
	walk(c.Blocks, c.AUs, []string{c.ID})
}

// ToOrganization converts the course into a SCORM organization: blocks
// become non-launchable items, AUs become items referencing their resource.
func (c *Course) ToOrganization() (scorm.Organization, error) {
	if err := c.Validate(); err != nil {
		return scorm.Organization{}, err
	}
	org := scorm.Organization{
		Identifier: "ORG-" + c.ID,
		Title:      c.Title,
	}
	org.Items = append(org.Items, ausToItems(c.AUs)...)
	org.Items = append(org.Items, blocksToItems(c.Blocks)...)
	return org, nil
}

func ausToItems(aus []AU) []scorm.Item {
	items := make([]scorm.Item, 0, len(aus))
	for _, au := range aus {
		items = append(items, scorm.Item{
			Identifier:    "ITEM-" + au.ID,
			IdentifierRef: au.ResourceRef,
			Title:         au.Title,
		})
	}
	return items
}

func blocksToItems(blocks []Block) []scorm.Item {
	items := make([]scorm.Item, 0, len(blocks))
	for _, b := range blocks {
		it := scorm.Item{
			Identifier: "ITEM-" + b.ID,
			Title:      b.Title,
		}
		it.Items = append(it.Items, ausToItems(b.AUs)...)
		it.Items = append(it.Items, blocksToItems(b.Blocks)...)
		items = append(items, it)
	}
	return items
}

// FromOrganization reconstructs a course hierarchy from a SCORM
// organization: items with an identifierref become AUs, container items
// become blocks. Identifier prefixes added by ToOrganization are stripped.
func FromOrganization(org scorm.Organization) *Course {
	c := &Course{
		ID:    strings.TrimPrefix(org.Identifier, "ORG-"),
		Title: org.Title,
	}
	for _, it := range org.Items {
		if it.IdentifierRef != "" {
			c.AUs = append(c.AUs, itemToAU(it))
		} else {
			c.Blocks = append(c.Blocks, itemToBlock(it))
		}
	}
	return c
}

func itemToAU(it scorm.Item) AU {
	return AU{
		ID:          strings.TrimPrefix(it.Identifier, "ITEM-"),
		Title:       it.Title,
		ResourceRef: it.IdentifierRef,
	}
}

func itemToBlock(it scorm.Item) Block {
	b := Block{
		ID:    strings.TrimPrefix(it.Identifier, "ITEM-"),
		Title: it.Title,
	}
	for _, child := range it.Items {
		if child.IdentifierRef != "" {
			b.AUs = append(b.AUs, itemToAU(child))
		} else {
			b.Blocks = append(b.Blocks, itemToBlock(child))
		}
	}
	return b
}
