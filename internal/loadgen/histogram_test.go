package loadgen

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	// Below the floor lands in bucket 0; the floor itself starts bucket 1.
	if got := bucketFor(0); got != 0 {
		t.Errorf("bucketFor(0) = %d, want 0", got)
	}
	if got := bucketFor(histFloor - 1); got != 0 {
		t.Errorf("bucketFor(floor-1) = %d, want 0", got)
	}
	if got := bucketFor(histFloor); got != 1 {
		t.Errorf("bucketFor(floor) = %d, want 1", got)
	}
	// Growth of 2^0.25 per bucket: one octave spans 4 buckets.
	if got := bucketFor(2 * histFloor); got != 5 {
		t.Errorf("bucketFor(2*floor) = %d, want 5 (4 buckets per octave)", got)
	}
	// Far beyond the layout clamps to the overflow bucket, never panics.
	if got := bucketFor(24 * time.Hour); got != histBuckets {
		t.Errorf("bucketFor(24h) = %d, want overflow bucket %d", got, histBuckets)
	}
	// Every bucket's range maps back to its own index.
	for i := 1; i < histBuckets; i++ {
		lo, hi := bucketRange(i)
		if got := bucketFor(lo); got != i {
			t.Fatalf("bucketFor(lo of %d) = %d", i, got)
		}
		if got := bucketFor(hi - 1); got != i {
			t.Fatalf("bucketFor(hi-1 of %d) = %d", i, got)
		}
	}
	// The layout reaches past a minute so exam-scale stalls stay resolved.
	if last := bucketBounds[histBuckets-1]; last < time.Minute {
		t.Errorf("last bucket starts at %v, want > 1m", last)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 100 samples spread uniformly across one bucket's range: the
	// interpolated median should sit near the bucket midpoint, not at
	// either boundary.
	lo, hi := bucketRange(20)
	for i := 0; i < 100; i++ {
		h.Observe(lo + time.Duration(i)*(hi-lo)/100)
	}
	p50 := h.Quantile(0.5)
	mid := lo + (hi-lo)/2
	if p50 < lo || p50 >= hi {
		t.Fatalf("p50 %v outside its bucket [%v, %v)", p50, lo, hi)
	}
	if diff := math.Abs(float64(p50 - mid)); diff > float64(hi-lo)/4 {
		t.Errorf("p50 %v too far from bucket midpoint %v", p50, mid)
	}
	// The tail quantile is clamped by the exact max: a single large sample
	// must not report a latency beyond what was actually observed.
	h2 := &Histogram{}
	for i := 0; i < 999; i++ {
		h2.Observe(time.Millisecond)
	}
	h2.Observe(40 * time.Millisecond)
	if q := h2.Quantile(0.9999); q > 40*time.Millisecond {
		t.Errorf("p9999 %v exceeds observed max 40ms", q)
	}
	if q := h2.Quantile(1); q != 40*time.Millisecond {
		t.Errorf("p100 = %v, want the exact max", q)
	}
	// Empty histogram reports zeros.
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.Count() != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must digest to zeros")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%v -> %v after %v", q, v, prev)
		}
		prev = v
	}
	// Sanity: the median of 0.1ms..100ms uniform samples is ~50ms; log
	// buckets at 2^0.25 growth bound the error to one bucket (~19%).
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	samples := []time.Duration{
		10 * time.Microsecond, 80 * time.Microsecond, time.Millisecond,
		3 * time.Millisecond, 47 * time.Millisecond, 2 * time.Second,
	}
	for i, d := range samples {
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), whole.Count())
	}
	if a.Max() != whole.Max() {
		t.Errorf("merged max = %v, want %v", a.Max(), whole.Max())
	}
	if a.Mean() != whole.Mean() {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("merged q%.2f = %v, want %v", q, got, want)
		}
	}
	a.Merge(nil) // must not panic
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	want := time.Duration(goroutines*per-1) * time.Microsecond
	if h.Max() != want {
		t.Errorf("max = %v, want %v", h.Max(), want)
	}
}
