package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/internal/simulate"
	"mineassess/pkg/api"
	"mineassess/pkg/client"
)

// Mix is the workload composition: relative weights for fixed-form
// sittings, adaptive (CAT) sittings, and SSE watchers on the fixed exam's
// live stream. Weights need not sum to 1; they are normalized. All-zero
// weights default to fixed-form only.
type Mix struct {
	Fixed float64 `json:"fixed"`
	CAT   float64 `json:"cat"`
	Watch float64 `json:"watch"`
}

// Learner classes (map keys in Result.Classes and Mix pick outcomes).
const (
	ClassFixed = "fixed"
	ClassCAT   = "cat"
	ClassWatch = "watch"
)

// normalized returns the mix with weights scaled to sum to 1.
func (m Mix) normalized() (Mix, error) {
	if m.Fixed < 0 || m.CAT < 0 || m.Watch < 0 {
		return m, fmt.Errorf("loadgen: mix weights must be non-negative, got %+v", m)
	}
	total := m.Fixed + m.CAT + m.Watch
	if total == 0 {
		return Mix{Fixed: 1}, nil
	}
	return Mix{Fixed: m.Fixed / total, CAT: m.CAT / total, Watch: m.Watch / total}, nil
}

// pick draws a class according to the (normalized) weights.
func (m Mix) pick(rng *rand.Rand) string {
	draw := rng.Float64()
	switch {
	case draw < m.Fixed:
		return ClassFixed
	case draw < m.Fixed+m.CAT:
		return ClassCAT
	default:
		return ClassWatch
	}
}

// Config describes one load run.
type Config struct {
	// BaseURL is the server under test (in-process httptest URL or a remote
	// -addr target).
	BaseURL string
	// Bank shapes the seeded exams; zero values take harness defaults.
	Bank BankConfig
	// Mix is the workload composition.
	Mix Mix
	// RatePerSec is the target arrival rate (virtual learners/second); Ramp
	// and Soak are the phase durations (Ramp may be 0 for soak-only).
	RatePerSec float64
	Ramp       time.Duration
	Soak       time.Duration
	// Seed fixes the arrival schedule, the class draws and every learner's
	// ability and response draws.
	Seed int64
	// AbilityMean and AbilitySD shape the simulated cohort; SD 0 with Mean 0
	// defaults to the standard N(0,1) population.
	AbilityMean float64
	AbilitySD   float64
	// TargetSE and MaxItems bound adaptive sittings (defaults 0.4 and 12).
	TargetSE float64
	MaxItems int
	// WatchDuration is how long an SSE watcher stays subscribed (default 2s).
	WatchDuration time.Duration
	// Think is the mean think time between a learner's answers, drawn
	// exponentially per answer; 0 answers back-to-back (capacity mode).
	Think time.Duration
	// SLO is the p99 latency objective requests are judged against in the
	// closing summary (default 250ms).
	SLO time.Duration
	// TransportConns sizes the shared tuned transport's connection pool;
	// default 1024.
	TransportConns int
	// HTTPClient overrides the shared client (tests); nil builds one from
	// TunedTransport(TransportConns) with a 30s per-request timeout.
	HTTPClient *http.Client
	// RequestTimeout bounds each request of the default-built client
	// (default 30s). A timed-out request is recorded as a transport error.
	RequestTimeout time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.AbilitySD == 0 && c.AbilityMean == 0 {
		c.AbilitySD = 1
	}
	if c.TargetSE <= 0 {
		c.TargetSE = 0.4
	}
	if c.MaxItems <= 0 {
		c.MaxItems = 12
	}
	if c.WatchDuration <= 0 {
		c.WatchDuration = 2 * time.Second
	}
	if c.SLO <= 0 {
		c.SLO = 250 * time.Millisecond
	}
	if c.TransportConns <= 0 {
		c.TransportConns = 1024
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// ClassCounts tallies one learner class's outcomes. A sitting completes
// when every operation of its script succeeded; any failed operation marks
// the learner failed (the per-route error detail lives in Routes).
type ClassCounts struct {
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
}

// Result is one run's full measurement.
type Result struct {
	// Offered is the number of virtual learners the schedule fired;
	// OfferedPerSec relates it to the planned duration. Under open-loop
	// arrivals these are properties of the schedule, not the server.
	Offered        int     `json:"offered"`
	OfferedPerSec  float64 `json:"offeredPerSec"`
	PlannedSeconds float64 `json:"plannedSeconds"`
	ActualSeconds  float64 `json:"actualSeconds"`
	// Lateness is how far behind schedule arrivals fired — the generator's
	// own health. A loaded generator reports lateness instead of silently
	// thinning the offered load.
	Lateness LatencySummary `json:"lateness"`
	// Classes and Routes carry the per-class outcomes and per-route
	// latency/error digests.
	Classes map[string]*ClassCounts `json:"classes"`
	Routes  []RouteSummary          `json:"routes"`
	// Watcher stream accounting.
	Frames      int64 `json:"frames"`
	StatsFrames int64 `json:"statsFrames"`
	Gaps        int64 `json:"gaps"`
	// Errors is the total failed operations; RequestP99Ms the merged
	// request-route p99 judged against SLOMs.
	Errors       int64   `json:"errors"`
	RequestCount int64   `json:"requestCount"`
	RequestP99Ms float64 `json:"requestP99Ms"`
	SLOMs        float64 `json:"sloMs"`
	SLOMet       bool    `json:"sloMet"`
	// Interrupted reports a context cancellation cutting the schedule short.
	Interrupted bool `json:"interrupted,omitempty"`
}

// Runner drives one target server. Build with NewRunner (which seeds the
// bank over the API), then Run as many schedules as needed.
type Runner struct {
	cfg    Config
	httpc  *http.Client
	seeded *SeededBank
}

// NewRunner validates the config, builds the shared tuned HTTP client and
// seeds the target's bank through /v1.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	if _, err := cfg.Mix.normalized(); err != nil {
		return nil, err
	}
	httpc := cfg.HTTPClient
	if httpc == nil {
		httpc = &http.Client{
			Transport: client.TunedTransport(cfg.TransportConns),
			Timeout:   cfg.RequestTimeout,
		}
	}
	r := &Runner{cfg: cfg, httpc: httpc}
	seeded, err := EnsureBank(r.client("loadgen-seeder"), cfg.Bank)
	if err != nil {
		return nil, err
	}
	r.seeded = seeded
	return r, nil
}

// client builds a per-learner SDK client over the shared transport.
func (r *Runner) client(learnerID string) *client.Client {
	return client.New(r.cfg.BaseURL,
		client.WithHTTPClient(r.httpc),
		client.WithLearnerID(learnerID))
}

// Run fires the configured ramp+soak schedule and blocks until every
// spawned learner finished, then digests the measurements.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	sched := RampSoak(r.cfg.RatePerSec, r.cfg.Ramp, r.cfg.Soak, r.cfg.Seed)
	return r.runSchedule(ctx, sched)
}

// runSchedule executes one explicit schedule (Run and the capacity ladder
// share it).
func (r *Runner) runSchedule(ctx context.Context, sched Schedule) (*Result, error) {
	mix, err := r.cfg.Mix.normalized()
	if err != nil {
		return nil, err
	}
	cohort, err := simulate.NewStream(simulate.PopulationConfig{
		Mean: r.cfg.AbilityMean, SD: r.cfg.AbilitySD,
		Seed: r.cfg.Seed + 1, IDPrefix: "vl",
	})
	if err != nil {
		return nil, err
	}

	col := NewCollector()
	lateness := &Histogram{}
	classes := map[string]*ClassCounts{
		ClassFixed: {}, ClassCAT: {}, ClassWatch: {},
	}
	classRng := rand.New(rand.NewSource(r.cfg.Seed + 2))

	var wg sync.WaitGroup
	start := time.Now()
	fired, runErr := sched.Run(ctx, func(i int, late time.Duration) {
		lateness.Observe(late)
		class := mix.pick(classRng)
		st := cohort.Next()
		seed := r.cfg.Seed + 1000 + int64(i)
		counts := classes[class]
		atomic.AddInt64(&counts.Started, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ok bool
			switch class {
			case ClassFixed:
				ok = r.fixedSitting(ctx, col, st, seed)
			case ClassCAT:
				ok = r.catSitting(ctx, col, st, seed)
			case ClassWatch:
				ok = r.watcher(ctx, col, st)
			}
			if ok {
				atomic.AddInt64(&counts.Completed, 1)
			} else {
				atomic.AddInt64(&counts.Failed, 1)
			}
		}()
	})
	wg.Wait()
	actual := time.Since(start)

	interrupted := false
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			interrupted = true
		} else {
			return nil, runErr
		}
	}

	planned := sched.Duration()
	res := &Result{
		Offered:        fired,
		OfferedPerSec:  float64(fired) / planned.Seconds(),
		PlannedSeconds: planned.Seconds(),
		ActualSeconds:  actual.Seconds(),
		Lateness:       lateness.Summary(),
		Classes:        classes,
		Routes:         col.Routes(),
		Errors:         col.TotalErrors(),
		SLOMs:          ms(r.cfg.SLO),
		Interrupted:    interrupted,
	}
	res.Frames, res.StatsFrames, res.Gaps = col.StreamCounts()
	res.RequestCount, res.RequestP99Ms = col.RequestQuantile(0.99)
	res.SLOMet = res.Errors == 0 && res.RequestP99Ms <= res.SLOMs
	return res, nil
}

// op times one client operation into the collector; it returns false on
// failure so scripts can stop a broken sitting early.
func op(col *Collector, route string, call func() error) bool {
	t0 := time.Now()
	err := call()
	if err != nil {
		col.Error(route, err)
		return false
	}
	col.Observe(route, time.Since(t0))
	return true
}

// think sleeps one exponentially-jittered think time (mean cfg.Think),
// bounded by ctx.
func (r *Runner) think(ctx context.Context, rng *rand.Rand) {
	if r.cfg.Think <= 0 {
		return
	}
	d := time.Duration(rng.ExpFloat64() * float64(r.cfg.Think))
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// fixedSitting drives one learner through the whole fixed-form lifecycle:
// start, answer every item in presentation order (correctness drawn from
// the learner's ability under the item's 3PL parameters), finish.
func (r *Runner) fixedSitting(ctx context.Context, col *Collector, st simulate.Student, seed int64) bool {
	c := r.client(st.ID)
	rng := rand.New(rand.NewSource(seed))
	var sess *api.StartSessionResponse
	if !op(col, RouteFixedStart, func() (err error) {
		sess, err = c.StartSession(r.seeded.FixedExamID, st.ID, seed)
		return err
	}) {
		return false
	}
	for _, pid := range sess.Order {
		r.think(ctx, rng)
		response := "B"
		if rng.Float64() < r.seeded.FixedParams[pid].ProbCorrect(st.Ability) {
			response = "A"
		}
		if !op(col, RouteFixedAnswer, func() error {
			return c.Answer(sess.SessionID, pid, response)
		}) {
			return false
		}
	}
	return op(col, RouteFixedFinish, func() (err error) {
		_, err = c.Finish(sess.SessionID)
		return err
	})
}

// catSitting drives one learner through a live adaptive session: start,
// respond to each served item until the engine stops the test, then fetch
// the outcome.
func (r *Runner) catSitting(ctx context.Context, col *Collector, st simulate.Student, seed int64) bool {
	c := r.client(st.ID)
	rng := rand.New(rand.NewSource(seed))
	var started *api.StartAdaptiveSessionResponse
	if !op(col, RouteCATStart, func() (err error) {
		started, err = c.StartAdaptiveSession(api.StartAdaptiveSessionRequest{
			ExamID: r.seeded.CATExamID, StudentID: st.ID, Seed: seed,
			AdaptiveConfig: api.AdaptiveConfig{
				TargetSE: r.cfg.TargetSE, MaxItems: r.cfg.MaxItems,
			},
		})
		return err
	}) {
		return false
	}
	next := started.Next
	for next != nil {
		r.think(ctx, rng)
		response := "B"
		if rng.Float64() < r.seeded.CATParams[next.ProblemID].ProbCorrect(st.Ability) {
			response = "A"
		}
		var prog *api.AdaptiveProgress
		if !op(col, RouteCATRespond, func() (err error) {
			prog, err = c.AdaptiveRespond(started.SessionID, next.ProblemID, response)
			return err
		}) {
			return false
		}
		if prog.Done {
			break
		}
		next = prog.Next
	}
	return op(col, RouteCATFinish, func() (err error) {
		_, err = c.FinishAdaptiveSession(started.SessionID)
		return err
	})
}

// watcher subscribes to the fixed exam's live SSE stream for
// cfg.WatchDuration, counting event frames, interleaved stats frames and
// stream.gap markers. The connect (through response headers) is the timed
// operation; a stream that dies before the watch window ends is a failure.
func (r *Runner) watcher(ctx context.Context, col *Collector, st simulate.Student) bool {
	c := r.client(st.ID)
	wctx, cancel := context.WithTimeout(ctx, r.cfg.WatchDuration)
	defer cancel()
	var stream *client.EventStream
	if !op(col, RouteWatchOpen, func() (err error) {
		stream, err = c.StreamExamLive(wctx, r.seeded.FixedExamID, "")
		return err
	}) {
		return false
	}
	defer stream.Close()
	for {
		f, err := stream.Next()
		if err != nil {
			// The watch window closing is the normal end; anything else —
			// including the server hanging up mid-window — is a failure.
			if wctx.Err() != nil {
				return true
			}
			if errors.Is(err, io.EOF) {
				col.Error(RouteWatchOpen, fmt.Errorf("loadgen: stream closed early: %w", err))
				return false
			}
			col.Error(RouteWatchOpen, err)
			return false
		}
		switch {
		case f.IsGap():
			col.Gap()
		case f.IsStats():
			col.StatsFrame()
		default:
			col.Frame()
		}
	}
}
