package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// Section is the "loadgen" (E24) block of BENCH_BASELINE.json: the run
// summary for the standard ramp+soak mixed workload plus the capacity
// ladder. It is the composed-system yardstick later scale/speed PRs are
// judged against, next to the per-subsystem E18–E23 sections.
type Section struct {
	GoVersion  string          `json:"goVersion"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Mix        Mix             `json:"mix"`
	Run        *Result         `json:"run,omitempty"`
	Capacity   *CapacityResult `json:"capacity,omitempty"`
}

// NewSection stamps the environment around the measurements.
func NewSection(mix Mix, run *Result, capacity *CapacityResult) *Section {
	return &Section{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Mix:        mix,
		Run:        run,
		Capacity:   capacity,
	}
}

// MergeBaseline writes the section into the baseline file under the
// "loadgen" key, leaving every other section untouched — the same
// section-merge flow benchreport's -hotpaths uses, so the BENCH_*.json
// trajectory accretes experiment by experiment.
func MergeBaseline(path string, sec *Section) error {
	doc := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("loadgen: existing baseline %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	secRaw, err := json.Marshal(sec)
	if err != nil {
		return err
	}
	doc["loadgen"] = secRaw
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	return os.WriteFile(path, raw, 0o644)
}

// WriteReport renders a run result for humans.
func WriteReport(w io.Writer, res *Result) {
	fmt.Fprintf(w, "offered %d learners over %.1fs (%.1f/s planned, generator lateness p99 %.2fms max %.2fms)\n",
		res.Offered, res.PlannedSeconds, res.OfferedPerSec, res.Lateness.P99Ms, res.Lateness.MaxMs)
	for _, class := range []string{ClassFixed, ClassCAT, ClassWatch} {
		c := res.Classes[class]
		if c == nil || c.Started == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-6s started %5d  completed %5d  failed %d\n",
			class, c.Started, c.Completed, c.Failed)
	}
	for _, rt := range res.Routes {
		fmt.Fprintf(w, "  %-13s n=%-7d p50=%8.2fms p99=%8.2fms p999=%8.2fms max=%8.2fms errors=%d\n",
			rt.Route, rt.Count, rt.P50Ms, rt.P99Ms, rt.P999Ms, rt.MaxMs, rt.Errors)
	}
	if res.Frames+res.Gaps+res.StatsFrames > 0 {
		fmt.Fprintf(w, "  watchers: %d event frames, %d stats frames, %d stream.gap markers\n",
			res.Frames, res.StatsFrames, res.Gaps)
	}
	verdict := "MET"
	if !res.SLOMet {
		verdict = "MISSED"
	}
	fmt.Fprintf(w, "  requests %d, errors %d, p99 %.2fms vs SLO %.0fms: %s\n",
		res.RequestCount, res.Errors, res.RequestP99Ms, res.SLOMs, verdict)
}

// WriteCapacityReport renders the ladder for humans.
func WriteCapacityReport(w io.Writer, cr *CapacityResult) {
	fmt.Fprintf(w, "capacity ladder (%.0fms p99 SLO, %.1fs soak steps):\n", cr.SLOMs, cr.StepSeconds)
	for _, st := range cr.Steps {
		status := "PASS"
		if !st.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  %8.1f/s  offered %6d  reqs %7d  p99 %8.2fms  errs %5d (%.3f%%)  %s\n",
			st.RatePerSec, st.Offered, st.RequestCount, st.RequestP99Ms,
			st.Errors, st.ErrorRate*100, status)
	}
	switch {
	case cr.MaxSustainedRate > 0 && !cr.Saturated:
		fmt.Fprintf(w, "  max sustained arrival rate meeting the SLO: %.1f learners/s (ladder exhausted without failing — true capacity is higher)\n",
			cr.MaxSustainedRate)
	case cr.MaxSustainedRate > 0:
		fmt.Fprintf(w, "  max sustained arrival rate meeting the SLO: %.1f learners/s\n",
			cr.MaxSustainedRate)
	case len(cr.Steps) > 0:
		fmt.Fprintf(w, "  no step met the SLO — capacity is below %.1f learners/s\n",
			cr.Steps[0].RatePerSec)
	}
}
