package loadgen

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/pkg/client"
)

// Route labels for per-route accounting. Each label is one client
// operation against one endpoint family, so the report maps directly onto
// the API surface under test.
const (
	RouteFixedStart  = "fixed.start"
	RouteFixedAnswer = "fixed.answer"
	RouteFixedFinish = "fixed.finish"
	RouteCATStart    = "cat.start"
	RouteCATRespond  = "cat.respond"
	RouteCATFinish   = "cat.finish"
	RouteWatchOpen   = "watch.open" // SSE connect through first byte of the stream
)

// routeOrder pins report ordering.
var routeOrder = []string{
	RouteFixedStart, RouteFixedAnswer, RouteFixedFinish,
	RouteCATStart, RouteCATRespond, RouteCATFinish,
	RouteWatchOpen,
}

// Collector aggregates one run's measurements: a latency histogram and an
// error count per route, plus watcher stream accounting. Hot-path methods
// (Observe, Frame, Gap) are lock-free; the error path takes a mutex to
// keep per-code counts, which is fine because errors are what we are
// trying not to have.
type Collector struct {
	mu     sync.Mutex
	hists  map[string]*Histogram
	errs   map[string]map[string]int64 // route -> error code -> count
	frames atomic.Int64
	gaps   atomic.Int64
	stats  atomic.Int64 // live-stats frames interleaved into watch streams
}

// NewCollector builds a collector with the standard route set
// pre-registered, so Observe never allocates under load.
func NewCollector() *Collector {
	c := &Collector{
		hists: make(map[string]*Histogram, len(routeOrder)),
		errs:  make(map[string]map[string]int64),
	}
	for _, r := range routeOrder {
		c.hists[r] = &Histogram{}
	}
	return c
}

// hist returns the route's histogram, registering unknown routes lazily.
func (c *Collector) hist(route string) *Histogram {
	if h, ok := c.hists[route]; ok {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hists[route]; ok {
		return h
	}
	h := &Histogram{}
	c.hists[route] = h
	return h
}

// Observe records one successful operation's latency.
func (c *Collector) Observe(route string, d time.Duration) {
	c.hist(route).Observe(d)
}

// Error records one failed operation under its taxonomy code (transport
// failures and non-envelope responses group under "transport").
func (c *Collector) Error(route string, err error) {
	code := "transport"
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		code = string(apiErr.Code)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.errs[route]
	if m == nil {
		m = make(map[string]int64)
		c.errs[route] = m
	}
	m[code]++
}

// Frame counts one delivered SSE event frame; Gap counts a stream.gap
// marker (events the bus had to drop for this watcher); StatsFrame counts
// an interleaved live-statistics frame.
func (c *Collector) Frame()      { c.frames.Add(1) }
func (c *Collector) Gap()        { c.gaps.Add(1) }
func (c *Collector) StatsFrame() { c.stats.Add(1) }

// RouteSummary is one route's digested measurements.
type RouteSummary struct {
	Route string `json:"route"`
	LatencySummary
	Errors       int64            `json:"errors"`
	ErrorsByCode map[string]int64 `json:"errorsByCode,omitempty"`
}

// Routes digests every route with at least one sample or error, in stable
// report order.
func (c *Collector) Routes() []RouteSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	known := make(map[string]bool, len(c.hists))
	var names []string
	for _, r := range routeOrder {
		if c.hists[r].Count() > 0 || len(c.errs[r]) > 0 {
			names = append(names, r)
		}
		known[r] = true
	}
	var extra []string
	for r := range c.hists {
		if !known[r] && (c.hists[r].Count() > 0 || len(c.errs[r]) > 0) {
			extra = append(extra, r)
		}
	}
	for r := range c.errs {
		if _, ok := c.hists[r]; !ok {
			extra = append(extra, r)
		}
	}
	sort.Strings(extra)
	names = append(names, extra...)

	out := make([]RouteSummary, 0, len(names))
	for _, r := range names {
		s := RouteSummary{Route: r}
		if h, ok := c.hists[r]; ok {
			s.LatencySummary = h.Summary()
		}
		for code, n := range c.errs[r] {
			if s.ErrorsByCode == nil {
				s.ErrorsByCode = make(map[string]int64)
			}
			s.ErrorsByCode[code] = n
			s.Errors += n
		}
		out = append(out, s)
	}
	return out
}

// TotalErrors sums every recorded error.
func (c *Collector) TotalErrors() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, m := range c.errs {
		for _, n := range m {
			total += n
		}
	}
	return total
}

// RequestQuantile merges every request-route histogram (watcher stream
// opens excluded: a long-poll connect is not a request/response operation)
// and returns the q-quantile across them — the figure the capacity SLO is
// judged on.
func (c *Collector) RequestQuantile(q float64) (int64, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	merged := &Histogram{}
	for r, h := range c.hists {
		if r == RouteWatchOpen {
			continue
		}
		merged.Merge(h)
	}
	return merged.Count(), ms(merged.Quantile(q))
}

// StreamCounts reports the watcher totals: event frames, stats frames and
// gap markers.
func (c *Collector) StreamCounts() (frames, stats, gaps int64) {
	return c.frames.Load(), c.stats.Load(), c.gaps.Load()
}
