package loadgen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mineassess/pkg/client"
)

// TestLoadRunSmoke is the hermetic end-to-end harness check: a tiny mixed
// cohort (all three classes) against an in-process server with the WAL and
// the event bus enabled — the full production composition. Every learner
// must complete with zero unexpected errors, watchers must see frames, and
// the E24 section must round-trip through JSON and the baseline merge.
func TestLoadRunSmoke(t *testing.T) {
	ip, err := StartInProcess(InProcessConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	mix := Mix{Fixed: 2, CAT: 1, Watch: 1}
	runner, err := NewRunner(Config{
		BaseURL:       ip.URL,
		Bank:          BankConfig{Questions: 4, PoolSize: 20},
		Mix:           mix,
		RatePerSec:    60,
		Soak:          1500 * time.Millisecond,
		Seed:          7,
		WatchDuration: 300 * time.Millisecond,
		MaxItems:      5,
		SLO:           5 * time.Second, // smoke test judges correctness, not speed
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if res.Offered == 0 {
		t.Fatal("no learners offered")
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d (routes %+v)", res.Errors, res.Routes)
	}
	var started, completed int64
	for class, c := range res.Classes {
		if c.Failed != 0 {
			t.Errorf("class %s: %d failed learners", class, c.Failed)
		}
		started += c.Started
		completed += c.Completed
	}
	if started != int64(res.Offered) {
		t.Errorf("started %d != offered %d", started, res.Offered)
	}
	if completed != started {
		t.Errorf("completed %d != started %d", completed, started)
	}
	// With a mixed cohort all three classes must actually run.
	for _, class := range []string{ClassFixed, ClassCAT, ClassWatch} {
		if res.Classes[class].Started == 0 {
			t.Errorf("class %s never started (mix %+v over %d learners)", class, mix, res.Offered)
		}
	}
	if res.RequestCount == 0 || res.RequestP99Ms <= 0 {
		t.Errorf("request digest empty: count=%d p99=%.2f", res.RequestCount, res.RequestP99Ms)
	}
	// Sittings publish onto the bus, so concurrent watchers must see
	// frames; a healthy in-memory ring never gaps at smoke scale.
	if res.Frames+res.StatsFrames == 0 {
		t.Error("watchers saw no frames despite live sittings")
	}
	if res.Gaps != 0 {
		t.Errorf("stream gaps at smoke scale: %d", res.Gaps)
	}
	if !res.SLOMet {
		t.Errorf("SLO missed: p99 %.2fms, errors %d", res.RequestP99Ms, res.Errors)
	}

	// The E24 section round-trips through JSON...
	sec := NewSection(mix, res, nil)
	raw, err := json.Marshal(sec)
	if err != nil {
		t.Fatal(err)
	}
	var back Section
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Run == nil || back.Run.Offered != res.Offered || back.Run.RequestCount != res.RequestCount {
		t.Errorf("section round trip lost data: %+v", back.Run)
	}
	if back.Mix != mix {
		t.Errorf("mix round trip: %+v", back.Mix)
	}

	// ...and merges into a baseline without clobbering other sections.
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"other":{"keep":true}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := MergeBaseline(path, sec); err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["other"]; !ok {
		t.Error("merge dropped an existing section")
	}
	var fromFile Section
	if err := json.Unmarshal(doc["loadgen"], &fromFile); err != nil {
		t.Fatal(err)
	}
	if fromFile.Run == nil || fromFile.Run.Offered != res.Offered {
		t.Errorf("baseline section lost data: %+v", fromFile.Run)
	}
}

// TestEnsureBankIdempotent: seeding the same target twice must succeed and
// return the same exams — reruns against a remote server already seeded by
// a previous run are the normal case.
func TestEnsureBankIdempotent(t *testing.T) {
	ip, err := StartInProcess(InProcessConfig{NoJournal: true, NoEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()
	c := client.New(ip.URL, client.WithLearnerID("seeder"))
	first, err := EnsureBank(c, BankConfig{Questions: 3, PoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	second, err := EnsureBank(c, BankConfig{Questions: 3, PoolSize: 8})
	if err != nil {
		t.Fatalf("second seed: %v", err)
	}
	if first.FixedExamID != second.FixedExamID || first.CATExamID != second.CATExamID {
		t.Error("reseeding changed exam IDs")
	}
	if len(second.FixedOrder) != 3 || len(second.CATParams) != 8 {
		t.Errorf("bank shape: %d fixed items, %d pool items", len(second.FixedOrder), len(second.CATParams))
	}
}

// TestMixNormalization covers the class-draw edge cases.
func TestMixNormalization(t *testing.T) {
	if _, err := (Mix{Fixed: -1}).normalized(); err == nil {
		t.Error("negative weight accepted")
	}
	m, err := (Mix{}).normalized()
	if err != nil || m.Fixed != 1 {
		t.Errorf("zero mix should default to fixed-only, got %+v (%v)", m, err)
	}
	m, _ = (Mix{Fixed: 2, CAT: 1, Watch: 1}).normalized()
	if sum := m.Fixed + m.CAT + m.Watch; sum < 0.999 || sum > 1.001 {
		t.Errorf("normalized weights sum to %v", sum)
	}
}
