package loadgen

import (
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/catdelivery"
	"mineassess/internal/delivery"
	"mineassess/internal/events"
	"mineassess/internal/httpapi"
	"mineassess/internal/livestats"
	"mineassess/internal/obs"
	"mineassess/internal/trace"
)

// InProcessConfig shapes the hermetic target server. The defaults match a
// production examserver: sharded backend, group-commit WAL, live event bus
// with streaming statistics, rate limiting off (a load harness measuring
// its own token bucket would be measuring the wrong thing — run capacity
// tests with -rate 0 on real servers too).
type InProcessConfig struct {
	// JournalDir enables the group-commit WAL under this directory; ""
	// creates (and removes on Close) a temp dir. Set NoJournal to run on
	// the bare sharded store instead.
	JournalDir string
	NoJournal  bool
	// Sync is the WAL fsync policy (default bank.SyncGroup).
	Sync bank.SyncPolicy
	// NoEvents disables the bus + SSE endpoints (watch mixes then 404).
	NoEvents bool
	// EventRing overrides the replay-ring size (0 = events.DefaultRing).
	EventRing int
	// Trace mounts a tail-sampling tracer on the HTTP edge so a capacity
	// run can attribute latency to pipeline phases afterwards (see
	// TraceReport). TraceSlow is the slow-trace retention threshold
	// (default 250ms — match the run's SLO so "slow" means "SLO-busting");
	// TracePolicy overrides the retention policy (E26 measures the
	// always-on worst case with trace.PolicyAlways).
	Trace       bool
	TraceSlow   time.Duration
	TracePolicy trace.Policy
}

// InProcess is a fully wired hermetic server: middleware, engines, WAL,
// bus, livestats, SSE — the same composition cmd/examserver serves, minus
// the listener flags. Tests and CI drive it through URL.
type InProcess struct {
	URL string
	// Obs is the target's process metrics registry (journal, bus, live
	// stats, per-route HTTP histograms) — capacity runs exercise the same
	// instrumented composition production serves, and tests can scrape it.
	Obs *obs.Registry
	// Tracer is non-nil when InProcessConfig.Trace asked for one; after a
	// run its retained + recent trace trees feed BuildTraceReport.
	Tracer *trace.Tracer

	srv     *httptest.Server
	store   bank.Storage
	bus     *events.Bus
	live    *livestats.Aggregator
	tempDir string
}

// StartInProcess boots the hermetic target.
func StartInProcess(cfg InProcessConfig) (*InProcess, error) {
	ip := &InProcess{Obs: obs.NewRegistry()}
	sync := cfg.Sync
	if sync == "" {
		sync = bank.SyncGroup
	}
	if cfg.NoJournal {
		ip.store = bank.NewSharded(0)
	} else {
		dir := cfg.JournalDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "loadgen-wal")
			if err != nil {
				return nil, err
			}
			ip.tempDir = tmp
			dir = tmp
		}
		j, err := bank.OpenJournalWith(dir, bank.NewSharded(0), bank.JournalOptions{Sync: sync, Obs: ip.Obs})
		if err != nil {
			ip.cleanup()
			return nil, fmt.Errorf("loadgen: open journal: %w", err)
		}
		ip.store = j
	}

	engine := delivery.NewShardedEngine(ip.store, nil, 0, delivery.DefaultSessionShards)
	cat, err := catdelivery.NewEngine(ip.store, nil, 0)
	if err != nil {
		ip.cleanup()
		return nil, fmt.Errorf("loadgen: adaptive engine: %w", err)
	}
	opts := httpapi.Options{Adaptive: cat, Obs: ip.Obs}
	if cfg.Trace {
		slow := cfg.TraceSlow
		if slow <= 0 {
			slow = 250 * time.Millisecond
		}
		// A wide recent ring keeps an unbiased picture of ordinary requests
		// alongside the tail sampler's slow/error/gap captures — the phase
		// attribution report wants both populations.
		ip.Tracer = trace.New(trace.Options{
			Slow: slow, Policy: cfg.TracePolicy, SampleEvery: 16,
			Recent: 256, Retain: 512, Obs: ip.Obs,
		})
		opts.Tracer = ip.Tracer
	}
	if !cfg.NoEvents {
		ip.bus = events.NewBus(events.Options{Ring: cfg.EventRing, Obs: ip.Obs})
		ip.live = livestats.NewWith(ip.bus, ip.Obs)
		engine.SetEventBus(ip.bus)
		cat.SetEventBus(ip.bus)
		opts.Events = ip.bus
		opts.LiveStats = ip.live
	}
	ip.srv = httptest.NewServer(httpapi.NewServer(engine, ip.store, opts))
	ip.URL = ip.srv.URL
	return ip, nil
}

// Close tears the server down: SSE subscribers detach first so in-flight
// streams end, then the listener closes, then the WAL and bus flush.
func (ip *InProcess) Close() {
	if ip.bus != nil {
		ip.bus.DetachSubscribers()
	}
	if ip.srv != nil {
		ip.srv.Close()
	}
	ip.cleanup()
}

func (ip *InProcess) cleanup() {
	if ip.bus != nil {
		ip.bus.Close()
		ip.bus = nil
	}
	if ip.live != nil {
		ip.live.Close()
		ip.live = nil
	}
	if j, ok := ip.store.(*bank.Journal); ok {
		_ = j.Close()
		ip.store = nil
	}
	if ip.tempDir != "" {
		_ = os.RemoveAll(ip.tempDir)
		ip.tempDir = ""
	}
}
