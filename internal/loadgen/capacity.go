package loadgen

import (
	"context"
	"fmt"
	"time"
)

// CapacityConfig drives the capacity search: soak steps at a geometric
// ladder of arrival rates until the p99 SLO (Config.SLO) or the error
// budget is violated, reporting the last rate that passed. An open-loop
// step either meets the SLO at its full offered rate or fails — there is
// no middle ground where back-pressure quietly lowers the measured rate,
// which is what makes "max sustained arrival rate" a well-defined number.
type CapacityConfig struct {
	// StartRate is the first step's arrival rate (learners/second);
	// default 25.
	StartRate float64
	// Factor multiplies the rate between steps (default 2).
	Factor float64
	// StepDuration is each step's soak length (default 5s).
	StepDuration time.Duration
	// MaxSteps bounds the ladder (default 6).
	MaxSteps int
	// MaxErrorRate is the failed-operation budget per step as a fraction of
	// operations (default 0.001).
	MaxErrorRate float64
	// Settle is a pause between steps letting in-flight work and journal
	// batches drain so one step's tail does not bleed into the next
	// (default 200ms).
	Settle time.Duration
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.StartRate <= 0 {
		c.StartRate = 25
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 5 * time.Second
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 6
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.001
	}
	if c.Settle <= 0 {
		c.Settle = 200 * time.Millisecond
	}
	return c
}

// CapacityStep is one measured ladder rung.
type CapacityStep struct {
	RatePerSec   float64 `json:"ratePerSec"`
	Offered      int     `json:"offered"`
	RequestCount int64   `json:"requestCount"`
	RequestP99Ms float64 `json:"requestP99Ms"`
	Errors       int64   `json:"errors"`
	ErrorRate    float64 `json:"errorRate"`
	Pass         bool    `json:"pass"`
}

// CapacityResult is the ladder outcome: every step measured plus the
// capacity claim — the highest arrival rate whose step met the p99 SLO
// with errors inside budget.
type CapacityResult struct {
	SLOMs            float64        `json:"sloMs"`
	StepSeconds      float64        `json:"stepSeconds"`
	Steps            []CapacityStep `json:"steps"`
	MaxSustainedRate float64        `json:"maxSustainedRate"`
	// Saturated reports that the ladder actually found the knee (a failing
	// step); false means every step passed and the true capacity is above
	// the last rung.
	Saturated bool `json:"saturated"`
}

// Capacity runs the ladder. Each step reuses the runner's seeded bank and
// shared transport; the cohort and schedule reseed per step so steps are
// independent draws.
func (r *Runner) Capacity(ctx context.Context, cc CapacityConfig) (*CapacityResult, error) {
	cc = cc.withDefaults()
	out := &CapacityResult{SLOMs: ms(r.cfg.SLO), StepSeconds: cc.StepDuration.Seconds()}
	rate := cc.StartRate
	for step := 0; step < cc.MaxSteps; step++ {
		if ctx.Err() != nil {
			return out, ctx.Err()
		}
		sched := RampSoak(rate, 0, cc.StepDuration, r.cfg.Seed+int64(step)*7919)
		res, err := r.runSchedule(ctx, sched)
		if err != nil {
			return out, fmt.Errorf("loadgen: capacity step at %.0f/s: %w", rate, err)
		}
		ops := res.RequestCount + res.Errors
		errRate := 0.0
		if ops > 0 {
			errRate = float64(res.Errors) / float64(ops)
		}
		st := CapacityStep{
			RatePerSec:   rate,
			Offered:      res.Offered,
			RequestCount: res.RequestCount,
			RequestP99Ms: res.RequestP99Ms,
			Errors:       res.Errors,
			ErrorRate:    errRate,
			Pass:         res.RequestP99Ms <= out.SLOMs && errRate <= cc.MaxErrorRate && !res.Interrupted,
		}
		out.Steps = append(out.Steps, st)
		if !st.Pass {
			out.Saturated = true
			break
		}
		out.MaxSustainedRate = rate
		rate *= cc.Factor
		select {
		case <-time.After(cc.Settle):
		case <-ctx.Done():
			return out, ctx.Err()
		}
	}
	return out, nil
}
