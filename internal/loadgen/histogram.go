// Package loadgen is the composed-system load harness: it drives the full
// /v1 HTTP stack — middleware, delivery engines, group-commit WAL, event
// bus, SSE — with IRT-simulated learner cohorts arriving on an open-loop
// Poisson schedule, and reports per-route latency quantiles, error rates
// and a capacity summary (the highest sustained arrival rate that meets a
// p99 SLO).
//
// Open-loop means virtual learners arrive when the schedule says they
// arrive, regardless of how slowly the server is answering. A closed-loop
// driver (a fixed worker pool issuing the next request only after the
// previous one returns) silently sheds offered load exactly when the
// server degrades, which hides the latency the real population would have
// seen — the coordinated-omission trap. Here the arrival process never
// waits on the system under test: a stalled server produces more
// in-flight learners and honest tail latencies, not a quietly shrunken
// request rate.
package loadgen

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-spaced boundaries growing by histGrowth per
// bucket from histFloor. Observations below the floor land in bucket 0;
// observations beyond the last boundary land in the overflow bucket. The
// layout spans ~50µs to beyond a minute (the harness's request-timeout
// scale) in 84 buckets, giving ~19% worst-case quantile resolution —
// plenty for p50/p99/p999 reporting while keeping Merge a flat array sum.
const (
	histBuckets = 84
	histFloor   = 50 * time.Microsecond
)

var histGrowth = math.Pow(2, 0.25) // 4 buckets per octave

// bucketBounds[i] is the exclusive upper bound of bucket i (the last
// bucket's bound is +Inf conceptually; the array holds its finite start).
var bucketBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	bound := float64(histFloor)
	for i := 0; i < histBuckets; i++ {
		b[i] = time.Duration(bound)
		bound *= histGrowth
	}
	return b
}()

// Histogram is a fixed-layout log-bucketed latency histogram. Observe is
// lock-free (one atomic add per call plus min/max CAS loops), so thousands
// of virtual learners can record into one histogram without serializing on
// it. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // +1: overflow
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// bucketFor returns the index whose range contains d. The precomputed
// bounds are the single source of truth (a log/exp round trip disagrees
// with the truncated integer bounds at exact boundaries); a binary search
// over 72 entries costs ~7 comparisons, noise next to the atomic add.
func bucketFor(d time.Duration) int {
	if d < histFloor {
		return 0
	}
	// Smallest i with d < bounds[i] is the containing bucket (bucket i
	// spans [bounds[i-1], bounds[i])); no such i means overflow.
	return sort.Search(histBuckets, func(i int) bool { return d < bucketBounds[i] })
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of the recorded samples.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// bucketRange returns the [lo, hi) duration range of bucket i.
func bucketRange(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, bucketBounds[0]
	}
	lo = bucketBounds[i-1]
	if i >= histBuckets {
		// Overflow: report its start; interpolation degrades to the bound.
		return lo, lo
	}
	return lo, bucketBounds[i]
}

// Quantile returns the q-quantile (q in [0,1]) with linear interpolation
// inside the containing bucket, clamped by the exact observed maximum so a
// sparse tail cannot report a latency nobody experienced.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var seen float64
	for i := 0; i <= histBuckets; i++ {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := bucketRange(i)
			var v time.Duration
			if hi <= lo {
				v = lo
			} else {
				frac := (rank - seen) / c
				v = lo + time.Duration(frac*float64(hi-lo))
			}
			if max := h.Max(); v > max {
				v = max
			}
			return v
		}
		seen += c
	}
	return h.Max()
}

// Merge folds other's samples into h. Both histograms share the package's
// fixed bucket layout, so merging is a flat array sum.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		cur, om := h.max.Load(), other.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// LatencySummary is the serializable digest of one histogram, in
// milliseconds for human- and JSON-friendly reporting.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Summary digests the histogram.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: ms(h.Mean()),
		P50Ms:  ms(h.Quantile(0.50)),
		P90Ms:  ms(h.Quantile(0.90)),
		P99Ms:  ms(h.Quantile(0.99)),
		P999Ms: ms(h.Quantile(0.999)),
		MaxMs:  ms(h.Max()),
	}
}

// String renders the digest for CLI output.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms",
		s.Count, s.P50Ms, s.P99Ms, s.P999Ms, s.MaxMs)
}
