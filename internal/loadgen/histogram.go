// Package loadgen is the composed-system load harness: it drives the full
// /v1 HTTP stack — middleware, delivery engines, group-commit WAL, event
// bus, SSE — with IRT-simulated learner cohorts arriving on an open-loop
// Poisson schedule, and reports per-route latency quantiles, error rates
// and a capacity summary (the highest sustained arrival rate that meets a
// p99 SLO).
//
// Open-loop means virtual learners arrive when the schedule says they
// arrive, regardless of how slowly the server is answering. A closed-loop
// driver (a fixed worker pool issuing the next request only after the
// previous one returns) silently sheds offered load exactly when the
// server degrades, which hides the latency the real population would have
// seen — the coordinated-omission trap. Here the arrival process never
// waits on the system under test: a stalled server produces more
// in-flight learners and honest tail latencies, not a quietly shrunken
// request rate.
package loadgen

import (
	"time"

	"mineassess/internal/obs"
)

// The log-bucketed latency histogram was born here in PR 7 and promoted to
// internal/obs in PR 8 so the server interior (journal, bus, livestats,
// HTTP routes) records into the same structure the harness reports from.
// These aliases keep the harness API and its recorded semantics identical:
// the obs.Latency layout is byte-for-byte the PR 7 layout (84 buckets,
// 50µs floor, 2^0.25 growth, binary-search bucketFor, max-clamped
// interpolated quantiles).
type (
	// Histogram is the shared lock-free log-bucketed latency histogram.
	Histogram = obs.Histogram
	// LatencySummary is the serializable digest of one histogram.
	LatencySummary = obs.LatencySummary
)

// Layout constants, re-exported for the package's own bucket math.
const (
	histBuckets = 84
	histFloor   = 50 * time.Microsecond
)

// bucketFor returns the index whose range contains d (see obs.Layout).
func bucketFor(d time.Duration) int { return obs.Latency.BucketFor(int64(d)) }

// bucketRange returns the [lo, hi) duration range of bucket i.
func bucketRange(i int) (lo, hi time.Duration) {
	l, h := obs.Latency.BucketRange(i)
	return time.Duration(l), time.Duration(h)
}

// bucketBounds[i] is the exclusive upper bound of bucket i, rebuilt from
// the shared layout so the harness's boundary tests keep pinning it.
var bucketBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	for i := 0; i < histBuckets; i++ {
		lo, _ := obs.Latency.BucketRange(i + 1)
		b[i] = time.Duration(lo)
	}
	return b
}()

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return obs.Ms(d) }
