package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Phase is one segment of the offered-load profile: arrivals follow a
// Poisson process whose rate moves linearly from StartRate to EndRate
// (arrivals/second) over Duration. A ramp is StartRate < EndRate; a soak
// holds them equal.
type Phase struct {
	Name      string        `json:"name"`
	Duration  time.Duration `json:"duration"`
	StartRate float64       `json:"startRate"`
	EndRate   float64       `json:"endRate"`
}

// Schedule is a deterministic open-loop arrival plan: given the same seed
// and phases, Arrivals always returns the same offsets, so a run's offered
// load is reproducible independent of how the server behaves.
type Schedule struct {
	Phases []Phase
	Seed   int64
}

// RampSoak builds the harness's standard profile: an optional linear ramp
// from rate/10 up to rate, then a constant soak at rate.
func RampSoak(rate float64, ramp, soak time.Duration, seed int64) Schedule {
	var phases []Phase
	if ramp > 0 {
		phases = append(phases, Phase{Name: "ramp", Duration: ramp, StartRate: rate / 10, EndRate: rate})
	}
	if soak > 0 {
		phases = append(phases, Phase{Name: "soak", Duration: soak, StartRate: rate, EndRate: rate})
	}
	return Schedule{Phases: phases, Seed: seed}
}

// Duration is the schedule's planned wall-clock length.
func (s Schedule) Duration() time.Duration {
	var total time.Duration
	for _, p := range s.Phases {
		total += p.Duration
	}
	return total
}

// validate rejects unusable profiles.
func (s Schedule) validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("loadgen: schedule has no phases")
	}
	for i, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("loadgen: phase %d (%s) duration %v must be positive", i, p.Name, p.Duration)
		}
		if p.StartRate < 0 || p.EndRate < 0 {
			return fmt.Errorf("loadgen: phase %d (%s) rates must be non-negative", i, p.Name)
		}
		if p.StartRate == 0 && p.EndRate == 0 {
			return fmt.Errorf("loadgen: phase %d (%s) offers no load", i, p.Name)
		}
	}
	return nil
}

// rampSlice is the piecewise-constant approximation step for time-varying
// rates: within each slice the rate is frozen at its midpoint value and
// arrivals are drawn as an ordinary homogeneous Poisson process. 100ms
// slices keep the approximation error far below Poisson noise for any
// realistic ramp.
const rampSlice = 100 * time.Millisecond

// Arrivals precomputes every arrival offset from the schedule start.
// Computing the full plan up front is what makes the generator open-loop:
// the arrival times exist before the first request is sent, so nothing the
// server does can move them.
func (s Schedule) Arrivals() ([]time.Duration, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var out []time.Duration
	var phaseStart time.Duration
	for _, p := range s.Phases {
		for sliceStart := time.Duration(0); sliceStart < p.Duration; sliceStart += rampSlice {
			sliceEnd := sliceStart + rampSlice
			if sliceEnd > p.Duration {
				sliceEnd = p.Duration
			}
			mid := float64(sliceStart+sliceEnd) / 2 / float64(p.Duration)
			rate := p.StartRate + (p.EndRate-p.StartRate)*mid
			if rate <= 0 {
				continue
			}
			// Homogeneous Poisson arrivals within the slice: exponential
			// inter-arrival gaps at the frozen rate.
			t := sliceStart + expGap(rng, rate)
			for t < sliceEnd {
				out = append(out, phaseStart+t)
				t += expGap(rng, rate)
			}
		}
		phaseStart += p.Duration
	}
	return out, nil
}

// expGap draws one exponential inter-arrival gap for rate arrivals/second.
func expGap(rng *rand.Rand, rate float64) time.Duration {
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

// Run fires the schedule in real time: for each precomputed arrival it
// sleeps until the arrival is due, then invokes fire synchronously with the
// arrival's index and its lateness (how far behind schedule the invocation
// is; 0 when on time).
//
// Run never skips, coalesces or delays-to-shed arrivals: if fire is slow or
// the process stalls, subsequent arrivals are invoked late — and reported
// late — rather than silently dropped. Callers that must not be slowed by
// their own work (the Runner) spawn a goroutine inside fire; the callback
// itself should be cheap.
//
// Returns the number of arrivals fired; ctx cancellation stops the
// remainder and reports how many fired before the cut.
func (s Schedule) Run(ctx context.Context, fire func(i int, lateness time.Duration)) (int, error) {
	arrivals, err := s.Arrivals()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for i, due := range arrivals {
		wait := time.Until(start.Add(due))
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return i, ctx.Err()
			}
		} else if ctx.Err() != nil {
			return i, ctx.Err()
		}
		late := time.Since(start.Add(due))
		if late < 0 {
			late = 0
		}
		fire(i, late)
	}
	return len(arrivals), nil
}
