package loadgen

import (
	"errors"
	"fmt"

	"mineassess/internal/bank"
	"mineassess/internal/item"
	"mineassess/internal/simulate"
	"mineassess/pkg/client"
)

// BankConfig describes the two exams the harness drives: a fixed-form exam
// for linear sittings and SSE watchers, and a calibrated pool for adaptive
// sittings.
type BankConfig struct {
	// FixedExamID and Questions shape the fixed-form exam.
	FixedExamID string
	Questions   int
	// CATExamID and PoolSize shape the calibrated adaptive pool.
	CATExamID string
	PoolSize  int
	// Discrimination and Spread parameterize item difficulty: pool
	// difficulties cover [-Spread, Spread] at discrimination a.
	Discrimination float64
	Spread         float64
}

// withDefaults fills zero fields.
func (b BankConfig) withDefaults() BankConfig {
	if b.FixedExamID == "" {
		b.FixedExamID = "loadgen-fixed"
	}
	if b.Questions <= 0 {
		b.Questions = 10
	}
	if b.CATExamID == "" {
		b.CATExamID = "loadgen-cat"
	}
	if b.PoolSize <= 0 {
		b.PoolSize = 60
	}
	if b.Discrimination <= 0 {
		b.Discrimination = 1.6
	}
	if b.Spread <= 0 {
		b.Spread = 3
	}
	return b
}

// SeededBank is what EnsureBank hands back: the exam IDs plus the item
// parameters the simulated learners answer under (the learner model and
// the calibration the server selects items with are the same 3PL
// parameters, so the cohort behaves like the population the pool was
// calibrated for).
type SeededBank struct {
	FixedExamID string
	FixedOrder  []string
	FixedParams map[string]simulate.IRTParams
	CATExamID   string
	CATParams   map[string]simulate.IRTParams
}

// EnsureBank creates the harness's exams through the /v1 authoring API,
// tolerating a server that already holds them (re-runs against a
// long-lived target are idempotent). Everything goes through the client so
// remote and in-process targets are seeded by the identical code path.
func EnsureBank(c *client.Client, cfg BankConfig) (*SeededBank, error) {
	cfg = cfg.withDefaults()
	sb := &SeededBank{
		FixedExamID: cfg.FixedExamID,
		FixedParams: make(map[string]simulate.IRTParams, cfg.Questions),
		CATExamID:   cfg.CATExamID,
		CATParams:   make(map[string]simulate.IRTParams, cfg.PoolSize),
	}

	// Fixed-form exam: difficulties spread evenly, correct option A.
	fixedIDs := make([]string, 0, cfg.Questions)
	for i := 0; i < cfg.Questions; i++ {
		id := fmt.Sprintf("%s-q%03d", cfg.FixedExamID, i+1)
		b := -cfg.Spread/2 + cfg.Spread*float64(i)/float64(max(cfg.Questions-1, 1))
		if err := ensureProblem(c, id, "load harness fixed-form item"); err != nil {
			return nil, err
		}
		sb.FixedParams[id] = simulate.IRTParams{A: cfg.Discrimination, B: b}
		fixedIDs = append(fixedIDs, id)
	}
	if err := ensureExam(c, &bank.ExamRecord{
		ID: cfg.FixedExamID, Title: "Load harness fixed form", ProblemIDs: fixedIDs,
	}); err != nil {
		return nil, err
	}
	sb.FixedOrder = fixedIDs

	// Calibrated adaptive pool: difficulties cover [-Spread, Spread], with
	// ItemParams stored on the exam so /v1/adaptive-sessions accepts it.
	catIDs := make([]string, 0, cfg.PoolSize)
	catParams := make(map[string]simulate.IRTParams, cfg.PoolSize)
	for i := 0; i < cfg.PoolSize; i++ {
		id := fmt.Sprintf("%s-q%03d", cfg.CATExamID, i+1)
		b := -cfg.Spread + 2*cfg.Spread*float64(i)/float64(max(cfg.PoolSize-1, 1))
		if err := ensureProblem(c, id, "load harness adaptive pool item"); err != nil {
			return nil, err
		}
		catParams[id] = simulate.IRTParams{A: cfg.Discrimination, B: b}
		catIDs = append(catIDs, id)
	}
	if err := ensureExam(c, &bank.ExamRecord{
		ID: cfg.CATExamID, Title: "Load harness adaptive pool",
		ProblemIDs: catIDs, ItemParams: catParams,
	}); err != nil {
		return nil, err
	}
	sb.CATParams = catParams
	return sb, nil
}

// ensureProblem creates one MC problem, treating "already exists" as
// success.
func ensureProblem(c *client.Client, id, subject string) error {
	p, err := item.NewMultipleChoice(id, subject, []string{"alpha", "beta", "gamma", "delta"}, 0)
	if err != nil {
		return err
	}
	if err := c.CreateProblem(p); err != nil && !isCode(err, client.CodeProblemExists) {
		return fmt.Errorf("loadgen: seed problem %s: %w", id, err)
	}
	return nil
}

// ensureExam creates one exam, treating "already exists" as success.
func ensureExam(c *client.Client, rec *bank.ExamRecord) error {
	if err := c.CreateExam(rec); err != nil && !isCode(err, client.CodeExamExists) {
		return fmt.Errorf("loadgen: seed exam %s: %w", rec.ID, err)
	}
	return nil
}

// isCode reports whether err is an APIError carrying the given code.
func isCode(err error, code client.Code) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.Code == code
}
