package loadgen

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestArrivalsDeterministic(t *testing.T) {
	s := RampSoak(500, 2*time.Second, 8*time.Second, 42)
	a, err := s.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Arrivals()
	if len(a) != len(b) {
		t.Fatalf("same seed gave %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed draws a different plan.
	c, _ := Schedule{Phases: s.Phases, Seed: 43}.Arrivals()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

func TestArrivalsShape(t *testing.T) {
	const rate, soak = 1000.0, 10 * time.Second
	s := RampSoak(rate, 0, soak, 7)
	arr, err := s.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	// Poisson count over 10s at 1000/s: mean 10000, sd 100. 5 sd of slack
	// makes a flake astronomically unlikely while still catching rate bugs.
	want := rate * soak.Seconds()
	if got := float64(len(arr)); math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("drew %d arrivals, want ~%.0f", len(arr), want)
	}
	// Offsets are sorted and inside the schedule window.
	for i, a := range arr {
		if a < 0 || a >= soak {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, a, soak)
		}
		if i > 0 && a < arr[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
	// A ramp front-loads fewer arrivals than the soak: the first half of a
	// rate/10 -> rate ramp must hold well under half its arrivals.
	ramped := RampSoak(rate, soak, 0, 7)
	rarr, _ := ramped.Arrivals()
	half := 0
	for _, a := range rarr {
		if a < soak/2 {
			half++
		}
	}
	if frac := float64(half) / float64(len(rarr)); frac > 0.45 {
		t.Errorf("ramp first half carries %.0f%% of arrivals, want well under 50%%", frac*100)
	}
}

func TestScheduleValidate(t *testing.T) {
	if _, err := (Schedule{}).Arrivals(); err == nil {
		t.Error("empty schedule must be rejected")
	}
	if _, err := (Schedule{Phases: []Phase{{Duration: -time.Second, StartRate: 1, EndRate: 1}}}).Arrivals(); err == nil {
		t.Error("negative duration must be rejected")
	}
	if _, err := (Schedule{Phases: []Phase{{Duration: time.Second}}}).Arrivals(); err == nil {
		t.Error("zero-rate phase must be rejected")
	}
}

// TestRunOpenLoopUnderSlowConsumer is the harness's core honesty property:
// when the work triggered by each arrival is slow (a degraded server), the
// generator must still fire every planned arrival — late and reported as
// late — rather than skipping or rescheduling them. A closed-loop driver
// fails exactly this: its offered load collapses to the consumer's pace.
func TestRunOpenLoopUnderSlowConsumer(t *testing.T) {
	s := RampSoak(200, 0, time.Second, 11)
	planned, _ := s.Arrivals()

	// Synchronous slow callback: the scheduler itself is stalled 1ms per
	// arrival (~5x the mean 0.2ms gap), so lateness must accumulate — yet
	// every arrival still fires.
	var fired int
	var maxLate time.Duration
	n, err := s.Run(context.Background(), func(i int, late time.Duration) {
		fired++
		if late > maxLate {
			maxLate = late
		}
		time.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(planned) || fired != len(planned) {
		t.Fatalf("fired %d/%d arrivals", fired, len(planned))
	}
	if maxLate == 0 {
		t.Error("a stalled consumer must be visible as recorded lateness")
	}
}

// TestRunHoldsOfferedRate: with fire dispatching to goroutines (how the
// Runner uses it), slow per-arrival work must not stretch the schedule —
// the wall clock of the run stays the planned duration, not
// arrivals x work.
func TestRunHoldsOfferedRate(t *testing.T) {
	const work = 300 * time.Millisecond
	s := RampSoak(100, 0, time.Second, 13)
	planned, _ := s.Arrivals()

	var wg sync.WaitGroup
	var inFlight, peak atomic.Int64
	start := time.Now()
	n, err := s.Run(context.Background(), func(i int, late time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(work) // a server stalling every learner 300ms
			inFlight.Add(-1)
		}()
	})
	elapsed := time.Since(start)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(planned) {
		t.Fatalf("fired %d/%d", n, len(planned))
	}
	// The schedule is 1s; closed-loop behavior would need ~100x300ms of
	// serialized work. Generous bound for loaded CI machines.
	if elapsed > s.Duration()+500*time.Millisecond {
		t.Errorf("schedule took %v, want ~%v — the generator waited on its consumers", elapsed, s.Duration())
	}
	// Open-loop signature: slow work piles up concurrent learners instead
	// of thinning arrivals. 100 arrivals/s x 0.3s work ≈ 30 in flight.
	if peak.Load() < 10 {
		t.Errorf("peak in-flight = %d, want the backlog an open-loop generator must accumulate", peak.Load())
	}
}

func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := RampSoak(50, 0, 10*time.Second, 17)
	fired := 0
	done := make(chan struct{})
	var n int
	var err error
	go func() {
		defer close(done)
		n, err = s.Run(ctx, func(int, time.Duration) {
			fired++
			if fired == 5 {
				cancel()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != fired {
		t.Errorf("reported %d fired, callback saw %d", n, fired)
	}
}
