package loadgen

// Per-phase latency attribution from captured trace trees. A capacity run
// tells you *when* the knee arrives; the traces tell you *where* the added
// milliseconds live once it does. BuildTraceReport folds every retained and
// recent trace from the in-process target's tail sampler into one table:
// each pipeline phase (HTTP edge, engine, WAL commit with its enqueue-wait /
// batch-wait / fsync sub-phases, bus publish, SSE frame writes) gets a
// sample population and its p50/p99/max, so the report reads "the knee is a
// batch-wait knee" rather than just "p99 doubled".

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"mineassess/internal/trace"
)

// PhaseStat summarizes one pipeline phase's latency population across the
// captured traces. Sub is true for WAL sub-phases, which render indented
// under wal.commit.
type PhaseStat struct {
	Phase string  `json:"phase"`
	Sub   bool    `json:"sub,omitempty"`
	Count int     `json:"count"`
	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

// TraceReport is the aggregated attribution across every distinct captured
// trace (retained ∪ recent, deduplicated by trace ID).
type TraceReport struct {
	Traces   int         `json:"traces"`
	Retained int         `json:"retained"`
	Phases   []PhaseStat `json:"phases"`
}

// phaseOrder fixes the table's row order top-down along the request path.
var phaseOrder = []struct {
	key string
	sub bool
}{
	{"http.edge", false},
	{"engine", false},
	{"wal.commit", false},
	{"wal.enqueue-wait", true},
	{"wal.batch-wait", true},
	{"wal.fsync", true},
	{"bus.publish", false},
	{"sse.stream", false},
	{"sse.frame", true},
}

// BuildTraceReport folds retained and recent trace trees (as returned by
// trace.Tracer.Retained/Recent) into per-phase latency statistics. Traces
// appearing in both sinks count once.
func BuildTraceReport(retained, recent []*trace.TraceData) *TraceReport {
	samples := make(map[string][]float64, len(phaseOrder))
	seen := make(map[string]bool, len(retained)+len(recent))
	n := 0
	for _, td := range retained {
		if td.Root == nil || seen[td.TraceID] {
			continue
		}
		seen[td.TraceID] = true
		n++
		foldTrace(td, samples)
	}
	retainedN := n
	for _, td := range recent {
		if td.Root == nil || seen[td.TraceID] {
			continue
		}
		seen[td.TraceID] = true
		n++
		foldTrace(td, samples)
	}
	rep := &TraceReport{Traces: n, Retained: retainedN}
	for _, ph := range phaseOrder {
		vals := samples[ph.key]
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		rep.Phases = append(rep.Phases, PhaseStat{
			Phase: ph.key,
			Sub:   ph.sub,
			Count: len(vals),
			P50Ms: quantileMs(vals, 0.50),
			P99Ms: quantileMs(vals, 0.99),
			MaxMs: vals[len(vals)-1],
		})
	}
	return rep
}

// foldTrace attributes one trace's time to phases. Exclusive accounting on
// the containers: the HTTP edge sample is root minus its engine children,
// and each engine sample is the engine span minus the WAL and bus time
// nested inside it, so a phase's milliseconds are claimed exactly once.
func foldTrace(td *trace.TraceData, samples map[string][]float64) {
	root := td.Root
	engineMs, streaming := 0.0, false
	for _, c := range root.Children {
		if isEngineSpan(c.Name) {
			engineMs += c.DurationMS
			inner := foldSpan(c, samples)
			samples["engine"] = append(samples["engine"], max0(c.DurationMS-inner))
			continue
		}
		if c.Name == "sse.frame" {
			streaming = true
		}
		foldSpan(c, samples)
	}
	// An SSE stream's root span lasts as long as the watcher stays
	// subscribed — that duration is subscription length, not edge latency,
	// so streaming roots get their own row instead of skewing http.edge.
	if streaming {
		samples["sse.stream"] = append(samples["sse.stream"], root.DurationMS)
		return
	}
	samples["http.edge"] = append(samples["http.edge"], max0(root.DurationMS-engineMs))
}

// foldSpan walks a subtree recording WAL/bus/SSE leaf phases; it returns
// the milliseconds it attributed, so callers can subtract nested phases
// from their own exclusive time.
func foldSpan(sd *trace.SpanData, samples map[string][]float64) float64 {
	switch sd.Name {
	case "wal.commit":
		samples["wal.commit"] = append(samples["wal.commit"], sd.DurationMS)
		for _, c := range sd.Children {
			if strings.HasPrefix(c.Name, "wal.") {
				samples[c.Name] = append(samples[c.Name], c.DurationMS)
			}
		}
		return sd.DurationMS
	case "bus.publish", "sse.frame":
		samples[sd.Name] = append(samples[sd.Name], sd.DurationMS)
		return sd.DurationMS
	}
	claimed := 0.0
	for _, c := range sd.Children {
		claimed += foldSpan(c, samples)
	}
	return claimed
}

// isEngineSpan recognizes the delivery/catdelivery engine call spans.
func isEngineSpan(name string) bool {
	return strings.HasPrefix(name, "engine.") || strings.HasPrefix(name, "cat.")
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// quantileMs reads quantile q from an ascending-sorted sample slice
// (nearest-rank, matching the obs histogram's reporting convention).
func quantileMs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteTraceReport renders the attribution table. WAL sub-phases indent
// under wal.commit; their sum can undershoot the parent (time between the
// waiter's enqueue and the committer noticing) but never exceeds it.
func WriteTraceReport(w io.Writer, rep *TraceReport) {
	fmt.Fprintf(w, "\n--- phase attribution (%d traces, %d tail-retained) ---\n", rep.Traces, rep.Retained)
	if rep.Traces == 0 {
		fmt.Fprintln(w, "no traces captured (is the target traced? hermetic mode needs -trace)")
		return
	}
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "PHASE\tCOUNT\tP50 ms\tP99 ms\tMAX ms\t")
	for _, ps := range rep.Phases {
		name := ps.Phase
		if ps.Sub {
			name = "  " + name
		}
		// tabwriter right-aligns every cell; the phase name cell keeps its
		// indent by padding on the right instead.
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t\n", name, ps.Count, ps.P50Ms, ps.P99Ms, ps.MaxMs)
	}
	tw.Flush()
}
