package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the full exposition byte-for-byte: family
// ordering (sorted by name), series ordering (sorted by label identity),
// HELP/TYPE lines, cumulative histogram buckets with scaled le bounds,
// and label escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", L("route", "/v1/x")).Add(3)
	r.Counter("app_requests_total", "Requests served.", L("route", "/v1/y")).Add(1)
	r.Gauge("app_depth", "Queue depth.").Set(7)
	r.GaugeFunc("app_ratio", "Computed ratio.", func() float64 { return 0.25 })
	// Label value exercising every escape: backslash, quote, newline.
	r.Counter("app_odd_total", "Help with \\ and\nnewline.", L("name", "a\\b\"c\nd")).Inc()
	// Tiny layout so the golden stays readable: bounds 10,20,40, scale 10.
	lay := ExpLayout(10, 2, 3, 10)
	h := r.Histogram("app_size", "Sizes.", lay)
	h.ObserveValue(5)   // bucket 0 (< 10)
	h.ObserveValue(15)  // bucket 1 [10,20)
	h.ObserveValue(15)  // bucket 1
	h.ObserveValue(999) // overflow

	const want = `# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth 7
# HELP app_odd_total Help with \\ and\nnewline.
# TYPE app_odd_total counter
app_odd_total{name="a\\b\"c\nd"} 1
# HELP app_ratio Computed ratio.
# TYPE app_ratio gauge
app_ratio 0.25
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{route="/v1/x"} 3
app_requests_total{route="/v1/y"} 1
# HELP app_size Sizes.
# TYPE app_size histogram
app_size_bucket{le="1"} 1
app_size_bucket{le="2"} 3
app_size_bucket{le="4"} 3
app_size_bucket{le="+Inf"} 4
app_size_sum 103.4
app_size_count 4
`
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// A second scrape is byte-identical: ordering is stable.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb.String() != sb2.String() {
		t.Error("repeated scrape changed output ordering")
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Add(2)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 1<<12)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 2") {
		t.Errorf("body missing counter: %q", buf[:n])
	}
}

func TestLatencyLayoutMatchesLoadgenHeritage(t *testing.T) {
	// The promoted layout must preserve the PR 7 recording semantics:
	// 84 buckets, 50µs floor, 4 buckets per octave, nanosecond scale 1e9.
	if Latency.Buckets() != 84 {
		t.Fatalf("Latency buckets = %d, want 84", Latency.Buckets())
	}
	if _, hi := Latency.BucketRange(0); hi != 50_000 {
		t.Fatalf("Latency floor = %dns, want 50000", hi)
	}
	if Latency.BucketFor(2*50_000) != 5 {
		t.Fatal("Latency growth is not 4 buckets per octave")
	}
	if Latency.Scale() != 1e9 {
		t.Fatal("Latency must expose seconds")
	}
}
