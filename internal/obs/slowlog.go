package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// SlowOpLog emits one structured warning per operation that exceeds a
// threshold, carrying the request ID from the context so slow-request
// lines correlate across the HTTP, engine and WAL layers. The zero value
// is disabled; Configure arms it. All methods are safe for concurrent use
// and free when disabled (Begin returns the zero time without reading the
// clock).
type SlowOpLog struct {
	cfg atomic.Pointer[slowCfg]
}

type slowCfg struct {
	log       *slog.Logger
	layer     string
	threshold time.Duration
}

// Configure arms the log: operations in layer taking >= threshold are
// logged at Warn through logger. A nil logger or non-positive threshold
// disables it again.
func (s *SlowOpLog) Configure(logger *slog.Logger, layer string, threshold time.Duration) {
	if logger == nil || threshold <= 0 {
		s.cfg.Store(nil)
		return
	}
	s.cfg.Store(&slowCfg{log: logger, layer: layer, threshold: threshold})
}

// Begin stamps the start of an operation, or returns the zero time when
// the log is disabled (so callers skip the clock read on the fast path).
func (s *SlowOpLog) Begin() time.Time {
	if s == nil || s.cfg.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

// Done closes the operation opened by Begin; if it ran past the threshold
// a "slow op" warning is emitted with the context's request ID.
func (s *SlowOpLog) Done(ctx context.Context, op, session string, start time.Time) {
	if start.IsZero() {
		return
	}
	cfg := s.cfg.Load()
	if cfg == nil {
		return
	}
	d := time.Since(start)
	if d < cfg.threshold {
		return
	}
	cfg.log.LogAttrs(ctx, slog.LevelWarn, "slow op",
		slog.String(LogKeyRequestID, RequestIDFrom(ctx)),
		slog.String(LogKeyLayer, cfg.layer),
		slog.String(LogKeyOp, op),
		slog.String(LogKeySession, session),
		slog.Float64(LogKeyDurationMS, float64(d)/1e6),
	)
}
