package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4). Families are emitted sorted
// by name and series sorted by canonical label identity, so the output is
// byte-stable for a given set of registered series and values — the golden
// test relies on this.

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {k="v",...}; extra is appended last (used for the
// histogram le label) and must already be escaped.
func writeLabels(w *bufio.Writer, labels []Label, extra string) {
	if len(labels) == 0 && extra == "" {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(l.Value))
		w.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extra)
	}
	w.WriteByte('}')
}

// WritePrometheus renders every registered series in Prometheus text
// format. Histograms emit cumulative <name>_bucket{le=...} series plus
// <name>_sum and <name>_count, with bucket bounds and sums divided by the
// layout's scale (so nanosecond latency histograms expose seconds, the
// Prometheus convention). Nil receiver writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.view() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				bw.WriteString(f.name)
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(s.ctr.Value(), 10))
				bw.WriteByte('\n')
			case KindGauge:
				v := float64(s.gauge.Value())
				if fn := s.fn.Load(); fn != nil {
					v = (*fn)()
				}
				bw.WriteString(f.name)
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(fmtFloat(v))
				bw.WriteByte('\n')
			case KindHistogram:
				h := s.hist
				lay := h.Layout()
				scale := lay.Scale()
				counts := h.snapshotCounts()
				var cum int64
				for i, c := range counts {
					cum += c
					le := "+Inf"
					if i < lay.Buckets() {
						_, hi := lay.BucketRange(i)
						le = fmtFloat(float64(hi) / scale)
					}
					bw.WriteString(f.name)
					bw.WriteString("_bucket")
					writeLabels(bw, s.labels, `le="`+le+`"`)
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatInt(cum, 10))
					// OpenMetrics exemplar suffix, only on buckets a traced
					// observation actually hit — histograms without
					// exemplars render byte-identically to the pre-exemplar
					// format (the golden test's contract).
					if e := h.ExemplarAt(i); e != nil {
						bw.WriteString(` # {trace_id="`)
						bw.WriteString(escapeLabelValue(e.TraceID))
						bw.WriteString(`"} `)
						bw.WriteString(fmtFloat(float64(e.Value) / scale))
					}
					bw.WriteByte('\n')
				}
				n, sum := h.CountSum()
				bw.WriteString(f.name)
				bw.WriteString("_sum")
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(fmtFloat(float64(sum) / scale))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_count")
				writeLabels(bw, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(n, 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// Handler serves the registry as Prometheus text exposition — mount it on
// the ops listener, never on the learner-facing address.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
