package obs

import "context"

// The request ID travels by context from the HTTP middleware down through
// the delivery engines to the WAL-adjacent persist paths, so one slow
// request correlates across every layer's structured log lines. The key
// lives here — the lowest common import — so engines need not depend on
// the HTTP package to read it.

type requestIDKey struct{}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID, or "" if none is set.
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
