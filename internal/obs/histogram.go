package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// maxBuckets is the largest finite bucket count a Layout may declare. The
// histogram embeds a fixed-size counts array (rather than a slice sized per
// layout) so the zero value is ready to use and construction never
// allocates on a hot path.
const maxBuckets = 84

// Layout describes a histogram's bucket boundaries plus the scale used at
// exposition time (raw recorded value / scale = exported unit). Layouts are
// process constants: build them once at init and share them; a Layout is
// immutable after construction.
type Layout struct {
	bounds []int64 // exclusive upper bound of bucket i, ascending
	scale  float64 // exposition divisor (1e9 turns nanoseconds into seconds)
}

// ExpLayout builds a log-spaced layout: bucket boundaries grow by growth per
// bucket starting at floor. Observations below the floor land in bucket 0;
// observations beyond the last boundary land in the overflow bucket. The
// running boundary is kept in float64 and truncated per bucket, matching the
// layout the load harness has recorded against since PR 7.
func ExpLayout(floor int64, growth float64, buckets int, scale float64) Layout {
	if buckets < 1 || buckets > maxBuckets {
		panic(fmt.Sprintf("obs: layout wants %d buckets, max is %d", buckets, maxBuckets))
	}
	if floor < 1 || growth <= 1 {
		panic("obs: layout needs floor >= 1 and growth > 1")
	}
	b := make([]int64, buckets)
	bound := float64(floor)
	for i := range b {
		b[i] = int64(bound)
		bound *= growth
	}
	return Layout{bounds: b, scale: scale}
}

// Latency is the canonical latency layout: 84 buckets from 50µs growing by
// 2^0.25 (4 buckets per octave), spanning past a minute with ~19% worst-case
// quantile resolution. Values are nanoseconds; exposition is in seconds.
var Latency = ExpLayout(int64(50*time.Microsecond), math.Pow(2, 0.25), 84, 1e9)

// Sizes is a power-of-two layout for count-valued distributions (batch
// sizes, queue depths): 20 buckets from 1 to 2^19, exposed unscaled.
var Sizes = ExpLayout(1, 2, 20, 1)

// Buckets returns the number of finite buckets (the overflow bucket is
// extra).
func (l Layout) Buckets() int { return len(l.bounds) }

// Scale returns the exposition divisor.
func (l Layout) Scale() float64 { return l.scale }

// BucketFor returns the index whose range contains v. The precomputed
// bounds are the single source of truth (a log/exp round trip disagrees
// with the truncated integer bounds at exact boundaries); a binary search
// over ≤84 entries costs ~7 comparisons, noise next to the atomic add.
//
//assess:hotpath
func (l Layout) BucketFor(v int64) int {
	if v < l.bounds[0] {
		return 0
	}
	// Smallest i with v < bounds[i] is the containing bucket (bucket i
	// spans [bounds[i-1], bounds[i])); no such i means overflow.
	return sort.Search(len(l.bounds), func(i int) bool { return v < l.bounds[i] })
}

// BucketRange returns the [lo, hi) value range of bucket i.
func (l Layout) BucketRange(i int) (lo, hi int64) {
	if i == 0 {
		return 0, l.bounds[0]
	}
	lo = l.bounds[i-1]
	if i >= len(l.bounds) {
		// Overflow: report its start; interpolation degrades to the bound.
		return lo, lo
	}
	return lo, l.bounds[i]
}

// Histogram is a fixed-layout log-bucketed histogram. Observe is lock-free
// (one atomic add per call plus a max CAS loop) and allocation-free, so
// thousands of goroutines can record into one histogram without
// serializing on it. The zero value is ready to use and carries the
// Latency layout; use NewHistogram (or Registry.Histogram) for any other
// layout. A nil *Histogram is a no-op recorder, so call sites can
// instrument unconditionally.
type Histogram struct {
	lay    Layout
	counts [maxBuckets + 1]atomic.Int64 // +1: overflow
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	// ex holds per-bucket trace exemplars, allocated lazily on the first
	// traced observation so untraced histograms stay exactly as cheap as
	// before (one nil pointer per struct, no record-path cost).
	ex atomic.Pointer[exemplarSet]
	// exCtr decimates exemplar refreshes: last-write-wins semantics mean a
	// store per observation is pure waste at high rates (each store heap-
	// allocates an Exemplar), so an occupied bucket slot refreshes 1-in-16.
	exCtr atomic.Uint64
}

// exemplarSet is one exemplar slot per bucket (overflow included).
type exemplarSet [maxBuckets + 1]atomic.Pointer[Exemplar]

// Exemplar links one bucket of a histogram to a retained trace: the trace
// ID of a recent observation that landed in the bucket, plus the observed
// raw value. Reading a p99 bucket's exemplar answers "show me one actual
// slow request behind this number".
type Exemplar struct {
	TraceID string
	Value   int64
}

// NewHistogram returns a histogram with the given layout.
func NewHistogram(lay Layout) *Histogram {
	return &Histogram{lay: lay}
}

// Layout returns the effective layout (Latency for the zero value).
func (h *Histogram) Layout() Layout {
	if h.lay.bounds == nil {
		return Latency
	}
	return h.lay
}

// ObserveValue records one raw sample. Negative samples clamp to zero.
//
// Ordering note: the sum is published before the count so that a reader
// who loads count=n is guaranteed the sum already covers at least those n
// samples — the foundation of CountSum's skew bound.
//
//assess:hotpath
func (h *Histogram) ObserveValue(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[h.Layout().BucketFor(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe records one latency sample.
//
//assess:hotpath
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(int64(d)) }

// ObserveValueTraced records one raw sample and, when traceID is
// non-empty, stamps it as the exemplar of the sample's bucket (last write
// wins — the exemplar is a pointer to *an* instance, not a reservoir).
// The untraced path (traceID == "") is ObserveValue plus one branch; the
// traced path allocates one Exemplar, which only trace-carrying requests
// ever pay.
func (h *Histogram) ObserveValueTraced(v int64, traceID string) {
	if h == nil {
		return
	}
	h.ObserveValue(v)
	if traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	set := h.ex.Load()
	if set == nil {
		set = new(exemplarSet)
		if !h.ex.CompareAndSwap(nil, set) {
			set = h.ex.Load()
		}
	}
	// An empty bucket takes its first exemplar immediately; an occupied one
	// refreshes 1-in-16 (keeping the linked trace recent enough to still be
	// in the tracer's rings) so the hot record path allocates almost never.
	slot := &set[h.Layout().BucketFor(v)]
	if slot.Load() != nil && h.exCtr.Add(1)&15 != 0 {
		return
	}
	slot.Store(&Exemplar{TraceID: traceID, Value: v})
}

// ObserveTraced records one latency sample with a trace exemplar.
func (h *Histogram) ObserveTraced(d time.Duration, traceID string) {
	h.ObserveValueTraced(int64(d), traceID)
}

// ExemplarAt returns bucket i's exemplar, or nil when the bucket (or the
// whole histogram) has never seen a traced observation.
func (h *Histogram) ExemplarAt(i int) *Exemplar {
	if h == nil {
		return nil
	}
	set := h.ex.Load()
	if set == nil || i < 0 || i > maxBuckets {
		return nil
	}
	return set[i].Load()
}

// QuantileExemplar returns the trace ID exemplifying the bucket containing
// the q-quantile, scanning down to the nearest lower populated bucket when
// the exact one has no exemplar (quantile interpolation and exemplar
// stamping can disagree by a bucket). "" when nothing is linked.
func (h *Histogram) QuantileExemplar(q float64) string {
	if h == nil || h.ex.Load() == nil {
		return ""
	}
	idx := h.Layout().BucketFor(h.QuantileValue(q))
	for i := idx; i >= 0; i-- {
		if e := h.ExemplarAt(i); e != nil {
			return e.TraceID
		}
	}
	return ""
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the raw sum of recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// CountSum returns a consistent (count, sum) pair: the count is re-read
// after the sum and the read retried (bounded) until it is stable.
// Combined with ObserveValue publishing sum before count, the returned
// sum always covers every one of the counted samples — the mean is never
// understated. On the stable-read path the overshoot is bounded by one
// in-flight observation per concurrently recording goroutine; if the
// count never holds still across the retry budget, the final pair keeps
// the covers-all-counted guarantee but may include a few extra completed
// samples. Either way the skew is a handful of observations, not the
// unbounded count/total tear the pre-obs route metrics had.
func (h *Histogram) CountSum() (count, sum int64) {
	if h == nil {
		return 0, 0
	}
	count = h.count.Load()
	for i := 0; i < 4; i++ {
		sum = h.sum.Load()
		again := h.count.Load()
		if again == count {
			return count, sum
		}
		count = again
	}
	return count, h.sum.Load()
}

// MaxValue returns the largest recorded raw sample.
func (h *Histogram) MaxValue() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Max returns the largest recorded sample as a duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.MaxValue()) }

// MeanValue returns the arithmetic mean of the recorded raw samples.
func (h *Histogram) MeanValue() int64 {
	n, s := h.CountSum()
	if n == 0 {
		return 0
	}
	return s / n
}

// Mean returns the arithmetic mean as a duration.
func (h *Histogram) Mean() time.Duration { return time.Duration(h.MeanValue()) }

// QuantileValue returns the raw q-quantile (q in [0,1]) with linear
// interpolation inside the containing bucket, clamped by the exact
// observed maximum so a sparse tail cannot report a value nobody recorded.
func (h *Histogram) QuantileValue(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	lay := h.Layout()
	n := lay.Buckets()
	rank := q * float64(total)
	var seen float64
	for i := 0; i <= n; i++ {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo, hi := lay.BucketRange(i)
			v := lo
			if hi > lo {
				frac := (rank - seen) / c
				v = lo + int64(frac*float64(hi-lo))
			}
			if max := h.MaxValue(); v > max {
				v = max
			}
			return v
		}
		seen += c
	}
	return h.MaxValue()
}

// Quantile returns the q-quantile as a duration.
func (h *Histogram) Quantile(q float64) time.Duration {
	return time.Duration(h.QuantileValue(q))
}

// Merge folds other's samples into h. Both histograms must share a bucket
// layout, so merging is a flat array sum.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(other.sum.Load())
	h.count.Add(other.count.Load())
	for {
		cur, om := h.max.Load(), other.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// LatencySummary is the serializable digest of one latency histogram, in
// milliseconds for human- and JSON-friendly reporting.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// Ms converts a duration to float milliseconds.
func Ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Summary digests a latency histogram.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: Ms(h.Mean()),
		P50Ms:  Ms(h.Quantile(0.50)),
		P90Ms:  Ms(h.Quantile(0.90)),
		P99Ms:  Ms(h.Quantile(0.99)),
		P999Ms: Ms(h.Quantile(0.999)),
		MaxMs:  Ms(h.Max()),
	}
}

// String renders the digest for CLI output.
func (s LatencySummary) String() string {
	return fmt.Sprintf("n=%d p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms",
		s.Count, s.P50Ms, s.P99Ms, s.P999Ms, s.MaxMs)
}

// snapshotCounts copies the per-bucket counts for exposition.
func (h *Histogram) snapshotCounts() []int64 {
	lay := h.Layout()
	out := make([]int64, lay.Buckets()+1)
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out
}
