package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryStableIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("demo_total", "a demo counter", L("route", "/v1/x"))
	c2 := r.Counter("demo_total", "ignored later help", L("route", "/v1/x"))
	if c1 != c2 {
		t.Fatal("same name+labels must return the same counter cell")
	}
	// Label order must not matter for identity.
	h1 := r.Histogram("demo_seconds", "h", Latency, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("demo_seconds", "h", Latency, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order must not change series identity")
	}
	// Different label values are different series.
	c3 := r.Counter("demo_total", "", L("route", "/v1/y"))
	if c3 == c1 {
		t.Fatal("different label values must be distinct cells")
	}
	c1.Add(5)
	if c3.Value() != 0 || c1.Value() != 5 {
		t.Fatalf("cells leaked across series: c1=%d c3=%d", c1.Value(), c3.Value())
	}
	// Kind conflict on one name panics at registration.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict must panic")
			}
		}()
		r.Gauge("demo_total", "")
	}()
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", Latency)
	r.GaugeFunc("y", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-2)
	g.SetMax(100)
	h.Observe(time.Millisecond)
	h.ObserveValue(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles must record nothing")
	}
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("nil histogram must digest to zeros")
	}
	if n, s := h.CountSum(); n != 0 || s != 0 {
		t.Error("nil CountSum must be zeros")
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Error("nil registry must expose nothing")
	}
}

// TestRegistryScrapeUnderLoad hammers registration, recording and both
// scrape paths concurrently; run under -race this is the data-race guard
// for the whole package.
func TestRegistryScrapeUnderLoad(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("load_fn", "computed", func() float64 { return 1.5 })
	const writers, per = 8, 2000
	var writeWG, scrapeWG sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers: JSON snapshot and Prometheus text, continuously.
	for s := 0; s < 3; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Snapshot()
				var sb strings.Builder
				r.WritePrometheus(&sb)
			}
		}()
	}
	// Writers: re-lookup cells (exercising registration) and record.
	routes := []string{"/a", "/b", "/c"}
	for wkr := 0; wkr < writers; wkr++ {
		writeWG.Add(1)
		go func(wkr int) {
			defer writeWG.Done()
			for i := 0; i < per; i++ {
				route := routes[i%len(routes)]
				r.Counter("load_total", "", L("route", route)).Inc()
				r.Gauge("load_depth", "").SetMax(int64(i))
				r.Histogram("load_seconds", "", Latency, L("route", route)).
					Observe(time.Duration(i) * time.Microsecond)
			}
		}(wkr)
	}
	writeWG.Wait()
	close(stop)
	scrapeWG.Wait()

	var total int64
	for _, route := range routes {
		total += r.Counter("load_total", "", L("route", route)).Value()
	}
	if total != writers*per {
		t.Fatalf("counted %d increments, want %d", total, writers*per)
	}
	var histN int64
	for _, route := range routes {
		histN += r.Histogram("load_seconds", "", Latency, L("route", route)).Count()
	}
	if histN != writers*per {
		t.Fatalf("histogram holds %d samples, want %d", histN, writers*per)
	}
}

// TestCountSumSkewBound verifies the documented one-observation-per-writer
// bound: with every sample equal to d, a concurrent scrape's sum may
// exceed count*d by at most writers*d and never fall below count*d.
func TestCountSumSkewBound(t *testing.T) {
	var h Histogram
	const writers = 4
	const d = int64(10 * time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.ObserveValue(d)
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		n, s := h.CountSum()
		if s < n*d {
			t.Fatalf("sum %d below count*d %d: scrape missed a counted sample", s, n*d)
		}
		// The stable-read path bounds the overshoot at one in-flight
		// observation per writer; the bounded-retry fallback can admit a
		// few completions inside one load window, so allow slack.
		if s > (n+16*writers)*d {
			t.Fatalf("sum %d exceeds (count+16*writers)*d %d: skew bound violated", s, (n+16*writers)*d)
		}
	}
	close(stop)
	wg.Wait()
	n, s := h.CountSum()
	if s != n*d {
		t.Fatalf("quiescent sum %d != count*d %d", s, n*d)
	}
}

func TestSizesLayoutHistogram(t *testing.T) {
	h := NewHistogram(Sizes)
	for _, v := range []int64{1, 2, 3, 64, 64, 64, 500} {
		h.ObserveValue(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.MaxValue() != 500 {
		t.Fatalf("max = %d", h.MaxValue())
	}
	if got := h.QuantileValue(1); got != 500 {
		t.Fatalf("p100 = %d, want exact max", got)
	}
	// Median should land in the bucket containing 64.
	p50 := h.QuantileValue(0.5)
	if p50 < 4 || p50 > 128 {
		t.Fatalf("p50 = %d, want within [4,128]", p50)
	}
	// Power-of-two bounds: value 64 maps to the bucket whose range holds it.
	b := Sizes.BucketFor(64)
	lo, hi := Sizes.BucketRange(b)
	if !(lo <= 64 && (64 < hi || hi == lo)) {
		t.Fatalf("bucket %d range [%d,%d) does not contain 64", b, lo, hi)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered the high-water mark: %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax failed to raise: %d", g.Value())
	}
	g.Set(1)
	g.Add(2)
	if g.Value() != 3 {
		t.Fatalf("Set/Add = %d, want 3", g.Value())
	}
}
