// Package obs is the process-wide observability core: allocation-free
// atomic counters, gauges and log-bucketed histograms behind a registry
// with stable name/label identity, exported as an extended JSON snapshot
// and Prometheus text exposition.
//
// Two conventions keep instrumentation free where it matters:
//
//   - Handles are nil-safe. A nil *Registry hands out nil *Counter /
//     *Gauge / *Histogram handles, and every recording method on a nil
//     handle is a no-op — subsystems instrument unconditionally and the
//     disabled path costs one predictable branch (mirroring the nil
//     *events.Bus pattern).
//   - Recording never allocates and never takes the registry lock. The
//     lock guards only registration and scraping; Observe/Add/Set are
//     single atomic operations on pre-registered cells.
//
// Metric names follow <subsystem>_<what>_<unit>: counters end in _total,
// latency histograms in _seconds (recorded in nanoseconds, scaled at
// exposition), gauges name the quantity directly.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//assess:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
//
//assess:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//assess:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
//
//assess:hotpath
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark recorder.
//
//assess:hotpath
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Label is one name/value pair qualifying a metric series.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes exposition types.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one registered (name, labels) cell.
type series struct {
	labels []Label // sorted by key
	key    string  // canonical label identity
	ctr    *Counter
	gauge  *Gauge
	fn     atomic.Pointer[func() float64]
	hist   *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	kind   Kind
	help   string
	series map[string]*series
}

// Registry owns metric families and hands out recording handles with
// stable identity: asking twice for the same name and label set returns
// the same cell. All methods are safe for concurrent use; a nil *Registry
// hands out nil handles so wiring is optional everywhere.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalizes a label set (sorting a copy) and returns the
// sorted labels plus their identity string.
func labelKey(labels []Label) ([]Label, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return ls, b.String()
}

// validName reports whether name is a legal metric or label identifier.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup finds or creates the series for (name, kind, labels), creating
// the recording cell under the registry lock so two racing registrations
// always receive the same cell. Kind conflicts on one name are programmer
// errors and panic at registration, never at record time.
func (r *Registry) lookup(name string, kind Kind, help string, lay Layout, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, help: help, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	ls, key := labelKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: ls, key: key}
		switch kind {
		case KindCounter:
			s.ctr = new(Counter)
		case KindGauge:
			s.gauge = new(Gauge)
		case KindHistogram:
			s.hist = NewHistogram(lay)
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter cell for (name, labels), creating it on
// first use. Nil receiver returns a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, help, Layout{}, labels).ctr
}

// Gauge returns the gauge cell for (name, labels). Nil receiver returns a
// nil (no-op) handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, help, Layout{}, labels).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time. The
// function must not call back into the registry. Re-registering the same
// series replaces the function (last wins). No-op on a nil receiver.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.lookup(name, KindGauge, help, Layout{}, labels).fn.Store(&fn)
}

// Histogram returns the histogram cell for (name, labels), creating it
// with the given layout on first use (later calls keep the original
// layout). Nil receiver returns a nil (no-op) handle.
func (r *Registry) Histogram(name, help string, lay Layout, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, help, lay, labels).hist
}

// familyView is a scrape-time snapshot of one family: name/kind/help plus
// series pointers in deterministic order (series by canonical label key).
// The series cells themselves are immutable after creation, so reading
// their atomic values outside the lock is safe.
type familyView struct {
	name   string
	kind   Kind
	help   string
	series []*series
}

// view snapshots every family and its series under the registry lock, in
// deterministic order (families by name, series by label identity) so
// scrapes are stable while registration proceeds concurrently.
func (r *Registry) view() []familyView {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		fv := familyView{name: f.name, kind: f.kind, help: f.help,
			series: make([]*series, 0, len(f.series))}
		for _, s := range f.series {
			fv.series = append(fv.series, s)
		}
		sort.Slice(fv.series, func(i, j int) bool { return fv.series[i].key < fv.series[j].key })
		fams = append(fams, fv)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Sample is one flattened scrape value. Histogram families emit derived
// samples (<name>_count, <name>_p50, <name>_p99, <name>_p999, <name>_max)
// with values in the layout's exposition unit.
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// TraceID carries the histogram exemplar on _p99 samples: the ID of a
	// retained trace whose observation landed in the p99 bucket, tying the
	// tail number in /v1/metrics to a concrete span tree in /debug/traces.
	TraceID string `json:"traceId,omitempty"`
}

func (s *series) labelMap() map[string]string {
	if len(s.labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(s.labels))
	for _, l := range s.labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot flattens every registered series into sorted samples for the
// JSON metrics endpoint. Nil receiver returns nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.view() {
		for _, s := range f.series {
			lm := s.labelMap()
			switch f.kind {
			case KindCounter:
				out = append(out, Sample{Name: f.name, Labels: lm, Value: float64(s.ctr.Value())})
			case KindGauge:
				v := float64(s.gauge.Value())
				if fn := s.fn.Load(); fn != nil {
					v = (*fn)()
				}
				out = append(out, Sample{Name: f.name, Labels: lm, Value: v})
			case KindHistogram:
				h := s.hist
				scale := h.Layout().Scale()
				n, sum := h.CountSum()
				out = append(out,
					Sample{Name: f.name + "_count", Labels: lm, Value: float64(n)},
					Sample{Name: f.name + "_sum", Labels: lm, Value: float64(sum) / scale},
					Sample{Name: f.name + "_p50", Labels: lm, Value: float64(h.QuantileValue(0.50)) / scale},
					Sample{Name: f.name + "_p99", Labels: lm, Value: float64(h.QuantileValue(0.99)) / scale,
						TraceID: h.QuantileExemplar(0.99)},
					Sample{Name: f.name + "_p999", Labels: lm, Value: float64(h.QuantileValue(0.999)) / scale},
					Sample{Name: f.name + "_max", Labels: lm, Value: float64(h.MaxValue()) / scale},
				)
			}
		}
	}
	return out
}
