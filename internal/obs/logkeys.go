package obs

// Structured log keys shared by every layer. The slow-request drill-down
// workflow greps one key — request_id — across the HTTP access log, the
// engine slow-op lines and the journal's commit warnings, so the spelling
// must never drift between call sites. The slogkeys analyzer enforces
// that every slog key is a compile-time snake_case constant; new keys
// belong here, not inline, once a second call site appears.
const (
	// LogKeyRequestID correlates one request's lines across layers.
	LogKeyRequestID = "request_id"
	// LogKeyLayer names the subsystem emitting a slow-op line (http,
	// engine, wal).
	LogKeyLayer = "layer"
	// LogKeyOp names the operation within the layer.
	LogKeyOp = "op"
	// LogKeySession carries the delivery session ID.
	LogKeySession = "session"
	// LogKeyDurationMS is the elapsed wall time in milliseconds.
	LogKeyDurationMS = "duration_ms"
	// LogKeyMethod is the HTTP request method.
	LogKeyMethod = "method"
	// LogKeyPath is the HTTP request path.
	LogKeyPath = "path"
	// LogKeyStatus is the HTTP response status code.
	LogKeyStatus = "status"
	// LogKeyBytes is the HTTP response body size.
	LogKeyBytes = "bytes"
	// LogKeyLearner is the rate-limit bucket / learner identity.
	LogKeyLearner = "learner"
	// LogKeyPanic carries the recovered panic value.
	LogKeyPanic = "panic"
)
