// Package errtaxonomy defines the errtaxonomy analyzer: internal/httpapi
// handlers must route every error response through the taxonomy writer.
//
// The v1 API contract (PR 2) is a typed {code,message,details} envelope
// over a stable Code taxonomy — clients branch on the code, the contract
// suite asserts byte parity, and unknown internal errors are redacted on
// the way out. A raw http.Error or a bare WriteHeader(5xx) bypasses all
// of that: plain-text body, no code, potential internals leak. Success
// statuses (2xx/3xx) and the taxonomy writer itself (which passes a
// computed status) are not findings.
package errtaxonomy

import (
	"go/ast"
	"go/constant"

	"mineassess/internal/lint/analysis"
)

// Analyzer flags raw error-status writes in httpapi packages.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: `forbid http.Error and constant 4xx/5xx WriteHeader in internal/httpapi

Error responses go through writeErr/writeError so every failure carries
its taxonomy code in the JSON envelope. Scoped to packages named httpapi;
WriteHeader with a non-error or computed status is allowed.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathTail(pass.Pkg, "httpapi") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncFor(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if analysis.IsPkgFunc(fn, "http", "Error") {
				pass.Reportf(call.Pos(),
					"http.Error bypasses the error taxonomy (use writeErr/writeError so the response carries a code envelope)")
				return true
			}
			if analysis.IsPkgFunc(fn, "http", "NotFound") {
				pass.Reportf(call.Pos(),
					"http.NotFound bypasses the error taxonomy (use the CodeNotFound envelope)")
				return true
			}
			if fn.Name() == "WriteHeader" && len(call.Args) == 1 {
				if status, ok := constStatus(pass, call.Args[0]); ok && status >= 400 {
					pass.Reportf(call.Pos(),
						"WriteHeader(%d) bypasses the error taxonomy (error statuses must come from the taxonomy writer)", status)
				}
			}
			return true
		})
	}
	return nil
}

// constStatus extracts a compile-time constant int argument.
func constStatus(pass *analysis.Pass, arg ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
