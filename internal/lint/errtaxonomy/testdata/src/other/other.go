// Out-of-scope package: the same calls produce no findings outside
// httpapi.
package other

import "net/http"

func notFlagged(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError)
	http.NotFound(w, r)
	w.WriteHeader(500)
}
