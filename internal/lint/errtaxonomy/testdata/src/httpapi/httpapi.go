// Corpus for the errtaxonomy analyzer: the package path tail "httpapi"
// puts it in scope.
package httpapi

import "net/http"

func flagged(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error bypasses the error taxonomy`
	http.NotFound(w, r)                                   // want `http\.NotFound bypasses the error taxonomy`
	w.WriteHeader(http.StatusBadRequest)                  // want `WriteHeader\(400\) bypasses the error taxonomy`
	w.WriteHeader(503)                                    // want `WriteHeader\(503\) bypasses the error taxonomy`
}

func fine(w http.ResponseWriter, status int) {
	w.WriteHeader(http.StatusNoContent) // success statuses are legal
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(status) // computed status: the taxonomy writer itself
}

func allowed(w http.ResponseWriter) {
	//assess:allow errtaxonomy: healthz probe contract predates the envelope
	w.WriteHeader(http.StatusServiceUnavailable)
}
