package errtaxonomy_test

import (
	"testing"

	"mineassess/internal/lint/analysistest"
	"mineassess/internal/lint/errtaxonomy"
)

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, errtaxonomy.Analyzer, "testdata", "httpapi", "other")
}
