package hotpathalloc_test

import (
	"testing"

	"mineassess/internal/lint/analysistest"
	"mineassess/internal/lint/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "testdata", "hot")
}
