// Package hotpathalloc defines the hotpathalloc analyzer: functions
// annotated //assess:hotpath must avoid constructs that allocate.
//
// The zero-allocation hot paths (PR 6/PR 8) — obs Counter.Add /
// Histogram.ObserveValue / Layout.BucketFor, the WAL binary encoders, the
// event fan-out enqueue — are pinned to 0 allocs/op by benchreport
// -check-allocs. That guard only fires when a benchmark covers the
// regression; this analyzer rejects the known allocating constructs at
// review time instead: fmt calls, make/new, slice and map literals,
// non-constant string concatenation, string<->[]byte conversions, and
// interface boxing of basic values. Function literals are not descended
// into or flagged (non-escaping closures such as BucketFor's sort.Search
// comparator compile allocation-free); a deliberate cold path inside a
// hot function carries an //assess:allow hotpathalloc comment.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mineassess/internal/lint/analysis"
)

// Marker is the doc-comment annotation that opts a function into the
// analyzer.
const Marker = "assess:hotpath"

// Analyzer rejects allocating constructs in //assess:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `reject allocating constructs in functions marked //assess:hotpath

Annotated functions are the measured zero-allocation record/encode paths;
fmt.* calls, make/new, slice/map composite literals, non-constant string
concatenation, string<->[]byte conversions and interface boxing of basic
values are findings. Pair with benchreport -check-allocs, which pins the
measured allocs/op; this catches the construct before a benchmark has to.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !marked(fn) {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil
}

// marked reports whether the function's doc comment carries the
// //assess:hotpath annotation.
func marked(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, Marker) {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // non-escaping closures compile allocation-free
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "hot path: slice literal allocates")
				case *types.Map:
					pass.Reportf(n.Pos(), "hot path: map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv, ok := pass.TypesInfo.Types[n]
				if ok && tv.Value == nil && isString(tv.Type) {
					pass.Reportf(n.Pos(), "hot path: string concatenation allocates")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Builtins make/new.
	if id, ok := fun.(*ast.Ident); ok {
		if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "hot path: %s allocates", id.Name)
			}
			return
		}
	}
	// Conversions between strings and byte/rune slices.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkConversion(pass, call, tv.Type)
		}
		return
	}
	fn := analysis.FuncFor(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if analysis.PkgPathTail(fn.Pkg(), "fmt") {
		pass.Reportf(call.Pos(), "hot path: fmt.%s allocates", fn.Name())
		return
	}
	checkBoxing(pass, call, fn)
}

func checkConversion(pass *analysis.Pass, call *ast.CallExpr, to types.Type) {
	if tv, ok := pass.TypesInfo.Types[call]; ok && tv.Value != nil {
		return // constant-folded
	}
	fromTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	switch {
	case isString(to) && byteOrRuneSlice(from):
		pass.Reportf(call.Pos(), "hot path: []byte->string conversion allocates")
	case byteOrRuneSlice(to) && isString(from):
		pass.Reportf(call.Pos(), "hot path: string->[]byte conversion allocates")
	}
}

// checkBoxing flags basic-typed arguments passed to interface parameters
// (boxing an int into an any heap-allocates outside the small-value cache).
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok {
			if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Kind() != types.UntypedNil {
				pass.Reportf(arg.Pos(), "hot path: passing %s to interface parameter boxes (allocates)", tv.Type)
			}
		}
	}
}

func isString(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func byteOrRuneSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && (elem.Kind() == types.Byte || elem.Kind() == types.Rune || elem.Kind() == types.Uint8 || elem.Kind() == types.Int32)
}
