// Corpus for the hotpathalloc analyzer: only //assess:hotpath functions
// are policed.
package hot

import "fmt"

type sym string

func sink(v any) {}

//assess:hotpath
func flagged(name string, bs []byte, n int) string {
	s := fmt.Sprintf("x-%s", name) // want `fmt\.Sprintf allocates`
	m := make([]byte, n)           // want `make allocates`
	_ = map[string]int{}           // want `map literal allocates`
	_ = []int{1, 2}                // want `slice literal allocates`
	t := name + s                  // want `string concatenation allocates`
	_ = string(bs)                 // want `\[\]byte->string conversion allocates`
	_ = []byte(name)               // want `string->\[\]byte conversion allocates`
	sink(n)                        // want `boxes`
	_ = m
	return t
}

// unmarked does all the same things legally: no annotation, no findings.
func unmarked(name string, n int) string {
	s := fmt.Sprintf("x-%s", name)
	_ = make([]byte, n)
	sink(n)
	return s + name
}

//assess:hotpath
func fine(dst []byte, v sym, vals []int) []byte {
	dst = append(dst, byte(len(v))) // append extends in place: legal
	_ = string(v)                   // named-string to string: no allocation
	const prefix = "wal:" + "v1"    // constant-folded concat: legal
	_ = prefix
	f := func() string { return fmt.Sprint("closure body is out of scope") }
	_ = f
	for _, x := range vals {
		dst = append(dst, byte(x))
	}
	return dst
}

//assess:hotpath
func allowedColdPath(name string) string {
	//assess:allow hotpathalloc: error path, cold by construction
	return fmt.Sprintf("corrupt frame: %s", name)
}
