// Package lint assembles the repo-invariant analyzer suite and runs it
// over type-checked packages.
//
// The suite encodes design rules from earlier PRs that ordinary review
// keeps re-litigating: marshal outside the ordering lock (PR 1), emit
// events after unlock (PR 5), trust the obs nil-contract (PR 7), route
// errors through the taxonomy writer (PR 2), grep-stable snake_case log
// keys (PR 8), and zero-allocation hot paths (PR 6). `cmd/assesslint`
// fronts it on the command line and in CI; `assessctl lint` runs it
// in-process for operators.
package lint

import (
	"fmt"
	"sort"

	"mineassess/internal/lint/analysis"
	"mineassess/internal/lint/ctxflow"
	"mineassess/internal/lint/errtaxonomy"
	"mineassess/internal/lint/hotpathalloc"
	"mineassess/internal/lint/load"
	"mineassess/internal/lint/lockio"
	"mineassess/internal/lint/nonblockingpublish"
	"mineassess/internal/lint/obsnil"
	"mineassess/internal/lint/slogkeys"
)

// Suite returns the repo-invariant analyzers in a stable order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockio.Analyzer,
		nonblockingpublish.Analyzer,
		obsnil.Analyzer,
		errtaxonomy.Analyzer,
		slogkeys.Analyzer,
		hotpathalloc.Analyzer,
		ctxflow.Analyzer,
	}
}

// ByName returns the named analyzer from the suite, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Finding is one diagnostic with its source location rendered.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	Pos      string `json:"pos"` // file:line:col
	Message  string `json:"message"`
}

// Run loads the packages matched by patterns (rooted at dir) and applies
// every analyzer, honoring //assess:allow suppressions. Findings come
// back sorted by position; a non-nil error means the run itself broke
// (load or type-check failure), not that the code has findings.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		allows := analysis.ScanAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				if allows.Allows(pkg.Fset, d.Pos, name) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: name,
					Package:  pkg.ImportPath,
					Pos:      pkg.Fset.Position(d.Pos).String(),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
