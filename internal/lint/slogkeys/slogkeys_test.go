package slogkeys_test

import (
	"testing"

	"mineassess/internal/lint/analysistest"
	"mineassess/internal/lint/slogkeys"
)

func TestSlogKeys(t *testing.T) {
	analysistest.Run(t, slogkeys.Analyzer, "testdata", "logging")
}
