// Package slogkeys defines the slogkeys analyzer: structured log keys are
// compile-time snake_case string constants.
//
// Slow-request correlation (PR 8) greps one key — request_id — across the
// HTTP access log, the engine slow-op lines and the WAL layer. That only
// works while every layer spells its keys identically, which is why the
// shared constant set lives in internal/obs (LogKeyRequestID etc.) and
// why a key built at runtime (fmt.Sprintf, concatenation) is a finding:
// it cannot be audited, indexed or grepped. Named constants and literals
// both satisfy the analyzer as long as the value is snake_case.
package slogkeys

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"mineassess/internal/lint/analysis"
)

// Analyzer enforces constant snake_case slog keys.
var Analyzer = &analysis.Analyzer{
	Name: "slogkeys",
	Doc: `require constant snake_case keys at every slog call site

Keys of slog attr constructors (slog.String, slog.Int, ...) and of the
variadic key/value forms (Logger.Info, slog.Warn, Logger.With, ...) must
be compile-time string constants matching ^[a-z][a-z0-9]*(_[a-z0-9]+)*$ —
prefer the shared obs.LogKey* constants. Runtime-built keys
(fmt.Sprintf, concatenation of non-constants) are findings.`,
	Run: run,
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// attrCtors maps slog attr-constructor names to the index of their key
// argument.
var attrCtors = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Duration": true, "Time": true,
	"Any": true, "Group": true,
}

// kvStart maps the variadic key/value entry points to the index of their
// first key argument.
var kvStart = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1,
	"DebugContext": 2, "InfoContext": 2, "WarnContext": 2, "ErrorContext": 2,
	"Log": 3, "With": 0,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncFor(pass.TypesInfo, call)
			if fn == nil || !analysis.PkgPathTail(fn.Pkg(), "slog") {
				return true
			}
			recv := analysis.ReceiverType(fn)
			switch {
			case recv == nil && attrCtors[fn.Name()]:
				if len(call.Args) > 0 {
					checkKey(pass, call.Args[0])
				}
				if fn.Name() == "Group" && len(call.Args) > 1 {
					checkKVs(pass, call.Args[1:])
				}
			case recv == nil || analysis.IsNamed(recv, "slog", "Logger"):
				if start, ok := kvStart[fn.Name()]; ok && len(call.Args) > start {
					checkKVs(pass, call.Args[start:])
				}
			}
			return true
		})
	}
	return nil
}

// checkKVs walks a variadic alternating key/value tail. An inline
// slog.Attr consumes one slot; anything else is a key followed by its
// value.
func checkKVs(pass *analysis.Pass, args []ast.Expr) {
	for i := 0; i < len(args); {
		if tv, ok := pass.TypesInfo.Types[args[i]]; ok && analysis.IsNamed(tv.Type, "slog", "Attr") {
			i++
			continue
		}
		checkKey(pass, args[i])
		i += 2
	}
}

// checkKey requires expr to be a constant snake_case string.
func checkKey(pass *analysis.Pass, expr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return
	}
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		// Ellipsis-expanded []any args land here too; only flag string-ish
		// expressions so `logger.Info(msg, args...)` passthroughs stay legal.
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			pass.Reportf(expr.Pos(),
				"slog key must be a compile-time constant string (use the shared obs.LogKey* constants)")
		}
		return
	}
	key := constant.StringVal(tv.Value)
	if !snakeCase.MatchString(key) {
		pass.Reportf(expr.Pos(), "slog key %q is not snake_case", key)
	}
}
