// Corpus for the slogkeys analyzer.
package logging

import (
	"context"
	"log/slog"
)

const keyRequestID = "request_id"

func flagged(l *slog.Logger, id string) {
	_ = slog.String("requestID", id)                // want `"requestID" is not snake_case`
	l.Info("served", "Bad-Key", 1)                  // want `"Bad-Key" is not snake_case`
	l.Warn("served", "dyn_"+id, 1)                  // want `compile-time constant`
	slog.Info("served", slog.Int("Count", 1))       // want `"Count" is not snake_case`
	l.Error("served", "_leading", 1)                // want `"_leading" is not snake_case`
	l.With("SessionID", id).Info("served")          // want `"SessionID" is not snake_case`
	_ = slog.Group("req", "Inner", 1)               // want `"Inner" is not snake_case`
	slog.Warn("served", "trailing_", 1)             // want `"trailing_" is not snake_case`
}

func fine(ctx context.Context, l *slog.Logger, id string, args []any) {
	_ = slog.String(keyRequestID, id) // named constant: the preferred form
	l.Info("served", "duration_ms", 5, "op", "save")
	l.InfoContext(ctx, "served", "layer", "bank")
	l.Log(ctx, slog.LevelInfo, "served", "session_id", id)
	l.Info("served", args...) // variadic passthrough: not a key site
	l.With(slog.String("request_id", id)).Error("boom", "err_code", 7)
	_ = slog.Group("req", slog.Int("attempt_n", 2))
}

func allowed(l *slog.Logger) {
	//assess:allow slogkeys: mirrors an upstream collector's field name
	l.Info("served", "UpstreamField", 1)
}
