// Package lockflow locates critical sections — the statements between a
// sync.Mutex/RWMutex Lock and its matching Unlock — inside one function
// body. It is the shared machinery of the lockio and nonblockingpublish
// analyzers.
//
// The analysis is intraprocedural and syntactic about pairing: a section
// opens at a `x.mu.Lock()` statement and closes at the first later
// `x.mu.Unlock()` whose receiver renders to the same source text ("x.mu"),
// or at the end of the function for `defer x.mu.Unlock()`. Lock handoffs
// across functions and conditionally-unlocked paths are out of scope —
// the repo's hot paths all lock and unlock within one function, which is
// itself an invariant worth keeping.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"mineassess/internal/lint/analysis"
)

// Region is one critical section within a function body.
type Region struct {
	// Mutex is the rendered lock expression, e.g. "j.mu" or "s.mu".
	Mutex string
	// Read marks an RLock section.
	Read bool
	// Start/End bound the guarded statements: Start is the end of the
	// Lock call, End the position of the matching Unlock (or the body's
	// end for deferred unlocks).
	Start, End token.Pos
	// Deferred marks a section closed by `defer Unlock` (it spans to the
	// function's end).
	Deferred bool
}

// Body is one function-like declaration: a FuncDecl or a FuncLit.
// Closures are separate bodies — code inside a FuncLit runs when the
// closure is called, not where it is written, so it never belongs to the
// enclosing function's critical sections.
type Body struct {
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
	// Decl is non-nil for declared functions (carries the doc comment).
	Decl *ast.FuncDecl
	// Block is the function body.
	Block *ast.BlockStmt
}

// Bodies returns every function-like body in the files.
func Bodies(files []*ast.File) []Body {
	var out []Body
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, Body{Node: fn, Decl: fn, Block: fn.Body})
				}
			case *ast.FuncLit:
				out = append(out, Body{Node: fn, Block: fn.Body})
			}
			return true
		})
	}
	return out
}

// lockEvent is one Lock/Unlock call found in a body.
type lockEvent struct {
	pos      token.Pos
	end      token.Pos // end of the call (a region starts after its Lock)
	key      string    // rendered receiver
	read     bool      // RLock/RUnlock
	unlock   bool
	deferred bool
	used     bool
}

// mutexMethod resolves sel as a Lock-family method on sync.Mutex,
// sync.RWMutex or sync.Locker, returning the method name.
func mutexMethod(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false
	}
	recv := analysis.ReceiverType(fn)
	if recv == nil {
		return "", false
	}
	if analysis.IsNamed(recv, "sync", "Mutex") || analysis.IsNamed(recv, "sync", "RWMutex") ||
		analysis.IsNamed(recv, "sync", "Locker") {
		return fn.Name(), true
	}
	return "", false
}

// Regions returns the critical sections of one body, in source order.
func Regions(info *types.Info, body Body) []Region {
	var events []lockEvent
	inspectShallow(body.Block, func(n ast.Node) bool {
		var call *ast.CallExpr
		deferred := false
		switch s := n.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = s.Call
			deferred = true
		default:
			return true
		}
		if call == nil {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, ok := mutexMethod(info, sel)
		if !ok {
			return true
		}
		events = append(events, lockEvent{
			pos:      call.Pos(),
			end:      call.End(),
			key:      types.ExprString(sel.X),
			read:     name == "RLock" || name == "RUnlock",
			unlock:   name == "Unlock" || name == "RUnlock",
			deferred: deferred,
		})
		return true
	})

	var regions []Region
	for i := range events {
		ev := &events[i]
		if ev.unlock || ev.deferred {
			continue
		}
		r := Region{Mutex: ev.key, Read: ev.read, Start: ev.end, End: body.Block.End()}
		closed := false
		for j := i + 1; j < len(events); j++ {
			un := &events[j]
			if un.used || !un.unlock || un.key != ev.key || un.read != ev.read {
				continue
			}
			un.used = true
			closed = true
			if un.deferred {
				r.Deferred = true // spans to the function's end
			} else {
				r.End = un.pos
			}
			break
		}
		// An unmatched Lock (handoff to another function) conservatively
		// guards the rest of the body.
		r.Deferred = r.Deferred || !closed
		regions = append(regions, r)
	}
	return regions
}

// inspectShallow walks n without descending into nested function literals.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// InspectRegion walks the statements of body that lie inside r, skipping
// nested function literals (their bodies execute outside the section).
func InspectRegion(body Body, r Region, fn func(ast.Node) bool) {
	inspectShallow(body.Block, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.End() <= r.Start || n.Pos() >= r.End {
			// Nodes straddling the region (the enclosing blocks) must
			// still be descended into.
			return n.Pos() < r.End && n.End() > r.Start
		}
		return fn(n)
	})
}

// NonBlockingComms returns the set of statements that are communication
// clauses of a `select` with a `default` case — the sanctioned
// non-blocking send/receive idiom (kickCommitter, Subscription.wake).
func NonBlockingComms(body Body) map[ast.Stmt]bool {
	set := make(map[ast.Stmt]bool)
	inspectShallow(body.Block, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				set[cc.Comm] = true
			}
		}
		return true
	})
	return set
}
