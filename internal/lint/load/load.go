// Package load type-checks the repo's packages for the lint suite using
// only the Go toolchain and the standard library.
//
// One `go list -deps -export -json` invocation resolves the package graph
// and compiles export data for every dependency (stdlib included — the
// toolchain caches the artifacts, so repeat runs are cheap and fully
// offline). Each target package is then parsed from source and checked
// with go/types, importing its dependencies through go/importer's gc
// export-data reader. This is the same division of labor as
// golang.org/x/tools/go/packages in LoadSyntax mode, without the module
// dependency.
//
// Test files are not analyzed: `go list -export` describes the non-test
// build, and the invariants the suite polices live in production code.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Pkg is one parsed and type-checked target package.
type Pkg struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// ExportData resolves patterns (and every dependency) in dir and returns
// the import-path → export-data-file map. Compiling the export data is
// delegated to the toolchain, which caches it in the build cache.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	entries, err := goList(dir, append([]string{"-deps", "-export", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			m[e.ImportPath] = e.Export
		}
	}
	return m, nil
}

// Importer returns a types.Importer that reads gc export data from the
// files in m. Lookups outside m fail with a descriptive error.
func Importer(fset *token.FileSet, m map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := m[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load lists patterns in dir and returns every matched non-standard
// package, parsed (with comments) and type-checked. Named main packages
// are included; packages listed only as dependencies are not re-analyzed.
func Load(dir string, patterns ...string) ([]*Pkg, error) {
	entries, err := goList(dir, append([]string{"-deps", "-export", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	fset := token.NewFileSet()
	imp := Importer(fset, exports)
	var pkgs []*Pkg
	for _, e := range entries {
		if e.DepOnly || e.Standard {
			continue
		}
		if e.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", e.ImportPath, e.Error.Err)
		}
		p, err := check(fset, imp, e)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, e listEntry) (*Pkg, error) {
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(e.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", e.ImportPath, err)
	}
	return &Pkg{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
