// Package ctxflow defines the ctxflow analyzer: request-scoped code must
// thread the request context, not mint a fresh one.
//
// The tracing layer (PR 10) propagates the active span through
// context.Context: the HTTP middleware roots a span in the request
// context, the engines' *Ctx methods open children under it, and the
// journal reconstructs commit phases from it. A context.Background() (or
// TODO()) inside an HTTP handler or a *Ctx engine method silently severs
// that chain — the code still works, but the trace tree ends there and
// the tail sampler never sees the downstream latency. Sites that must
// outlive the request (post-persist event publishes) detach with
// trace.Detach(ctx), which keeps the trace and request-ID linkage while
// dropping cancelation; minting Background is never the right tool inside
// request scope.
package ctxflow

import (
	"go/ast"
	"strings"

	"mineassess/internal/lint/analysis"
)

// Analyzer flags context.Background()/TODO() inside request-scoped code.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `forbid minting fresh contexts inside request-scoped functions

HTTP handlers (any function taking http.ResponseWriter and *http.Request)
and context-threading engine methods (name ending in "Ctx" with a
context.Context parameter) receive the request context; calling
context.Background() or context.TODO() there severs trace propagation and
cancelation. Thread the incoming ctx, or use trace.Detach(ctx) for work
that must outlive the request without losing trace linkage.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !requestScoped(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.FuncFor(pass.TypesInfo, call)
				for _, name := range [...]string{"Background", "TODO"} {
					if analysis.IsPkgFunc(fn, "context", name) {
						pass.Reportf(call.Pos(),
							"context.%s() inside request-scoped %s severs trace propagation: thread the request ctx (or trace.Detach it for post-request work)",
							name, fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// requestScoped reports whether fd is an HTTP handler (has both an
// http.ResponseWriter and a *http.Request parameter) or a
// context-threading engine method (name ends in "Ctx" and takes a
// context.Context).
func requestScoped(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	var hasWriter, hasRequest, hasCtx bool
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		switch {
		case analysis.IsNamed(tv.Type, "http", "ResponseWriter"):
			hasWriter = true
		case analysis.IsNamed(tv.Type, "http", "Request"):
			hasRequest = true
		case analysis.IsNamed(tv.Type, "context", "Context"):
			hasCtx = true
		}
	}
	if hasWriter && hasRequest {
		return true
	}
	return hasCtx && strings.HasSuffix(fd.Name.Name, "Ctx")
}
