// Corpus for the ctxflow analyzer.
package reqscope

import (
	"context"
	"net/http"
)

type engine struct{}

func (e *engine) work(ctx context.Context) error { return ctx.Err() }

// An HTTP handler minting fresh contexts: flagged.
func handleThing(w http.ResponseWriter, r *http.Request) {
	e := &engine{}
	_ = e.work(context.Background()) // want `context.Background\(\) inside request-scoped handleThing`
	_ = e.work(context.TODO())       // want `context.TODO\(\) inside request-scoped handleThing`
	w.WriteHeader(http.StatusOK)
}

// Handler shape via method with extra params: still a handler.
func (e *engine) serveThing(w http.ResponseWriter, r *http.Request, id string) {
	_ = e.work(context.Background()) // want `context.Background\(\) inside request-scoped serveThing`
	_ = id
}

// A context-threading engine method: flagged.
func (e *engine) FinishCtx(ctx context.Context, id string) error {
	return e.work(context.Background()) // want `context.Background\(\) inside request-scoped FinishCtx`
}

// Background inside a goroutine launched by a handler is still a severed
// chain: flagged (detach with trace.Detach instead).
func handleAsync(w http.ResponseWriter, r *http.Request) {
	e := &engine{}
	go func() {
		_ = e.work(context.Background()) // want `context.Background\(\) inside request-scoped handleAsync`
	}()
}

// The threading idiom the analyzer pushes toward: fine.
func handleGood(w http.ResponseWriter, r *http.Request) {
	e := &engine{}
	_ = e.work(r.Context())
}

// A *Ctx method threading its ctx: fine.
func (e *engine) StartCtx(ctx context.Context, id string) error {
	return e.work(ctx)
}

// Not request-scoped — a public wrapper without a ctx param may mint the
// root context for untraced callers: fine.
func Finish(id string) error {
	e := &engine{}
	return e.FinishCtx(context.Background(), id)
}

// Name ends in Ctx but takes no context: not the engine idiom, fine.
func buildCtx(id string) context.Context {
	return context.Background()
}

// Suppression syntax: acknowledged sites pass.
func handleAllowed(w http.ResponseWriter, r *http.Request) {
	e := &engine{}
	//assess:allow ctxflow: exercising the suppression syntax
	_ = e.work(context.Background())
}
