package ctxflow_test

import (
	"testing"

	"mineassess/internal/lint/analysistest"
	"mineassess/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "testdata", "reqscope")
}
