// Package analysistest runs an analyzer over small GOPATH-style corpus
// packages and checks its diagnostics against `// want` comments — the
// same testdata convention as golang.org/x/tools/go/analysis/analysistest,
// implemented on the stdlib only.
//
// A corpus lives under <testdata>/src/<importpath>/: the target package
// plus any stub packages it imports (an "events" stub with a Bus and a
// Publish method, an "obs" stub with nil-safe handles). Standard-library
// imports resolve against the real toolchain via compiled export data, so
// corpus code locks real sync.Mutexes and builds real slog attrs.
//
// Expectations attach to the flagged line:
//
//	http.Error(w, "boom", 500) // want `bypasses the error taxonomy`
//
// Each `want` carries one or more Go string literals, each a regexp that
// must match a diagnostic reported on that line; unmatched diagnostics
// and unmatched expectations both fail the test. //assess:allow comments
// are honored exactly as in the real runner.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mineassess/internal/lint/analysis"
	"mineassess/internal/lint/load"
)

// Run analyzes each corpus package under testdata/src and verifies the
// diagnostics against the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, testdata string, pkgpaths ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("resolve testdata: %v", err)
	}
	ld, err := newLoader(src)
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	for _, path := range pkgpaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		checkPackage(t, a, pkg)
	}
}

// loader type-checks corpus packages, resolving local imports from
// testdata/src and everything else from toolchain export data.
type loader struct {
	src    string
	fset   *token.FileSet
	dep    types.Importer
	loaded map[string]*corpusPkg
}

type corpusPkg struct {
	path  string
	fset  *token.FileSet
	files []*ast.File
	types *types.Package
	info  *types.Info
	err   error
}

func newLoader(src string) (*loader, error) {
	fset := token.NewFileSet()
	external, err := externalImports(src)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(external) > 0 {
		// Resolve in the repo root (the module the tests run in) so the
		// toolchain context matches the production lint run.
		exports, err = load.ExportData(".", external...)
		if err != nil {
			return nil, err
		}
	}
	return &loader{
		src:    src,
		fset:   fset,
		dep:    load.Importer(fset, exports),
		loaded: make(map[string]*corpusPkg),
	}, nil
}

// externalImports walks every corpus file and collects the import paths
// that are not corpus packages themselves.
func externalImports(src string) ([]string, error) {
	local := map[string]bool{}
	var files []string
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, _ := filepath.Rel(src, filepath.Dir(path))
		local[filepath.ToSlash(rel)] = true
		files = append(files, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if !local[path] && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer over the corpus-then-exportdata chain.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	return l.dep.Import(path)
}

func (l *loader) load(path string) (*corpusPkg, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, pkg.err
	}
	pkg := &corpusPkg{path: path, fset: l.fset}
	l.loaded[path] = pkg // placed before checking: import cycles fail in Check
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		pkg.err = err
		return pkg, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			pkg.err = err
			return pkg, err
		}
		pkg.files = append(pkg.files, f)
	}
	pkg.info = load.NewInfo()
	conf := types.Config{Importer: l}
	pkg.types, pkg.err = conf.Check(path, l.fset, pkg.files, pkg.info)
	return pkg, pkg.err
}

// checkPackage runs the analyzer on one corpus package and diffs
// diagnostics against expectations.
func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *corpusPkg) {
	t.Helper()
	allows := analysis.ScanAllows(pkg.fset, pkg.files)
	type hit struct {
		line int
		msg  string
	}
	var diags []hit
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
	}
	pass.Report = func(d analysis.Diagnostic) {
		if allows.Allows(pass.Fset, d.Pos, a.Name) {
			return
		}
		p := pass.Fset.Position(d.Pos)
		diags = append(diags, hit{p.Line, d.Message})
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", pkg.path, err)
	}

	wants := expectations(t, pass.Fset, pkg.files)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if d.line == w.line && w.re.MatchString(d.msg) {
				matched[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", pkg.path, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pkg.path, d.line, d.msg)
		}
	}
}

type want struct {
	line int
	re   *regexp.Regexp
}

// expectations parses // want comments in the corpus files.
func expectations(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, lit := range stringLits(text[len("want "):]) {
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", lit, err)
					}
					out = append(out, want{line, re})
				}
			}
		}
	}
	return out
}

// stringLits extracts consecutive Go string literals ("..." or `...`).
func stringLits(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return out
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return out
			}
			out = append(out, lit)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		default:
			return out
		}
	}
}
