// Corpus for the lockio analyzer: the package path tail "bank" puts it
// in scope.
package bank

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
)

type record struct{ N int }

func encodeWALBinary(dst []byte, r record) []byte { return dst }

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	f    *os.File
	sink interface{ Write(p []byte) (int, error) }
	buf  bytes.Buffer
	recs []record
	ch   chan record
}

func (s *store) flagged(r record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := json.Marshal(r) // want `json\.Marshal inside critical section of s\.mu`
	if err != nil {
		return err
	}
	if _, err := s.f.Write(b); err != nil { // want `File\.Write inside critical section`
		return err
	}
	if err := s.f.Sync(); err != nil { // want `File\.Sync inside critical section`
		return err
	}
	_ = encodeWALBinary(nil, r) // want `bank\.encodeWALBinary inside critical section`
	s.sink.Write(b)             // want `interface-typed Write inside critical section`
	s.ch <- r                   // want `blocking channel send inside critical section`
	return nil
}

func (s *store) flaggedRecv() record {
	s.mu.Lock()
	r := <-s.ch // want `blocking channel receive inside critical section`
	s.mu.Unlock()
	return r
}

func (s *store) flaggedRead() []byte {
	s.rw.RLock()
	defer s.rw.RUnlock()
	b, _ := json.Marshal(s.recs) // want `json\.Marshal inside critical section of s\.rw`
	return b
}

func (s *store) fine(r record) error {
	b, err := json.Marshal(r) // marshal outside the lock: the invariant itself
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.buf.Write(b) // concrete in-memory writer: legal
	select {
	case s.ch <- r: // non-blocking send: sanctioned idiom
	default:
	}
	s.mu.Unlock()
	_, werr := s.f.Write(b) // after the unlock: legal
	return werr
}

func (s *store) fineClosure() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The closure body runs after the section ends; not a finding.
	return func() { _ = s.f.Sync() }
}

func (s *store) allowed(r record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//assess:allow lockio: recovery path, cold by construction
	_, _ = json.Marshal(r)
}
