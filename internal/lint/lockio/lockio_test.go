package lockio_test

import (
	"testing"

	"mineassess/internal/lint/analysistest"
	"mineassess/internal/lint/lockio"
)

func TestLockIO(t *testing.T) {
	analysistest.Run(t, lockio.Analyzer, "testdata", "bank")
}
