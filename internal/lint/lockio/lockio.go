// Package lockio defines the lockio analyzer: no I/O, fsync, marshal /
// codec encode, or blocking channel operation may run inside a critical
// section of the bank, delivery or catdelivery packages.
//
// This is the group-commit and sharded-registry invariant from PR 1/PR 4:
// the ordering lock (bank.Journal.mu), the registry shard locks and the
// per-session locks serialize memory-speed state transitions only — the
// expensive work (JSON/binary marshal, the WAL write, the fsync) happens
// outside them, concurrently across writers. One fsync smuggled under a
// session lock turns a microsecond critical section into a
// milliseconds-long convoy and caps the whole engine at disk latency.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"

	"mineassess/internal/lint/analysis"
	"mineassess/internal/lint/lockflow"
)

// Analyzer flags I/O, marshaling and blocking channel operations inside
// bank/delivery/catdelivery critical sections.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: `forbid I/O, marshal and blocking channel ops under bank/delivery/catdelivery locks

The storage and session engines serialize only memory-speed work under
their mutexes; marshal, file writes, fsync and blocking channel
operations must happen outside (non-blocking select-with-default sends
are allowed). Packages outside bank, delivery and catdelivery are not in
scope — the events durable log, for example, legitimately owns its file
under its own lock on a dedicated writer goroutine.`,
	Run: run,
}

// scoped reports whether the analyzer polices pkg at all.
func scoped(pkg *types.Package) bool {
	return analysis.PkgPathTail(pkg, "bank") ||
		analysis.PkgPathTail(pkg, "delivery") ||
		analysis.PkgPathTail(pkg, "catdelivery")
}

// ioFuncs are package-level functions that marshal or touch the
// filesystem; calling one inside a critical section is always a finding.
var ioFuncs = map[string]map[string]bool{
	"json": {"Marshal": true, "MarshalIndent": true, "Unmarshal": true,
		"NewEncoder": true, "NewDecoder": true},
	"os": {"WriteFile": true, "ReadFile": true, "Open": true, "OpenFile": true,
		"Create": true, "CreateTemp": true, "Truncate": true, "Rename": true,
		"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true},
	"io":  {"Copy": true, "CopyN": true, "ReadAll": true, "WriteString": true},
	"fmt": {"Fprintf": true, "Fprint": true, "Fprintln": true},
	// The repo's own WAL encoders: the binary-codec equivalent of
	// json.Marshal, and exactly what "marshal outside the ordering lock"
	// is about.
	"bank":   {"encodeWALBinary": true},
	"events": {"encodeEventBinary": true},
}

// ioMethods are method names that marshal or reach the filesystem when
// the receiver is an *os.File, a json Encoder/Decoder, or any interface
// (an interface-typed Write/Sync — walSink, io.Writer — can always hide a
// file; concrete in-memory writers like bytes.Buffer stay legal).
var ioMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "ReadFrom": true,
	"Sync": true, "Encode": true, "Decode": true,
}

func run(pass *analysis.Pass) error {
	if !scoped(pass.Pkg) {
		return nil
	}
	for _, body := range lockflow.Bodies(pass.Files) {
		regions := lockflow.Regions(pass.TypesInfo, body)
		if len(regions) == 0 {
			continue
		}
		nonBlocking := lockflow.NonBlockingComms(body)
		for _, r := range regions {
			checkRegion(pass, body, r, nonBlocking)
		}
	}
	return nil
}

func checkRegion(pass *analysis.Pass, body lockflow.Body, r lockflow.Region, nonBlocking map[ast.Stmt]bool) {
	lockflow.InspectRegion(body, r, func(n ast.Node) bool {
		switch n := n.(type) {
		case ast.Stmt:
			if nonBlocking[n] {
				return false // select-with-default: sanctioned non-blocking comm
			}
			if _, ok := n.(*ast.SendStmt); ok {
				pass.Reportf(n.Pos(),
					"blocking channel send inside critical section of %s (use select with default, or move it outside the lock)", r.Mutex)
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(),
					"blocking channel receive inside critical section of %s", r.Mutex)
				return false
			}
		case *ast.CallExpr:
			if msg := ioCall(pass.TypesInfo, n); msg != "" {
				pass.Reportf(n.Pos(),
					"%s inside critical section of %s (marshal and I/O belong outside the lock)", msg, r.Mutex)
			}
		}
		return true
	})
}

// ioCall classifies a call as marshal/I/O, returning a description or "".
func ioCall(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.FuncFor(info, call)
	if fn == nil {
		return ""
	}
	recv := analysis.ReceiverType(fn)
	if recv == nil {
		for pkgTail, names := range ioFuncs {
			if names[fn.Name()] && analysis.PkgPathTail(fn.Pkg(), pkgTail) {
				return pkgTail + "." + fn.Name()
			}
		}
		return ""
	}
	if !ioMethods[fn.Name()] {
		return ""
	}
	switch {
	case analysis.IsNamed(recv, "os", "File"),
		analysis.IsNamed(recv, "json", "Encoder"),
		analysis.IsNamed(recv, "json", "Decoder"):
		return typeName(recv) + "." + fn.Name()
	}
	if types.IsInterface(recv) {
		return "interface-typed " + fn.Name()
	}
	return ""
}

func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
