package obsnil_test

import (
	"testing"

	"mineassess/internal/lint/analysistest"
	"mineassess/internal/lint/obsnil"
)

func TestObsNil(t *testing.T) {
	analysistest.Run(t, obsnil.Analyzer, "testdata", "site")
}
