// Stub of mineassess/internal/obs: nil-safe handles matched by package
// path tail.
package obs

// Counter is a monotonically increasing metric handle.
type Counter struct{ n int64 }

func (c *Counter) Inc()          {}
func (c *Counter) Add(d int64)   {}

// Gauge is a point-in-time metric handle.
type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64)    {}
func (g *Gauge) Add(d int64)    {}
func (g *Gauge) SetMax(v int64) {}

// Histogram is a distribution metric handle.
type Histogram struct{ n int64 }

func (h *Histogram) Observe(v float64)      {}
func (h *Histogram) ObserveValue(v float64) {}

// Registry hands out handles; a nil registry hands out nil handles.
type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return nil }
