// Corpus for the obsnil analyzer.
package site

import (
	"time"

	"obs"
)

func flagged(c *obs.Counter, g *obs.Gauge, h *obs.Histogram) {
	if c != nil { // want `redundant nil guard`
		c.Inc()
	}
	if h != nil { // want `redundant nil guard`
		h.Observe(1)
		h.ObserveValue(2)
	}
	if nil != g { // want `redundant nil guard`
		g.SetMax(9)
	}
}

func fine(c *obs.Counter, h *obs.Histogram, err error) time.Time {
	var start time.Time
	if h != nil { // guards a clock read, not a record call: intentional
		start = time.Now()
	}
	if c != nil && err == nil { // extra condition: intentional
		c.Inc()
	}
	if c != nil { // body does more than record: intentional
		c.Inc()
		start = time.Now()
	}
	c.Inc() // the unconditional idiom the analyzer pushes toward
	h.Observe(float64(time.Since(start)))
	return start
}

func allowed(c *obs.Counter) {
	//assess:allow obsnil: exercising the suppression syntax
	if c != nil {
		c.Inc()
	}
}
