// Package obsnil defines the obsnil analyzer: instrumentation sites must
// lean on the obs nil-contract instead of re-checking it.
//
// internal/obs guarantees that a nil *Registry hands out nil handles and
// that every recording method on a nil *Counter / *Gauge / *Histogram is
// a no-op. Instrumentation is therefore written unconditionally —
// `h.Observe(d)` — and the disabled path costs one predictable branch.
// A hand-rolled `if h != nil { h.Observe(d) }` guard re-states the
// contract at every call site, drifts (some sites guarded, some not) and
// signals a misunderstanding that eventually produces real nil-deref
// "fixes". Guards that protect something else — a clock read before a
// timed section, an error check — are not findings.
package obsnil

import (
	"go/ast"
	"go/token"

	"mineassess/internal/lint/analysis"
)

// Analyzer flags redundant nil guards around nil-safe obs record calls.
var Analyzer = &analysis.Analyzer{
	Name: "obsnil",
	Doc: `forbid redundant nil guards around nil-safe obs recording calls

obs handles no-op when nil; an if-statement whose condition is only
"handle != nil" (or "registry != nil") and whose body is nothing but
recording calls restates the contract and must be unwrapped. Guards with
extra conditions or non-recording statements (clock reads before timed
sections) are intentional and pass.`,
	Run: run,
}

// recordMethods are the nil-safe recording methods of the obs handles.
var recordMethods = map[string]bool{
	"Inc": true, "Add": true, "Set": true, "SetMax": true,
	"Observe": true, "ObserveValue": true,
}

// obsHandle reports whether e's type is an obs handle (or the registry).
func obsHandle(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	for _, name := range [...]string{"Counter", "Gauge", "Histogram", "Registry"} {
		if analysis.IsNamed(tv.Type, "obs", name) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Else != nil || ifs.Init != nil {
				return true
			}
			cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
			if !ok || cond.Op != token.NEQ {
				return true
			}
			guarded := nilCheckedExpr(pass, cond)
			if guarded == nil {
				return true
			}
			for _, stmt := range ifs.Body.List {
				if !recordCall(pass, stmt) {
					return true
				}
			}
			pass.Reportf(ifs.Pos(),
				"redundant nil guard around obs recording call: nil handles no-op (drop the if)")
			return true
		})
	}
	return nil
}

// nilCheckedExpr returns the obs-handle operand of an `x != nil`
// comparison, or nil when the condition is something else.
func nilCheckedExpr(pass *analysis.Pass, cond *ast.BinaryExpr) ast.Expr {
	for _, pair := range [...][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
		x, other := pair[0], pair[1]
		if tv, ok := pass.TypesInfo.Types[other]; ok && tv.IsNil() && obsHandle(pass, x) {
			return x
		}
	}
	return nil
}

// recordCall reports whether stmt is exactly one obs recording call.
func recordCall(pass *analysis.Pass, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.FuncFor(pass.TypesInfo, call)
	if fn == nil || !recordMethods[fn.Name()] {
		return false
	}
	recv := analysis.ReceiverType(fn)
	for _, name := range [...]string{"Counter", "Gauge", "Histogram"} {
		if analysis.IsNamed(recv, "obs", name) {
			return true
		}
	}
	return false
}
