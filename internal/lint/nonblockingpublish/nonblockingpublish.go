// Package nonblockingpublish defines the nonblockingpublish analyzer:
// events.Bus.Publish must never be called inside a critical section.
//
// Publish itself never blocks (that is the bus's contract), but it takes
// the bus lock and fans out to every subscriber queue — calling it while
// holding a session, registry or journal lock nests the bus lock inside
// engine locks, couples emitter latency to fan-out, and invites lock-order
// inversions with the bus's own GaugeFunc callbacks. The engines' rule
// since PR 5 is: persist, unlock, then emit fire-and-forget.
package nonblockingpublish

import (
	"go/ast"

	"mineassess/internal/lint/analysis"
	"mineassess/internal/lint/lockflow"
)

// Analyzer flags events.Bus.Publish call sites inside critical sections.
var Analyzer = &analysis.Analyzer{
	Name: "nonblockingpublish",
	Doc: `forbid events.Bus.Publish inside any critical section

Emit after durable persist, outside every lock: Publish under a session
or registry lock nests the bus lock inside engine locks and couples the
emitter to fan-out. Checked intraprocedurally in every package.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, body := range lockflow.Bodies(pass.Files) {
		regions := lockflow.Regions(pass.TypesInfo, body)
		for _, r := range regions {
			lockflow.InspectRegion(body, r, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.FuncFor(pass.TypesInfo, call)
				if fn == nil || fn.Name() != "Publish" {
					return true
				}
				if analysis.IsNamed(analysis.ReceiverType(fn), "events", "Bus") {
					pass.Reportf(call.Pos(),
						"events.Bus.Publish inside critical section of %s (persist, unlock, then emit)", r.Mutex)
				}
				return true
			})
		}
	}
	return nil
}
