package nonblockingpublish_test

import (
	"testing"

	"mineassess/internal/lint/analysistest"
	"mineassess/internal/lint/nonblockingpublish"
)

func TestNonBlockingPublish(t *testing.T) {
	analysistest.Run(t, nonblockingpublish.Analyzer, "testdata", "engine")
}
