// Corpus for the nonblockingpublish analyzer (checked in every package).
package engine

import (
	"sync"

	"events"
)

type Engine struct {
	mu    sync.Mutex
	state int
	bus   *events.Bus
}

func (e *Engine) flagged(ev events.Event) {
	e.mu.Lock()
	e.state++
	e.bus.Publish(ev) // want `Publish inside critical section of e\.mu`
	e.mu.Unlock()
}

func (e *Engine) flaggedDefer(ev events.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state++
	e.bus.Publish(ev) // want `Publish inside critical section of e\.mu`
}

func (e *Engine) fine(ev events.Event) {
	e.mu.Lock()
	e.state++
	e.mu.Unlock()
	e.bus.Publish(ev) // persist, unlock, then emit
}

func (e *Engine) fineAsync(ev events.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state++
	// The goroutine body executes outside the section; not a finding.
	go func() { e.bus.Publish(ev) }()
}

func (e *Engine) allowed(ev events.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//assess:allow nonblockingpublish: shutdown path, subscribers drained
	e.bus.Publish(ev)
}
