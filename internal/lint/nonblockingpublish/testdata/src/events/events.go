// Stub of mineassess/internal/events: the analyzer matches the Bus type
// by package-path tail, so this corpus package stands in for the real one.
package events

// Type labels an event.
type Type string

// Event is the published payload.
type Event struct {
	Type Type
	Seq  uint64
}

// Bus fans events out to subscribers.
type Bus struct{ subs []chan Event }

// Publish never blocks; the analyzer polices its call sites, not its body.
func (b *Bus) Publish(e Event) {
	for _, ch := range b.subs {
		select {
		case ch <- e:
		default:
		}
	}
}
