// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repo's custom linters are written against this interface so they
// read exactly like stock x/tools analyzers — Name/Doc/Run, Pass with
// Fset/Files/Pkg/TypesInfo, Pass.Reportf — but the framework itself is
// ~200 lines of stdlib-only code. The build stays hermetic (no module
// downloads; this container has no network and an empty module cache) and
// porting an analyzer onto the real golang.org/x/tools/go/analysis is a
// one-line import swap; see DESIGN.md "Enforced invariants" for the
// vendoring fallback when x/tools becomes available.
//
// Deliberate omissions versus x/tools: no Facts (the suite is
// package-local), no Requires/ResultOf (no analyzer depends on another),
// no SuggestedFixes (findings are fixed by hand).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //assess:allow
	// comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `assesslint -list`:
	// first line is the summary, the rest elaborates.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Report. A returned error aborts the whole lint run (it means
	// the analyzer itself is broken, not that the code has findings).
	Run func(pass *Pass) error
}

// Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The runner installs a function that
	// filters //assess:allow suppressions and collects the rest.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// AllowPrefix starts a suppression comment: //assess:allow name[,name]: reason.
// The comment suppresses the named analyzers' findings on its own line and,
// when it stands alone, on the line directly below it. A reason after the
// colon is required — an unexplained suppression is itself suspicious.
const AllowPrefix = "assess:allow"

type allowKey struct {
	file string
	line int
	name string
}

// AllowSet indexes every //assess:allow comment in a package's files.
type AllowSet map[allowKey]bool

// ScanAllows collects the suppression comments of files.
func ScanAllows(fset *token.FileSet, files []*ast.File) AllowSet {
	set := make(AllowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				spec := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				// Names end at the first colon (the reason) or whitespace.
				if i := strings.IndexAny(spec, ": \t"); i >= 0 {
					spec = spec[:i]
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(spec, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					set[allowKey{pos.Filename, pos.Line, name}] = true
					// A standalone comment line covers the next line too.
					set[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return set
}

// Allows reports whether a finding by analyzer name at pos is suppressed.
func (s AllowSet) Allows(fset *token.FileSet, pos token.Pos, name string) bool {
	if len(s) == 0 {
		return false
	}
	p := fset.Position(pos)
	return s[allowKey{p.Filename, p.Line, name}]
}

// PkgPathTail reports whether the package path's last element equals name —
// the suite's way of recognizing repo packages ("mineassess/internal/bank")
// and their analysistest stubs ("bank") with one predicate.
func PkgPathTail(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path == name
}

// IsNamed reports whether t (after pointer indirection) is the named type
// pkgTail.name, e.g. IsNamed(typ, "obs", "Counter") matches *obs.Counter
// from any package whose path ends in "obs".
func IsNamed(t types.Type, pkgTail, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && PkgPathTail(obj.Pkg(), pkgTail)
}

// FuncFor resolves the called function or method behind a call expression,
// or nil when the callee is not a static function (a func value, a type
// conversion, a builtin).
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ReceiverType returns the receiver type of a method object, nil for
// plain functions.
func ReceiverType(fn *types.Func) types.Type {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// IsPkgFunc reports whether fn is the package-level function pkgTail.name
// (no receiver).
func IsPkgFunc(fn *types.Func, pkgTail, name string) bool {
	return fn != nil && fn.Name() == name && ReceiverType(fn) == nil &&
		PkgPathTail(fn.Pkg(), pkgTail)
}
