package httpapi

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mineassess/internal/delivery"
	"mineassess/internal/obs"
)

// TestSlowRequestCorrelation: with -slow-request armed, one slow request
// produces a Warn "slow request" access-log record AND a Warn "slow op"
// record from the delivery engine, and both carry the same request ID —
// the property that lets an operator trace a slow HTTP line to the engine
// call behind it.
func TestSlowRequestCorrelation(t *testing.T) {
	store, examID := examFixture(t, false)
	eng := delivery.NewEngine(store, nil, 8)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	srv := httptest.NewServer(NewServer(eng, store, Options{
		Logger:      logger,
		SlowRequest: time.Nanosecond, // everything is "slow": both lines must fire
	}))
	defer srv.Close()

	body := strings.NewReader(`{"studentId":"s1"}`)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/exams/"+examID+"/sessions", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "corr-99")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start session = %d", resp.StatusCode)
	}

	logs := buf.String()
	var sawRequest, sawOp bool
	for _, line := range strings.Split(logs, "\n") {
		switch {
		case strings.Contains(line, `msg="slow request"`):
			sawRequest = true
			if !strings.Contains(line, "request_id=corr-99") {
				t.Errorf("slow request line lost the request ID: %s", line)
			}
		case strings.Contains(line, `msg="slow op"`):
			sawOp = true
			for _, want := range []string{"request_id=corr-99", "layer=delivery", "op=start"} {
				if !strings.Contains(line, want) {
					t.Errorf("slow op line missing %q: %s", want, line)
				}
			}
		}
	}
	if !sawRequest || !sawOp {
		t.Fatalf("slow request line: %v, slow op line: %v; logs:\n%s", sawRequest, sawOp, logs)
	}
}

// TestMetricsSnapshotQuantiles: routeStats carry a real latency histogram
// now, so the JSON snapshot exports interpolated quantiles alongside the
// old average, and a shared obs registry's samples ride along under
// Subsystems.
func TestMetricsSnapshotQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetricsWith(reg)
	h := m.instrument("/v1/x", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusNoContent) }))
	for i := 0; i < 50; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/x", nil))
	}
	snap := m.Snapshot()
	if len(snap.Routes) != 1 {
		t.Fatalf("routes = %+v", snap.Routes)
	}
	rm := snap.Routes[0]
	if rm.Count != 50 {
		t.Errorf("count = %d", rm.Count)
	}
	if rm.AvgMs <= 0 || rm.P50Ms <= 0 || rm.P99Ms < rm.P50Ms || rm.P999Ms < rm.P99Ms || rm.MaxMs <= 0 {
		t.Errorf("latency stats inconsistent: %+v", rm)
	}
	var sawHist, sawInflight bool
	for _, s := range snap.Subsystems {
		if s.Name == "http_request_seconds_count" && s.Labels["route"] == "/v1/x" {
			sawHist = true
			if s.Value != 50 {
				t.Errorf("subsystem count sample = %v", s.Value)
			}
		}
		if s.Name == "http_requests_inflight" {
			sawInflight = true
		}
	}
	if !sawHist || !sawInflight {
		t.Errorf("subsystem samples missing (hist %v, inflight %v): %+v",
			sawHist, sawInflight, snap.Subsystems)
	}

	// The same cells feed the Prometheus exposition.
	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`http_request_seconds_bucket{route="/v1/x",le="+Inf"} 50`,
		`http_request_seconds_count{route="/v1/x"} 50`,
		"# TYPE http_requests_inflight gauge",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestStandaloneMetricsUnchanged: without a registry the metrics still
// count and quantile — NewMetrics callers (benchmarks, old tests) see the
// extended shape with no Subsystems section.
func TestStandaloneMetricsUnchanged(t *testing.T) {
	m := NewMetrics()
	h := m.instrument("/v1/y", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/y", nil))
	snap := m.Snapshot()
	if len(snap.Routes) != 1 || snap.Routes[0].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Routes[0].P50Ms <= 0 {
		t.Errorf("standalone histogram recorded nothing: %+v", snap.Routes[0])
	}
	if snap.Subsystems != nil {
		t.Errorf("standalone snapshot grew subsystems: %+v", snap.Subsystems)
	}
}
