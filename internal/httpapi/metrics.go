package httpapi

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/internal/obs"
	"mineassess/internal/trace"
	"mineassess/pkg/api"
)

// Metrics is the in-process observability registry, exported at
// GET /v1/metrics. Per-route counters are keyed by the registered route
// pattern (not the raw path), so session-ID fan-out never explodes the
// cardinality.
//
// Per-route stats are pre-registered when the route is (instrument), so
// the request hot path is a few atomic increments against a *routeStats
// captured in the handler closure — no lock and no map lookup is taken per
// request. The registry mutex guards only registration and Snapshot.
//
// Built with NewMetricsWith, the per-route latency histograms and the
// process counters also live in a shared obs.Registry, so the same cells
// feed both the JSON snapshot and the Prometheus exposition on the ops
// listener.
type Metrics struct {
	start       time.Time
	inFlight    *obs.Gauge
	rateLimited *obs.Counter
	panics      *obs.Counter
	reg         *obs.Registry

	mu     sync.Mutex
	routes map[string]*routeStats
}

// Status codes outside [statusMin, statusMin+statusSlots) are clamped into
// the histogram's edge buckets; real handlers only emit 1xx–5xx.
const (
	statusMin   = 100
	statusSlots = 500
)

// routeStats is one route's counters. The latency histogram is lock-free
// and internally consistent (obs.Histogram.CountSum never understates the
// mean), so a scrape racing a request sees at worst one in-flight
// observation's skew per writer.
type routeStats struct {
	hist     *obs.Histogram
	byStatus [statusSlots]atomic.Int64
}

// observe records one completed request. traceID, when non-empty, becomes
// the histogram bucket's exemplar so a p99 number in /v1/metrics or the
// Prometheus exposition resolves to a concrete trace in /debug/traces.
func (rs *routeStats) observe(status int, d time.Duration, traceID string) {
	rs.hist.ObserveTraced(d, traceID)
	slot := status - statusMin
	if slot < 0 {
		slot = 0
	} else if slot >= statusSlots {
		slot = statusSlots - 1
	}
	rs.byStatus[slot].Add(1)
}

// NewMetrics returns an empty standalone registry (no Prometheus export).
func NewMetrics() *Metrics {
	return NewMetricsWith(nil)
}

// NewMetricsWith returns a registry whose cells are additionally published
// through reg (nil reg means standalone): http_request_seconds{route=...}
// histograms, the http_requests_inflight gauge, and the
// http_rate_limited_total / http_panics_total counters.
func NewMetricsWith(reg *obs.Registry) *Metrics {
	m := &Metrics{start: time.Now(), reg: reg, routes: make(map[string]*routeStats)}
	if reg != nil {
		m.inFlight = reg.Gauge("http_requests_inflight",
			"Requests currently being served.")
		m.rateLimited = reg.Counter("http_rate_limited_total",
			"Requests rejected by the token-bucket rate limiter.")
		m.panics = reg.Counter("http_panics_total",
			"Handler panics converted to 500 responses.")
	} else {
		m.inFlight = new(obs.Gauge)
		m.rateLimited = new(obs.Counter)
		m.panics = new(obs.Counter)
	}
	return m
}

// register returns the route's stats, creating them on first registration.
// Routes registered twice (e.g. a legacy alias sharing a pattern) share one
// entry.
func (m *Metrics) register(route string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{}
		if m.reg != nil {
			rs.hist = m.reg.Histogram("http_request_seconds",
				"HTTP request latency by route pattern.",
				obs.Latency, obs.L("route", route))
		} else {
			rs.hist = obs.NewHistogram(obs.Latency)
		}
		m.routes[route] = rs
	}
	return rs
}

// instrument wraps a handler so every request is timed and counted under the
// route pattern it was registered with. The stats cell is resolved here,
// once, at registration time.
func (m *Metrics) instrument(route string, next http.Handler) http.Handler {
	rs := m.register(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		rs.observe(sr.status, time.Since(start), trace.FromContext(r.Context()).TraceIDHex())
	})
}

// RouteMetrics is one route's exported counters (wire type promoted to
// pkg/api).
type RouteMetrics = api.RouteMetrics

// MetricsSnapshot is the GET /v1/metrics response body (wire type promoted
// to pkg/api).
type MetricsSnapshot = api.MetricsSnapshot

// Snapshot exports the registry. Routes are sorted by pattern for stable
// output; scraping the snapshot does not reset any counter. Routes that
// have never served a request are omitted, matching the lazily-populated
// output of earlier versions. When built over an obs.Registry, every
// subsystem sample (journal, events, live stats, ...) rides along under
// Subsystems.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Value(),
		RateLimited:   m.rateLimited.Value(),
		Panics:        m.panics.Value(),
	}
	m.mu.Lock()
	for route, rs := range m.routes {
		count, sumNanos := rs.hist.CountSum()
		if count == 0 {
			continue
		}
		rm := RouteMetrics{
			Route:    route,
			Count:    count,
			ByStatus: make(map[string]int64),
			AvgMs:    float64(sumNanos) / 1e6 / float64(count),
			P50Ms:    obs.Ms(rs.hist.Quantile(0.50)),
			P99Ms:    obs.Ms(rs.hist.Quantile(0.99)),
			P999Ms:   obs.Ms(rs.hist.Quantile(0.999)),
			MaxMs:    obs.Ms(rs.hist.Max()),
		}
		for slot := range rs.byStatus {
			n := rs.byStatus[slot].Load()
			if n == 0 {
				continue
			}
			status := slot + statusMin
			rm.ByStatus[strconv.Itoa(status)] = n
			if status >= 500 {
				snap.Errors5xx += n
			}
		}
		snap.Requests += count
		snap.Routes = append(snap.Routes, rm)
	}
	m.mu.Unlock()
	sort.Slice(snap.Routes, func(i, j int) bool {
		return snap.Routes[i].Route < snap.Routes[j].Route
	})
	for _, s := range m.reg.Snapshot() {
		snap.Subsystems = append(snap.Subsystems, api.SubsystemMetric(s))
	}
	return snap
}
