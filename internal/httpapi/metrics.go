package httpapi

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/pkg/api"
)

// Metrics is the in-process observability registry, exported at
// GET /v1/metrics. Per-route counters are keyed by the registered route
// pattern (not the raw path), so session-ID fan-out never explodes the
// cardinality.
type Metrics struct {
	start       time.Time
	inFlight    atomic.Int64
	rateLimited atomic.Int64
	panics      atomic.Int64

	mu     sync.Mutex
	routes map[string]*routeStats
}

type routeStats struct {
	count    int64
	byStatus map[int]int64
	total    time.Duration
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), routes: make(map[string]*routeStats)}
}

// observe records one completed request against a route pattern.
func (m *Metrics) observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{byStatus: make(map[int]int64)}
		m.routes[route] = rs
	}
	rs.count++
	rs.byStatus[status]++
	rs.total += d
}

// instrument wraps a handler so every request is timed and counted under the
// route pattern it was registered with.
func (m *Metrics) instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		m.observe(route, sr.status, time.Since(start))
	})
}

// RouteMetrics is one route's exported counters (wire type promoted to
// pkg/api).
type RouteMetrics = api.RouteMetrics

// MetricsSnapshot is the GET /v1/metrics response body (wire type promoted
// to pkg/api).
type MetricsSnapshot = api.MetricsSnapshot

// Snapshot exports the registry. Routes are sorted by pattern for stable
// output; scraping the snapshot does not reset any counter.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		RateLimited:   m.rateLimited.Load(),
		Panics:        m.panics.Load(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.routes {
		rm := RouteMetrics{
			Route:    route,
			Count:    rs.count,
			ByStatus: make(map[string]int64, len(rs.byStatus)),
		}
		for status, n := range rs.byStatus {
			rm.ByStatus[strconv.Itoa(status)] = n
			if status >= 500 {
				snap.Errors5xx += n
			}
		}
		if rs.count > 0 {
			rm.AvgMs = float64(rs.total.Microseconds()) / 1000 / float64(rs.count)
		}
		snap.Requests += rs.count
		snap.Routes = append(snap.Routes, rm)
	}
	sort.Slice(snap.Routes, func(i, j int) bool {
		return snap.Routes[i].Route < snap.Routes[j].Route
	})
	return snap
}
