package httpapi

import (
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/pkg/api"
)

// Metrics is the in-process observability registry, exported at
// GET /v1/metrics. Per-route counters are keyed by the registered route
// pattern (not the raw path), so session-ID fan-out never explodes the
// cardinality.
//
// Per-route stats are pre-registered when the route is (instrument), so
// the request hot path is a few atomic increments against a *routeStats
// captured in the handler closure — no lock and no map lookup is taken per
// request. The registry mutex guards only registration and Snapshot.
type Metrics struct {
	start       time.Time
	inFlight    atomic.Int64
	rateLimited atomic.Int64
	panics      atomic.Int64

	mu     sync.Mutex
	routes map[string]*routeStats
}

// Status codes outside [statusMin, statusMin+statusSlots) are clamped into
// the histogram's edge buckets; real handlers only emit 1xx–5xx.
const (
	statusMin   = 100
	statusSlots = 500
)

// routeStats is one route's counters. All fields are atomics: observe is
// called concurrently from every in-flight request without locking.
// Snapshot reads the fields individually, so a scrape racing a request may
// see a count without its duration — the skew is one request's worth and
// irrelevant for averages.
type routeStats struct {
	count      atomic.Int64
	totalNanos atomic.Int64
	byStatus   [statusSlots]atomic.Int64
}

// observe records one completed request.
func (rs *routeStats) observe(status int, d time.Duration) {
	rs.count.Add(1)
	rs.totalNanos.Add(int64(d))
	slot := status - statusMin
	if slot < 0 {
		slot = 0
	} else if slot >= statusSlots {
		slot = statusSlots - 1
	}
	rs.byStatus[slot].Add(1)
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), routes: make(map[string]*routeStats)}
}

// register returns the route's stats, creating them on first registration.
// Routes registered twice (e.g. a legacy alias sharing a pattern) share one
// entry.
func (m *Metrics) register(route string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{}
		m.routes[route] = rs
	}
	return rs
}

// instrument wraps a handler so every request is timed and counted under the
// route pattern it was registered with. The stats cell is resolved here,
// once, at registration time.
func (m *Metrics) instrument(route string, next http.Handler) http.Handler {
	rs := m.register(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		sr := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sr, r)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		rs.observe(sr.status, time.Since(start))
	})
}

// RouteMetrics is one route's exported counters (wire type promoted to
// pkg/api).
type RouteMetrics = api.RouteMetrics

// MetricsSnapshot is the GET /v1/metrics response body (wire type promoted
// to pkg/api).
type MetricsSnapshot = api.MetricsSnapshot

// Snapshot exports the registry. Routes are sorted by pattern for stable
// output; scraping the snapshot does not reset any counter. Routes that
// have never served a request are omitted, matching the lazily-populated
// output of earlier versions.
func (m *Metrics) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		RateLimited:   m.rateLimited.Load(),
		Panics:        m.panics.Load(),
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.routes {
		count := rs.count.Load()
		if count == 0 {
			continue
		}
		rm := RouteMetrics{
			Route:    route,
			Count:    count,
			ByStatus: make(map[string]int64),
		}
		for slot := range rs.byStatus {
			n := rs.byStatus[slot].Load()
			if n == 0 {
				continue
			}
			status := slot + statusMin
			rm.ByStatus[strconv.Itoa(status)] = n
			if status >= 500 {
				snap.Errors5xx += n
			}
		}
		rm.AvgMs = float64(rs.totalNanos.Load()) / 1e6 / float64(count)
		snap.Requests += count
		snap.Routes = append(snap.Routes, rm)
	}
	sort.Slice(snap.Routes, func(i, j int) bool {
		return snap.Routes[i].Route < snap.Routes[j].Route
	})
	return snap
}
