// Package httpapi is the versioned HTTP surface of the LMS (§5: learners,
// SCOs and administrators all speak HTTP to the assessment service). It
// exposes the resource-oriented /v1 API — session delivery, monitoring, the
// SCORM RTE bridge, problem/exam authoring CRUD and blueprint assembly — on
// top of the delivery engine and a bank.Storage, plus thin deprecated
// aliases for the seed-era /api/* routes so existing SCO content keeps
// working.
//
// Every non-2xx response carries the typed error envelope of errors.go
// ({code, message, details}); the middleware chain adds request IDs,
// structured access logging, panic recovery, per-learner token-bucket rate
// limiting, and an in-process metrics registry exported at /v1/metrics.
//
// Route map (see API.md for the full reference):
//
//	POST   /v1/exams/{id}/sessions     start a session
//	GET    /v1/exams/{id}/sessions     list session summaries (admin)
//	GET    /v1/sessions/{id}           session status
//	POST   /v1/sessions/{id}:answer    record a response
//	POST   /v1/sessions/{id}:pause     pause
//	POST   /v1/sessions/{id}:resume    resume
//	POST   /v1/sessions/{id}:finish    finish and grade
//	GET    /v1/sessions/{id}/monitor   captured snapshots
//	POST   /v1/sessions/{id}/rte       SCORM RTE bridge
//	POST   /v1/adaptive-sessions       start a live adaptive (CAT) session
//	GET    /v1/adaptive-sessions/{id}  adaptive session status
//	GET    /v1/adaptive-sessions/{id}/next     pending item
//	POST   /v1/adaptive-sessions/{id}:respond  answer the pending item
//	POST   /v1/adaptive-sessions/{id}:finish   close / fetch the outcome
//	GET    /v1/adaptive-sessions/{id}/monitor  captured snapshots
//	POST   /v1/exams/{id}:recalibrate  fold logged responses into params
//	GET    /v1/problems                search problems
//	POST   /v1/problems                create a problem
//	GET    /v1/problems/{id}           fetch a problem
//	PUT    /v1/problems/{id}           update a problem
//	DELETE /v1/problems/{id}           delete a problem
//	GET    /v1/exams                   list exam IDs
//	POST   /v1/exams                   create an exam
//	POST   /v1/exams:assemble          blueprint-driven assembly
//	GET    /v1/exams/{id}              fetch an exam record
//	DELETE /v1/exams/{id}              delete an exam
//	GET    /v1/exams/{id}/grades       manual-grading worklist
//	POST   /v1/grades                  assign manual credit
//	GET    /v1/exams/{id}/results      export the response matrix
//	GET    /v1/exams/{id}/live         SSE: exam events + live item stats
//	GET    /v1/events:stream           SSE: every event on the bus
//	GET    /v1/metrics                 metrics snapshot
//	GET    /package/...                mounted SCORM package files
package httpapi

import (
	"encoding/json"
	"log/slog"
	"mime"
	"net/http"
	"path"
	"strings"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/catdelivery"
	"mineassess/internal/delivery"
	"mineassess/internal/events"
	"mineassess/internal/livestats"
	"mineassess/internal/obs"
	"mineassess/internal/scorm"
	"mineassess/internal/trace"
)

// Options configures the server's middleware stack and optional subsystems.
type Options struct {
	// Logger receives structured access-log and panic records; nil
	// disables logging.
	Logger *slog.Logger
	// SlowRequest, when > 0 with Logger set, logs requests that take at
	// least this long at Warn ("slow request") and arms the delivery and
	// adaptive engines' slow-op logs so the layers correlate by request ID.
	SlowRequest time.Duration
	// Obs, when set, publishes the per-route latency histograms and
	// process counters through the shared registry (Prometheus exposition
	// on the ops listener) and appends every subsystem sample to the
	// /v1/metrics JSON body.
	Obs *obs.Registry
	// RatePerSec is the per-learner token-bucket refill rate; <= 0 disables
	// rate limiting.
	RatePerSec float64
	// Burst is the per-learner bucket capacity (minimum 1 when limiting).
	Burst int
	// Now is the rate limiter's clock; nil means wall-clock time.
	Now func() time.Time
	// Adaptive enables the /v1/adaptive-sessions routes and the
	// exams:recalibrate verb; nil leaves them answering a typed 404.
	Adaptive *catdelivery.Engine
	// Events enables the SSE endpoints (/v1/events:stream and
	// /v1/exams/{id}/live); nil leaves them answering a typed 404. The
	// server only subscribes — wiring the engines to publish onto the bus
	// is the caller's job (SetEventBus).
	Events *events.Bus
	// LiveStats, when set with Events, interleaves incremental item
	// statistics ("stats" frames) into /v1/exams/{id}/live streams.
	LiveStats *livestats.Aggregator
	// StreamHeartbeat is the SSE keep-alive comment interval; 0 means 15s.
	StreamHeartbeat time.Duration
	// Tracer, when set, opens a root span per request (W3C traceparent
	// ingestion/emission), threads it through the engine *Ctx calls, and
	// tail-samples completed traces (see internal/trace). Nil disables
	// tracing with zero per-request cost.
	Tracer *trace.Tracer
}

// Server is the LMS HTTP front end. Build with NewServer; it implements
// http.Handler.
type Server struct {
	engine    *delivery.Engine
	cat       *catdelivery.Engine
	store     bank.Storage
	bus       *events.Bus
	live      *livestats.Aggregator
	heartbeat time.Duration
	metrics   *Metrics
	mux       *http.ServeMux
	handler   http.Handler
	// pkg, when mounted, is the SCORM content package served under
	// /package/ so launched SCOs load straight from the LMS.
	pkg *scorm.Package
}

var _ http.Handler = (*Server)(nil)

// NewServer wires the engine and bank behind the /v1 router, the legacy
// aliases, and the middleware chain.
func NewServer(engine *delivery.Engine, store bank.Storage, o Options) *Server {
	s := &Server{
		engine:    engine,
		cat:       o.Adaptive,
		store:     store,
		bus:       o.Events,
		live:      o.LiveStats,
		heartbeat: o.StreamHeartbeat,
		metrics:   NewMetricsWith(o.Obs),
		mux:       http.NewServeMux(),
	}
	s.routes()
	// Slow requests at the HTTP layer arm matching slow-op logs in the
	// engines, so one request ID ties the access-log line to the engine
	// call that made it slow.
	if o.Logger != nil && o.SlowRequest > 0 {
		if engine != nil {
			engine.SetSlowOpLog(o.Logger, o.SlowRequest)
		}
		if o.Adaptive != nil {
			o.Adaptive.SetSlowOpLog(o.Logger, o.SlowRequest)
		}
	}
	// The per-learner bucket shapes individual traffic; the per-IP bucket
	// (ipAggregateFactor times the learner rate) caps what any one address
	// can push regardless of the client-controlled X-Learner-ID header. The
	// chain runs RequestID outermost so the recovery and access-log lines
	// carry the ID, and Recover inside AccessLog so a panic is logged as
	// the 500 it produced.
	burst := o.Burst
	if burst < 1 {
		burst = 1 // clamp before multiplying so the IP bucket keeps its 16x headroom
	}
	perLearner := NewRateLimiter(o.RatePerSec, burst, o.Now)
	perIP := NewRateLimiter(o.RatePerSec*ipAggregateFactor, burst*ipAggregateFactor, o.Now)
	// Trace sits just inside RequestID so the root span's context carries
	// the request ID (Detach preserves both), and outside AccessLog so the
	// access-logged duration is what the root span records.
	s.handler = Chain(
		RequestID(),
		Trace(o.Tracer),
		AccessLog(o.Logger, o.SlowRequest),
		Recover(o.Logger, func() { s.metrics.panics.Inc() }),
		RateLimit(perLearner, perIP, func() { s.metrics.rateLimited.Inc() }),
	)(s.mux)
	return s
}

// ipAggregateFactor is the per-IP rate ceiling as a multiple of the
// per-learner rate: a NAT'd classroom gets this many learners' worth of
// aggregate headroom per address, while a header-spoofing client is still
// bounded.
const ipAggregateFactor = 16

// Metrics exposes the server's metrics registry (benchmarks and tests).
func (s *Server) Metrics() *Metrics {
	return s.metrics
}

// MountPackage exposes a SCORM package's files under /package/. Call before
// serving; the launch URL for a resource is "/package/" + resource href.
func (s *Server) MountPackage(pkg *scorm.Package) {
	s.pkg = pkg
}

// ServeHTTP implements http.Handler through the middleware chain.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// route registers a handler under a metrics label equal to its pattern.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.metrics.instrument(pattern, h))
}

func (s *Server) routes() {
	// v1 resources.
	s.route("/v1/sessions/", s.handleSessions)
	s.route("/v1/adaptive-sessions", s.handleAdaptiveRoot)
	s.route("/v1/adaptive-sessions:purge", s.handleAdaptivePurge)
	s.route("/v1/adaptive-sessions/", s.handleAdaptiveSessions)
	s.route("/v1/problems", s.handleProblemsRoot)
	s.route("/v1/problems/", s.handleProblemByID)
	s.route("/v1/exams", s.handleExamsRoot)
	s.route("/v1/exams:assemble", s.handleAssemble)
	s.route("/v1/exams/", s.handleExamByID)
	s.route("/v1/grades", s.handleGrades)
	s.route("/v1/metrics", s.handleMetrics)
	s.route("/v1/events:stream", s.handleEventStream)

	// Deprecated seed-era aliases, kept so existing SCO content and scripts
	// keep working; they call the same cores as the /v1 routes and return
	// identical bodies.
	s.route("/api/session/start", s.legacyStart)
	s.route("/api/session/", s.legacySession)
	s.route("/api/monitor/", s.legacyMonitor)
	s.route("/api/rte/", s.legacyRTE)
	s.route("/api/admin/sessions", s.legacyAdminSessions)
	s.route("/api/admin/grades", s.legacyAdminGrades)
	s.route("/api/admin/results", s.legacyAdminResults)

	// Mounted SCORM content.
	s.route("/package/", s.handlePackage)

	// Everything else is a typed 404 (no stdlib plain-text not-found).
	s.route("/", func(w http.ResponseWriter, r *http.Request) {
		notFoundRoute(w, r.URL.Path)
	})
}

// decodeBody parses a JSON request body, bounding it so a runaway client
// cannot exhaust memory. It writes the 400 envelope itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		badRequest(w, "malformed JSON request body")
		return false
	}
	return true
}

// --- Session delivery ---

// handleSessions routes /v1/sessions/{id}[:verb|/monitor|/rte].
func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sessions/")
	seg, sub, _ := strings.Cut(rest, "/")
	id, verb, hasVerb := strings.Cut(seg, ":")
	if id == "" {
		badRequest(w, "missing session ID")
		return
	}
	switch {
	case hasVerb:
		if sub != "" {
			notFoundRoute(w, r.URL.Path)
			return
		}
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		s.sessionAction(w, r, id, verb)
	case sub == "":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.getStatus(w, id)
	case sub == "monitor":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.getMonitor(w, id)
	case sub == "rte":
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		s.postRTE(w, r, id)
	default:
		notFoundRoute(w, r.URL.Path)
	}
}

// sessionAction dispatches the :answer/:pause/:resume/:finish verbs.
func (s *Server) sessionAction(w http.ResponseWriter, r *http.Request, id, verb string) {
	switch verb {
	case "answer":
		var req AnswerRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if err := s.engine.AnswerCtx(r.Context(), id, req.ProblemID, req.Response); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ActionResponse{Status: "recorded"})
	case "pause":
		if err := s.engine.Pause(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ActionResponse{Status: "paused"})
	case "resume":
		if err := s.engine.Resume(id); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ActionResponse{Status: "running"})
	case "finish":
		res, err := s.engine.FinishCtx(r.Context(), id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	default:
		writeErr(w, &Error{Code: CodeNotFound, Message: "unknown session action " + verb})
	}
}

// startSession opens a session. The v1 route supplies examID from the URL;
// the legacy alias passes "" and the exam ID comes from the body. Unknown
// exams are 404 EXAM_NOT_FOUND, not a generic 400 — clients must be able to
// tell a typo'd exam ID from a malformed request.
func (s *Server) startSession(w http.ResponseWriter, r *http.Request, examID string) {
	var req StartSessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if examID == "" {
		examID = req.ExamID
	}
	if examID == "" {
		badRequest(w, "missing exam ID")
		return
	}
	sess, err := s.engine.StartCtx(r.Context(), examID, req.StudentID, req.Seed)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StartSessionResponse{SessionID: sess.ID, Order: sess.Order})
}

func (s *Server) getStatus(w http.ResponseWriter, id string) {
	st, err := s.engine.Status(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// getMonitor returns the session's captured snapshots. Nonexistent sessions
// are a 404 envelope, not an empty 200 — the registry is checked before the
// monitor rings are read.
func (s *Server) getMonitor(w http.ResponseWriter, id string) {
	if !s.engine.HasSession(id) {
		writeError(w, delivery.ErrSessionNotFound)
		return
	}
	writeJSON(w, http.StatusOK, s.engine.Monitor().Snapshots(id))
}

// postRTE bridges the SCORM API over HTTP for SCO content.
func (s *Server) postRTE(w http.ResponseWriter, r *http.Request, id string) {
	var req RTERequest
	if !decodeBody(w, r, &req) {
		return
	}
	var resp RTEResponse
	known := true
	// RTEExec holds the session lock so SCO traffic cannot race the
	// learner's Answer/Pause/Finish writes into the same CMI data model.
	err := s.engine.RTEExec(id, func(api *scorm.API) {
		switch strings.ToLower(req.Method) {
		case "getvalue":
			resp.Result = api.LMSGetValue(req.Element)
		case "setvalue":
			resp.Result = api.LMSSetValue(req.Element, req.Value)
		case "commit":
			resp.Result = api.LMSCommit("")
		case "geterrorstring":
			resp.Result = api.LMSGetErrorString(req.Value)
		default:
			known = false
			return
		}
		resp.LastError = api.LMSGetLastError()
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if !known {
		badRequest(w, "unknown RTE method %s", req.Method)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- Admin / metrics / package ---

// listSessions is the administrator's monitor view of one exam's sessions.
// The exam is looked up first so a typo'd ID is a 404, not an empty list.
func (s *Server) listSessions(w http.ResponseWriter, examID string) {
	if _, err := s.store.Exam(examID); err != nil {
		writeError(w, err)
		return
	}
	sums := s.engine.SessionSummaries(examID)
	if sums == nil {
		sums = []delivery.Status{} // JSON [] for empty, never null
	}
	writeJSON(w, http.StatusOK, sums)
}

// listGrades serves the manual-grading worklist for one exam.
func (s *Server) listGrades(w http.ResponseWriter, examID string) {
	if _, err := s.store.Exam(examID); err != nil {
		writeError(w, err)
		return
	}
	pending := s.engine.PendingGrades(examID)
	if pending == nil {
		pending = []delivery.PendingGrade{} // JSON [] for empty, never null
	}
	writeJSON(w, http.StatusOK, pending)
}

// assignGrade records an instructor's manual credit.
func (s *Server) assignGrade(w http.ResponseWriter, r *http.Request) {
	var req GradeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := s.engine.AssignGrade(req.SessionID, req.ProblemID, req.Credit); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ActionResponse{Status: "graded"})
}

// exportResults exports the exam's collected response matrix in the
// analysis package's JSON format.
func (s *Server) exportResults(w http.ResponseWriter, examID string) {
	res, err := s.engine.CollectResults(examID)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleGrades(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	s.assignGrade(w, r)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// contentTypeOverrides pins types that vary across OS mime tables (or that
// stdlib tables miss), so package serving is deterministic everywhere;
// anything else falls through to mime.TypeByExtension.
var contentTypeOverrides = map[string]string{
	".html":  "text/html; charset=utf-8",
	".xml":   "application/xml",
	".js":    "text/javascript",
	".css":   "text/css",
	".json":  "application/json",
	".svg":   "image/svg+xml",
	".woff2": "font/woff2",
}

// handlePackage serves mounted SCORM package files.
func (s *Server) handlePackage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	if s.pkg == nil {
		writeErr(w, &Error{Code: CodeNotFound, Message: "no package mounted"})
		return
	}
	file := strings.TrimPrefix(r.URL.Path, "/package/")
	data, ok := s.pkg.Files[file]
	if !ok {
		writeErr(w, &Error{Code: CodeNotFound, Message: "no such file " + file})
		return
	}
	ext := path.Ext(file)
	ct, pinned := contentTypeOverrides[ext]
	if !pinned {
		ct = mime.TypeByExtension(ext)
	}
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
