package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mineassess/internal/delivery"
)

func TestChainOrder(t *testing.T) {
	var got []string
	mark := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				got = append(got, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(mark("outer"), mark("inner"))(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { got = append(got, "handler") }))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if strings.Join(got, ",") != "outer,inner,handler" {
		t.Errorf("order = %v", got)
	}
}

func TestRequestID(t *testing.T) {
	var seen string
	h := RequestID()(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))

	// Generated when absent, echoed on the response.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if seen == "" || rec.Header().Get("X-Request-ID") != seen {
		t.Errorf("generated ID = %q, header %q", seen, rec.Header().Get("X-Request-ID"))
	}

	// Honoured when a proxy already assigned one.
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set("X-Request-ID", "upstream-7")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "upstream-7" {
		t.Errorf("inbound ID = %q, want upstream-7", seen)
	}
}

func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	h := Chain(RequestID(), AccessLog(logger, 0))(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusTeapot)
			_, _ = w.Write([]byte("short and stout"))
		}))
	req := httptest.NewRequest(http.MethodGet, "/v1/teapot", nil)
	req.Header.Set("X-Learner-ID", "alice")
	h.ServeHTTP(httptest.NewRecorder(), req)
	line := buf.String()
	for _, want := range []string{"method=GET", "path=/v1/teapot", "status=418",
		"bytes=15", "learner=alice", "request_id="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}

func TestRecoverMiddleware(t *testing.T) {
	panics := 0
	h := Recover(slog.New(slog.NewTextHandler(io.Discard, nil)), func() { panics++ })(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic("boom")
		}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var e Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != CodeInternal {
		t.Errorf("body = %s, want INTERNAL envelope", rec.Body.Bytes())
	}
	if panics != 1 {
		t.Errorf("panic counter = %d", panics)
	}
}

func TestRateLimiterBuckets(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(1, 2, clock.Now) // 1 token/s, burst 2
	for i := 0; i < 2; i++ {
		if !l.Allow("alice") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if l.Allow("alice") {
		t.Error("request beyond burst allowed")
	}
	// A different learner has their own bucket.
	if !l.Allow("bob") {
		t.Error("independent learner denied")
	}
	// Tokens refill with time.
	clock.Advance(1500 * time.Millisecond)
	if !l.Allow("alice") {
		t.Error("refilled request denied")
	}
	if l.Allow("alice") {
		t.Error("half-refilled token granted")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	if l := NewRateLimiter(0, 5, nil); l != nil {
		t.Error("rate 0 should disable the limiter")
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	clock := newFakeClock()
	limited := 0
	h := RateLimit(NewRateLimiter(1, 1, clock.Now), nil, func() { limited++ })(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set("X-Learner-ID", "alice")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("first request = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("missing Retry-After")
	}
	var e Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != CodeRateLimited {
		t.Errorf("body = %s, want RATE_LIMITED envelope", rec.Body.Bytes())
	}
	if limited != 1 {
		t.Errorf("limited counter = %d", limited)
	}
}

// TestRateLimitHeaderSpoofBounded: cycling fabricated X-Learner-ID values
// defeats the per-learner bucket but not the per-IP aggregate bucket.
func TestRateLimitHeaderSpoofBounded(t *testing.T) {
	clock := newFakeClock()
	h := RateLimit(
		NewRateLimiter(1, 1, clock.Now),
		NewRateLimiter(4, 4, clock.Now), // IP aggregate: 4 burst
		nil,
	)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	allowed := 0
	for i := 0; i < 20; i++ {
		req := httptest.NewRequest(http.MethodGet, "/", nil) // same RemoteAddr
		req.Header.Set("X-Learner-ID", fmt.Sprintf("spoof-%d", i))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			allowed++
		}
	}
	if allowed != 4 {
		t.Errorf("spoofing client got %d requests through, want the IP burst of 4", allowed)
	}
}

// TestRateLimitLearnerIsolation: a learner hammering under a fixed ID
// exhausts only their own bucket — the shared IP budget is checked after
// the learner bucket, so NAT peers are untouched.
func TestRateLimitLearnerIsolation(t *testing.T) {
	clock := newFakeClock()
	h := RateLimit(
		NewRateLimiter(1, 1, clock.Now),
		NewRateLimiter(100, 100, clock.Now),
		nil,
	)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	send := func(learner string) int {
		req := httptest.NewRequest(http.MethodGet, "/", nil) // same RemoteAddr
		req.Header.Set("X-Learner-ID", learner)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	send("spammer")
	for i := 0; i < 50; i++ {
		if code := send("spammer"); code != http.StatusTooManyRequests {
			t.Fatalf("spammer request %d = %d, want 429", i, code)
		}
	}
	// The peer behind the same address still has IP budget left because
	// the spammer's denied requests consumed none of it.
	if code := send("peer"); code != http.StatusOK {
		t.Errorf("peer = %d, want 200", code)
	}
}

// TestRateLimitHeaderlessUsesIPBucketOnly: browser/SCO traffic without
// X-Learner-ID is governed by the aggregate per-IP bucket, not squeezed
// into a single learner bucket at the base rate.
func TestRateLimitHeaderlessUsesIPBucketOnly(t *testing.T) {
	clock := newFakeClock()
	h := RateLimit(
		NewRateLimiter(1, 1, clock.Now), // would allow only 1 if misapplied
		NewRateLimiter(16, 16, clock.Now),
		nil,
	)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	allowed := 0
	for i := 0; i < 20; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		if rec.Code == http.StatusOK {
			allowed++
		}
	}
	if allowed != 16 {
		t.Errorf("headerless traffic got %d through, want the IP burst of 16", allowed)
	}
}

// TestRecoverLogsRequestID: the server chain orders RequestID outside
// Recover, so panic lines carry the ID the client saw.
func TestRecoverLogsRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	h := Chain(RequestID(), Recover(logger, nil))(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			panic("boom")
		}))
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set("X-Request-ID", "corr-42")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if !strings.Contains(buf.String(), "request_id=corr-42") {
		t.Errorf("panic line missing request ID: %s", buf.String())
	}
}

// TestStreamingThroughMiddleware: a handler that flushes (SSE-style) must
// keep its http.Flusher capability behind the full logging + metrics
// wrapping — the statusRecorder forwards Flush instead of hiding it.
func TestStreamingThroughMiddleware(t *testing.T) {
	m := NewMetrics()
	flushed := 0
	h := Chain(RequestID(), AccessLog(slog.New(slog.NewTextHandler(io.Discard, nil)), 0), Recover(nil, nil))(
		m.instrument("/v1/stream", http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				f, ok := w.(http.Flusher)
				if !ok {
					t.Fatal("middleware chain hid http.Flusher from the handler")
				}
				_, _ = w.Write([]byte("data: tick\n\n"))
				f.Flush()
				flushed++
			})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stream", nil))
	if flushed != 1 {
		t.Fatalf("handler flushed %d times", flushed)
	}
	if !rec.Flushed {
		t.Error("flush never reached the underlying writer")
	}
}

// TestResponseControllerThroughMiddleware: the modern flush path —
// http.NewResponseController — must reach the underlying writer via the
// recorder's Unwrap chain.
func TestResponseControllerThroughMiddleware(t *testing.T) {
	m := NewMetrics()
	h := Chain(AccessLog(slog.New(slog.NewTextHandler(io.Discard, nil)), 0))(
		m.instrument("/v1/stream", http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				_, _ = w.Write([]byte("x"))
				if err := http.NewResponseController(w).Flush(); err != nil {
					t.Errorf("ResponseController.Flush: %v", err)
				}
			})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stream", nil))
	if !rec.Flushed {
		t.Error("controller flush never reached the underlying writer")
	}
}

// hijackProbe is a ResponseWriter that records whether Hijack was reached.
type hijackProbe struct {
	http.ResponseWriter
	hijacked bool
}

func (h *hijackProbe) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h.hijacked = true
	return nil, nil, nil
}

// TestHijackThroughMiddleware: the recorder forwards Hijack when the
// underlying writer supports it and reports http.ErrNotSupported when not.
func TestHijackThroughMiddleware(t *testing.T) {
	probe := &hijackProbe{ResponseWriter: httptest.NewRecorder()}
	h := AccessLog(slog.New(slog.NewTextHandler(io.Discard, nil)), 0)(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("middleware chain hid http.Hijacker")
			}
			if _, _, err := hj.Hijack(); err != nil {
				t.Errorf("Hijack: %v", err)
			}
		}))
	h.ServeHTTP(probe, httptest.NewRequest(http.MethodGet, "/", nil))
	if !probe.hijacked {
		t.Error("hijack never reached the underlying writer")
	}

	// A plain recorder cannot hijack: the wrapper must say so, not panic.
	h = AccessLog(slog.New(slog.NewTextHandler(io.Discard, nil)), 0)(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			if _, _, err := w.(http.Hijacker).Hijack(); !errors.Is(err, http.ErrNotSupported) {
				t.Errorf("Hijack on non-hijacker = %v, want http.ErrNotSupported", err)
			}
		}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

// TestMetricsConcurrentObserve: the per-route stats are pre-registered and
// lock-free; hammering one route from many goroutines (run with -race) must
// lose no count.
func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	h := m.instrument("/v1/hot", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusNoContent) }))
	const workers, per = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/hot", nil))
			}
		}()
	}
	wg.Wait()
	snap := m.Snapshot()
	if len(snap.Routes) != 1 || snap.Routes[0].Count != workers*per {
		t.Fatalf("snapshot = %+v, want one route with %d requests", snap.Routes, workers*per)
	}
	if snap.Routes[0].ByStatus["204"] != workers*per {
		t.Errorf("byStatus = %v", snap.Routes[0].ByStatus)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	srv, _ := testServer(t)
	sr := startV1(t, srv.URL, "exam1", "alice")
	doJSON(t, http.MethodGet, srv.URL+"/v1/sessions/"+sr.SessionID, nil, nil)
	doJSON(t, http.MethodGet, srv.URL+"/v1/sessions/ghost", nil, nil)

	var snap MetricsSnapshot
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/metrics", nil, &snap); code != http.StatusOK {
		t.Fatal("metrics fetch failed")
	}
	// Routes are labelled by pattern, not raw path, so the two session GETs
	// share one label.
	var sessions RouteMetrics
	for _, rm := range snap.Routes {
		if rm.Route == "/v1/sessions/" {
			sessions = rm
		}
	}
	if sessions.Count != 2 {
		t.Errorf("session route count = %d, want 2 (routes %+v)", sessions.Count, snap.Routes)
	}
	if sessions.ByStatus["200"] != 1 || sessions.ByStatus["404"] != 1 {
		t.Errorf("byStatus = %v", sessions.ByStatus)
	}
	if snap.Requests < 3 {
		t.Errorf("total requests = %d", snap.Requests)
	}
	if snap.Errors5xx != 0 {
		t.Errorf("errors5xx = %d", snap.Errors5xx)
	}
}

// TestRateLimitDisabledPassthrough: with both limiters nil the middleware
// must return the next handler itself — zero per-request overhead, not a
// wrapper that checks nil on every call.
func TestRateLimitDisabledPassthrough(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	wrapped := RateLimit(nil, nil, func() { t.Error("onLimited fired with no limiters") })(next)
	if fmt.Sprintf("%p", wrapped) != fmt.Sprintf("%p", next) {
		t.Error("RateLimit(nil, nil) wrapped the handler instead of returning it")
	}
}

// TestRateLimitDisabledEndToEnd: Options.RatePerSec 0 (examserver -rate 0)
// must disable limiting through the whole served chain — one learner
// hammering far past any plausible bucket sees zero 429s and the
// rate-limited metric never ticks. Load harnesses (cmd/loadgen) point at
// servers in exactly this mode; a latent limiter would invalidate every
// capacity number they report.
func TestRateLimitDisabledEndToEnd(t *testing.T) {
	store, _ := examFixture(t, false)
	clock := newFakeClock()
	eng := delivery.NewEngine(store, clock.Now, 8)
	server := NewServer(eng, store, Options{RatePerSec: 0, Burst: 1, Now: clock.Now})
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/exams", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Learner-ID", "hammer")
	for i := 0; i < 200; i++ {
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("request %d rate limited with RatePerSec 0", i)
		}
	}
	if n := server.Metrics().Snapshot().RateLimited; n != 0 {
		t.Errorf("rateLimited metric = %d, want 0", n)
	}
}
