package httpapi

// Contract suite: walks every /v1 route asserting status codes, error
// envelopes, method-not-allowed handling, and legacy-alias parity. This is
// the executable form of API.md — a route change that breaks the contract
// fails here before any client notices.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/delivery"
	"mineassess/internal/item"
	"mineassess/internal/scorm"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2004, 3, 1, 9, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// examFixture stores 4 MC problems and an exam with a 10-minute limit.
func examFixture(t *testing.T, resumable bool) (*bank.Store, string) {
	t.Helper()
	s := bank.New()
	var ids []string
	for i := 0; i < 4; i++ {
		p, err := item.NewMultipleChoice(fmt.Sprintf("q%d", i+1), "?",
			[]string{"w", "x", "y", "z"}, 0) // correct A
		if err != nil {
			t.Fatal(err)
		}
		p.ConceptID = "c1"
		p.Level = cognition.Knowledge
		p.Resumable = resumable
		if err := s.AddProblem(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	rec := &bank.ExamRecord{ID: "exam1", Title: "Quiz", ProblemIDs: ids,
		Display: item.FixedOrder, TestTimeSeconds: 600}
	if err := s.AddExam(rec); err != nil {
		t.Fatal(err)
	}
	return s, rec.ID
}

// essayExamFixture: one essay + one MC problem, no time limit.
func essayExamFixture(t *testing.T) (*bank.Store, string) {
	t.Helper()
	s := bank.New()
	essay := &item.Problem{ID: "essay1", Style: item.Essay,
		Question: "Discuss assessment metadata.", Level: cognition.Evaluation}
	mc, err := item.NewMultipleChoice("mc1", "?", []string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc.Level = cognition.Knowledge
	for _, p := range []*item.Problem{essay, mc} {
		if err := s.AddProblem(p); err != nil {
			t.Fatal(err)
		}
	}
	rec := &bank.ExamRecord{ID: "essayexam", Title: "Essay exam",
		ProblemIDs: []string{"essay1", "mc1"}, Display: item.FixedOrder}
	if err := s.AddExam(rec); err != nil {
		t.Fatal(err)
	}
	return s, rec.ID
}

// testServer wires the fixture bank into an HTTP test server.
func testServer(t *testing.T) (*httptest.Server, *fakeClock) {
	t.Helper()
	store, _ := examFixture(t, false)
	return serverOver(t, store)
}

func serverOver(t *testing.T, store bank.Storage) (*httptest.Server, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	eng := delivery.NewEngine(store, clock.Now, 8)
	srv := httptest.NewServer(NewServer(eng, store, Options{}))
	t.Cleanup(srv.Close)
	return srv, clock
}

// doJSON issues a request with an optional JSON body and decodes the
// response into out (which may be nil). It returns the status code and the
// raw body for envelope checks.
func doJSON(t *testing.T, method, url string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp.StatusCode, raw
}

// wantEnvelope asserts a response is the typed error envelope with the
// expected code at the code's canonical status.
func wantEnvelope(t *testing.T, status int, raw []byte, code Code) {
	t.Helper()
	if status != statusOf(code) {
		t.Errorf("status = %d, want %d for %s (body %s)", status, statusOf(code), code, raw)
	}
	var e Error
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("response is not an envelope: %s", raw)
	}
	if e.Code != code {
		t.Errorf("code = %q, want %q", e.Code, code)
	}
	if e.Message == "" {
		t.Error("envelope message empty")
	}
}

func startV1(t *testing.T, base, examID, student string) StartSessionResponse {
	t.Helper()
	var sr StartSessionResponse
	code, raw := doJSON(t, http.MethodPost, base+"/v1/exams/"+examID+"/sessions",
		StartSessionRequest{StudentID: student, Seed: 1}, &sr)
	if code != http.StatusOK || sr.SessionID == "" {
		t.Fatalf("start: code %d, body %s", code, raw)
	}
	return sr
}

// TestContractSessionLifecycle walks the happy path of every session route.
func TestContractSessionLifecycle(t *testing.T) {
	store, examID := examFixture(t, true)
	srv, clock := serverOver(t, store)
	sr := startV1(t, srv.URL, examID, "alice")
	if len(sr.Order) != 4 {
		t.Fatalf("order = %v", sr.Order)
	}

	clock.Advance(time.Minute)
	var act ActionResponse
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+sr.SessionID+":answer",
		AnswerRequest{ProblemID: "q1", Response: "A"}, &act); code != http.StatusOK || act.Status != "recorded" {
		t.Fatalf("answer = %d %+v", code, act)
	}
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+sr.SessionID+":pause", nil, &act); code != http.StatusOK || act.Status != "paused" {
		t.Fatalf("pause = %d %+v", code, act)
	}
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+sr.SessionID+":resume", nil, &act); code != http.StatusOK || act.Status != "running" {
		t.Fatalf("resume = %d %+v", code, act)
	}

	var st delivery.Status
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/sessions/"+sr.SessionID, nil, &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st.Answered != 1 || st.StateName != "running" {
		t.Errorf("status = %+v", st)
	}

	var snaps []delivery.Snapshot
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/sessions/"+sr.SessionID+"/monitor", nil, &snaps); code != http.StatusOK {
		t.Fatalf("monitor = %d", code)
	}
	if len(snaps) != 2 {
		t.Errorf("snapshots = %d, want 2", len(snaps))
	}

	var result map[string]any
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+sr.SessionID+":finish", nil, &result); code != http.StatusOK {
		t.Fatalf("finish = %d", code)
	}
	if result["studentId"] != "alice" {
		t.Errorf("finish result = %v", result)
	}
}

// TestContractErrorTaxonomy asserts every error class carries its stable
// code at its canonical status.
func TestContractErrorTaxonomy(t *testing.T) {
	srv, _ := testServer(t)
	base := srv.URL

	// Unknown exam on start -> 404 EXAM_NOT_FOUND (not a generic 400).
	code, raw := doJSON(t, http.MethodPost, base+"/v1/exams/ghost/sessions",
		StartSessionRequest{StudentID: "x"}, nil)
	wantEnvelope(t, code, raw, CodeExamNotFound)

	// Unknown session -> 404 SESSION_NOT_FOUND.
	code, raw = doJSON(t, http.MethodGet, base+"/v1/sessions/ghost", nil, nil)
	wantEnvelope(t, code, raw, CodeSessionNotFound)

	// Monitor of a nonexistent session -> 404, not 200 [].
	code, raw = doJSON(t, http.MethodGet, base+"/v1/sessions/ghost/monitor", nil, nil)
	wantEnvelope(t, code, raw, CodeSessionNotFound)

	sr := startV1(t, base, "exam1", "alice")

	// Unknown problem -> 400 UNKNOWN_PROBLEM.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.SessionID+":answer",
		AnswerRequest{ProblemID: "ghost", Response: "A"}, nil)
	wantEnvelope(t, code, raw, CodeUnknownProblem)

	// Double answer -> 409 ALREADY_ANSWERED.
	doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.SessionID+":answer",
		AnswerRequest{ProblemID: "q1", Response: "A"}, nil)
	code, raw = doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.SessionID+":answer",
		AnswerRequest{ProblemID: "q1", Response: "B"}, nil)
	wantEnvelope(t, code, raw, CodeAlreadyAnswered)

	// Pause on a non-resumable exam -> 409 EXAM_NOT_RESUMABLE.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.SessionID+":pause", nil, nil)
	wantEnvelope(t, code, raw, CodeNotResumable)

	// Resume when not paused -> 409 SESSION_NOT_PAUSED.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.SessionID+":resume", nil, nil)
	wantEnvelope(t, code, raw, CodeSessionNotPaused)

	// Unknown colon verb -> 404 NOT_FOUND.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/sessions/"+sr.SessionID+":dance", nil, nil)
	wantEnvelope(t, code, raw, CodeNotFound)

	// Malformed JSON -> 400 BAD_REQUEST.
	resp, err := http.Post(base+"/v1/exams/exam1/sessions", "application/json",
		strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	wantEnvelope(t, resp.StatusCode, raw, CodeBadRequest)

	// Unrouted path -> 404 NOT_FOUND envelope (no stdlib plain text).
	code, raw = doJSON(t, http.MethodGet, base+"/v1/nonsense", nil, nil)
	wantEnvelope(t, code, raw, CodeNotFound)

	// Unanswered/auto-graded/bad-credit grading errors.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/grades",
		GradeRequest{SessionID: sr.SessionID, ProblemID: "q2", Credit: 0.5}, nil)
	wantEnvelope(t, code, raw, CodeNotAnswered)
	code, raw = doJSON(t, http.MethodPost, base+"/v1/grades",
		GradeRequest{SessionID: sr.SessionID, ProblemID: "q1", Credit: 0.5}, nil)
	wantEnvelope(t, code, raw, CodeAutoGraded)
	code, raw = doJSON(t, http.MethodPost, base+"/v1/grades",
		GradeRequest{SessionID: sr.SessionID, ProblemID: "q1", Credit: 2}, nil)
	wantEnvelope(t, code, raw, CodeInvalidCredit)
}

// TestContractMethodNotAllowed sweeps wrong-method requests across the
// route table: every one must be a 405 envelope with an Allow header.
func TestContractMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	sr := startV1(t, srv.URL, "exam1", "alice")
	cases := []struct{ method, path string }{
		{http.MethodDelete, "/v1/exams/exam1/sessions"},
		{http.MethodPost, "/v1/sessions/" + sr.SessionID},
		{http.MethodGet, "/v1/sessions/" + sr.SessionID + ":answer"},
		{http.MethodPost, "/v1/sessions/" + sr.SessionID + "/monitor"},
		{http.MethodGet, "/v1/sessions/" + sr.SessionID + "/rte"},
		{http.MethodPut, "/v1/problems"},
		{http.MethodPost, "/v1/problems/q1"},
		{http.MethodPut, "/v1/exams"},
		{http.MethodGet, "/v1/exams:assemble"},
		{http.MethodPut, "/v1/exams/exam1"},
		{http.MethodPost, "/v1/exams/exam1/grades"},
		{http.MethodPost, "/v1/exams/exam1/results"},
		{http.MethodGet, "/v1/grades"},
		{http.MethodPost, "/v1/metrics"},
		{http.MethodPost, "/package/x.html"},
		{http.MethodPut, "/api/session/start"},
		{http.MethodPost, "/api/monitor/" + sr.SessionID},
		{http.MethodGet, "/api/rte/" + sr.SessionID},
		{http.MethodDelete, "/api/admin/grades"},
		{http.MethodPost, "/api/admin/sessions"},
		{http.MethodPost, "/api/admin/results"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405 (body %s)", tc.method, tc.path, resp.StatusCode, raw)
			continue
		}
		if resp.Header.Get("Allow") == "" {
			t.Errorf("%s %s: missing Allow header", tc.method, tc.path)
		}
		var e Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s: body %s, want METHOD_NOT_ALLOWED envelope", tc.method, tc.path, raw)
		}
	}
}

// TestContractLegacyParity drives the same operations through /v1 and the
// deprecated /api aliases and asserts identical status codes and bodies
// (modulo the session IDs the engine mints).
func TestContractLegacyParity(t *testing.T) {
	type probe struct {
		name           string
		method         string
		v1Path, legacy string // templated with {sid}
		body           func(sid string) any
	}
	probes := []probe{
		{"status", http.MethodGet, "/v1/sessions/{sid}", "/api/session/{sid}", nil},
		{"answer", http.MethodPost, "/v1/sessions/{sid}:answer", "/api/session/{sid}/answer",
			func(string) any { return AnswerRequest{ProblemID: "q1", Response: "A"} }},
		{"answer-unknown", http.MethodPost, "/v1/sessions/{sid}:answer", "/api/session/{sid}/answer",
			func(string) any { return AnswerRequest{ProblemID: "ghost", Response: "A"} }},
		{"monitor", http.MethodGet, "/v1/sessions/{sid}/monitor", "/api/monitor/{sid}", nil},
		{"monitor-ghost", http.MethodGet, "/v1/sessions/ghost/monitor", "/api/monitor/ghost", nil},
		{"rte", http.MethodPost, "/v1/sessions/{sid}/rte", "/api/rte/{sid}",
			func(string) any { return RTERequest{Method: "getvalue", Element: "cmi.core.student_id"} }},
		{"sessions-list", http.MethodGet, "/v1/exams/exam1/sessions", "/api/admin/sessions?exam=exam1", nil},
		{"sessions-ghost", http.MethodGet, "/v1/exams/ghost/sessions", "/api/admin/sessions?exam=ghost", nil},
		{"grades-list", http.MethodGet, "/v1/exams/exam1/grades", "/api/admin/grades?exam=exam1", nil},
		{"results", http.MethodGet, "/v1/exams/exam1/results", "/api/admin/results?exam=exam1", nil},
		{"results-ghost", http.MethodGet, "/v1/exams/ghost/results", "/api/admin/results?exam=ghost", nil},
		{"finish", http.MethodPost, "/v1/sessions/{sid}:finish", "/api/session/{sid}/finish", nil},
	}
	// Two identical servers: one driven via /v1, one via the aliases, so
	// minted session IDs line up and bodies must match byte for byte.
	run := func(t *testing.T, viaLegacy bool) map[string]struct {
		code int
		body string
	} {
		srv, _ := testServer(t)
		var sid string
		if viaLegacy {
			var sr StartSessionResponse
			code, raw := doJSON(t, http.MethodPost, srv.URL+"/api/session/start",
				StartSessionRequest{ExamID: "exam1", StudentID: "alice", Seed: 1}, &sr)
			if code != http.StatusOK {
				t.Fatalf("legacy start: %d %s", code, raw)
			}
			sid = sr.SessionID
		} else {
			sid = startV1(t, srv.URL, "exam1", "alice").SessionID
		}
		out := make(map[string]struct {
			code int
			body string
		})
		for _, p := range probes {
			path := p.v1Path
			if viaLegacy {
				path = p.legacy
			}
			path = strings.ReplaceAll(path, "{sid}", sid)
			var body any
			if p.body != nil {
				body = p.body(sid)
			}
			code, raw := doJSON(t, p.method, srv.URL+path, body, nil)
			out[p.name] = struct {
				code int
				body string
			}{code, string(raw)}
		}
		return out
	}
	v1 := run(t, false)
	legacy := run(t, true)
	for name, want := range v1 {
		got := legacy[name]
		if got.code != want.code {
			t.Errorf("%s: legacy code %d != v1 code %d", name, got.code, want.code)
		}
		if got.body != want.body {
			t.Errorf("%s: legacy body %q != v1 body %q", name, got.body, want.body)
		}
	}
}

// TestContractAdminFlow ports the seed-era admin-endpoint coverage: the
// grading worklist and results export over both route families.
func TestContractAdminFlow(t *testing.T) {
	store, examID := essayExamFixture(t)
	srv, clock := serverOver(t, store)
	// Empty lists serialize as [], never null.
	for _, sub := range []string{"sessions", "grades"} {
		if _, raw := doJSON(t, http.MethodGet, srv.URL+"/v1/exams/"+examID+"/"+sub, nil, nil); strings.TrimSpace(string(raw)) != "[]" {
			t.Errorf("empty %s list = %q, want []", sub, raw)
		}
	}
	sr := startV1(t, srv.URL, examID, "carol")
	clock.Advance(time.Minute)
	if code, raw := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+sr.SessionID+":answer",
		AnswerRequest{ProblemID: "essay1", Response: "my essay"}, nil); code != http.StatusOK {
		t.Fatalf("answer: %d %s", code, raw)
	}

	var sums []delivery.Status
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/exams/"+examID+"/sessions", nil, &sums); code != http.StatusOK {
		t.Fatal("sessions list failed")
	}
	if len(sums) != 1 || sums[0].StudentID != "carol" {
		t.Errorf("sums = %+v", sums)
	}
	// Legacy alias still requires the exam parameter.
	code, raw := doJSON(t, http.MethodGet, srv.URL+"/api/admin/sessions", nil, nil)
	wantEnvelope(t, code, raw, CodeBadRequest)

	var pending []delivery.PendingGrade
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/exams/"+examID+"/grades", nil, &pending); code != http.StatusOK {
		t.Fatal("grades list failed")
	}
	if len(pending) != 1 || pending[0].ProblemID != "essay1" {
		t.Errorf("pending = %+v", pending)
	}
	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/grades",
		GradeRequest{SessionID: sr.SessionID, ProblemID: "essay1", Credit: 0.9}, nil); code != http.StatusOK {
		t.Error("grade post failed")
	}

	if code, _ := doJSON(t, http.MethodPost, srv.URL+"/v1/sessions/"+sr.SessionID+":finish", nil, nil); code != http.StatusOK {
		t.Fatal("finish failed")
	}
	var res struct {
		ExamID   string `json:"examId"`
		Students []struct {
			StudentID string `json:"studentId"`
		} `json:"students"`
	}
	if code, _ := doJSON(t, http.MethodGet, srv.URL+"/v1/exams/"+examID+"/results", nil, &res); code != http.StatusOK {
		t.Fatal("results failed")
	}
	if res.ExamID != examID || len(res.Students) != 1 || res.Students[0].StudentID != "carol" {
		t.Errorf("results = %+v", res)
	}
}

// TestContractRTEBridge keeps the SCORM RTE round trip working over both
// the v1 route and the legacy alias SCO content uses.
func TestContractRTEBridge(t *testing.T) {
	srv, _ := testServer(t)
	sr := startV1(t, srv.URL, "exam1", "alice")
	for _, base := range []string{
		srv.URL + "/v1/sessions/" + sr.SessionID + "/rte",
		srv.URL + "/api/rte/" + sr.SessionID,
	} {
		var rr RTEResponse
		if code, _ := doJSON(t, http.MethodPost, base,
			RTERequest{Method: "getvalue", Element: "cmi.core.student_id"}, &rr); code != http.StatusOK {
			t.Fatalf("getvalue code != 200 at %s", base)
		}
		if rr.Result != "alice" || rr.LastError != "0" {
			t.Errorf("getvalue = %+v", rr)
		}
		if code, _ := doJSON(t, http.MethodPost, base,
			RTERequest{Method: "setvalue", Element: "cmi.core.lesson_status", Value: "incomplete"}, &rr); code != http.StatusOK || rr.Result != "true" {
			t.Errorf("setvalue = %d %+v", code, rr)
		}
		if code, _ := doJSON(t, http.MethodPost, base, RTERequest{Method: "commit"}, &rr); code != http.StatusOK || rr.Result != "true" {
			t.Errorf("commit = %d %+v", code, rr)
		}
		// Read-only violation surfaces the SCORM error code.
		doJSON(t, http.MethodPost, base,
			RTERequest{Method: "setvalue", Element: "cmi.core.student_id", Value: "bob"}, &rr)
		if rr.Result != "false" || rr.LastError != "403" {
			t.Errorf("read-only setvalue = %+v", rr)
		}
		code, raw := doJSON(t, http.MethodPost, base, RTERequest{Method: "explode"}, nil)
		wantEnvelope(t, code, raw, CodeBadRequest)
	}
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/api/rte/ghost", RTERequest{Method: "commit"}, nil)
	wantEnvelope(t, code, raw, CodeSessionNotFound)
}

// TestContractPackageMount checks mounted SCORM content serving and the
// mime-type resolution (stdlib table + pinned overrides).
func TestContractPackageMount(t *testing.T) {
	store, _ := examFixture(t, false)
	eng := delivery.NewEngine(store, newFakeClock().Now, 0)
	server := NewServer(eng, store, Options{})
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	// Without a mounted package: 404 envelope.
	code, raw := doJSON(t, http.MethodGet, srv.URL+"/package/imsmanifest.xml", nil, nil)
	wantEnvelope(t, code, raw, CodeNotFound)

	rec, err := store.Exam("exam1")
	if err != nil {
		t.Fatal(err)
	}
	problems, err := store.Problems(rec.ProblemIDs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := scorm.BuildPackage(rec, problems)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise types beyond what BuildPackage emits, including ones the old
	// hard-coded table missed and one only the stdlib table knows.
	pkg.Files["assets/logo.svg"] = []byte("<svg/>")
	pkg.Files["assets/meta.json"] = []byte("{}")
	pkg.Files["assets/font.woff2"] = []byte{0}
	pkg.Files["assets/pic.png"] = []byte{0}
	server.MountPackage(pkg)

	wantTypes := map[string]string{
		"content/problem_001.html": "text/html; charset=utf-8",
		"imsmanifest.xml":          "application/xml",
		"assets/logo.svg":          "image/svg+xml",
		"assets/meta.json":         "application/json",
		"assets/font.woff2":        "font/woff2",
		"assets/pic.png":           "image/png",
	}
	for file, want := range wantTypes {
		resp, err := http.Get(srv.URL + "/package/" + file)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", file, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != want {
			t.Errorf("%s content type = %q, want %q", file, ct, want)
		}
		if file == "content/problem_001.html" && !strings.Contains(string(body), "Question 1") {
			t.Errorf("page body wrong:\n%.120s", body)
		}
	}

	code, raw = doJSON(t, http.MethodGet, srv.URL+"/package/ghost.html", nil, nil)
	wantEnvelope(t, code, raw, CodeNotFound)
}
