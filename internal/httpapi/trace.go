package httpapi

import (
	"net/http"

	"mineassess/internal/trace"
)

// Trace opens the request's root span: it ingests an inbound W3C
// traceparent header (adopting the caller's trace ID and parenting under
// the caller's span), carries the span through the request context so the
// engine / WAL / bus layers can hang children off it, and echoes the
// root's traceparent on the response so clients can quote the trace ID
// back to GET /debug/traces. Whether the finished trace is retained is the
// tracer's tail-sampling decision — slow, errored and gap-marked traces
// always survive. A nil tracer disables the middleware entirely.
func Trace(t *trace.Tracer) Middleware {
	return func(next http.Handler) http.Handler {
		if t == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tid, parent, _ := trace.ParseTraceparent(r.Header.Get("Traceparent"))
			ctx, sp := t.StartRootLinked(r.Context(), r.Method+" "+r.URL.Path, tid, parent)
			w.Header().Set("Traceparent", trace.FormatTraceparent(sp.TraceID(), sp.SpanID()))
			sr := &statusRecorder{ResponseWriter: w}
			next.ServeHTTP(sr, r.WithContext(ctx))
			if sr.status == 0 {
				sr.status = http.StatusOK
			}
			sp.SetInt("http.status", int64(sr.status))
			if sr.status >= http.StatusInternalServerError {
				sp.SetError()
			}
			sp.End()
		})
	}
}
