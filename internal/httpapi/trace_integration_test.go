package httpapi

// End-to-end trace integration: a real server wired with journal, bus and
// adaptive engine, driven over HTTP with a W3C traceparent, must produce a
// single connected span tree — HTTP root, engine child, wal.commit with
// its reconstructed phase children, bus.publish — all under the inbound
// trace ID, retrievable from the tracer's sinks.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"mineassess/internal/bank"
	"mineassess/internal/catdelivery"
	"mineassess/internal/cognition"
	"mineassess/internal/delivery"
	"mineassess/internal/events"
	"mineassess/internal/trace"
)

// tracedStack boots the production composition (journal-backed store,
// event bus, both engines, always-retain tracer) behind httptest.
func tracedStack(t *testing.T) (*httptest.Server, *trace.Tracer) {
	t.Helper()
	j, err := bank.OpenJournalWith(t.TempDir(), bank.NewSharded(0),
		bank.JournalOptions{Sync: bank.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	seedCalibrated(t, j, 6)

	tracer := trace.New(trace.Options{Policy: trace.PolicyAlways, Recent: 64, Retain: 64})
	bus := events.NewBus(events.Options{})
	t.Cleanup(bus.Close)
	eng := delivery.NewEngine(j, nil, 0)
	eng.SetEventBus(bus)
	cat, err := catdelivery.NewEngine(j, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	cat.SetEventBus(bus)
	srv := httptest.NewServer(NewServer(eng, j, Options{
		Adaptive: cat, Events: bus, Tracer: tracer,
	}))
	t.Cleanup(srv.Close)
	return srv, tracer
}

// seedCalibrated stores n calibrated MC problems as exam "cat1" through
// whatever storage it is handed (here: the journal, so seeding also
// exercises untraced WAL commits).
func seedCalibrated(t *testing.T, s bank.Storage, n int) {
	t.Helper()
	fixture := calibratedFixture(t, n)
	for _, id := range []string{"cat1"} {
		rec, err := fixture.Exam(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, pid := range rec.ProblemIDs {
			p, err := fixture.Problem(pid)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AddProblem(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AddExam(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// doTraced is doJSON plus an outbound traceparent; it returns the status,
// body and the trace ID the server echoed back.
func doTraced(t *testing.T, method, url, traceparent string, body, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s: %v (%s)", url, err, raw)
		}
	}
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("%s %s: response traceparent %q unparsable",
			method, url, resp.Header.Get("Traceparent"))
	}
	return resp.StatusCode, tid.String()
}

func TestTraceTreeAcrossWriteOverHTTP(t *testing.T) {
	srv, tracer := tracedStack(t)
	const inbound = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

	p := mustProblem(t, "traced1", "c1", cognition.Knowledge)
	code, tid := doTraced(t, http.MethodPost, srv.URL+"/v1/problems", inbound, p, nil)
	if code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	// The server adopted the inbound trace ID.
	if tid != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("echoed trace ID = %s, want the inbound one", tid)
	}

	td := tracer.Trace(tid)
	if td == nil {
		t.Fatal("trace not in either sink despite PolicyAlways")
	}
	if td.RootName != "POST /v1/problems" {
		t.Errorf("root = %q", td.RootName)
	}
	// The root parents under the caller's span from the traceparent.
	if td.Root.ParentID != "b7ad6b7169203331" {
		t.Errorf("root parent = %q, want the inbound span ID", td.Root.ParentID)
	}

	// The WAL commit span hangs off the tree with its reconstructed
	// phases: enqueue-wait, batch-wait, fsync.
	wal := findSpan(td.Root, "wal.commit")
	if wal == nil {
		t.Fatalf("no wal.commit span in tree: %s", dumpTree(t, td))
	}
	if wal.Attrs["wal.op"] == "" || wal.Attrs["wal.policy"] != string(bank.SyncGroup) {
		t.Errorf("wal.commit attrs = %v", wal.Attrs)
	}
	for _, phase := range []string{"wal.enqueue-wait", "wal.batch-wait", "wal.fsync"} {
		if findSpan(wal, phase) == nil {
			t.Errorf("missing %s under wal.commit: %s", phase, dumpTree(t, td))
		}
	}
}

func TestTraceTreeAcrossAdaptiveSessionOverHTTP(t *testing.T) {
	srv, tracer := tracedStack(t)

	var started StartAdaptiveSessionResponse
	code, startTID := doTraced(t, http.MethodPost, srv.URL+"/v1/adaptive-sessions", "",
		StartAdaptiveSessionRequest{ExamID: "cat1", StudentID: "tr", Seed: 1}, &started)
	if code != http.StatusOK || started.Next == nil {
		t.Fatalf("start = %d", code)
	}
	if td := tracer.Trace(startTID); td == nil || findSpan(td.Root, "cat.start") == nil {
		t.Fatalf("start trace lacks cat.start: %s", dumpTree(t, td))
	}

	code, tid := doTraced(t, http.MethodPost,
		srv.URL+"/v1/adaptive-sessions/"+started.SessionID+":respond", "",
		AnswerRequest{ProblemID: started.Next.ProblemID, Response: "A"}, nil)
	if code != http.StatusOK {
		t.Fatalf("respond = %d", code)
	}
	td := tracer.Trace(tid)
	if td == nil {
		t.Fatal("respond trace not retained")
	}
	respond := findSpan(td.Root, "cat.respond")
	if respond == nil {
		t.Fatalf("respond trace lacks cat.respond: %s", dumpTree(t, td))
	}
	// The post-persist progress event publish detaches from the request
	// ctx but keeps the span link, so bus.publish parents inside the tree.
	if findSpan(td.Root, "bus.publish") == nil {
		t.Fatalf("respond trace lacks bus.publish: %s", dumpTree(t, td))
	}
	// Fresh trace per request: respond did not reuse the start trace.
	if tid == startTID {
		t.Error("respond reused the start request's trace ID")
	}
}

// findSpan depth-first searches an exported tree for a span name.
func findSpan(sd *trace.SpanData, name string) *trace.SpanData {
	if sd == nil {
		return nil
	}
	if sd.Name == name {
		return sd
	}
	for _, c := range sd.Children {
		if got := findSpan(c, name); got != nil {
			return got
		}
	}
	return nil
}

// dumpTree renders a trace for failure messages.
func dumpTree(t *testing.T, td *trace.TraceData) string {
	t.Helper()
	raw, err := json.Marshal(td)
	if err != nil {
		return err.Error()
	}
	return string(raw)
}
