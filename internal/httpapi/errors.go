package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mineassess/internal/adaptive"
	"mineassess/internal/authoring"
	"mineassess/internal/bank"
	"mineassess/internal/catdelivery"
	"mineassess/internal/delivery"
	"mineassess/pkg/api"
)

// Code is a stable machine-readable error identifier, promoted to the
// public pkg/api package; this alias keeps the server code reading
// naturally. Codes are part of the v1 API contract: clients branch on them,
// so existing codes never change meaning and removed features keep their
// codes reserved.
type Code = api.Code

// The v1 error taxonomy, re-exported from pkg/api. Each code maps to
// exactly one HTTP status (see statusOf); the mapping from internal
// sentinel errors lives in FromError.
const (
	CodeBadRequest         = api.CodeBadRequest
	CodeValidation         = api.CodeValidation
	CodeNotFound           = api.CodeNotFound
	CodeMethodNotAllowed   = api.CodeMethodNotAllowed
	CodeSessionNotFound    = api.CodeSessionNotFound
	CodeExamNotFound       = api.CodeExamNotFound
	CodeProblemNotFound    = api.CodeProblemNotFound
	CodeExamExists         = api.CodeExamExists
	CodeProblemExists      = api.CodeProblemExists
	CodeSessionNotActive   = api.CodeSessionNotActive
	CodeSessionNotPaused   = api.CodeSessionNotPaused
	CodeNotResumable       = api.CodeNotResumable
	CodeTimeExpired        = api.CodeTimeExpired
	CodeUnknownProblem     = api.CodeUnknownProblem
	CodeAlreadyAnswered    = api.CodeAlreadyAnswered
	CodeNotAnswered        = api.CodeNotAnswered
	CodeAutoGraded         = api.CodeAutoGraded
	CodeInvalidCredit      = api.CodeInvalidCredit
	CodeBlueprintShortfall = api.CodeBlueprintShortfall
	CodeRateLimited        = api.CodeRateLimited
	CodeInternal           = api.CodeInternal
	CodeNotCalibrated      = api.CodeNotCalibrated
	CodeItemNotPending     = api.CodeItemNotPending
	CodeInsufficientData   = api.CodeInsufficientData
)

// Error is the wire error envelope every non-2xx response carries (defined
// in pkg/api; aliased for the server's internal use).
type Error = api.Error

// statusOf maps a code to its HTTP status.
func statusOf(c Code) int {
	switch c {
	case CodeBadRequest, CodeValidation, CodeUnknownProblem,
		CodeNotAnswered, CodeAutoGraded, CodeInvalidCredit:
		return http.StatusBadRequest
	case CodeNotFound, CodeSessionNotFound, CodeExamNotFound, CodeProblemNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeSessionNotActive, CodeSessionNotPaused, CodeNotResumable,
		CodeTimeExpired, CodeAlreadyAnswered, CodeExamExists, CodeProblemExists:
		return http.StatusConflict
	case CodeItemNotPending:
		return http.StatusConflict
	case CodeBlueprintShortfall, CodeNotCalibrated, CodeInsufficientData:
		return http.StatusUnprocessableEntity
	case CodeRateLimited:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// FromError classifies an internal error into the taxonomy. Unknown errors
// become CodeInternal with the message redacted (internals must not leak
// through the API surface).
func FromError(err error) *Error {
	code := CodeInternal
	switch {
	case errors.Is(err, delivery.ErrSessionNotFound):
		code = CodeSessionNotFound
	case errors.Is(err, bank.ErrExamNotFound):
		code = CodeExamNotFound
	case errors.Is(err, bank.ErrProblemNotFound):
		code = CodeProblemNotFound
	case errors.Is(err, bank.ErrExamExists):
		code = CodeExamExists
	case errors.Is(err, bank.ErrProblemExists):
		code = CodeProblemExists
	case errors.Is(err, delivery.ErrSessionNotActive):
		code = CodeSessionNotActive
	case errors.Is(err, delivery.ErrNotPaused):
		code = CodeSessionNotPaused
	case errors.Is(err, delivery.ErrNotResumable):
		code = CodeNotResumable
	case errors.Is(err, delivery.ErrTimeExpired):
		code = CodeTimeExpired
	case errors.Is(err, delivery.ErrUnknownProblem):
		code = CodeUnknownProblem
	case errors.Is(err, delivery.ErrAlreadyAnswered):
		code = CodeAlreadyAnswered
	case errors.Is(err, delivery.ErrNotAnswered):
		code = CodeNotAnswered
	case errors.Is(err, delivery.ErrAutoGraded):
		code = CodeAutoGraded
	case errors.Is(err, delivery.ErrInvalidCredit):
		code = CodeInvalidCredit
	case errors.Is(err, catdelivery.ErrSessionNotFound):
		code = CodeSessionNotFound
	case errors.Is(err, catdelivery.ErrSessionFinished):
		code = CodeSessionNotActive
	case errors.Is(err, catdelivery.ErrItemNotPending):
		code = CodeItemNotPending
	case errors.Is(err, catdelivery.ErrNotCalibrated):
		code = CodeNotCalibrated
	case errors.Is(err, catdelivery.ErrNoResponses),
		errors.Is(err, adaptive.ErrTooFewObservations):
		code = CodeInsufficientData
	case errors.Is(err, adaptive.ErrInvalidConfig),
		errors.Is(err, catdelivery.ErrNotGradable):
		code = CodeValidation
	case errors.Is(err, authoring.ErrShortfall):
		return shortfallError(err)
	case errors.Is(err, authoring.ErrEmptyExam),
		errors.Is(err, authoring.ErrDuplicateProblem),
		errors.Is(err, authoring.ErrUnknownGroupItem):
		code = CodeValidation
	}
	msg := err.Error()
	if code == CodeInternal {
		msg = "internal error"
	}
	return &Error{Code: code, Message: msg}
}

// shortfallError carries every deficient blueprint cell in the details so an
// authoring client can show the instructor exactly what the bank is missing.
func shortfallError(err error) *Error {
	e := &Error{Code: CodeBlueprintShortfall, Message: err.Error()}
	var sf *authoring.ShortfallError
	if errors.As(err, &sf) {
		var cells []map[string]any
		for _, s := range sf.Shortfalls {
			cells = append(cells, map[string]any{
				"conceptId": s.ConceptID,
				"level":     s.Level.String(),
				"required":  s.Required,
				"available": s.Available,
			})
		}
		e.Details = map[string]any{"shortfalls": cells}
	}
	return e
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes an envelope at its taxonomy status.
func writeErr(w http.ResponseWriter, e *Error) {
	writeJSON(w, statusOf(e.Code), e)
}

// writeError classifies err and writes its envelope.
func writeError(w http.ResponseWriter, err error) {
	writeErr(w, FromError(err))
}

// badRequest is the envelope for malformed requests (bad JSON, missing
// fields, unparseable parameters).
func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeErr(w, &Error{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)})
}

// notFoundRoute is the envelope for paths that match no route.
func notFoundRoute(w http.ResponseWriter, path string) {
	writeErr(w, &Error{Code: CodeNotFound, Message: "no such route: " + path})
}

// methodNotAllowed writes a 405 envelope with the Allow header set.
func methodNotAllowed(w http.ResponseWriter, allowed ...string) {
	for _, m := range allowed {
		w.Header().Add("Allow", m)
	}
	writeErr(w, &Error{Code: CodeMethodNotAllowed, Message: "method not allowed"})
}
