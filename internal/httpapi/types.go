package httpapi

import (
	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// Wire types of the v1 API. The Go client SDK (pkg/client) is built around
// these same structs, so server and client can never drift; domain payloads
// (item.Problem, bank.ExamRecord, delivery.Status, analysis.ExamResult)
// travel in their canonical JSON forms.

// StartSessionRequest opens a session. ExamID is taken from the URL on the
// v1 route (POST /v1/exams/{id}/sessions) and from the body on the legacy
// alias (POST /api/session/start).
type StartSessionRequest struct {
	ExamID    string `json:"examId,omitempty"`
	StudentID string `json:"studentId"`
	Seed      int64  `json:"seed"`
}

// StartSessionResponse reports the opened session and its presentation
// order.
type StartSessionResponse struct {
	SessionID string   `json:"sessionId"`
	Order     []string `json:"order"`
}

// AnswerRequest records one response (POST /v1/sessions/{id}:answer).
type AnswerRequest struct {
	ProblemID string `json:"problemId"`
	Response  string `json:"response"`
}

// ActionResponse acknowledges a state-changing session action.
type ActionResponse struct {
	Status string `json:"status"`
}

// RTERequest is one SCORM RTE call bridged over HTTP
// (POST /v1/sessions/{id}/rte).
type RTERequest struct {
	Method  string `json:"method"`
	Element string `json:"element,omitempty"`
	Value   string `json:"value,omitempty"`
}

// RTEResponse carries the RTE result and the API's last error code.
type RTEResponse struct {
	Result    string `json:"result"`
	LastError string `json:"lastError"`
}

// GradeRequest assigns manual credit to an answered, not-auto-graded
// response (POST /v1/grades).
type GradeRequest struct {
	SessionID string  `json:"sessionId"`
	ProblemID string  `json:"problemId"`
	Credit    float64 `json:"credit"`
}

// ProblemList is the GET /v1/problems response.
type ProblemList struct {
	Problems []*item.Problem `json:"problems"`
	Total    int             `json:"total"`
}

// ExamList is the GET /v1/exams response.
type ExamList struct {
	ExamIDs []string `json:"examIds"`
}

// BlueprintCell is one (concept, cognition level) requirement of an
// assembly request. Level uses the cognition package's text form
// ("Knowledge".."Evaluation" or letters A-F).
type BlueprintCell struct {
	ConceptID string          `json:"conceptId"`
	Level     cognition.Level `json:"level"`
	Count     int             `json:"count"`
}

// AssembleExamRequest drives blueprint assembly (POST /v1/exams:assemble):
// the server selects problems satisfying every cell, finalizes the exam, and
// stores it. Display 0 defaults to FixedOrder.
type AssembleExamRequest struct {
	ID              string            `json:"id"`
	Title           string            `json:"title"`
	Display         item.DisplayOrder `json:"display,omitempty"`
	TestTimeSeconds int               `json:"testTimeSeconds,omitempty"`
	Require         []BlueprintCell   `json:"require"`
}

// AssembleExamResponse returns the stored exam record.
type AssembleExamResponse struct {
	Exam *bank.ExamRecord `json:"exam"`
}
