package httpapi

import "mineassess/pkg/api"

// Wire types of the v1 API. The definitions were promoted to the public
// pkg/api package so external modules can name them; the server keeps these
// aliases so its handlers and the whole test suite read naturally. The Go
// client SDK (pkg/client) is built around the same structs, so server and
// client can never drift.

// StartSessionRequest opens a session (see api.StartSessionRequest).
type StartSessionRequest = api.StartSessionRequest

// StartSessionResponse reports the opened session and its presentation
// order.
type StartSessionResponse = api.StartSessionResponse

// AnswerRequest records one response (POST /v1/sessions/{id}:answer).
type AnswerRequest = api.AnswerRequest

// ActionResponse acknowledges a state-changing session action.
type ActionResponse = api.ActionResponse

// RTERequest is one SCORM RTE call bridged over HTTP.
type RTERequest = api.RTERequest

// RTEResponse carries the RTE result and the API's last error code.
type RTEResponse = api.RTEResponse

// GradeRequest assigns manual credit (POST /v1/grades).
type GradeRequest = api.GradeRequest

// ProblemList is the GET /v1/problems response.
type ProblemList = api.ProblemList

// ExamList is the GET /v1/exams response.
type ExamList = api.ExamList

// BlueprintCell is one (concept, cognition level) assembly requirement.
type BlueprintCell = api.BlueprintCell

// AssembleExamRequest drives blueprint assembly (POST /v1/exams:assemble).
type AssembleExamRequest = api.AssembleExamRequest

// AssembleExamResponse returns the stored exam record.
type AssembleExamResponse = api.AssembleExamResponse

// StartAdaptiveSessionRequest opens a live adaptive session
// (POST /v1/adaptive-sessions).
type StartAdaptiveSessionRequest = api.StartAdaptiveSessionRequest

// StartAdaptiveSessionResponse reports the opened adaptive session and its
// first item.
type StartAdaptiveSessionResponse = api.StartAdaptiveSessionResponse

// RecalibrateRequest tunes a recalibration pass
// (POST /v1/exams/{id}:recalibrate).
type RecalibrateRequest = api.RecalibrateRequest

// RecalibrateResponse summarizes a recalibration pass.
type RecalibrateResponse = api.RecalibrateResponse

// PurgeAdaptiveSessionsResponse reports a retention pass.
type PurgeAdaptiveSessionsResponse = api.PurgeAdaptiveSessionsResponse
