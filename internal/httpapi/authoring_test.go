package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

func mustProblem(t *testing.T, id string, concept string, level cognition.Level) *item.Problem {
	t.Helper()
	p, err := item.NewMultipleChoice(id, "Authored over HTTP: "+id,
		[]string{"w", "x", "y", "z"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.ConceptID = concept
	p.Level = level
	return p
}

func TestProblemCRUD(t *testing.T) {
	srv, _ := serverOver(t, bank.New())
	base := srv.URL

	// Create.
	p := mustProblem(t, "p1", "c1", cognition.Knowledge)
	if code, raw := doJSON(t, http.MethodPost, base+"/v1/problems", p, nil); code != http.StatusCreated {
		t.Fatalf("create = %d %s", code, raw)
	}
	// Duplicate -> 409 PROBLEM_EXISTS.
	code, raw := doJSON(t, http.MethodPost, base+"/v1/problems", p, nil)
	wantEnvelope(t, code, raw, CodeProblemExists)
	// Invalid payload (MC with no options) -> 400 VALIDATION_FAILED.
	bad := &item.Problem{ID: "bad", Style: item.MultipleChoice, Question: "?",
		Level: cognition.Knowledge}
	code, raw = doJSON(t, http.MethodPost, base+"/v1/problems", bad, nil)
	wantEnvelope(t, code, raw, CodeValidation)
	// An ID with '/' could never be addressed by /v1/problems/{id} -> 400.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/problems",
		mustProblem(t, "algebra/q1", "c1", cognition.Knowledge), nil)
	wantEnvelope(t, code, raw, CodeValidation)

	// Read.
	var got item.Problem
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/problems/p1", nil, &got); code != http.StatusOK || got.ID != "p1" {
		t.Fatalf("get = %d %+v", code, got)
	}
	code, raw = doJSON(t, http.MethodGet, base+"/v1/problems/ghost", nil, nil)
	wantEnvelope(t, code, raw, CodeProblemNotFound)

	// Update; body/URL ID mismatch is a 400.
	got.Question = "Clarified"
	if code, raw := doJSON(t, http.MethodPut, base+"/v1/problems/p1", &got, nil); code != http.StatusOK {
		t.Fatalf("update = %d %s", code, raw)
	}
	code, raw = doJSON(t, http.MethodPut, base+"/v1/problems/other", &got, nil)
	wantEnvelope(t, code, raw, CodeBadRequest)

	// List with a search filter.
	var list ProblemList
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/problems?keyword=clarified", nil, &list); code != http.StatusOK {
		t.Fatal("list failed")
	}
	if list.Total != 1 || list.Problems[0].ID != "p1" {
		t.Errorf("list = %+v", list)
	}
	// Bad filter values are typed 400s.
	code, raw = doJSON(t, http.MethodGet, base+"/v1/problems?level=Z9", nil, nil)
	wantEnvelope(t, code, raw, CodeBadRequest)
	code, raw = doJSON(t, http.MethodGet, base+"/v1/problems?limit=-1", nil, nil)
	wantEnvelope(t, code, raw, CodeBadRequest)
	// An empty result is JSON [], never null.
	if _, raw := doJSON(t, http.MethodGet, base+"/v1/problems?keyword=nomatch", nil, nil); !strings.Contains(string(raw), `"problems":[]`) {
		t.Errorf("empty search body = %s, want problems:[]", raw)
	}

	// Delete, then the resource is gone.
	if code, _ := doJSON(t, http.MethodDelete, base+"/v1/problems/p1", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete = %d", code)
	}
	code, raw = doJSON(t, http.MethodDelete, base+"/v1/problems/p1", nil, nil)
	wantEnvelope(t, code, raw, CodeProblemNotFound)
}

func TestExamCRUD(t *testing.T) {
	store := bank.New()
	srv, _ := serverOver(t, store)
	base := srv.URL
	for i, id := range []string{"p1", "p2"} {
		if err := store.AddProblem(mustProblem(t, id, "c1", cognition.Levels()[i])); err != nil {
			t.Fatal(err)
		}
	}

	rec := &bank.ExamRecord{ID: "e1", Title: "Exam 1", ProblemIDs: []string{"p1", "p2"}}
	if code, raw := doJSON(t, http.MethodPost, base+"/v1/exams", rec, nil); code != http.StatusCreated {
		t.Fatalf("create = %d %s", code, raw)
	}
	// Duplicate -> 409; dangling reference -> 400 VALIDATION (the payload
	// is defective, no /v1/problems resource was addressed).
	code, raw := doJSON(t, http.MethodPost, base+"/v1/exams", rec, nil)
	wantEnvelope(t, code, raw, CodeExamExists)
	dangling := &bank.ExamRecord{ID: "e2", ProblemIDs: []string{"ghost"}}
	code, raw = doJSON(t, http.MethodPost, base+"/v1/exams", dangling, nil)
	wantEnvelope(t, code, raw, CodeValidation)
	slashed := &bank.ExamRecord{ID: "a/b", ProblemIDs: []string{"p1"}}
	code, raw = doJSON(t, http.MethodPost, base+"/v1/exams", slashed, nil)
	wantEnvelope(t, code, raw, CodeValidation)

	var got bank.ExamRecord
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/exams/e1", nil, &got); code != http.StatusOK || got.Title != "Exam 1" {
		t.Fatalf("get = %d %+v", code, got)
	}
	if got.Display != item.FixedOrder {
		t.Errorf("display not defaulted: %v", got.Display)
	}

	var list ExamList
	if code, _ := doJSON(t, http.MethodGet, base+"/v1/exams", nil, &list); code != http.StatusOK {
		t.Fatal("list failed")
	}
	if len(list.ExamIDs) != 1 || list.ExamIDs[0] != "e1" {
		t.Errorf("list = %+v", list)
	}

	if code, _ := doJSON(t, http.MethodDelete, base+"/v1/exams/e1", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete failed")
	}
	code, raw = doJSON(t, http.MethodGet, base+"/v1/exams/e1", nil, nil)
	wantEnvelope(t, code, raw, CodeExamNotFound)
}

func TestAssembleExam(t *testing.T) {
	store := bank.New()
	srv, _ := serverOver(t, store)
	base := srv.URL
	for _, id := range []string{"k1", "k2", "k3"} {
		if err := store.AddProblem(mustProblem(t, id, "c1", cognition.Knowledge)); err != nil {
			t.Fatal(err)
		}
	}

	// Underfilled bank -> 422 with per-cell details.
	code, raw := doJSON(t, http.MethodPost, base+"/v1/exams:assemble", AssembleExamRequest{
		ID: "big", Require: []BlueprintCell{
			{ConceptID: "c1", Level: cognition.Knowledge, Count: 9},
		}}, nil)
	wantEnvelope(t, code, raw, CodeBlueprintShortfall)
	var e Error
	mustUnmarshal(t, raw, &e)
	if e.Details["shortfalls"] == nil {
		t.Errorf("details = %v, want shortfall cells", e.Details)
	}

	// Satisfiable blueprint stores the exam and returns the record.
	var out AssembleExamResponse
	code, raw = doJSON(t, http.MethodPost, base+"/v1/exams:assemble", AssembleExamRequest{
		ID: "bp", Title: "Blueprint exam", TestTimeSeconds: 1200,
		Require: []BlueprintCell{
			{ConceptID: "c1", Level: cognition.Knowledge, Count: 2},
		}}, &out)
	if code != http.StatusCreated {
		t.Fatalf("assemble = %d %s", code, raw)
	}
	if out.Exam == nil || len(out.Exam.ProblemIDs) != 2 || out.Exam.TestTimeSeconds != 1200 {
		t.Fatalf("assembled = %+v", out.Exam)
	}
	if _, err := store.Exam("bp"); err != nil {
		t.Errorf("exam not stored: %v", err)
	}

	// Validation failures are typed 400s.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/exams:assemble",
		AssembleExamRequest{Require: []BlueprintCell{{ConceptID: "c1", Level: 1, Count: 1}}}, nil)
	wantEnvelope(t, code, raw, CodeBadRequest) // missing ID
	code, raw = doJSON(t, http.MethodPost, base+"/v1/exams:assemble",
		AssembleExamRequest{ID: "x"}, nil)
	wantEnvelope(t, code, raw, CodeBadRequest) // empty blueprint
}

func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
}
