package httpapi

// Fuzz coverage for the SSE resume-token parser: arbitrary Last-Event-ID
// headers and lastEventId query strings must parse, reject, or fall
// through — never panic, and never return ok with a mangled value.

import (
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
)

func FuzzLastEventID(f *testing.F) {
	f.Add("", "")
	f.Add("0", "")
	f.Add("18446744073709551615", "")  // MaxUint64
	f.Add("18446744073709551616", "")  // MaxUint64+1: must error
	f.Add("-1", "")
	f.Add("7extra", "")
	f.Add("", "42")
	f.Add("12", "34") // header wins over query

	f.Fuzz(func(t *testing.T, header, query string) {
		target := "/v1/events:stream"
		if query != "" {
			target += "?lastEventId=" + url.QueryEscape(query)
		}
		r := httptest.NewRequest("GET", target, nil)
		if header != "" {
			r.Header.Set("Last-Event-ID", header)
		}
		n, ok, err := lastEventID(r)
		raw := header
		if raw == "" {
			raw = query
		}
		switch {
		case err != nil:
			if raw == "" {
				t.Fatal("error for absent token")
			}
			if ok {
				t.Fatal("ok=true alongside an error")
			}
		case !ok:
			if raw != "" {
				t.Fatalf("token %q silently dropped (no error, not ok)", raw)
			}
			if n != 0 {
				t.Fatalf("ok=false with non-zero value %d", n)
			}
		default:
			// Accepted: the value must round-trip to what ParseUint accepts.
			want, perr := strconv.ParseUint(raw, 10, 64)
			if perr != nil || want != n {
				t.Fatalf("accepted %q as %d, want %v (%v)", raw, n, want, perr)
			}
		}
	})
}
