package httpapi

// Authoring over HTTP: the paper's authoring system (§5.3-§5.4) as v1
// resources — problem CRUD with search, exam CRUD, and blueprint-driven
// assembly — so banks are maintained through the API, not only the
// assessctl CLI.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mineassess/internal/authoring"
	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// checkResourceID rejects IDs the path router cannot address: an ID
// containing '/' would be created fine by the bank but could never be
// fetched, updated, or deleted through /v1/problems/{id} or
// /v1/exams/{id} (URL paths arrive percent-decoded, so %2F is no escape
// hatch), and ':' is the colon-verb separator (an exam named "x:recalibrate"
// would shadow the verb). It writes the 400 envelope itself on failure.
func checkResourceID(w http.ResponseWriter, id string) bool {
	if strings.ContainsAny(id, "/:") {
		writeErr(w, &Error{Code: CodeValidation,
			Message: fmt.Sprintf("id %q must not contain '/' or ':'", id)})
		return false
	}
	return true
}

// writeAuthoringError maps store mutation failures: sentinel errors keep
// their taxonomy codes; anything else from the bank layer is a validation
// failure of the submitted payload, not a server fault.
func writeAuthoringError(w http.ResponseWriter, err error) {
	e := FromError(err)
	if e.Code == CodeInternal {
		e = &Error{Code: CodeValidation, Message: err.Error()}
	}
	writeErr(w, e)
}

// --- Problems ---

func (s *Server) handleProblemsRoot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.listProblems(w, r)
	case http.MethodPost:
		s.createProblem(w, r)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

// parseQuery builds a bank.Query from GET /v1/problems parameters.
func parseQuery(r *http.Request) (bank.Query, error) {
	v := r.URL.Query()
	q := bank.Query{
		Subject:   v.Get("subject"),
		Keyword:   v.Get("keyword"),
		ConceptID: v.Get("concept"),
	}
	if raw := v.Get("style"); raw != "" {
		st, err := item.ParseStyle(raw)
		if err != nil {
			return q, err
		}
		q.Style = st
	}
	if raw := v.Get("level"); raw != "" {
		lvl, err := cognition.ParseLevel(raw)
		if err != nil {
			return q, err
		}
		q.Level = lvl
	}
	for _, f := range []struct {
		name string
		dst  *float64
	}{
		{"minDifficulty", &q.MinDifficulty},
		{"maxDifficulty", &q.MaxDifficulty},
		{"minDiscrimination", &q.MinDiscrimination},
	} {
		raw := v.Get(f.name)
		if raw == "" {
			continue
		}
		x, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return q, errors.New("bad " + f.name + " parameter")
		}
		*f.dst = x
	}
	if raw := v.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return q, errors.New("bad limit parameter")
		}
		q.Limit = n
	}
	return q, nil
}

func (s *Server) listProblems(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	found := s.store.Search(q)
	if found == nil {
		found = []*item.Problem{} // JSON [] for empty, never null
	}
	writeJSON(w, http.StatusOK, ProblemList{Problems: found, Total: len(found)})
}

func (s *Server) createProblem(w http.ResponseWriter, r *http.Request) {
	var p item.Problem
	if !decodeBody(w, r, &p) {
		return
	}
	if !checkResourceID(w, p.ID) {
		return
	}
	if err := addProblemCtx(r.Context(), s.store, &p); err != nil {
		writeAuthoringError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, &p)
}

// problemCtxAdder is the optional context-carrying insert that journaled
// backends implement (bank.Journal.AddProblemCtx); when the store provides
// it, a traced POST /v1/problems request's WAL commit — with its
// enqueue-wait / batch-wait / fsync phase children — joins the span tree.
type problemCtxAdder interface {
	AddProblemCtx(ctx context.Context, p *item.Problem) error
}

// addProblemCtx stores the problem, threading ctx to the journal when the
// backend supports it.
func addProblemCtx(ctx context.Context, store bank.Storage, p *item.Problem) error {
	if a, ok := store.(problemCtxAdder); ok {
		return a.AddProblemCtx(ctx, p)
	}
	return store.AddProblem(p)
}

// handleProblemByID routes /v1/problems/{id}.
func (s *Server) handleProblemByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/problems/")
	if id == "" || strings.Contains(id, "/") {
		notFoundRoute(w, r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		p, err := s.store.Problem(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	case http.MethodPut:
		var p item.Problem
		if !decodeBody(w, r, &p) {
			return
		}
		if p.ID == "" {
			p.ID = id
		} else if p.ID != id {
			badRequest(w, "body ID %q does not match URL ID %q", p.ID, id)
			return
		}
		if err := s.store.UpdateProblem(&p); err != nil {
			writeAuthoringError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, &p)
	case http.MethodDelete:
		if err := s.store.DeleteProblem(id); err != nil {
			writeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodPut, http.MethodDelete)
	}
}

// --- Exams ---

func (s *Server) handleExamsRoot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, ExamList{ExamIDs: s.store.ExamIDs()})
	case http.MethodPost:
		s.createExam(w, r)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

func (s *Server) createExam(w http.ResponseWriter, r *http.Request) {
	var rec bank.ExamRecord
	if !decodeBody(w, r, &rec) {
		return
	}
	if !checkResourceID(w, rec.ID) {
		return
	}
	if rec.Display == 0 {
		rec.Display = item.FixedOrder
	}
	if !rec.Display.Valid() {
		badRequest(w, "invalid display order %d", int(rec.Display))
		return
	}
	if err := s.store.AddExam(&rec); err != nil {
		// A dangling problem reference is a payload defect, not a lookup on
		// a problem resource — report it as validation, not 404.
		if errors.Is(err, bank.ErrProblemNotFound) {
			writeErr(w, &Error{Code: CodeValidation, Message: err.Error()})
			return
		}
		writeAuthoringError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, &rec)
}

// handleExamByID routes /v1/exams/{id} and its subresources
// (sessions, grades, results, live).
func (s *Server) handleExamByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/exams/")
	id, sub, _ := strings.Cut(rest, "/")
	// Only the known verb is routed as a verb: a pre-existing exam whose
	// ID happens to contain ':' (legal before checkResourceID rejected
	// it) still resolves as a plain resource.
	if seg, verb, hasVerb := strings.Cut(id, ":"); hasVerb && verb == "recalibrate" && sub == "" {
		if seg == "" {
			badRequest(w, "missing exam ID")
			return
		}
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		s.recalibrateExam(w, r, seg)
		return
	}
	if id == "" {
		badRequest(w, "missing exam ID")
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			rec, err := s.store.Exam(id)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, rec)
		case http.MethodDelete:
			if err := s.store.DeleteExam(id); err != nil {
				writeError(w, err)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			methodNotAllowed(w, http.MethodGet, http.MethodDelete)
		}
	case "sessions":
		switch r.Method {
		case http.MethodPost:
			s.startSession(w, r, id)
		case http.MethodGet:
			s.listSessions(w, id)
		default:
			methodNotAllowed(w, http.MethodGet, http.MethodPost)
		}
	case "grades":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.listGrades(w, id)
	case "results":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		s.exportResults(w, id)
	case "live":
		s.handleExamLive(w, r, id)
	default:
		notFoundRoute(w, r.URL.Path)
	}
}

// handleAssemble implements POST /v1/exams:assemble — the paper's
// blueprint-driven authoring workflow over HTTP. The server selects problems
// satisfying every (concept, level) cell, finalizes the draft, stores the
// exam, and returns the record; an underfilled bank is a 422
// BLUEPRINT_SHORTFALL whose details list every deficient cell.
func (s *Server) handleAssemble(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req AssembleExamRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.ID) == "" {
		badRequest(w, "missing exam ID")
		return
	}
	if !checkResourceID(w, req.ID) {
		return
	}
	if len(req.Require) == 0 {
		badRequest(w, "empty blueprint")
		return
	}
	if req.Display == 0 {
		req.Display = item.FixedOrder
	}
	if !req.Display.Valid() {
		badRequest(w, "invalid display order %d", int(req.Display))
		return
	}
	bp := authoring.NewBlueprint()
	for _, cell := range req.Require {
		if cell.ConceptID == "" {
			badRequest(w, "blueprint cell missing conceptId")
			return
		}
		if err := bp.Require(cell.ConceptID, cell.Level, cell.Count); err != nil {
			badRequest(w, "%v", err)
			return
		}
	}
	ids, err := authoring.Assemble(s.store, bp)
	if err != nil {
		writeError(w, err) // ShortfallError -> 422 with cell details
		return
	}
	draft := authoring.NewExamDraft(req.ID, req.Title)
	draft.Display = req.Display
	draft.TestTime = time.Duration(req.TestTimeSeconds) * time.Second
	if err := draft.Add(ids...); err != nil {
		writeAuthoringError(w, err)
		return
	}
	rec, err := draft.Finalize(s.store)
	if err != nil {
		writeAuthoringError(w, err)
		return
	}
	if err := s.store.AddExam(rec); err != nil {
		writeAuthoringError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, AssembleExamResponse{Exam: rec})
}
