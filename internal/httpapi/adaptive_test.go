package httpapi

// Route-level contract for /v1/adaptive-sessions and exams:recalibrate:
// error taxonomy, full session loop over raw HTTP, and the disabled-feature
// envelope when no adaptive engine is wired in.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"mineassess/internal/bank"
	"mineassess/internal/catdelivery"
	"mineassess/internal/cognition"
	"mineassess/internal/delivery"
	"mineassess/internal/item"
	"mineassess/internal/simulate"
)

// calibratedFixture stores n auto-gradable MC problems (answer "A") with
// IRT parameters as exam "cat1".
func calibratedFixture(t *testing.T, n int) *bank.Store {
	t.Helper()
	s := bank.New()
	params := make(map[string]simulate.IRTParams, n)
	var ids []string
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("aq%02d", i+1)
		p, err := item.NewMultipleChoice(id, "?", []string{"w", "x", "y", "z"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.Level = cognition.Knowledge
		if err := s.AddProblem(p); err != nil {
			t.Fatal(err)
		}
		params[id] = simulate.IRTParams{A: 1.8, B: -1.5 + 3*float64(i)/float64(n-1)}
		ids = append(ids, id)
	}
	if err := s.AddExam(&bank.ExamRecord{ID: "cat1", Title: "CAT pool",
		ProblemIDs: ids, ItemParams: params}); err != nil {
		t.Fatal(err)
	}
	// An uncalibrated exam rides along for the taxonomy checks.
	if err := s.AddExam(&bank.ExamRecord{ID: "plain", Title: "Fixed only",
		ProblemIDs: ids[:2]}); err != nil {
		t.Fatal(err)
	}
	return s
}

// adaptiveServer wires a calibrated bank plus both engines.
func adaptiveServer(t *testing.T) (*httptest.Server, *catdelivery.Engine) {
	t.Helper()
	store := calibratedFixture(t, 10)
	cat, err := catdelivery.NewEngine(store, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng := delivery.NewEngine(store, nil, 0)
	srv := httptest.NewServer(NewServer(eng, store, Options{Adaptive: cat}))
	t.Cleanup(srv.Close)
	return srv, cat
}

func TestAdaptiveSessionLoopOverHTTP(t *testing.T) {
	srv, _ := adaptiveServer(t)
	var started StartAdaptiveSessionResponse
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/v1/adaptive-sessions",
		StartAdaptiveSessionRequest{ExamID: "cat1", StudentID: "ada", Seed: 3},
		&started)
	if code != http.StatusOK || started.SessionID == "" || started.Next == nil {
		t.Fatalf("start: %d %s", code, raw)
	}
	// GET next re-fetches the same pending item.
	var next struct {
		ProblemID string `json:"problemId"`
	}
	code, raw = doJSON(t, http.MethodGet,
		srv.URL+"/v1/adaptive-sessions/"+started.SessionID+"/next", nil, &next)
	if code != http.StatusOK || next.ProblemID != started.Next.ProblemID {
		t.Fatalf("next: %d %s", code, raw)
	}
	pending := started.Next.ProblemID
	answered := 0
	for {
		var prog struct {
			Done bool `json:"done"`
			Next *struct {
				ProblemID string `json:"problemId"`
			} `json:"next"`
			Administered int     `json:"administered"`
			SE           float64 `json:"se"`
		}
		code, raw = doJSON(t, http.MethodPost,
			srv.URL+"/v1/adaptive-sessions/"+started.SessionID+":respond",
			AnswerRequest{ProblemID: pending, Response: "A"}, &prog)
		if code != http.StatusOK {
			t.Fatalf("respond: %d %s", code, raw)
		}
		answered++
		if prog.Done {
			break
		}
		pending = prog.Next.ProblemID
	}
	if answered != 10 {
		t.Errorf("answered = %d, want whole pool", answered)
	}
	// Status reflects the finished state.
	var st struct {
		State        string  `json:"state"`
		Administered int     `json:"administered"`
		Theta        float64 `json:"theta"`
	}
	code, raw = doJSON(t, http.MethodGet,
		srv.URL+"/v1/adaptive-sessions/"+started.SessionID, nil, &st)
	if code != http.StatusOK || st.State != "finished" || st.Administered != 10 {
		t.Fatalf("status: %d %s", code, raw)
	}
	if st.Theta < 1 {
		t.Errorf("all-correct theta = %v, want high", st.Theta)
	}
	// Finish is idempotent and returns the outcome.
	var out struct {
		StopReason string `json:"stopReason"`
	}
	code, raw = doJSON(t, http.MethodPost,
		srv.URL+"/v1/adaptive-sessions/"+started.SessionID+":finish", nil, &out)
	if code != http.StatusOK || out.StopReason == "" {
		t.Fatalf("finish: %d %s", code, raw)
	}
	// Monitor captured one snapshot per mutation.
	code, raw = doJSON(t, http.MethodGet,
		srv.URL+"/v1/adaptive-sessions/"+started.SessionID+"/monitor", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("monitor: %d %s", code, raw)
	}
}

func TestAdaptiveErrorTaxonomy(t *testing.T) {
	srv, _ := adaptiveServer(t)
	base := srv.URL

	// Uncalibrated exam -> 422 EXAM_NOT_CALIBRATED.
	code, raw := doJSON(t, http.MethodPost, base+"/v1/adaptive-sessions",
		StartAdaptiveSessionRequest{ExamID: "plain", StudentID: "x"}, nil)
	wantEnvelope(t, code, raw, CodeNotCalibrated)

	// Unknown exam -> 404 EXAM_NOT_FOUND.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/adaptive-sessions",
		StartAdaptiveSessionRequest{ExamID: "ghost", StudentID: "x"}, nil)
	wantEnvelope(t, code, raw, CodeExamNotFound)

	// Invalid config -> 400 VALIDATION_FAILED.
	req := StartAdaptiveSessionRequest{ExamID: "cat1", StudentID: "x"}
	req.TargetSE = -1
	code, raw = doJSON(t, http.MethodPost, base+"/v1/adaptive-sessions", req, nil)
	wantEnvelope(t, code, raw, CodeValidation)

	// Unknown session -> 404 SESSION_NOT_FOUND.
	code, raw = doJSON(t, http.MethodGet, base+"/v1/adaptive-sessions/cat-999999", nil, nil)
	wantEnvelope(t, code, raw, CodeSessionNotFound)

	// Wrong item -> 409 ITEM_NOT_PENDING.
	var started StartAdaptiveSessionResponse
	doJSON(t, http.MethodPost, base+"/v1/adaptive-sessions",
		StartAdaptiveSessionRequest{ExamID: "cat1", StudentID: "y"}, &started)
	code, raw = doJSON(t, http.MethodPost,
		base+"/v1/adaptive-sessions/"+started.SessionID+":respond",
		AnswerRequest{ProblemID: "definitely-wrong", Response: "A"}, nil)
	wantEnvelope(t, code, raw, CodeItemNotPending)

	// Respond after finish -> 409 SESSION_NOT_ACTIVE.
	doJSON(t, http.MethodPost, base+"/v1/adaptive-sessions/"+started.SessionID+":finish", nil, nil)
	code, raw = doJSON(t, http.MethodPost,
		base+"/v1/adaptive-sessions/"+started.SessionID+":respond",
		AnswerRequest{ProblemID: started.Next.ProblemID, Response: "A"}, nil)
	wantEnvelope(t, code, raw, CodeSessionNotActive)

	// Recalibrate before any sessions finish with responses -> data check.
	code, raw = doJSON(t, http.MethodPost, base+"/v1/exams/plain:recalibrate", nil, nil)
	wantEnvelope(t, code, raw, CodeNotCalibrated)

	// Method discipline on the verbs.
	code, raw = doJSON(t, http.MethodGet, base+"/v1/adaptive-sessions", nil, nil)
	wantEnvelope(t, code, raw, CodeMethodNotAllowed)
	code, raw = doJSON(t, http.MethodGet, base+"/v1/exams/cat1:recalibrate", nil, nil)
	wantEnvelope(t, code, raw, CodeMethodNotAllowed)
	code, raw = doJSON(t, http.MethodPost,
		base+"/v1/adaptive-sessions/"+started.SessionID+":warp", nil, nil)
	wantEnvelope(t, code, raw, CodeNotFound)
}

func TestRecalibrateOverHTTP(t *testing.T) {
	srv, cat := adaptiveServer(t)
	// No logged responses yet -> 422 INSUFFICIENT_DATA.
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/v1/exams/cat1:recalibrate", nil, nil)
	wantEnvelope(t, code, raw, CodeInsufficientData)

	// Drive a few all-correct sessions so recalibration has data.
	for i := 0; i < 4; i++ {
		var started StartAdaptiveSessionResponse
		doJSON(t, http.MethodPost, srv.URL+"/v1/adaptive-sessions",
			StartAdaptiveSessionRequest{ExamID: "cat1",
				StudentID: fmt.Sprintf("r%d", i), Seed: int64(i)}, &started)
		next := started.Next.ProblemID
		for {
			var prog struct {
				Done bool `json:"done"`
				Next *struct {
					ProblemID string `json:"problemId"`
				} `json:"next"`
			}
			doJSON(t, http.MethodPost,
				srv.URL+"/v1/adaptive-sessions/"+started.SessionID+":respond",
				AnswerRequest{ProblemID: next, Response: "A"}, &prog)
			if prog.Done {
				break
			}
			next = prog.Next.ProblemID
		}
	}
	if cat.ResponseLog().Len() != 4 {
		t.Fatalf("logged = %d", cat.ResponseLog().Len())
	}
	var resp RecalibrateResponse
	code, raw = doJSON(t, http.MethodPost, srv.URL+"/v1/exams/cat1:recalibrate",
		RecalibrateRequest{MinObservations: 3}, &resp)
	if code != http.StatusOK {
		t.Fatalf("recalibrate: %d %s", code, raw)
	}
	if len(resp.Updated) == 0 || resp.Observations != 40 {
		t.Errorf("recalibrate response = %+v", resp)
	}
}

func TestAdaptiveDisabledReturnsTypedNotFound(t *testing.T) {
	store := calibratedFixture(t, 4)
	eng := delivery.NewEngine(store, nil, 0)
	srv := httptest.NewServer(NewServer(eng, store, Options{})) // no Adaptive
	defer srv.Close()
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/v1/adaptive-sessions",
		StartAdaptiveSessionRequest{ExamID: "cat1", StudentID: "x"}, nil)
	wantEnvelope(t, code, raw, CodeNotFound)
	code, raw = doJSON(t, http.MethodPost, srv.URL+"/v1/exams/cat1:recalibrate", nil, nil)
	wantEnvelope(t, code, raw, CodeNotFound)
}

func TestAdaptivePurgeOverHTTP(t *testing.T) {
	srv, cat := adaptiveServer(t)
	// Finish one quick session.
	var started StartAdaptiveSessionResponse
	req := StartAdaptiveSessionRequest{ExamID: "cat1", StudentID: "p"}
	req.MaxItems = 1
	doJSON(t, http.MethodPost, srv.URL+"/v1/adaptive-sessions", req, &started)
	doJSON(t, http.MethodPost, srv.URL+"/v1/adaptive-sessions/"+started.SessionID+":respond",
		AnswerRequest{ProblemID: started.Next.ProblemID, Response: "A"}, nil)
	var resp PurgeAdaptiveSessionsResponse
	code, raw := doJSON(t, http.MethodPost, srv.URL+"/v1/adaptive-sessions:purge", nil, &resp)
	if code != http.StatusOK || resp.Purged != 1 {
		t.Fatalf("purge: %d %s", code, raw)
	}
	if cat.SessionCount() != 0 {
		t.Errorf("sessions after purge = %d", cat.SessionCount())
	}
	code, raw = doJSON(t, http.MethodGet, srv.URL+"/v1/adaptive-sessions:purge", nil, nil)
	wantEnvelope(t, code, raw, CodeMethodNotAllowed)
}

// TestColonExamIDsStillResolve: exams created before ':' was rejected in
// IDs must stay fetchable — only the literal ":recalibrate" verb diverts.
func TestColonExamIDsStillResolve(t *testing.T) {
	store := calibratedFixture(t, 4)
	if err := store.AddExam(&bank.ExamRecord{ID: "fall:2026",
		ProblemIDs: []string{"aq01"}}); err != nil {
		t.Fatal(err)
	}
	eng := delivery.NewEngine(store, nil, 0)
	srv := httptest.NewServer(NewServer(eng, store, Options{}))
	defer srv.Close()
	var rec bank.ExamRecord
	code, raw := doJSON(t, http.MethodGet, srv.URL+"/v1/exams/fall:2026", nil, &rec)
	if code != http.StatusOK || rec.ID != "fall:2026" {
		t.Fatalf("legacy colon ID: %d %s", code, raw)
	}
	// New creations with ':' are rejected up front.
	code, raw = doJSON(t, http.MethodPost, srv.URL+"/v1/exams",
		&bank.ExamRecord{ID: "bad:id", ProblemIDs: []string{"aq01"}}, nil)
	wantEnvelope(t, code, raw, CodeValidation)
}
