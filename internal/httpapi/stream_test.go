package httpapi

// SSE endpoint suite: streaming must work through the complete middleware
// chain (request ID, access log, recovery, rate limiting — the
// statusRecorder forwards Flush), deliver events in order with resume
// tokens, interleave live statistics on the exam stream, and answer typed
// envelopes when disabled or misaddressed.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mineassess/internal/delivery"
	"mineassess/internal/events"
	"mineassess/internal/livestats"
)

// sseFrame is one parsed server-sent-event frame.
type sseFrame struct {
	id    string
	event string
	data  []byte
}

// sseConn is a live SSE connection under test control.
type sseConn struct {
	cancel context.CancelFunc
	body   io.ReadCloser
	br     *bufio.Reader
}

func (c *sseConn) close() {
	c.cancel()
	c.body.Close()
}

// next reads one frame, skipping keep-alive comments.
func (c *sseConn) next(t *testing.T) *sseFrame {
	t.Helper()
	f := &sseFrame{}
	var data []string
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if f.event == "" && len(data) == 0 {
				continue
			}
			f.data = []byte(strings.Join(data, "\n"))
			return f
		case strings.HasPrefix(line, ":"):
		case strings.HasPrefix(line, "event:"):
			f.event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "id:"):
			f.id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
	}
}

// nextEvent reads frames until one that is not a stats frame arrives.
func (c *sseConn) nextEvent(t *testing.T) *sseFrame {
	t.Helper()
	for {
		f := c.next(t)
		if f.event != "stats" {
			return f
		}
	}
}

// openSSE connects to an SSE path with an optional Last-Event-ID.
func openSSE(t *testing.T, base, path, lastID string) *sseConn {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	conn := &sseConn{cancel: cancel, body: resp.Body, br: bufio.NewReader(resp.Body)}
	t.Cleanup(conn.close)
	return conn
}

// streamFixture builds a server with the full middleware chain (access log
// on, generous rate limit so its bookkeeping is exercised) plus bus and
// aggregator.
func streamFixture(t *testing.T) (*httptest.Server, *delivery.Engine, string, *events.Bus) {
	t.Helper()
	store, examID := examFixture(t, false)
	eng := delivery.NewEngine(store, nil, 8)
	bus := events.NewBus(events.Options{})
	t.Cleanup(bus.Close)
	eng.SetEventBus(bus)
	live := livestats.New(bus)
	t.Cleanup(live.Close)
	srv := httptest.NewServer(NewServer(eng, store, Options{
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		RatePerSec: 1e6, Burst: 1 << 20,
		Events:    bus,
		LiveStats: live,
	}))
	t.Cleanup(srv.Close)
	return srv, eng, examID, bus
}

func decodeEvent(t *testing.T, f *sseFrame) events.Event {
	t.Helper()
	var e events.Event
	if err := json.Unmarshal(f.data, &e); err != nil {
		t.Fatalf("decode %s frame: %v", f.event, err)
	}
	return e
}

func TestExamLiveStreamDeliversEventsInOrder(t *testing.T) {
	srv, eng, examID, _ := streamFixture(t)
	conn := openSSE(t, srv.URL, "/v1/exams/"+examID+"/live", "")

	sess, err := eng.Start(examID, "alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(sess.ID, sess.Order[0], "A"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(sess.ID, sess.Order[1], "w"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(sess.ID); err != nil {
		t.Fatal(err)
	}

	wantTypes := []events.Type{events.SessionStarted, events.ResponseSubmitted,
		events.ResponseSubmitted, events.SessionFinished}
	var lastSeq uint64
	for i, want := range wantTypes {
		f := conn.nextEvent(t)
		e := decodeEvent(t, f)
		if e.Type != want {
			t.Fatalf("frame %d: type %s, want %s", i, e.Type, want)
		}
		if f.event != string(want) {
			t.Fatalf("frame %d: SSE event name %q", i, f.event)
		}
		if f.id != fmt.Sprint(e.Seq) {
			t.Fatalf("frame %d: id %q vs seq %d", i, f.id, e.Seq)
		}
		if e.Seq != lastSeq+1 {
			t.Fatalf("frame %d: seq %d, want %d", i, e.Seq, lastSeq+1)
		}
		lastSeq = e.Seq
	}
	// A correct and a wrong answer were recorded.
	// (order[0] answered "A" = correct key, order[1] answered "w" = wrong)

	// The stats frames must catch up to the finish event and reflect the
	// folded sitting.
	deadline := time.After(2 * time.Second)
	for {
		var f *sseFrame
		done := make(chan struct{})
		go func() { f = conn.next(t); close(done) }()
		select {
		case <-done:
		case <-deadline:
			t.Fatal("no stats frame caught up to the finish event")
		}
		if f.event != "stats" {
			continue
		}
		var snap livestats.ExamLiveStats
		if err := json.Unmarshal(f.data, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Seq < lastSeq {
			continue // aggregator still behind; a fresher frame follows
		}
		if snap.FinishedSessions != 1 || snap.Responses != 2 {
			t.Fatalf("stats: %+v", snap)
		}
		return
	}
}

func TestExamLiveLastEventIDResume(t *testing.T) {
	srv, eng, examID, bus := streamFixture(t)

	sess, err := eng.Start(examID, "bob", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pid := range sess.Order[:2] {
		if err := eng.Answer(sess.ID, pid, "A"); err != nil {
			t.Fatal(err)
		}
	}

	// First connection sees the backlog is NOT replayed without a token:
	// a fresh subscription is live-only.
	conn := openSSE(t, srv.URL, "/v1/exams/"+examID+"/live", "")
	if err := eng.Answer(sess.ID, sess.Order[2], "A"); err != nil {
		t.Fatal(err)
	}
	f := conn.nextEvent(t)
	e := decodeEvent(t, f)
	if e.Seq != 4 {
		t.Fatalf("live-only stream started at seq %d, want 4", e.Seq)
	}
	lastID := f.id
	conn.close()

	// More happens while disconnected.
	if err := eng.Answer(sess.ID, sess.Order[3], "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(sess.ID); err != nil {
		t.Fatal(err)
	}
	head := bus.Seq(examID)

	// Reconnect with Last-Event-ID: exactly the missed events replay, in
	// order, no gap marker.
	conn2 := openSSE(t, srv.URL, "/v1/exams/"+examID+"/live", lastID)
	for want := uint64(5); want <= head; want++ {
		f := conn2.nextEvent(t)
		if f.event == string(events.TypeGap) {
			t.Fatalf("unexpected gap marker on in-window resume")
		}
		e := decodeEvent(t, f)
		if e.Seq != want {
			t.Fatalf("resumed seq %d, want %d", e.Seq, want)
		}
	}
}

func TestFirehoseStreamSpansExams(t *testing.T) {
	srv, eng, examID, _ := streamFixture(t)
	conn := openSSE(t, srv.URL, "/v1/events:stream", "")

	if _, err := eng.Start(examID, "carol", 1); err != nil {
		t.Fatal(err)
	}
	f := conn.nextEvent(t)
	e := decodeEvent(t, f)
	if e.Type != events.SessionStarted || e.StudentID != "carol" {
		t.Fatalf("firehose frame: %+v", e)
	}
	// Firehose ids are the global sequence.
	if f.id != fmt.Sprint(e.GlobalSeq) {
		t.Fatalf("firehose id %q vs globalSeq %d", f.id, e.GlobalSeq)
	}

	// Resume by global sequence.
	if _, err := eng.Start(examID, "dave", 2); err != nil {
		t.Fatal(err)
	}
	conn2 := openSSE(t, srv.URL, "/v1/events:stream", f.id)
	e2 := decodeEvent(t, conn2.nextEvent(t))
	if e2.StudentID != "dave" {
		t.Fatalf("resumed firehose got %+v", e2)
	}
}

func TestStreamErrorEnvelopes(t *testing.T) {
	srv, _, examID, _ := streamFixture(t)

	// Unknown exam: 404 EXAM_NOT_FOUND, not an empty stream.
	resp, err := http.Get(srv.URL + "/v1/exams/ghost/live")
	if err != nil {
		t.Fatal(err)
	}
	assertEnvelope(t, resp, http.StatusNotFound, CodeExamNotFound)

	// Bad resume token: 400.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/exams/"+examID+"/live", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	assertEnvelope(t, resp, http.StatusBadRequest, CodeBadRequest)

	// Wrong method.
	resp, err = http.Post(srv.URL+"/v1/events:stream", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	assertEnvelope(t, resp, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
}

func TestStreamingDisabledIsTyped404(t *testing.T) {
	store, examID := examFixture(t, false)
	eng := delivery.NewEngine(store, nil, 8)
	srv := httptest.NewServer(NewServer(eng, store, Options{})) // no Events
	t.Cleanup(srv.Close)

	for _, path := range []string{"/v1/events:stream", "/v1/exams/" + examID + "/live"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		assertEnvelope(t, resp, http.StatusNotFound, CodeNotFound)
	}
}

func assertEnvelope(t *testing.T, resp *http.Response, status int, code Code) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("status %d, want %d", resp.StatusCode, status)
	}
	var env Error
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	if env.Code != code {
		t.Fatalf("code %s, want %s", env.Code, code)
	}
}

// TestStreamClientDisconnectReleasesSubscription: closing the client
// connection must end the handler and detach its bus subscription.
func TestStreamClientDisconnectReleasesSubscription(t *testing.T) {
	srv, eng, examID, bus := streamFixture(t)
	conn := openSSE(t, srv.URL, "/v1/exams/"+examID+"/live", "")
	if _, err := eng.Start(examID, "erin", 1); err != nil {
		t.Fatal(err)
	}
	conn.nextEvent(t)
	conn.close()

	// After the handler notices the disconnect, publishing must reach zero
	// stream subscribers (only the livestats aggregator remains).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if bus.Subscribers() <= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("stream subscription leaked after client disconnect")
}

// TestStatsArriveOnQuietExam: a watcher connecting (fresh, or resuming at
// the head) to an exam with history but no current traffic must still get
// a stats frame — state-at-connect for fresh watchers, the final catch-up
// frame for resumers who disconnected before it.
func TestStatsArriveOnQuietExam(t *testing.T) {
	srv, eng, examID, bus := streamFixture(t)

	// A full sitting happens with nobody watching.
	sess, err := eng.Start(examID, "frank", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Answer(sess.ID, sess.Order[0], "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Finish(sess.ID); err != nil {
		t.Fatal(err)
	}
	head := bus.Seq(examID)

	readStats := func(conn *sseConn) *livestats.ExamLiveStats {
		t.Helper()
		got := make(chan *sseFrame, 1)
		go func() {
			for {
				f := conn.next(t)
				if f.event == "stats" {
					got <- f
					return
				}
			}
		}()
		select {
		case f := <-got:
			var snap livestats.ExamLiveStats
			if err := json.Unmarshal(f.data, &snap); err != nil {
				t.Fatal(err)
			}
			return &snap
		case <-time.After(2 * time.Second):
			t.Fatal("no stats frame on a quiet exam")
			return nil
		}
	}

	// Fresh connect: baseline stats without waiting for a new event.
	conn := openSSE(t, srv.URL, "/v1/exams/"+examID+"/live", "")
	snap := readStats(conn)
	if snap.FinishedSessions != 1 {
		t.Fatalf("baseline stats: %+v", snap)
	}
	conn.close()

	// Resume at the head (client saw everything, missed only the trailing
	// stats frame): the catch-up stats frame must still arrive.
	conn2 := openSSE(t, srv.URL, "/v1/exams/"+examID+"/live", fmt.Sprint(head))
	snap = readStats(conn2)
	if snap.Seq != head || snap.FinishedSessions != 1 {
		t.Fatalf("resume-at-head stats: %+v", snap)
	}
}

// nonFlusher hides http.Flusher from a recorder.
type nonFlusher struct{ http.ResponseWriter }

// TestStatusRecorderReportsFlushCapability: http.ResponseController over
// the middleware's statusRecorder must surface ErrNotSupported for a
// non-flushing underlying writer (streamSSE trusts this to bail out) and
// succeed for a flushing one.
func TestStatusRecorderReportsFlushCapability(t *testing.T) {
	rec := httptest.NewRecorder()
	sr := &statusRecorder{ResponseWriter: &nonFlusher{rec}}
	if err := http.NewResponseController(sr).Flush(); !strings.Contains(fmt.Sprint(err), "not supported") {
		t.Fatalf("flush on non-flusher: %v, want ErrNotSupported", err)
	}
	sr2 := &statusRecorder{ResponseWriter: rec}
	if err := http.NewResponseController(sr2).Flush(); err != nil {
		t.Fatalf("flush on flusher: %v", err)
	}
	if sr2.status != http.StatusOK {
		t.Fatalf("flush did not record status: %d", sr2.status)
	}
}
