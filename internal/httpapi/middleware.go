package httpapi

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"mineassess/internal/obs"
)

// Middleware wraps a handler. The chain composes outermost-first, so
// Chain(a, b)(h) runs a, then b, then h.
type Middleware func(http.Handler) http.Handler

// Chain composes middlewares into one.
func Chain(mws ...Middleware) Middleware {
	return func(next http.Handler) http.Handler {
		for i := len(mws) - 1; i >= 0; i-- {
			next = mws[i](next)
		}
		return next
	}
}

// RequestIDFrom returns the request's ID, or "" outside the middleware.
// The ID travels under the obs package's context key so engine and WAL
// layers read it without importing httpapi.
func RequestIDFrom(ctx context.Context) string {
	return obs.RequestIDFrom(ctx)
}

// requestIDSeq distinguishes requests within one process; the random prefix
// distinguishes processes, so IDs stay unique across restarts and replicas.
var (
	requestIDSeq    atomic.Uint64
	requestIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
)

// RequestID assigns every request an ID, honouring an inbound X-Request-ID
// so IDs correlate across proxies, and echoes it on the response.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get("X-Request-ID")
			if id == "" {
				id = fmt.Sprintf("%s-%06d", requestIDPrefix, requestIDSeq.Add(1))
			}
			w.Header().Set("X-Request-ID", id)
			next.ServeHTTP(w, r.WithContext(
				obs.WithRequestID(r.Context(), id)))
		})
	}
}

// statusRecorder captures the response status and size for logging and
// metrics. WriteHeader-less handlers are recorded as 200 on first Write.
//
// The wrapper must not hide the underlying writer's optional interfaces:
// a streaming handler that type-asserts http.Flusher (SSE, long polls) or
// http.Hijacker (websockets) has to keep working behind AccessLog, Recover
// and the metrics instrumentation, so both are forwarded, and Unwrap lets
// http.ResponseController reach every capability of the wrapped writer.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sr *statusRecorder) WriteHeader(status int) {
	if sr.status == 0 {
		sr.status = status
	}
	sr.ResponseWriter.WriteHeader(status)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// Flush forwards to the underlying writer when it streams; flushing commits
// the headers, so an unset status is recorded as 200. A non-flushing
// underlying writer makes this a no-op — direct http.Flusher asserts have
// no error channel — so FlushError below is what reports the capability
// faithfully.
func (sr *statusRecorder) Flush() {
	f, ok := sr.ResponseWriter.(http.Flusher)
	if !ok {
		return
	}
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	f.Flush()
}

// FlushError is what http.ResponseController calls in preference to Flush:
// it delegates through the wrapped writer's own controller, so a
// non-flushing underlying writer yields http.ErrNotSupported instead of
// Flush's silent no-op — streaming handlers can trust the error to detect
// a writer that cannot stream.
func (sr *statusRecorder) FlushError() error {
	err := http.NewResponseController(sr.ResponseWriter).Flush()
	if err == nil && sr.status == 0 {
		sr.status = http.StatusOK
	}
	return err
}

// Hijack forwards to the underlying writer; writers that cannot hijack
// return the standard http.ErrNotSupported so callers distinguish "not a
// hijacker" from a hijack failure.
func (sr *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := sr.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

// AccessLog emits one structured record per request: who asked for what,
// what came back, and how long it took. Requests that run for slow or
// longer (when slow > 0) are logged at Warn as "slow request" so they
// stand out and correlate — via request_id — with the engine- and
// WAL-layer slow-op lines. A nil logger disables logging.
func AccessLog(logger *slog.Logger, slow time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sr := &statusRecorder{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sr, r)
			if sr.status == 0 {
				sr.status = http.StatusOK
			}
			d := time.Since(start)
			level, msg := slog.LevelInfo, "request"
			if slow > 0 && d >= slow {
				level, msg = slog.LevelWarn, "slow request"
			}
			logger.LogAttrs(r.Context(), level, msg,
				slog.String(obs.LogKeyRequestID, RequestIDFrom(r.Context())),
				slog.String(obs.LogKeyMethod, r.Method),
				slog.String(obs.LogKeyPath, r.URL.Path),
				slog.Int(obs.LogKeyStatus, sr.status),
				slog.Int(obs.LogKeyBytes, sr.bytes),
				slog.Float64(obs.LogKeyDurationMS, float64(d.Microseconds())/1000),
				slog.String(obs.LogKeyLearner, learnerKey(r)),
			)
		})
	}
}

// Recover converts handler panics into 500 INTERNAL envelopes instead of
// dropped connections, keeping one broken request from looking like an
// outage to the load balancer.
func Recover(logger *slog.Logger, onPanic func()) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sr := &statusRecorder{ResponseWriter: w}
			defer func() {
				if rec := recover(); rec != nil {
					if onPanic != nil {
						onPanic()
					}
					if logger != nil {
						logger.LogAttrs(r.Context(), slog.LevelError, "panic",
							slog.String(obs.LogKeyRequestID, RequestIDFrom(r.Context())),
							slog.Any(obs.LogKeyPanic, rec),
							slog.String(obs.LogKeyPath, r.URL.Path),
						)
					}
					// If the handler already wrote headers the envelope
					// cannot be sent; the truncated body signals failure.
					if sr.status == 0 {
						writeErr(sr, &Error{Code: CodeInternal, Message: "internal error"})
					}
				}
			}()
			next.ServeHTTP(sr, r)
		})
	}
}

// clientIP extracts the connection's IP, the one identity a client cannot
// choose.
func clientIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// learnerKey identifies the learner a request belongs to for logging: the
// X-Learner-ID header when the client sets one (the SDK does), else the
// client IP.
func learnerKey(r *http.Request) string {
	if id := r.Header.Get("X-Learner-ID"); id != "" {
		return id
	}
	return clientIP(r)
}

// RateLimit rejects requests that exceed a token bucket with a 429
// RATE_LIMITED envelope. Two dimensions compose:
//
//   - perLearner shapes each identified learner (X-Learner-ID header) and
//     is checked first, so a learner hammering the API exhausts only their
//     own bucket — header-less peers behind the same NAT are untouched.
//     Requests without the header skip this bucket (browser and SCO
//     traffic never sets it; keying them all to one IP bucket at the
//     learner rate would throttle a whole classroom to one learner's
//     allowance).
//   - perIP bounds each connection address's aggregate. Because the
//     header is client-controlled, this is what stops a client cycling
//     fabricated learner IDs — every fabricated ID gets a fresh learner
//     bucket, but never a fresh IP bucket.
//
// Nil limiters disable their dimension.
func RateLimit(perLearner, perIP *RateLimiter, onLimited func()) Middleware {
	return func(next http.Handler) http.Handler {
		if perLearner == nil && perIP == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			allowed := true
			if perLearner != nil {
				if id := r.Header.Get("X-Learner-ID"); id != "" {
					allowed = perLearner.Allow(id)
				}
			}
			if allowed && perIP != nil {
				allowed = perIP.Allow(clientIP(r))
			}
			if !allowed {
				if onLimited != nil {
					onLimited()
				}
				w.Header().Set("Retry-After", "1")
				writeErr(w, &Error{Code: CodeRateLimited,
					Message: "request rate exceeded"})
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
