package httpapi

import (
	"sync"
	"time"
)

// RateLimiter is a per-key token bucket: each learner gets Burst tokens that
// refill at Rate per second. It exists so a single runaway SCO or scripted
// client cannot monopolize the delivery engine during an exam.
type RateLimiter struct {
	rate  float64 // tokens added per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds limiter memory: when exceeded, fully refilled (idle)
// buckets are swept. Active learners are never evicted — a full bucket is
// indistinguishable from a brand-new one.
const maxBuckets = 8192

// NewRateLimiter builds a limiter allowing rate requests/second with the
// given burst per key. rate <= 0 returns nil, which disables limiting.
// now may be nil for wall-clock time.
func NewRateLimiter(rate float64, burst int, now func() time.Time) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// Allow reports whether the key may proceed, consuming one token if so.
func (l *RateLimiter) Allow(key string) bool {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepLocked drops buckets that have refilled completely, then — only if
// an adversarial flood of never-full buckets left the map still at the cap
// — evicts arbitrary entries down to half so maxBuckets is a hard bound and
// the O(n) sweep amortizes over the next maxBuckets/2 inserts. An evicted
// active key restarts with a full burst, which is the lesser harm next to
// unbounded memory. Callers hold mu.
func (l *RateLimiter) sweepLocked(now time.Time) {
	for key, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, key)
		}
	}
	if len(l.buckets) < maxBuckets {
		return
	}
	for key := range l.buckets {
		if len(l.buckets) <= maxBuckets/2 {
			break
		}
		delete(l.buckets, key)
	}
}
