package httpapi

import (
	"sync"
	"time"
)

// RateLimiter is a per-key token bucket: each learner gets Burst tokens that
// refill at Rate per second. It exists so a single runaway SCO or scripted
// client cannot monopolize the delivery engine during an exam.
type RateLimiter struct {
	rate  float64 // tokens added per second
	burst float64
	ttl   time.Duration // idle buckets older than this are evicted
	now   func() time.Time

	mu        sync.Mutex
	buckets   map[string]*bucket
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds limiter memory: when exceeded, fully refilled (idle)
// buckets are swept. Active learners are never evicted — a full bucket is
// indistinguishable from a brand-new one.
const maxBuckets = 8192

// DefaultBucketTTL is how long an untouched bucket survives before the
// periodic sweep reclaims it. Without a TTL the map grows one entry per
// learner/IP ever seen — millions of learners over a server's lifetime
// would mean millions of entries retained for a handful of active ones.
const DefaultBucketTTL = 10 * time.Minute

// NewRateLimiter builds a limiter allowing rate requests/second with the
// given burst per key and the default idle-bucket TTL. rate <= 0 returns
// nil, which disables limiting. now may be nil for wall-clock time.
func NewRateLimiter(rate float64, burst int, now func() time.Time) *RateLimiter {
	return NewRateLimiterTTL(rate, burst, DefaultBucketTTL, now)
}

// NewRateLimiterTTL is NewRateLimiter with an explicit idle-bucket TTL:
// buckets untouched for ttl are evicted by an amortized sweep. ttl 0 means
// DefaultBucketTTL; negative disables TTL eviction (the maxBuckets cap
// still bounds memory).
func NewRateLimiterTTL(rate float64, burst int, ttl time.Duration, now func() time.Time) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	if ttl == 0 {
		ttl = DefaultBucketTTL
	}
	l := &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		ttl:     ttl,
		now:     now,
		buckets: make(map[string]*bucket),
	}
	l.lastSweep = now()
	return l
}

// Len reports the current bucket count (tests and metrics).
func (l *RateLimiter) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Allow reports whether the key may proceed, consuming one token if so.
func (l *RateLimiter) Allow(key string) bool {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	// Amortized TTL sweep: at most one O(n) pass per TTL window, so the
	// per-request cost stays O(1) while idle buckets cannot outlive ~2x TTL.
	if l.ttl > 0 && now.Sub(l.lastSweep) >= l.ttl {
		l.evictIdleLocked(now)
		l.lastSweep = now
	}
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictIdleLocked drops buckets that have not been touched for the TTL.
// Idleness is judged on b.last alone — a bucket still paying off a token
// deficit but receiving traffic keeps its state (an active bucket is never
// reset), while an abandoned one is reclaimed no matter how full it is.
// Callers hold mu.
func (l *RateLimiter) evictIdleLocked(now time.Time) {
	for key, b := range l.buckets {
		if now.Sub(b.last) >= l.ttl {
			delete(l.buckets, key)
		}
	}
}

// sweepLocked drops buckets that have refilled completely, then — only if
// an adversarial flood of never-full buckets left the map still at the cap
// — evicts arbitrary entries down to half so maxBuckets is a hard bound and
// the O(n) sweep amortizes over the next maxBuckets/2 inserts. An evicted
// active key restarts with a full burst, which is the lesser harm next to
// unbounded memory. Callers hold mu.
func (l *RateLimiter) sweepLocked(now time.Time) {
	for key, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, key)
		}
	}
	if len(l.buckets) < maxBuckets {
		return
	}
	for key := range l.buckets {
		if len(l.buckets) <= maxBuckets/2 {
			break
		}
		delete(l.buckets, key)
	}
}
