package httpapi

// Live adaptive (CAT) delivery over HTTP: one-item-at-a-time sessions with
// online ability re-estimation, surfaced as /v1/adaptive-sessions
// resources, plus the administrator's recalibration verb on exams. The
// engine lives in internal/catdelivery; every handler here is a thin
// decode/dispatch/encode shell over it, with errors classified through the
// shared taxonomy.
//
//	POST /v1/adaptive-sessions              start on a calibrated exam
//	GET  /v1/adaptive-sessions/{id}         session status (theta, SE, state)
//	GET  /v1/adaptive-sessions/{id}/next    the pending item (re-fetchable)
//	POST /v1/adaptive-sessions/{id}:respond answer the pending item
//	POST /v1/adaptive-sessions/{id}:finish  close early / fetch the outcome
//	GET  /v1/adaptive-sessions/{id}/monitor captured snapshots
//	POST /v1/exams/{id}:recalibrate         fold logged responses into params

import (
	"net/http"
	"strings"

	"mineassess/internal/catdelivery"
	"mineassess/pkg/api"
)

// adaptiveEnabled writes the disabled-feature envelope when the server was
// built without an adaptive engine.
func (s *Server) adaptiveEnabled(w http.ResponseWriter) bool {
	if s.cat == nil {
		writeErr(w, &Error{Code: CodeNotFound, Message: "adaptive delivery is not enabled"})
		return false
	}
	return true
}

// handleAdaptiveRoot serves POST /v1/adaptive-sessions.
func (s *Server) handleAdaptiveRoot(w http.ResponseWriter, r *http.Request) {
	if !s.adaptiveEnabled(w) {
		return
	}
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req StartAdaptiveSessionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.ExamID == "" {
		badRequest(w, "missing exam ID")
		return
	}
	sess, first, err := s.cat.StartCtx(r.Context(), req.ExamID, req.StudentID, req.AdaptiveConfig, req.Seed)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, StartAdaptiveSessionResponse{
		SessionID: sess.ID,
		MaxItems:  first.MaxItems,
		Next:      first,
	})
}

// handleAdaptivePurge serves POST /v1/adaptive-sessions:purge — the
// administrator's retention pass over finished sessions.
func (s *Server) handleAdaptivePurge(w http.ResponseWriter, r *http.Request) {
	if !s.adaptiveEnabled(w) {
		return
	}
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	n, err := s.cat.PurgeFinished()
	if err != nil {
		writeError(w, err)
		return
	}
	// The same pass also releases idle live-statistics aggregates — the two
	// retention sweeps share one administrative endpoint.
	writeJSON(w, http.StatusOK, PurgeAdaptiveSessionsResponse{
		Purged:      n,
		StatsPurged: s.live.PurgeIdle(),
	})
}

// handleAdaptiveSessions routes /v1/adaptive-sessions/{id}[:verb|/next|/monitor].
func (s *Server) handleAdaptiveSessions(w http.ResponseWriter, r *http.Request) {
	if !s.adaptiveEnabled(w) {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/adaptive-sessions/")
	seg, sub, _ := strings.Cut(rest, "/")
	id, verb, hasVerb := strings.Cut(seg, ":")
	if id == "" {
		badRequest(w, "missing session ID")
		return
	}
	switch {
	case hasVerb:
		if sub != "" {
			notFoundRoute(w, r.URL.Path)
			return
		}
		if r.Method != http.MethodPost {
			methodNotAllowed(w, http.MethodPost)
			return
		}
		s.adaptiveAction(w, r, id, verb)
	case sub == "":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		st, err := s.cat.Status(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case sub == "next":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		view, err := s.cat.NextItem(id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	case sub == "monitor":
		if r.Method != http.MethodGet {
			methodNotAllowed(w, http.MethodGet)
			return
		}
		if !s.cat.HasSession(id) {
			writeError(w, catdelivery.ErrSessionNotFound)
			return
		}
		writeJSON(w, http.StatusOK, s.cat.Monitor().Snapshots(id))
	default:
		notFoundRoute(w, r.URL.Path)
	}
}

// adaptiveAction dispatches the :respond/:finish verbs.
func (s *Server) adaptiveAction(w http.ResponseWriter, r *http.Request, id, verb string) {
	switch verb {
	case "respond":
		var req AnswerRequest
		if !decodeBody(w, r, &req) {
			return
		}
		prog, err := s.cat.SubmitResponseCtx(r.Context(), id, req.ProblemID, req.Response)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, prog)
	case "finish":
		out, err := s.cat.FinishCtx(r.Context(), id)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, &Error{Code: CodeNotFound, Message: "unknown adaptive session action " + verb})
	}
}

// recalibrateExam implements POST /v1/exams/{id}:recalibrate — the
// calibration feedback loop's write-back, exposed to administrators.
func (s *Server) recalibrateExam(w http.ResponseWriter, r *http.Request, examID string) {
	if !s.adaptiveEnabled(w) {
		return
	}
	// The body is optional: an empty POST uses the default minimum.
	req := RecalibrateRequest{}
	if r.ContentLength != 0 {
		if !decodeBody(w, r, &req) {
			return
		}
	}
	if req.MinObservations < 0 {
		badRequest(w, "minObservations must not be negative")
		return
	}
	cal, err := s.cat.Recalibrate(examID, req.MinObservations)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := RecalibrateResponse{
		Updated:      cal.Updated,
		Skipped:      cal.Skipped,
		Observations: cal.Observations,
	}
	if resp.Updated == nil {
		resp.Updated = map[string]api.IRTParams{} // JSON {} for empty, never null
	}
	writeJSON(w, http.StatusOK, resp)
}
