package httpapi

// Server-sent-event streaming: the live side of the monitor story. Two
// endpoints fan the event bus out over HTTP:
//
//	GET /v1/events:stream      every event on the bus (admin firehose);
//	                           Last-Event-ID resumes by global sequence.
//	GET /v1/exams/{id}/live    one exam's events interleaved with live
//	                           incremental item statistics ("stats"
//	                           frames); Last-Event-ID resumes by the
//	                           exam's per-exam sequence.
//
// Frames follow the SSE contract: `event:` carries the event type (or
// "stats"), `id:` the resume token (event frames only — gap markers and
// stats frames do not advance Last-Event-ID), `data:` one JSON object.
// Slow consumers lose oldest events, announced in-stream by a
// "stream.gap" frame with the dropped count; the emitting engines are
// never throttled by a stuck watcher.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mineassess/internal/events"
	"mineassess/internal/trace"
)

// defaultHeartbeat is the keep-alive comment interval when
// Options.StreamHeartbeat is unset: frequent enough to hold idle
// connections open through common proxy timeouts.
const defaultHeartbeat = 15 * time.Second

// statsRefresh bounds how stale a /live stream's stats frame can be while
// no events arrive: the livestats aggregator is its own bus subscriber and
// may fold an event slightly after the stream delivered it, so the handler
// re-checks on this cadence and emits a fresh frame when the snapshot
// advanced.
const statsRefresh = 200 * time.Millisecond

// eventsEnabled writes the typed 404 when the server runs without a bus.
func (s *Server) eventsEnabled(w http.ResponseWriter) bool {
	if s.bus == nil {
		writeErr(w, &Error{Code: CodeNotFound,
			Message: "event streaming is not enabled on this server"})
		return false
	}
	return true
}

// lastEventID resolves the SSE resume token: the standard Last-Event-ID
// header (set by EventSource and the SDK on reconnect), with a
// lastEventId query fallback for curl. Returns ok=false with no token.
func lastEventID(r *http.Request) (uint64, bool, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("lastEventId")
	}
	if raw == "" {
		return 0, false, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad Last-Event-ID %q", raw)
	}
	return n, true, nil
}

// handleEventStream serves GET /v1/events:stream.
func (s *Server) handleEventStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	if !s.eventsEnabled(w) {
		return
	}
	after, resume, err := lastEventID(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	sub := s.bus.Subscribe(events.SubscribeOptions{
		Replay: resume, AfterSeq: after,
	})
	if sub == nil {
		writeErr(w, &Error{Code: CodeInternal, Message: "event bus is shut down"})
		return
	}
	defer sub.Close()
	s.streamSSE(w, r, sub, "", globalID, 0)
}

// handleExamLive serves GET /v1/exams/{id}/live.
func (s *Server) handleExamLive(w http.ResponseWriter, r *http.Request, examID string) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	if !s.eventsEnabled(w) {
		return
	}
	// A typo'd exam ID must be a 404 envelope, not a silent empty stream.
	if _, err := s.store.Exam(examID); err != nil {
		writeError(w, err)
		return
	}
	after, resume, err := lastEventID(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	sub := s.bus.Subscribe(events.SubscribeOptions{
		ExamID: examID, Replay: resume, AfterSeq: after,
	})
	if sub == nil {
		writeErr(w, &Error{Code: CodeInternal, Message: "event bus is shut down"})
		return
	}
	defer sub.Close()
	// Seed the stats-ordering watermark: a resuming client attests it has
	// seen events through `after`; a fresh live-only watcher gets
	// state-at-connect semantics (an immediate stats baseline covering the
	// history it chose not to fetch).
	delivered := after
	if !resume {
		delivered = s.bus.Seq(examID)
	}
	s.streamSSE(w, r, sub, examID, examSeqID, delivered)
}

// idFn extracts the SSE id (resume token) for an event frame; 0 means no id
// line (gap markers).
type idFn func(e events.Event) uint64

func globalID(e events.Event) uint64  { return e.GlobalSeq }
func examSeqID(e events.Event) uint64 { return e.Seq }

// streamSSE pumps a subscription to the client until it disconnects or the
// bus shuts down. With examID set, a "stats" frame carrying the livestats
// snapshot follows each delivered event batch (and refreshes while idle as
// the aggregator catches up), so watchers see raw events and the updated
// statistics in order on one connection. delivered seeds the stats
// watermark: events at or below it count as already seen by this client.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, sub *events.Subscription, examID string, id idFn, delivered uint64) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // streaming must defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	if err := rc.Flush(); err != nil {
		return // not a streaming-capable writer; nothing we can do
	}
	// The server's WriteTimeout is a whole-response deadline set at request
	// start — it would cut every stream off after ~10s under examserver's
	// defaults. Streams are heartbeat-supervised instead, so clear the
	// deadline for this response (best effort: an http.Server that cannot
	// is limited to its WriteTimeout per connection).
	_ = rc.SetWriteDeadline(time.Time{})

	heartbeat := s.heartbeat
	if heartbeat <= 0 {
		heartbeat = defaultHeartbeat
	}
	ping := time.NewTicker(heartbeat)
	defer ping.Stop()
	var stats *time.Ticker // lazy: firehose streams never tick stats
	statsC := (<-chan time.Time)(nil)
	if examID != "" && s.live != nil {
		stats = time.NewTicker(statsRefresh)
		defer stats.Stop()
		statsC = stats.C
	}
	// Stats frames never lead the raw events: a snapshot is emitted only
	// once this stream has delivered (or the client has attested seeing)
	// every event it folds (snap.Seq <= delivered), so a watcher's
	// statistics always describe frames already on their screen. The
	// aggregator is an independent subscriber, so it may also lag — the
	// refresh ticker emits the catch-up frame once it folds the last
	// delivered event.
	var statsSeq uint64
	statsSent := false

	ctx := r.Context()
	// A traced stream records each frame write as an sse.frame leaf under
	// the request's root span (zero Span when untraced — every call below
	// is then a no-op branch).
	root := trace.FromContext(ctx)
	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				return // bus shut down
			}
			if err := writeFrameTraced(w, e, id, root); err != nil {
				return
			}
			if e.Seq > delivered {
				delivered = e.Seq
			}
			// Drain whatever is already pending so one flush (and one stats
			// frame) covers the burst.
		drained:
			for {
				select {
				case e, ok := <-sub.Events():
					if !ok {
						_ = rc.Flush()
						return
					}
					if err := writeFrameTraced(w, e, id, root); err != nil {
						return
					}
					if e.Seq > delivered {
						delivered = e.Seq
					}
				default:
					break drained
				}
			}
			if !s.writeStats(w, examID, delivered, &statsSeq, &statsSent) {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-statsC:
			wrote, ok := s.tryStats(w, examID, delivered, &statsSeq, &statsSent)
			if !ok {
				return
			}
			if wrote {
				if err := rc.Flush(); err != nil {
					return
				}
			}
		case <-ping.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// writeStats appends a stats frame when one is due (see tryStats); the
// bool is false on a write error.
func (s *Server) writeStats(w http.ResponseWriter, examID string, delivered uint64, statsSeq *uint64, statsSent *bool) bool {
	_, ok := s.tryStats(w, examID, delivered, statsSeq, statsSent)
	return ok
}

// tryStats emits a stats frame when the aggregator's snapshot is (a) newer
// than the last frame this stream sent and (b) covered by the events
// already delivered. Returns (wrote, ok); ok false means a write error.
func (s *Server) tryStats(w http.ResponseWriter, examID string, delivered uint64, statsSeq *uint64, statsSent *bool) (bool, bool) {
	if examID == "" || s.live == nil {
		return false, true
	}
	// Probe the folded sequence before building a snapshot: idle streams
	// poll this 5x/second per watcher, and the full snapshot is O(items).
	seq, ok := s.live.Seq(examID)
	if !ok || seq > delivered || (*statsSent && seq == *statsSeq) {
		return false, true
	}
	snap, ok := s.live.Snapshot(examID)
	if !ok || snap.Seq > delivered || (*statsSent && snap.Seq == *statsSeq) {
		return false, true
	}
	if err := writeSSE(w, "stats", 0, snap); err != nil {
		return false, false
	}
	*statsSeq, *statsSent = snap.Seq, true
	return true, true
}

// framePool recycles SSE frame assembly buffers across writes and
// connections: with the event's JSON encoding cached at publish time, a
// frame write is pure appends into a pooled buffer plus one w.Write.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// writeFrame serializes one bus event as an SSE frame. It assembles the
// whole frame — event name, optional id, data line — in a pooled buffer and
// writes it in one call, reusing the event's shared publish-time encoding
// instead of re-marshalling per subscriber.
func writeFrame(w http.ResponseWriter, e events.Event, id idFn) error {
	bp := framePool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, "event: "...)
	buf = append(buf, e.Type...)
	buf = append(buf, '\n')
	if seq := id(e); seq > 0 {
		buf = append(buf, "id: "...)
		buf = strconv.AppendUint(buf, seq, 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, "data: "...)
	buf, err := e.AppendJSON(buf)
	if err == nil {
		buf = append(buf, '\n', '\n')
		_, err = w.Write(buf)
	}
	*bp = buf
	framePool.Put(bp)
	return err
}

// writeFrameTraced is writeFrame under a per-frame sse.frame leaf span. A
// stream.gap marker frame flags the whole trace (SetGap), so the tail
// sampler always retains traces whose stream dropped events — the
// slow-consumer evidence survives alongside the latency evidence.
func writeFrameTraced(w http.ResponseWriter, e events.Event, id idFn, root trace.Span) error {
	sp := root.Child("sse.frame")
	sp.SetStr("event.type", string(e.Type))
	if e.Type == events.TypeGap {
		sp.SetGap()
	}
	err := writeFrame(w, e, id)
	if err != nil {
		sp.SetError()
	}
	sp.End()
	return err
}

// writeSSE writes one frame: event name, optional id, one-line JSON data.
func writeSSE(w http.ResponseWriter, event string, id uint64, v any) error {
	if _, err := fmt.Fprintf(w, "event: %s\n", event); err != nil {
		return err
	}
	if id > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", id); err != nil {
			return err
		}
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", raw)
	return err
}
