package httpapi

// TTL-eviction suite for the per-key token buckets: a server that sees
// millions of learner IDs and IPs over its lifetime must not retain a
// bucket for each of them forever, and the sweep must never penalize a key
// that is still active.

import (
	"fmt"
	"testing"
	"time"
)

func TestRateLimiterEvictsIdleBuckets(t *testing.T) {
	clock := newFakeClock()
	ttl := 100 * time.Second
	// Negligible refill over the test horizon so token state is readable.
	l := NewRateLimiterTTL(0.0001, 5, ttl, clock.Now)

	l.Allow("idle-1")
	l.Allow("idle-2")
	l.Allow("active")
	if got := l.Len(); got != 3 {
		t.Fatalf("bucket count = %d, want 3", got)
	}

	// The active key keeps calling within the TTL; the idle keys never
	// return. Advancing past the TTL makes an Allow trigger the sweep.
	for i := 0; i < 4; i++ {
		clock.Advance(50 * time.Second)
		l.Allow("active")
	}
	if got := l.Len(); got != 1 {
		t.Fatalf("after sweep: bucket count = %d, want 1 (idle buckets must be evicted)", got)
	}
	l.mu.Lock()
	_, ok := l.buckets["active"]
	l.mu.Unlock()
	if !ok {
		t.Fatal("active bucket was evicted")
	}
}

// TestRateLimiterActiveBucketNeverReset: surviving a sweep must preserve a
// bucket's token deficit — eviction-and-recreate would hand an active
// abuser a fresh burst every TTL.
func TestRateLimiterActiveBucketNeverReset(t *testing.T) {
	clock := newFakeClock()
	ttl := 100 * time.Second
	l := NewRateLimiterTTL(0.0001, 5, ttl, clock.Now)

	// Exhaust the burst.
	for i := 0; i < 5; i++ {
		if !l.Allow("abuser") {
			t.Fatalf("request %d within burst denied", i+1)
		}
	}
	if l.Allow("abuser") {
		t.Fatal("burst not exhausted")
	}

	// Stay active across several sweep windows (idle keys created alongside
	// prove sweeps really ran).
	for i := 0; i < 6; i++ {
		l.Allow(fmt.Sprintf("bystander-%d", i))
		clock.Advance(60 * time.Second)
		if l.Allow("abuser") {
			// 6 minutes at 0.0001/s refills 0.036 tokens — an allow here
			// means the bucket was reset to a full burst.
			t.Fatalf("drained bucket was reset at step %d", i)
		}
	}
	if got := l.Len(); got >= 7 {
		t.Fatalf("bystander buckets not swept: %d remain", got)
	}
}

func TestRateLimiterTTLDisabled(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiterTTL(0.0001, 1, -1, clock.Now)
	l.Allow("a")
	clock.Advance(24 * time.Hour)
	l.Allow("b")
	if got := l.Len(); got != 2 {
		t.Fatalf("negative TTL must disable eviction; bucket count = %d", got)
	}
}

// TestRateLimiterDefaultTTLWired: the standard constructor applies
// DefaultBucketTTL, so production servers get eviction without opting in.
func TestRateLimiterDefaultTTLWired(t *testing.T) {
	clock := newFakeClock()
	l := NewRateLimiter(0.0001, 1, clock.Now)
	l.Allow("idle")
	clock.Advance(2 * DefaultBucketTTL)
	l.Allow("active")
	if got := l.Len(); got != 1 {
		t.Fatalf("default-TTL limiter kept %d buckets, want 1", got)
	}
}
