package livestats

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mineassess/internal/analysis"
	"mineassess/internal/events"
	"mineassess/internal/item"
	"mineassess/internal/stats"
)

// waitSeq blocks until the aggregator has folded the exam's events up to
// seq (the aggregator is an asynchronous subscriber).
func waitSeq(t *testing.T, a *Aggregator, examID string, seq uint64) *ExamLiveStats {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if snap, ok := a.Snapshot(examID); ok && snap.Seq >= seq {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("aggregator never reached seq %d for %s", seq, examID)
	return nil
}

// sittingSpec is one simulated fixed-form sitting: which items the learner
// answers correctly (items absent from the map are answered wrong).
type sittingSpec struct {
	student string
	correct map[string]bool
}

// driveSittings publishes full sitting lifecycles for a 4-item exam onto
// the bus and returns the bus's final sequence number.
func driveSittings(bus *events.Bus, examID string, items []string, specs []sittingSpec) uint64 {
	for i, sp := range specs {
		sid := fmt.Sprintf("sess-%03d", i+1)
		bus.Publish(events.Event{Type: events.SessionStarted, ExamID: examID,
			SessionID: sid, StudentID: sp.student, Problems: items, Total: len(items)})
		for _, pid := range items {
			bus.Publish(events.Event{Type: events.ResponseSubmitted, ExamID: examID,
				SessionID: sid, StudentID: sp.student, ProblemID: pid,
				Correct: sp.correct[pid]})
		}
		bus.Publish(events.Event{Type: events.SessionFinished, ExamID: examID,
			SessionID: sid, StudentID: sp.student})
	}
	return bus.Seq(examID)
}

var fourItems = []string{"q1", "q2", "q3", "q4"}

// testSittings is a small class with real variance: q1 easy, q4 hard, q2
// discriminating.
var testSittings = []sittingSpec{
	{"alice", map[string]bool{"q1": true, "q2": true, "q3": true, "q4": true}},
	{"bob", map[string]bool{"q1": true, "q2": true, "q3": true}},
	{"carol", map[string]bool{"q1": true, "q2": true}},
	{"dave", map[string]bool{"q1": true}},
	{"erin", map[string]bool{}},
	{"frank", map[string]bool{"q1": true, "q2": true, "q3": true}},
}

// offlineResult mirrors testSittings as an analysis.ExamResult so the
// incremental statistics can be checked against the offline stats package.
func offlineResult(t *testing.T) *analysis.ExamResult {
	t.Helper()
	res := &analysis.ExamResult{ExamID: "ex"}
	for i, pid := range fourItems {
		p, err := item.NewMultipleChoice(pid, "q?", []string{"a", "b"}, i%2)
		if err != nil {
			t.Fatal(err)
		}
		res.Problems = append(res.Problems, p)
	}
	for _, sp := range testSittings {
		sr := analysis.StudentResult{StudentID: sp.student}
		for _, pid := range fourItems {
			r := analysis.Response{StudentID: sp.student, ProblemID: pid, Answered: true}
			if sp.correct[pid] {
				r.Credit = 1
			}
			sr.Responses = append(sr.Responses, r)
		}
		res.Students = append(res.Students, sr)
	}
	return res
}

// TestIncrementalMatchesOffline is the core correctness pin: the streaming
// sums must reproduce what internal/stats computes offline from the full
// response matrix — difficulty, point-biserial, KR-20, score mean/SD.
func TestIncrementalMatchesOffline(t *testing.T) {
	bus := events.NewBus(events.Options{})
	defer bus.Close()
	agg := New(bus)
	defer agg.Close()

	last := driveSittings(bus, "ex", fourItems, testSittings)
	snap := waitSeq(t, agg, "ex", last)

	offline, err := stats.Compute(offlineResult(t))
	if err != nil {
		t.Fatal(err)
	}

	if snap.FinishedSessions != len(testSittings) || snap.ActiveSessions != 0 {
		t.Fatalf("sessions: finished %d active %d", snap.FinishedSessions, snap.ActiveSessions)
	}
	if snap.Responses != len(testSittings)*len(fourItems) {
		t.Fatalf("responses = %d", snap.Responses)
	}
	if len(snap.Items) != len(offline.Items) {
		t.Fatalf("item count %d vs %d", len(snap.Items), len(offline.Items))
	}
	const eps = 1e-9
	for i, it := range snap.Items {
		off := offline.Items[i]
		if it.ProblemID != off.ProblemID {
			t.Fatalf("item order: %s vs %s", it.ProblemID, off.ProblemID)
		}
		if math.Abs(it.P-off.P) > eps {
			t.Errorf("%s: live P %.6f vs offline %.6f", it.ProblemID, it.P, off.P)
		}
		switch {
		case off.PointBiserial == 0 && it.PointBiserial != nil && math.Abs(*it.PointBiserial) > eps:
			t.Errorf("%s: live r_pb %.6f vs offline undefined/0", it.ProblemID, *it.PointBiserial)
		case off.PointBiserial != 0 && it.PointBiserial == nil:
			t.Errorf("%s: live r_pb undefined, offline %.6f", it.ProblemID, off.PointBiserial)
		case it.PointBiserial != nil && math.Abs(*it.PointBiserial-off.PointBiserial) > eps:
			t.Errorf("%s: live r_pb %.6f vs offline %.6f", it.ProblemID, *it.PointBiserial, off.PointBiserial)
		}
	}
	if snap.KR20 == nil {
		t.Fatal("live KR-20 undefined")
	}
	if math.Abs(*snap.KR20-offline.KR20) > eps {
		t.Errorf("live KR-20 %.6f vs offline %.6f", *snap.KR20, offline.KR20)
	}
	if math.Abs(snap.MeanScore-offline.Scores.Mean) > eps {
		t.Errorf("mean %.6f vs %.6f", snap.MeanScore, offline.Scores.Mean)
	}
	if math.Abs(snap.ScoreSD-offline.Scores.SD) > eps {
		t.Errorf("sd %.6f vs %.6f", snap.ScoreSD, offline.Scores.SD)
	}
}

func TestHistogramBuckets(t *testing.T) {
	bus := events.NewBus(events.Options{})
	defer bus.Close()
	agg := New(bus)
	defer agg.Close()

	last := driveSittings(bus, "ex", fourItems, testSittings)
	snap := waitSeq(t, agg, "ex", last)

	total := 0
	for _, n := range snap.ScoreHistogram {
		total += n
	}
	if total != len(testSittings) {
		t.Fatalf("histogram holds %d sittings, want %d", total, len(testSittings))
	}
	// alice 4/4 -> top bin; erin 0/4 -> bottom bin.
	if snap.ScoreHistogram[HistogramBins-1] != 1 {
		t.Errorf("top bin = %d, want 1", snap.ScoreHistogram[HistogramBins-1])
	}
	if snap.ScoreHistogram[0] != 1 {
		t.Errorf("bottom bin = %d, want 1", snap.ScoreHistogram[0])
	}
}

// TestMidSittingSnapshot: running difficulty must be visible while sessions
// are still open, before any sitting finishes.
func TestMidSittingSnapshot(t *testing.T) {
	bus := events.NewBus(events.Options{})
	defer bus.Close()
	agg := New(bus)
	defer agg.Close()

	bus.Publish(events.Event{Type: events.SessionStarted, ExamID: "ex",
		SessionID: "s1", Problems: fourItems, Total: 4})
	bus.Publish(events.Event{Type: events.ResponseSubmitted, ExamID: "ex",
		SessionID: "s1", ProblemID: "q1", Correct: true})
	bus.Publish(events.Event{Type: events.ResponseSubmitted, ExamID: "ex",
		SessionID: "s1", ProblemID: "q2", Correct: false})
	snap := waitSeq(t, agg, "ex", bus.Seq("ex"))

	if snap.ActiveSessions != 1 || snap.FinishedSessions != 0 {
		t.Fatalf("active %d finished %d", snap.ActiveSessions, snap.FinishedSessions)
	}
	byID := map[string]ItemStats{}
	for _, it := range snap.Items {
		byID[it.ProblemID] = it
	}
	if got := byID["q1"]; got.Attempts != 1 || got.P != 1 {
		t.Errorf("q1 = %+v", got)
	}
	if got := byID["q2"]; got.Attempts != 1 || got.P != 0 {
		t.Errorf("q2 = %+v", got)
	}
	if snap.KR20 != nil {
		t.Error("KR-20 defined with no finished sittings")
	}
}

// TestAdaptiveEventsFoldIntoDifficultyOnly: adaptive responses update
// attempts/correct but never the form-bound statistics.
func TestAdaptiveEventsFoldIntoDifficultyOnly(t *testing.T) {
	bus := events.NewBus(events.Options{})
	defer bus.Close()
	agg := New(bus)
	defer agg.Close()

	bus.Publish(events.Event{Type: events.AdaptiveStarted, ExamID: "ex", SessionID: "cat-1"})
	bus.Publish(events.Event{Type: events.AdaptiveResponded, ExamID: "ex",
		SessionID: "cat-1", ProblemID: "q1", Correct: true, Theta: 0.4, SE: 0.9})
	bus.Publish(events.Event{Type: events.AdaptiveFinished, ExamID: "ex",
		SessionID: "cat-1", StopReason: "max-items"})
	snap := waitSeq(t, agg, "ex", bus.Seq("ex"))

	if snap.FinishedSessions != 1 || snap.ActiveSessions != 0 || snap.Responses != 1 {
		t.Fatalf("counters: %+v", snap)
	}
	if len(snap.Items) != 1 || snap.Items[0].Attempts != 1 || snap.Items[0].Correct != 1 {
		t.Fatalf("items: %+v", snap.Items)
	}
	hist := 0
	for _, n := range snap.ScoreHistogram {
		hist += n
	}
	if hist != 0 {
		t.Error("adaptive sitting leaked into the fixed-form histogram")
	}
}

func TestGapMarkerCountsAsStaleness(t *testing.T) {
	bus := events.NewBus(events.Options{})
	defer bus.Close()
	agg := New(bus)
	defer agg.Close()
	bus.Publish(events.Event{Type: events.SessionStarted, ExamID: "ex",
		SessionID: "s1", Problems: fourItems, Total: 4})
	waitSeq(t, agg, "ex", 1)

	// Inject a gap as the bus would on overflow.
	agg.fold(events.Event{Type: events.TypeGap, Dropped: 3})
	snap, ok := agg.Snapshot("ex")
	if !ok || snap.Gaps != 1 {
		t.Fatalf("gaps = %+v", snap)
	}
}

func TestNilAggregator(t *testing.T) {
	var a *Aggregator
	if _, ok := a.Snapshot("x"); ok {
		t.Fatal("nil aggregator returned a snapshot")
	}
	a.Close() // must not panic
	if got := New(nil); got != nil {
		t.Fatal("New(nil bus) != nil")
	}
}

// TestFinishWithoutStartNeverGoesNegative: finish events for sessions the
// aggregator never saw start (journal-restored sittings) must not drive
// the active gauge below zero.
func TestFinishWithoutStartNeverGoesNegative(t *testing.T) {
	bus := events.NewBus(events.Options{})
	defer bus.Close()
	agg := New(bus)
	defer agg.Close()

	bus.Publish(events.Event{Type: events.AdaptiveFinished, ExamID: "ex",
		SessionID: "cat-restored", StopReason: "max-items"})
	bus.Publish(events.Event{Type: events.SessionFinished, ExamID: "ex",
		SessionID: "sess-restored"})
	snap := waitSeq(t, agg, "ex", bus.Seq("ex"))
	if snap.ActiveSessions != 0 {
		t.Fatalf("activeSessions = %d, want 0", snap.ActiveSessions)
	}
	if snap.FinishedSessions != 2 {
		t.Fatalf("finishedSessions = %d, want 2", snap.FinishedSessions)
	}
}

// TestPurgeIdleDropsOnlyQuiescentExams: the retention pass releases exam
// aggregates with no active sessions and no open sittings, leaves busy exams
// alone, and lets a purged exam rebuild from empty if events return.
func TestPurgeIdleDropsOnlyQuiescentExams(t *testing.T) {
	bus := events.NewBus(events.Options{})
	defer bus.Close()
	a := New(bus)
	defer a.Close()

	// "done" runs to completion; "busy" keeps one sitting open.
	seqDone := driveSittings(bus, "done", fourItems, testSittings)
	bus.Publish(events.Event{Type: events.SessionStarted, ExamID: "busy",
		SessionID: "s-open", Problems: fourItems, Total: len(fourItems)})
	seqBusy := bus.Seq("busy")
	waitSeq(t, a, "done", seqDone)
	waitSeq(t, a, "busy", seqBusy)

	if got := a.PurgeIdle(); got != 1 {
		t.Fatalf("PurgeIdle = %d, want 1 (only the finished exam)", got)
	}
	if _, ok := a.Snapshot("done"); ok {
		t.Fatal("idle exam aggregate survived the purge")
	}
	snap, ok := a.Snapshot("busy")
	if !ok || snap.ActiveSessions != 1 {
		t.Fatalf("busy exam lost by purge: ok=%v snap=%+v", ok, snap)
	}

	// Purged exams start over cleanly.
	seqDone = driveSittings(bus, "done", fourItems, testSittings[:1])
	snap = waitSeq(t, a, "done", seqDone)
	if snap.FinishedSessions != 1 {
		t.Fatalf("restarted aggregate finished = %d, want 1", snap.FinishedSessions)
	}

	var nilAgg *Aggregator
	if got := nilAgg.PurgeIdle(); got != 0 {
		t.Fatalf("nil aggregator PurgeIdle = %d, want 0", got)
	}
}
