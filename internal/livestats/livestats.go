// Package livestats is the streaming counterpart of internal/stats: an
// aggregator subscribed to the live event bus that maintains incremental
// per-exam item statistics while sittings are still in progress —
// instructors watch difficulty and discrimination converge during the exam
// instead of waiting for an offline pass over the response log.
//
// Everything is computed from running sums, never by re-reading responses:
//
//   - Running difficulty P = correct/attempts per item, updated on every
//     response.submitted (and adaptive.responded) event.
//   - Point-biserial discrimination per item over finished fixed-form
//     sittings, from the incremental sums (n, Σx, Σy, Σy², Σxy) of the
//     dichotomized item score x against the rest-of-test score y.
//   - A 10-bin percent-correct score histogram over finished sittings.
//   - KR-20, recomputed from the per-item right-counts and the score sums
//     each time a sitting finishes (matching internal/stats: population
//     variance, items dichotomized at full credit).
//
// Adaptive sittings contribute to attempts/correct (running difficulty) and
// the session counters; they are excluded from point-biserial, histogram
// and KR-20, which assume a common form.
//
// The aggregator is one more bus subscriber — if it ever falls behind, the
// bus drops its oldest events and the Gaps counter in the snapshot tells
// consumers the statistics may undercount.
package livestats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mineassess/internal/events"
	"mineassess/internal/obs"
)

// HistogramBins is the percent-correct score histogram resolution.
const HistogramBins = 10

// ItemStats is one item's live statistics.
type ItemStats struct {
	ProblemID string `json:"problemId"`
	// Attempts / Correct count every submitted response (fixed + adaptive);
	// P is their running ratio.
	Attempts int     `json:"attempts"`
	Correct  int     `json:"correct"`
	P        float64 `json:"p"`
	// PointBiserial correlates the item with the rest score over finished
	// fixed-form sittings; nil while undefined (no variance or < 2
	// sittings).
	PointBiserial *float64 `json:"pointBiserial,omitempty"`
}

// ExamLiveStats is one exam's live snapshot.
type ExamLiveStats struct {
	ExamID string `json:"examId"`
	// Seq is the exam-stream sequence number of the last event folded in —
	// consumers compare it against event Seq to know how fresh the
	// statistics are.
	Seq uint64 `json:"seq"`
	// Gaps counts bus gap markers observed: statistics may undercount.
	Gaps             int         `json:"gaps,omitempty"`
	ActiveSessions   int         `json:"activeSessions"`
	FinishedSessions int         `json:"finishedSessions"`
	Responses        int         `json:"responses"`
	Items            []ItemStats `json:"items"`
	// ScoreHistogram buckets finished sittings by percent correct
	// ([0-10) ... [90-100]).
	ScoreHistogram []int `json:"scoreHistogram"`
	// MeanScore/ScoreSD summarize number-correct scores over finished
	// fixed-form sittings.
	MeanScore float64 `json:"meanScore"`
	ScoreSD   float64 `json:"scoreSD"`
	// KR20 is nil while undefined (< 2 items, < 2 sittings, or zero score
	// variance).
	KR20 *float64 `json:"kr20,omitempty"`
}

// itemAgg carries one item's running sums. x is the dichotomized item score
// of a finished sitting, y its rest score (total minus x); Σx² == Σx since
// x ∈ {0,1}.
type itemAgg struct {
	attempts, correct int
	n                 int
	sumX, sumY        float64
	sumYY, sumXY      float64
}

// sitting tracks an in-flight fixed-form session's correct set until it
// finishes and folds into the aggregate sums.
type sitting struct {
	correct map[string]bool
}

type examAgg struct {
	seq      uint64
	gaps     int
	active   int
	finished int
	resps    int

	order []string // sorted item universe
	items map[string]*itemAgg
	open  map[string]*sitting

	n           int // finished fixed-form sittings folded
	sumS, sumSS float64
	hist        [HistogramBins]int
}

// Aggregator consumes bus events and serves live snapshots. Build with
// New; Close detaches it from the bus.
type Aggregator struct {
	sub  *events.Subscription
	done chan struct{}

	mu    sync.RWMutex
	exams map[string]*examAgg

	// Metrics cells, nil unless built with NewWith (handles are nil-safe;
	// the fold timing also guards on nil to spare the clock reads).
	mFolded  *obs.Counter   // events folded
	mFoldDur *obs.Histogram // per-event fold latency
	lastSeq  atomic.Uint64  // GlobalSeq of the last folded event (lag probe)
}

// AggregatorBuffer is the aggregator's bus-queue depth: generous, because a
// gap here silently skews statistics rather than just a dashboard.
const AggregatorBuffer = 8192

// New subscribes an aggregator to the bus and starts folding events. A nil
// bus yields a nil aggregator (Snapshot misses, Close no-ops), so wiring
// can be unconditional.
func New(bus *events.Bus) *Aggregator {
	return NewWith(bus, nil)
}

// NewWith is New plus metrics: with a non-nil registry the aggregator
// exports its fold count, per-event fold latency, and its lag behind the
// bus head (how many published events it has not yet folded).
func NewWith(bus *events.Bus, reg *obs.Registry) *Aggregator {
	sub := bus.Subscribe(events.SubscribeOptions{Buffer: AggregatorBuffer})
	if sub == nil {
		return nil
	}
	a := &Aggregator{
		sub:   sub,
		done:  make(chan struct{}),
		exams: make(map[string]*examAgg),
	}
	if reg != nil {
		a.mFolded = reg.Counter("livestats_events_total", "Events folded into live statistics.")
		a.mFoldDur = reg.Histogram("livestats_fold_seconds", "Per-event fold latency.", obs.Latency)
		reg.GaugeFunc("livestats_lag_events",
			"Published events not yet folded (bus head minus last folded GlobalSeq).",
			func() float64 {
				head, last := bus.Head(), a.lastSeq.Load()
				if head <= last {
					return 0
				}
				return float64(head - last)
			})
		reg.GaugeFunc("livestats_exams", "Exam aggregates held in memory.",
			func() float64 {
				a.mu.RLock()
				defer a.mu.RUnlock()
				return float64(len(a.exams))
			})
	}
	go a.run()
	return a
}

func (a *Aggregator) run() {
	defer close(a.done)
	for e := range a.sub.Events() {
		var start time.Time
		if a.mFoldDur != nil {
			start = time.Now()
		}
		a.fold(e)
		a.mFoldDur.Observe(time.Since(start))
		a.mFolded.Inc()
		if e.GlobalSeq != 0 {
			a.lastSeq.Store(e.GlobalSeq)
		}
	}
}

// Close detaches from the bus and waits for the fold loop to drain.
func (a *Aggregator) Close() {
	if a == nil {
		return
	}
	a.sub.Close()
	<-a.done
}

func (a *Aggregator) exam(id string) *examAgg {
	ex := a.exams[id]
	if ex == nil {
		ex = &examAgg{
			items: make(map[string]*itemAgg),
			open:  make(map[string]*sitting),
		}
		a.exams[id] = ex
	}
	return ex
}

func (ex *examAgg) item(id string) *itemAgg {
	it := ex.items[id]
	if it == nil {
		it = &itemAgg{}
		ex.items[id] = it
		ex.order = append(ex.order, id)
		sort.Strings(ex.order)
	}
	return it
}

func (a *Aggregator) fold(e events.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e.Type == events.TypeGap {
		// A firehose gap may span exams; attribute it to the marker's exam
		// (empty on the all-exam subscription → count on every known exam,
		// since any of them may have lost events).
		if e.ExamID != "" {
			a.exam(e.ExamID).gaps++
		} else {
			for _, ex := range a.exams {
				ex.gaps++
			}
		}
		return
	}
	ex := a.exam(e.ExamID)
	if e.Seq > ex.seq {
		ex.seq = e.Seq
	}
	switch e.Type {
	case events.SessionStarted:
		ex.active++
		for _, pid := range e.Problems {
			ex.item(pid)
		}
		ex.open[e.SessionID] = &sitting{correct: make(map[string]bool)}
	case events.ResponseSubmitted:
		ex.resps++
		it := ex.item(e.ProblemID)
		it.attempts++
		if e.Correct {
			it.correct++
		}
		if st := ex.open[e.SessionID]; st != nil && e.Correct {
			st.correct[e.ProblemID] = true
		}
	case events.SessionFinished, events.SessionExpired:
		// A finish for a session the aggregator never saw start (e.g. a
		// journal-restored sitting predating this process) must not drive
		// the active gauge negative.
		if ex.active > 0 {
			ex.active--
		}
		ex.finished++
		ex.foldSitting(e.SessionID)
	case events.AdaptiveStarted:
		ex.active++
	case events.AdaptiveResponded:
		ex.resps++
		it := ex.item(e.ProblemID)
		it.attempts++
		if e.Correct {
			it.correct++
		}
	case events.AdaptiveFinished:
		if ex.active > 0 {
			ex.active--
		}
		ex.finished++
	}
}

// foldSitting moves one finished fixed-form sitting from the open map into
// the aggregate sums: per-item (x, y) products for point-biserial, score
// sums for variance/KR-20, and the histogram bucket.
func (ex *examAgg) foldSitting(sessionID string) {
	st := ex.open[sessionID]
	if st == nil {
		return // adaptive or pre-subscription session
	}
	delete(ex.open, sessionID)
	s := float64(len(st.correct))
	for _, pid := range ex.order {
		it := ex.items[pid]
		x := 0.0
		if st.correct[pid] {
			x = 1
		}
		y := s - x
		it.n++
		it.sumX += x
		it.sumY += y
		it.sumYY += y * y
		it.sumXY += x * y
	}
	ex.n++
	ex.sumS += s
	ex.sumSS += s * s
	if k := len(ex.order); k > 0 {
		bin := int(s) * HistogramBins / k
		if bin >= HistogramBins {
			bin = HistogramBins - 1
		}
		ex.hist[bin]++
	}
}

// Seq reports the exam's last folded sequence number without building a
// snapshot — the cheap staleness probe for pollers (false when no events
// for the exam have been seen).
func (a *Aggregator) Seq(examID string) (uint64, bool) {
	if a == nil {
		return 0, false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	ex := a.exams[examID]
	if ex == nil {
		return 0, false
	}
	return ex.seq, true
}

// Snapshot returns the exam's current statistics, or false when no events
// for it have been seen. Safe concurrently with folding.
func (a *Aggregator) Snapshot(examID string) (*ExamLiveStats, bool) {
	if a == nil {
		return nil, false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	ex := a.exams[examID]
	if ex == nil {
		return nil, false
	}
	out := &ExamLiveStats{
		ExamID:           examID,
		Seq:              ex.seq,
		Gaps:             ex.gaps,
		ActiveSessions:   ex.active,
		FinishedSessions: ex.finished,
		Responses:        ex.resps,
		ScoreHistogram:   append([]int(nil), ex.hist[:]...),
	}
	sumPQ := 0.0
	for _, pid := range ex.order {
		it := ex.items[pid]
		st := ItemStats{ProblemID: pid, Attempts: it.attempts, Correct: it.correct}
		if it.attempts > 0 {
			st.P = float64(it.correct) / float64(it.attempts)
		}
		if r, ok := it.pointBiserial(); ok {
			st.PointBiserial = &r
		}
		if ex.n > 0 {
			p := it.sumX / float64(ex.n)
			sumPQ += p * (1 - p)
		}
		out.Items = append(out.Items, st)
	}
	if ex.n > 0 {
		mean := ex.sumS / float64(ex.n)
		variance := ex.sumSS/float64(ex.n) - mean*mean
		if variance < 0 {
			variance = 0 // float cancellation on identical scores
		}
		out.MeanScore = mean
		out.ScoreSD = math.Sqrt(variance)
		k := len(ex.order)
		if k >= 2 && ex.n >= 2 && variance > 0 {
			kr := float64(k) / float64(k-1) * (1 - sumPQ/variance)
			out.KR20 = &kr
		}
	}
	return out, true
}

// PurgeIdle drops every exam aggregate with no active sessions and no open
// (unfinished) sittings — the livestats counterpart of the adaptive engine's
// PurgeFinished retention pass, keeping a long-lived server's statistics
// memory from scaling with lifetime exam count. Purged exams simply start
// from empty aggregates if events for them arrive again. Returns the number
// of exam aggregates dropped; a nil aggregator purges nothing.
func (a *Aggregator) PurgeIdle() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	purged := 0
	for id, ex := range a.exams {
		if ex.active == 0 && len(ex.open) == 0 {
			delete(a.exams, id)
			purged++
		}
	}
	return purged
}

// pointBiserial computes Pearson r of x against the rest score from the
// running sums; ok is false while either side has no variance.
func (it *itemAgg) pointBiserial() (float64, bool) {
	n := float64(it.n)
	if it.n < 2 {
		return 0, false
	}
	// Σx² == Σx for dichotomous x.
	varX := n*it.sumX - it.sumX*it.sumX
	varY := n*it.sumYY - it.sumY*it.sumY
	if varX <= 0 || varY <= 0 {
		return 0, false
	}
	return (n*it.sumXY - it.sumX*it.sumY) / math.Sqrt(varX*varY), true
}
