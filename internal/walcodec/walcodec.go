// Package walcodec is the shared binary record framing used by the bank
// journal and the durable event log. Both logs historically stored one JSON
// object per line; the binary codec replaces the per-record JSON marshal on
// the hot write path with a compact positional encoding while keeping every
// existing JSON-era log replayable.
//
// Each binary record is one self-describing frame:
//
//	offset  size  field
//	0       1     magic (0xB1 — never '{', so JSON lines are unambiguous)
//	1       1     format version (currently 1)
//	2       4     payload length, little endian
//	6       4     IEEE CRC-32 of the payload, little endian
//	10      n     payload (caller-defined positional encoding)
//
// Because a frame can never start with '{' and a JSON line always does,
// readers detect the format per record: a log written under one codec and
// reopened under the other replays seamlessly, and a mid-life codec switch
// simply appends frames of the new format after the old ones. Torn tails
// keep the journal's semantics — an incomplete record at EOF (partial JSON
// line or short frame) is reported as ErrTorn so the opener can truncate it;
// a CRC mismatch or unknown magic mid-file is corruption and fails the
// replay.
package walcodec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const (
	// Magic is the first byte of every binary frame.
	Magic = 0xB1
	// Version is the current frame format version.
	Version = 1
	// HeaderLen is the fixed frame header size preceding the payload.
	HeaderLen = 10
	// MaxPayload bounds a frame's declared payload length; anything larger
	// is treated as corruption rather than an allocation request.
	MaxPayload = 64 << 20
)

// ErrTorn marks an incomplete record at the end of a log: the write was cut
// mid-record (power failure), everything before it is intact, and the opener
// should truncate the tail before appending.
var ErrTorn = errors.New("walcodec: torn record at end of log")

// BeginFrame appends a placeholder frame header to dst and returns the
// extended slice; the caller appends the payload and then calls EndFrame
// with the offset BeginFrame started at.
//
//assess:hotpath
func BeginFrame(dst []byte) []byte {
	//assess:allow hotpathalloc: append(dst, make(...)...) is the zero-extend idiom the compiler lowers without an intermediate allocation
	return append(dst, make([]byte, HeaderLen)...)
}

// EndFrame fills in the header of the frame that starts at offset start in
// buf (payload = buf[start+HeaderLen:]) and returns buf.
//
//assess:hotpath
func EndFrame(buf []byte, start int) []byte {
	payload := buf[start+HeaderLen:]
	h := buf[start : start+HeaderLen]
	h[0] = Magic
	h[1] = Version
	binary.LittleEndian.PutUint32(h[2:6], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[6:10], crc32.ChecksumIEEE(payload))
	return buf
}

// NextRecord reads the next record from r, auto-detecting the per-record
// format. It returns the record bytes (the JSON line including its newline,
// or the binary payload without its header), whether the record was a JSON
// line, and the total bytes the record occupies on disk.
//
// err is io.EOF at a clean end of log, ErrTorn when the final record is
// incomplete, and a descriptive error on corruption (bad magic, version,
// length or CRC).
func NextRecord(r *bufio.Reader) (rec []byte, isJSON bool, size int64, err error) {
	first, err := r.Peek(1)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, false, 0, io.EOF
		}
		return nil, false, 0, err
	}
	if first[0] == '{' {
		line, err := r.ReadBytes('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, true, 0, ErrTorn // partial line, no newline
			}
			return nil, true, 0, err
		}
		return line, true, int64(len(line)), nil
	}
	var header [HeaderLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, false, 0, ErrTorn
		}
		return nil, false, 0, err
	}
	if header[0] != Magic {
		return nil, false, 0, fmt.Errorf("walcodec: bad record magic 0x%02x", header[0])
	}
	if header[1] != Version {
		return nil, false, 0, fmt.Errorf("walcodec: unsupported frame version %d", header[1])
	}
	n := binary.LittleEndian.Uint32(header[2:6])
	if n > MaxPayload {
		return nil, false, 0, fmt.Errorf("walcodec: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, false, 0, ErrTorn
		}
		return nil, false, 0, err
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(header[6:10]); got != want {
		return nil, false, 0, fmt.Errorf("walcodec: frame CRC mismatch (got %08x want %08x)", got, want)
	}
	return payload, false, HeaderLen + int64(n), nil
}

// Append helpers for positional payload encodings. Integers use varints,
// floats are little-endian IEEE-754 bits, strings and slices are
// length-prefixed.

// AppendString appends a length-prefixed string.
//
//assess:hotpath
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendStrings appends a length-prefixed string slice.
//
//assess:hotpath
func AppendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// AppendFloat64 appends the IEEE-754 bits of f, little endian.
//
//assess:hotpath
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendBool appends one byte: 1 for true, 0 for false.
//
//assess:hotpath
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Reader decodes a positional payload with a sticky error: decode the whole
// record, then check Err once. After an error every accessor returns the
// zero value.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a payload for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread payload bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = errors.New("walcodec: truncated payload")
	}
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Int decodes a signed varint as an int.
func (r *Reader) Int() int { return int(r.Varint()) }

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(r.Len()) < n {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Strings decodes a length-prefixed string slice; an empty slice decodes as
// nil, matching encoding/json's omitempty round-trip.
func (r *Reader) Strings() []string {
	n := r.Uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if uint64(r.Len()) < n { // each element needs ≥1 byte
		r.fail()
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Float64 decodes a little-endian IEEE-754 float.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Bool decodes one byte as a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Len() < 1 {
		r.fail()
		return false
	}
	v := r.b[r.off] != 0
	r.off++
	return v
}
