package walcodec_test

// Fuzz coverage for the frame reader: whatever bytes land in a WAL file —
// torn tails, flipped bits, mixed JSON/binary, absurd length fields — the
// reader must return a clean classification (record, io.EOF, ErrTorn, or
// a descriptive corruption error) without panicking or over-reading.

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"mineassess/internal/walcodec"
)

// frame builds one well-formed binary frame around payload.
func frame(payload []byte) []byte {
	b := walcodec.BeginFrame(nil)
	b = append(b, payload...)
	return walcodec.EndFrame(b, 0)
}

func FuzzNextRecord(f *testing.F) {
	// Seeds: the shapes replay actually encounters.
	f.Add([]byte(`{"op":"add_problem","id":"p1"}` + "\n"))
	f.Add(frame([]byte("payload")))
	f.Add(frame(nil))
	f.Add(append(frame([]byte("first")), []byte("{\"op\":\"x\"}\n")...))
	f.Add(frame([]byte("torn"))[:5])                  // cut mid-header
	f.Add(frame(bytes.Repeat([]byte("a"), 100))[:20]) // cut mid-payload
	corrupt := frame([]byte("payload"))
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	badMagic := frame([]byte("p"))
	badMagic[0] = 0x7F
	f.Add(badMagic)
	huge := frame(nil)
	huge[2], huge[3], huge[4], huge[5] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		var consumed int64
		for {
			rec, isJSON, size, err := walcodec.NextRecord(r)
			if err != nil {
				// The error vocabulary is closed: clean end, torn tail, or a
				// descriptive corruption error. Nothing else, never a panic.
				if errors.Is(err, io.EOF) && err != io.EOF {
					t.Fatalf("wrapped io.EOF leaked: %v", err)
				}
				return
			}
			if size <= 0 {
				t.Fatalf("accepted record with non-positive size %d", size)
			}
			consumed += size
			if consumed > int64(len(data)) {
				t.Fatalf("over-read: consumed %d of %d input bytes", consumed, len(data))
			}
			if isJSON {
				if len(rec) == 0 || rec[0] != '{' {
					t.Fatalf("JSON record does not start with '{': %q", rec)
				}
			} else {
				if len(rec) > walcodec.MaxPayload {
					t.Fatalf("payload of %d bytes exceeds MaxPayload", len(rec))
				}
				if int64(len(rec))+walcodec.HeaderLen != size {
					t.Fatalf("size %d inconsistent with payload length %d", size, len(rec))
				}
			}
		}
	})
}

// FuzzFrameRoundTrip pins the writer/reader pair: every payload the
// encoder frames must come back byte-identical.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("x"))
	f.Add([]byte(`{"looks":"like json"}`))
	f.Add(bytes.Repeat([]byte{0xB1}, 64))

	f.Fuzz(func(t *testing.T, payload []byte) {
		buf := frame(payload)
		rec, isJSON, size, err := walcodec.NextRecord(bufio.NewReader(bytes.NewReader(buf)))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if isJSON {
			t.Fatal("framed payload misclassified as JSON")
		}
		if size != int64(len(buf)) {
			t.Fatalf("size %d, framed %d bytes", size, len(buf))
		}
		if !bytes.Equal(rec, payload) {
			t.Fatalf("payload mangled: wrote %q, read %q", payload, rec)
		}
	})
}
