package authoring

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/item"
)

// ExamDraft is an exam under construction. Build it with NewExamDraft, add
// problems and groups, then Finalize into a bank.ExamRecord.
type ExamDraft struct {
	ID       string
	Title    string
	Display  item.DisplayOrder
	TestTime time.Duration

	problemIDs []string
	seen       map[string]struct{}
	groups     []bank.ExamGroup
}

// NewExamDraft starts a draft with fixed ordering by default.
func NewExamDraft(id, title string) *ExamDraft {
	return &ExamDraft{
		ID:      id,
		Title:   title,
		Display: item.FixedOrder,
		seen:    make(map[string]struct{}),
	}
}

// Errors callers may match.
var (
	ErrDuplicateProblem = errors.New("authoring: problem already in exam")
	ErrEmptyExam        = errors.New("authoring: exam has no problems")
	ErrUnknownGroupItem = errors.New("authoring: group references problem not in exam")
)

// Add appends problems to the exam in order.
func (d *ExamDraft) Add(problemIDs ...string) error {
	for _, id := range problemIDs {
		if _, dup := d.seen[id]; dup {
			return fmt.Errorf("%w: %s", ErrDuplicateProblem, id)
		}
		d.seen[id] = struct{}{}
		d.problemIDs = append(d.problemIDs, id)
	}
	return nil
}

// Len returns the number of problems in the draft.
func (d *ExamDraft) Len() int {
	return len(d.problemIDs)
}

// ProblemIDs returns the draft's problems in authored order, as a copy.
func (d *ExamDraft) ProblemIDs() []string {
	return append([]string(nil), d.problemIDs...)
}

// AddGroup defines a §5.4 presentation group over problems already in the
// exam. Groups let an instructor compose "all possible presentation styles"
// from parts.
func (d *ExamDraft) AddGroup(name string, problemIDs ...string) error {
	if strings.TrimSpace(name) == "" {
		return errors.New("authoring: group name must not be empty")
	}
	for _, id := range problemIDs {
		if _, ok := d.seen[id]; !ok {
			return fmt.Errorf("%w: %s in group %s", ErrUnknownGroupItem, id, name)
		}
	}
	d.groups = append(d.groups, bank.ExamGroup{
		Name:       name,
		ProblemIDs: append([]string(nil), problemIDs...),
	})
	return nil
}

// Finalize validates the draft against the store (every problem must exist)
// and returns the persistable record.
func (d *ExamDraft) Finalize(store bank.Storage) (*bank.ExamRecord, error) {
	if strings.TrimSpace(d.ID) == "" {
		return nil, errors.New("authoring: exam ID must not be empty")
	}
	if len(d.problemIDs) == 0 {
		return nil, ErrEmptyExam
	}
	if _, err := store.Problems(d.problemIDs); err != nil {
		return nil, fmt.Errorf("authoring: finalize %s: %w", d.ID, err)
	}
	rec := &bank.ExamRecord{
		ID:              d.ID,
		Title:           d.Title,
		ProblemIDs:      append([]string(nil), d.problemIDs...),
		Display:         d.Display,
		TestTimeSeconds: int(d.TestTime / time.Second),
		Groups:          append([]bank.ExamGroup(nil), d.groups...),
	}
	return rec, nil
}

// PresentationOrder computes the order in which a learner sees the exam's
// problems. FixedOrder returns the authored order; RandomOrder shuffles
// deterministically from the seed (one seed per sitting), keeping each
// presentation group contiguous in its authored internal order.
func PresentationOrder(rec *bank.ExamRecord, seed int64) ([]string, error) {
	switch rec.Display {
	case item.FixedOrder:
		return append([]string(nil), rec.ProblemIDs...), nil
	case item.RandomOrder:
		return shuffledOrder(rec, seed), nil
	default:
		return nil, fmt.Errorf("authoring: exam %s has invalid display order %d",
			rec.ID, int(rec.Display))
	}
}

// shuffledOrder shuffles blocks: each group is a block; ungrouped problems
// are singleton blocks. Blocks are shuffled, not their contents, so an
// instructor's curated sequences survive randomization.
func shuffledOrder(rec *bank.ExamRecord, seed int64) []string {
	grouped := make(map[string]int) // problem ID -> group index
	for gi, g := range rec.Groups {
		for _, id := range g.ProblemIDs {
			grouped[id] = gi
		}
	}
	var blocks [][]string
	emitted := make(map[int]bool)
	for _, id := range rec.ProblemIDs {
		if gi, ok := grouped[id]; ok {
			if !emitted[gi] {
				emitted[gi] = true
				blocks = append(blocks, append([]string(nil), rec.Groups[gi].ProblemIDs...))
			}
			continue
		}
		blocks = append(blocks, []string{id})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(blocks), func(i, j int) {
		blocks[i], blocks[j] = blocks[j], blocks[i]
	})
	out := make([]string, 0, len(rec.ProblemIDs))
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// CloneProblemAs copies an existing problem under a new ID — the paper's
// "copy the problem structure for reuse" (§5.3) — and stores it.
func CloneProblemAs(store bank.Storage, srcID, newID string) (*item.Problem, error) {
	src, err := store.Problem(srcID)
	if err != nil {
		return nil, err
	}
	cp := src.Clone()
	cp.ID = newID
	if err := store.AddProblem(cp); err != nil {
		return nil, err
	}
	return cp, nil
}
