package authoring

import (
	"fmt"
	"math/rand"

	"mineassess/internal/item"
)

// Option shuffling: when an exam randomizes presentation, the options of a
// multiple-choice problem can be permuted per sitting so neighbouring
// learners see different orders. Keys are relabelled A, B, C, ... in the
// new order and the correct answer follows its option.

// ShuffleOptions returns a copy of the problem with options permuted by the
// seed and relabelled in presentation order, plus the mapping from new key
// to original key (for tracing responses back to the authored option, e.g.
// for distraction analysis across sittings). Problems without options are
// returned as unmodified clones with a nil mapping.
func ShuffleOptions(p *item.Problem, seed int64) (*item.Problem, map[string]string, error) {
	cp := p.Clone()
	if len(cp.Options) == 0 {
		return cp, nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(cp.Options))
	newOpts := make([]item.Option, len(cp.Options))
	mapping := make(map[string]string, len(cp.Options))
	var newAnswer string
	for newIdx, oldIdx := range perm {
		old := cp.Options[oldIdx]
		newKey := string(rune('A' + newIdx))
		newOpts[newIdx] = item.Option{Key: newKey, Text: old.Text}
		mapping[newKey] = old.Key
		if old.Key == cp.Answer {
			newAnswer = newKey
		}
	}
	if newAnswer == "" {
		return nil, nil, fmt.Errorf("authoring: answer %q not among options of %s",
			cp.Answer, cp.ID)
	}
	cp.Options = newOpts
	cp.Answer = newAnswer
	if err := cp.Validate(); err != nil {
		return nil, nil, fmt.Errorf("authoring: shuffled problem invalid: %w", err)
	}
	return cp, mapping, nil
}

// UnshuffleResponse maps a response key given against a shuffled problem
// back to the authored option key. Unknown keys pass through unchanged
// (free-text responses are not keys).
func UnshuffleResponse(mapping map[string]string, response string) string {
	if mapping == nil {
		return response
	}
	if orig, ok := mapping[response]; ok {
		return orig
	}
	return response
}
