package authoring

import (
	"reflect"
	"testing"
	"testing/quick"

	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

func shuffleFixture(t *testing.T) *item.Problem {
	t.Helper()
	p, err := item.NewMultipleChoice("q1", "?",
		[]string{"alpha", "beta", "gamma", "delta"}, 2) // correct C = gamma
	if err != nil {
		t.Fatal(err)
	}
	p.Level = cognition.Knowledge
	return p
}

func TestShuffleOptionsPreservesAnswer(t *testing.T) {
	p := shuffleFixture(t)
	for seed := int64(0); seed < 25; seed++ {
		shuffled, mapping, err := ShuffleOptions(p, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The correct option's text must still be "gamma".
		var correctText string
		for _, o := range shuffled.Options {
			if o.Key == shuffled.Answer {
				correctText = o.Text
			}
		}
		if correctText != "gamma" {
			t.Fatalf("seed %d: correct text = %q", seed, correctText)
		}
		// Grading the shuffled answer earns full credit.
		if credit, _ := shuffled.Grade(shuffled.Answer); credit != 1 {
			t.Fatalf("seed %d: shuffled grade = %v", seed, credit)
		}
		// The mapping leads back to the authored key C.
		if got := UnshuffleResponse(mapping, shuffled.Answer); got != "C" {
			t.Fatalf("seed %d: unshuffled answer = %q, want C", seed, got)
		}
	}
}

func TestShuffleOptionsDeterministicPerSeed(t *testing.T) {
	p := shuffleFixture(t)
	a, ma, err := ShuffleOptions(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, mb, err := ShuffleOptions(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Options, b.Options) || !reflect.DeepEqual(ma, mb) {
		t.Error("same seed must shuffle identically")
	}
}

func TestShuffleOptionsDoesNotMutateOriginal(t *testing.T) {
	p := shuffleFixture(t)
	origOptions := append([]item.Option(nil), p.Options...)
	if _, _, err := ShuffleOptions(p, 3); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Options, origOptions) || p.Answer != "C" {
		t.Error("original problem mutated")
	}
}

func TestShuffleOptionsNoOptions(t *testing.T) {
	essay := &item.Problem{ID: "e1", Style: item.Essay, Question: "?",
		Level: cognition.Evaluation}
	cp, mapping, err := ShuffleOptions(essay, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mapping != nil || cp.ID != "e1" {
		t.Errorf("essay shuffle = %+v, %v", cp, mapping)
	}
}

func TestUnshuffleResponsePassthrough(t *testing.T) {
	if got := UnshuffleResponse(nil, "whatever"); got != "whatever" {
		t.Errorf("nil mapping = %q", got)
	}
	if got := UnshuffleResponse(map[string]string{"A": "C"}, "Z"); got != "Z" {
		t.Errorf("unknown key = %q", got)
	}
}

// Property: shuffling is a permutation — same option texts, same count,
// and the answer always maps back to the authored correct key.
func TestShufflePermutationProperty(t *testing.T) {
	p := shuffleFixture(t)
	f := func(seed int64) bool {
		shuffled, mapping, err := ShuffleOptions(p, seed)
		if err != nil {
			return false
		}
		if len(shuffled.Options) != len(p.Options) {
			return false
		}
		texts := make(map[string]int)
		for _, o := range p.Options {
			texts[o.Text]++
		}
		for _, o := range shuffled.Options {
			texts[o.Text]--
		}
		for _, n := range texts {
			if n != 0 {
				return false
			}
		}
		return UnshuffleResponse(mapping, shuffled.Answer) == "C"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
