// Package authoring implements exam authoring on top of the problem bank:
// blueprint-driven assembly against a two-way specification (concept ×
// cognition level) target, the §5.4 group service for presentation styles,
// and fixed/random question ordering (§3.2 VI C).
package authoring

import (
	"errors"
	"fmt"
	"sort"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
)

// Blueprint is an authoring target: how many questions of each cognition
// level every concept should contribute. It is the prescriptive twin of the
// descriptive two-way specification table of §4.2.
type Blueprint struct {
	// Required maps concept ID → level → required question count.
	Required map[string]map[cognition.Level]int
}

// NewBlueprint returns an empty blueprint.
func NewBlueprint() *Blueprint {
	return &Blueprint{Required: make(map[string]map[cognition.Level]int)}
}

// Require sets the required count for one (concept, level) cell.
func (b *Blueprint) Require(conceptID string, level cognition.Level, n int) error {
	if !level.Valid() {
		return fmt.Errorf("authoring: invalid level %d", int(level))
	}
	if n < 0 {
		return fmt.Errorf("authoring: negative requirement %d", n)
	}
	row, ok := b.Required[conceptID]
	if !ok {
		row = make(map[cognition.Level]int)
		b.Required[conceptID] = row
	}
	row[level] = n
	return nil
}

// Total returns the total number of required questions.
func (b *Blueprint) Total() int {
	total := 0
	for _, row := range b.Required {
		for _, n := range row {
			total += n
		}
	}
	return total
}

// ConceptIDs returns the blueprint's concept IDs, sorted.
func (b *Blueprint) ConceptIDs() []string {
	out := make([]string, 0, len(b.Required))
	for id := range b.Required {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Shortfall is one unsatisfiable blueprint cell.
type Shortfall struct {
	ConceptID string
	Level     cognition.Level
	Required  int
	Available int
}

func (s Shortfall) String() string {
	return fmt.Sprintf("%s/%s: need %d, bank has %d",
		s.ConceptID, s.Level, s.Required, s.Available)
}

// ErrShortfall wraps assembly failures caused by an underfilled bank.
var ErrShortfall = errors.New("authoring: bank cannot satisfy blueprint")

// ShortfallError carries every unsatisfiable cell.
type ShortfallError struct {
	Shortfalls []Shortfall
}

// Error implements error.
func (e *ShortfallError) Error() string {
	return fmt.Sprintf("%v (%d cells)", ErrShortfall, len(e.Shortfalls))
}

// Unwrap lets callers match with errors.Is(err, ErrShortfall).
func (e *ShortfallError) Unwrap() error { return ErrShortfall }

// Assemble selects problem IDs from the store satisfying the blueprint.
// Within each (concept, level) cell, problems are taken in ID order (the
// deterministic choice an instructor can audit); seedless randomization is
// deliberately not provided here — shuffle at presentation time instead.
// When any cell cannot be filled the returned error is a *ShortfallError
// listing every deficient cell.
func Assemble(store bank.Storage, bp *Blueprint) ([]string, error) {
	var picked []string
	var shortfalls []Shortfall
	for _, conceptID := range bp.ConceptIDs() {
		row := bp.Required[conceptID]
		for _, level := range cognition.Levels() {
			need := row[level]
			if need == 0 {
				continue
			}
			candidates := store.Search(bank.Query{ConceptID: conceptID, Level: level})
			if len(candidates) < need {
				shortfalls = append(shortfalls, Shortfall{
					ConceptID: conceptID, Level: level,
					Required: need, Available: len(candidates),
				})
				continue
			}
			for i := 0; i < need; i++ {
				picked = append(picked, candidates[i].ID)
			}
		}
	}
	if len(shortfalls) > 0 {
		return nil, &ShortfallError{Shortfalls: shortfalls}
	}
	return picked, nil
}

// ParallelForms splits an assembled problem list into two balanced forms:
// within each (concept, level) cell the problems alternate between form A
// and form B, so both forms match the blueprint shape as closely as parity
// allows. Problems without concept or level classification alternate
// globally. The input order is preserved within each form.
func ParallelForms(store bank.Storage, problemIDs []string) (formA, formB []string, err error) {
	problems, err := store.Problems(problemIDs)
	if err != nil {
		return nil, nil, err
	}
	type cell struct {
		concept string
		level   cognition.Level
	}
	counts := make(map[cell]int)
	for _, p := range problems {
		key := cell{concept: p.ConceptID, level: p.Level}
		if counts[key]%2 == 0 {
			formA = append(formA, p.ID)
		} else {
			formB = append(formB, p.ID)
		}
		counts[key]++
	}
	return formA, formB, nil
}

// CoverageTable builds the descriptive two-way table for a set of problems
// drawn from the store, ready for the §4.2.3 analyses.
func CoverageTable(store bank.Storage, problemIDs []string, concepts []cognition.Concept) (*cognition.TwoWayTable, error) {
	table := cognition.NewTwoWayTable(concepts)
	problems, err := store.Problems(problemIDs)
	if err != nil {
		return nil, err
	}
	for _, p := range problems {
		if p.ConceptID == "" || !p.Level.Valid() {
			continue
		}
		if err := table.Add(p.ID, p.ConceptID, p.Level); err != nil {
			return nil, fmt.Errorf("authoring: coverage: %w", err)
		}
	}
	return table, nil
}
