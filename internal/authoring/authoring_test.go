package authoring

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"mineassess/internal/bank"
	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

// bankWith builds a store holding `perCell` problems for every concept in
// conceptIDs at every given level.
func bankWith(t *testing.T, conceptIDs []string, levels []cognition.Level, perCell int) *bank.Store {
	t.Helper()
	s := bank.New()
	n := 0
	for _, c := range conceptIDs {
		for _, l := range levels {
			for i := 0; i < perCell; i++ {
				n++
				p, err := item.NewMultipleChoice(
					fmt.Sprintf("q-%s-%c-%02d", c, l.Letter(), i),
					"question", []string{"a", "b", "c", "d"}, 0)
				if err != nil {
					t.Fatal(err)
				}
				p.ConceptID = c
				p.Level = l
				if err := s.AddProblem(p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

func TestBlueprintRequireAndTotal(t *testing.T) {
	bp := NewBlueprint()
	if err := bp.Require("c1", cognition.Knowledge, 2); err != nil {
		t.Fatal(err)
	}
	if err := bp.Require("c1", cognition.Analysis, 1); err != nil {
		t.Fatal(err)
	}
	if err := bp.Require("c2", cognition.Knowledge, 3); err != nil {
		t.Fatal(err)
	}
	if got := bp.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	if got := bp.ConceptIDs(); !reflect.DeepEqual(got, []string{"c1", "c2"}) {
		t.Errorf("ConceptIDs = %v", got)
	}
	if err := bp.Require("c1", cognition.Level(0), 1); err == nil {
		t.Error("invalid level should fail")
	}
	if err := bp.Require("c1", cognition.Knowledge, -1); err == nil {
		t.Error("negative requirement should fail")
	}
}

func TestAssembleSatisfiesBlueprint(t *testing.T) {
	s := bankWith(t, []string{"c1", "c2"},
		[]cognition.Level{cognition.Knowledge, cognition.Application}, 3)
	bp := NewBlueprint()
	_ = bp.Require("c1", cognition.Knowledge, 2)
	_ = bp.Require("c2", cognition.Application, 1)
	ids, err := Assemble(s, bp)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(ids) != 3 {
		t.Fatalf("picked %d, want 3: %v", len(ids), ids)
	}
	// Verify the picks actually satisfy the blueprint.
	tab, err := CoverageTable(s, ids, []cognition.Concept{{ID: "c1"}, {ID: "c2"}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Count("c1", cognition.Knowledge) != 2 {
		t.Errorf("c1/Knowledge = %d, want 2", tab.Count("c1", cognition.Knowledge))
	}
	if tab.Count("c2", cognition.Application) != 1 {
		t.Errorf("c2/Application = %d, want 1", tab.Count("c2", cognition.Application))
	}
}

func TestAssembleDeterministic(t *testing.T) {
	s := bankWith(t, []string{"c1"}, []cognition.Level{cognition.Knowledge}, 5)
	bp := NewBlueprint()
	_ = bp.Require("c1", cognition.Knowledge, 3)
	a, err := Assemble(s, bp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assemble(s, bp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("assembly must be deterministic")
	}
	if !sort.StringsAreSorted(a) {
		t.Errorf("picks should be in ID order: %v", a)
	}
}

func TestAssembleShortfall(t *testing.T) {
	s := bankWith(t, []string{"c1"}, []cognition.Level{cognition.Knowledge}, 1)
	bp := NewBlueprint()
	_ = bp.Require("c1", cognition.Knowledge, 2)
	_ = bp.Require("c1", cognition.Synthesis, 1)
	_, err := Assemble(s, bp)
	if !errors.Is(err, ErrShortfall) {
		t.Fatalf("err = %v, want ErrShortfall", err)
	}
	var se *ShortfallError
	if !errors.As(err, &se) {
		t.Fatal("error should be a *ShortfallError")
	}
	if len(se.Shortfalls) != 2 {
		t.Errorf("shortfalls = %d, want 2: %v", len(se.Shortfalls), se.Shortfalls)
	}
	for _, sf := range se.Shortfalls {
		if sf.String() == "" {
			t.Error("shortfall should describe itself")
		}
	}
}

func TestExamDraftLifecycle(t *testing.T) {
	s := bankWith(t, []string{"c1"}, []cognition.Level{cognition.Knowledge}, 4)
	ids := s.ProblemIDs()
	d := NewExamDraft("e1", "Unit test exam")
	d.TestTime = 30 * time.Minute
	if err := d.Add(ids...); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(ids[0]); !errors.Is(err, ErrDuplicateProblem) {
		t.Errorf("duplicate add = %v, want ErrDuplicateProblem", err)
	}
	if err := d.AddGroup("Part A", ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := d.AddGroup("", ids[0]); err == nil {
		t.Error("blank group name should fail")
	}
	if err := d.AddGroup("Bad", "ghost"); !errors.Is(err, ErrUnknownGroupItem) {
		t.Errorf("unknown group item = %v, want ErrUnknownGroupItem", err)
	}
	rec, err := d.Finalize(s)
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if rec.TestTimeSeconds != 1800 {
		t.Errorf("TestTimeSeconds = %d, want 1800", rec.TestTimeSeconds)
	}
	if len(rec.Groups) != 1 || rec.Groups[0].Name != "Part A" {
		t.Errorf("groups = %+v", rec.Groups)
	}
	if err := s.AddExam(rec); err != nil {
		t.Fatalf("AddExam: %v", err)
	}
}

func TestExamDraftFinalizeErrors(t *testing.T) {
	s := bank.New()
	empty := NewExamDraft("e1", "t")
	if _, err := empty.Finalize(s); !errors.Is(err, ErrEmptyExam) {
		t.Errorf("empty draft = %v, want ErrEmptyExam", err)
	}
	d := NewExamDraft(" ", "t")
	_ = d.Add("x")
	if _, err := d.Finalize(s); err == nil {
		t.Error("blank ID should fail")
	}
	d2 := NewExamDraft("e2", "t")
	_ = d2.Add("ghost")
	if _, err := d2.Finalize(s); err == nil {
		t.Error("dangling problem should fail")
	}
}

func TestPresentationOrderFixed(t *testing.T) {
	rec := &bank.ExamRecord{ID: "e", ProblemIDs: []string{"a", "b", "c"},
		Display: item.FixedOrder}
	got, err := PresentationOrder(rec, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("fixed order = %v", got)
	}
	got[0] = "mutated"
	if rec.ProblemIDs[0] == "mutated" {
		t.Error("order must be a copy")
	}
}

func TestPresentationOrderRandomDeterministicPerSeed(t *testing.T) {
	ids := make([]string, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("p%02d", i)
	}
	rec := &bank.ExamRecord{ID: "e", ProblemIDs: ids, Display: item.RandomOrder}
	a, err := PresentationOrder(rec, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PresentationOrder(rec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must give the same order")
	}
	c, err := PresentationOrder(rec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ for 12 items")
	}
	// It is a permutation.
	sortedA := append([]string(nil), a...)
	sort.Strings(sortedA)
	if !reflect.DeepEqual(sortedA, ids) {
		t.Errorf("not a permutation: %v", a)
	}
}

func TestPresentationOrderKeepsGroupsContiguous(t *testing.T) {
	rec := &bank.ExamRecord{
		ID:         "e",
		ProblemIDs: []string{"a", "b", "c", "d", "e"},
		Display:    item.RandomOrder,
		Groups:     []bank.ExamGroup{{Name: "pair", ProblemIDs: []string{"b", "c"}}},
	}
	for seed := int64(0); seed < 20; seed++ {
		order, err := PresentationOrder(rec, seed)
		if err != nil {
			t.Fatal(err)
		}
		bi := indexOf(order, "b")
		ci := indexOf(order, "c")
		if ci != bi+1 {
			t.Fatalf("seed %d: group split apart: %v", seed, order)
		}
	}
}

func TestPresentationOrderInvalidDisplay(t *testing.T) {
	rec := &bank.ExamRecord{ID: "e", ProblemIDs: []string{"a"}}
	if _, err := PresentationOrder(rec, 0); err == nil {
		t.Error("zero display order should fail")
	}
}

func TestCloneProblemAs(t *testing.T) {
	s := bankWith(t, []string{"c1"}, []cognition.Level{cognition.Knowledge}, 1)
	src := s.ProblemIDs()[0]
	cp, err := CloneProblemAs(s, src, "copy1")
	if err != nil {
		t.Fatal(err)
	}
	if cp.ID != "copy1" {
		t.Errorf("clone ID = %s", cp.ID)
	}
	if _, err := s.Problem("copy1"); err != nil {
		t.Errorf("clone not stored: %v", err)
	}
	if _, err := CloneProblemAs(s, "ghost", "copy2"); err == nil {
		t.Error("missing source should fail")
	}
	if _, err := CloneProblemAs(s, src, "copy1"); err == nil {
		t.Error("duplicate target should fail")
	}
}

func TestParallelFormsBalanced(t *testing.T) {
	s := bankWith(t, []string{"c1", "c2"},
		[]cognition.Level{cognition.Knowledge, cognition.Application}, 4)
	ids := s.ProblemIDs() // 16 problems, 4 per cell
	formA, formB, err := ParallelForms(s, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(formA) != 8 || len(formB) != 8 {
		t.Fatalf("forms = %d/%d, want 8/8", len(formA), len(formB))
	}
	// Per-cell balance: each form holds 2 of each cell's 4 problems.
	concepts := []cognition.Concept{{ID: "c1"}, {ID: "c2"}}
	tabA, err := CoverageTable(s, formA, concepts)
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := CoverageTable(s, formB, concepts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range concepts {
		for _, l := range []cognition.Level{cognition.Knowledge, cognition.Application} {
			if tabA.Count(c.ID, l) != 2 || tabB.Count(c.ID, l) != 2 {
				t.Errorf("cell %s/%s split %d/%d, want 2/2",
					c.ID, l, tabA.Count(c.ID, l), tabB.Count(c.ID, l))
			}
		}
	}
	// Disjoint and complete.
	seen := make(map[string]bool)
	for _, id := range append(append([]string(nil), formA...), formB...) {
		if seen[id] {
			t.Fatalf("problem %s in both forms", id)
		}
		seen[id] = true
	}
	if len(seen) != len(ids) {
		t.Errorf("forms cover %d of %d problems", len(seen), len(ids))
	}
}

func TestParallelFormsOddCell(t *testing.T) {
	s := bankWith(t, []string{"c1"}, []cognition.Level{cognition.Knowledge}, 3)
	formA, formB, err := ParallelForms(s, s.ProblemIDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(formA) != 2 || len(formB) != 1 {
		t.Errorf("odd split = %d/%d, want 2/1", len(formA), len(formB))
	}
}

func TestParallelFormsMissingProblem(t *testing.T) {
	s := bank.New()
	if _, _, err := ParallelForms(s, []string{"ghost"}); err == nil {
		t.Error("missing problem should fail")
	}
}

func TestCoverageTableSkipsUnclassified(t *testing.T) {
	s := bank.New()
	p, err := item.NewMultipleChoice("q1", "?", []string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No concept assigned.
	if err := s.AddProblem(p); err != nil {
		t.Fatal(err)
	}
	tab, err := CoverageTable(s, []string{"q1"}, cognition.NumberedConcepts(1))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Total() != 0 {
		t.Errorf("unclassified problem counted: total = %d", tab.Total())
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
