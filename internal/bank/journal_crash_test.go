package bank

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

// powerCutWAL wraps the journal's real WAL file and models the two layers a
// record crosses on its way to durability: Write hands bytes to the "page
// cache" (the real file), Sync makes everything written so far "durable".
// Cut() simulates a power failure by truncating the file back to the last
// synced offset — bytes the kernel accepted but never flushed are gone.
// FailNextWrite makes the next Write fail wholesale (disk error mid-batch),
// which poisons the journal.
type powerCutWAL struct {
	f *os.File

	mu            sync.Mutex
	written       int64
	synced        int64
	failNextWrite bool
}

func newPowerCutWAL(t *testing.T, j *Journal) *powerCutWAL {
	t.Helper()
	// Installed right after OpenJournal, before any mutation: the committer
	// only touches j.wal after a kick, which happens-after this swap.
	pw := &powerCutWAL{f: j.wal.(*os.File)}
	j.wal = pw
	return pw
}

func (w *powerCutWAL) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failNextWrite {
		w.failNextWrite = false
		return 0, errors.New("injected write failure")
	}
	n, err := w.f.Write(p)
	w.written += int64(n)
	return n, err
}

func (w *powerCutWAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = w.written
	return nil
}

func (w *powerCutWAL) Close() error { return w.f.Close() }

// FailNextWrite arms a one-shot wholesale write failure.
func (w *powerCutWAL) FailNextWrite() {
	w.mu.Lock()
	w.failNextWrite = true
	w.mu.Unlock()
}

// Cut simulates the power failure: everything past the last fsync is lost.
func (w *powerCutWAL) Cut(t *testing.T, path string) {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := os.Truncate(path, w.synced); err != nil {
		t.Fatalf("cut: %v", err)
	}
}

// TestJournalCrashSimulation drives concurrent writers through a journal
// whose WAL write fails mid-run (poisoning the journal, as a dying disk or
// kill -9 mid-batch would), then simulates a power failure by discarding
// every byte not yet fsynced, reopens, and checks each policy's contract:
//
//   - always / group: every acknowledged mutation replays; every mutation
//     whose writer got an error is absent. Acknowledgment happens only
//     after the covering fsync, so the cut can never land between ack and
//     durability.
//   - none: acknowledged mutations may be lost to the cut (ack is
//     write-through-page-cache); the journal must still reopen cleanly and
//     recover only mutations that were in fact written.
func TestJournalCrashSimulation(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		for _, policy := range []SyncPolicy{SyncAlways, SyncGroup, SyncNone} {
			t.Run(string(codec)+"/"+string(policy), func(t *testing.T) {
				dir := t.TempDir()
				j, err := OpenJournalWith(dir, NewSharded(8),
					JournalOptions{CompactEvery: 1_000_000, Sync: policy, Codec: codec})
				if err != nil {
					t.Fatal(err)
				}
				pw := newPowerCutWAL(t, j)

				// Two concurrent waves with the write failure armed between
				// them: wave one must fully acknowledge, wave two hits the
				// failing WAL (the first batch write dies, poisoning the
				// journal, and every later mutation errors).
				const writers = 32
				acked := make([]bool, writers)
				failed := make([]bool, writers)
				wave := func(from, to int) {
					var wg sync.WaitGroup
					for i := from; i < to; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							err := j.AddProblem(confMC(t, fmt.Sprintf("q%02d", i)))
							if err == nil {
								acked[i] = true
							} else {
								failed[i] = true
							}
						}(i)
					}
					wg.Wait()
				}
				wave(0, writers/2)
				pw.FailNextWrite()
				wave(writers/2, writers)
				crashStop(j)
				pw.Cut(t, j.walPath)

				back, err := OpenJournal(dir, NewSharded(8), 0)
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				defer back.Close()

				lost, phantom := 0, 0
				for i := 0; i < writers; i++ {
					id := fmt.Sprintf("q%02d", i)
					_, err := back.Problem(id)
					present := err == nil
					if acked[i] && !present {
						lost++
					}
					if failed[i] && present {
						phantom++
					}
				}
				if policy == SyncNone {
					// Weaker contract: no phantom errored writes may reappear,
					// but acknowledged ones are allowed to vanish with the
					// page cache.
					if phantom != 0 {
						t.Errorf("policy none: %d errored mutations resurrected", phantom)
					}
					return
				}
				if lost != 0 {
					t.Errorf("policy %s: %d acknowledged mutations lost after power cut", policy, lost)
				}
				if phantom != 0 {
					t.Errorf("policy %s: %d errored mutations resurrected", policy, phantom)
				}
				// The run must actually have exercised both outcomes.
				if n := count(acked); n == 0 {
					t.Error("no mutation was acknowledged before the failure")
				}
				if n := count(failed); n == 0 {
					t.Error("no mutation failed; the injected write failure never fired")
				}
			})
		}
	}
}

// TestJournalCrashTornBatch tears the WAL mid-record after a clean run (the
// classic kill -9 during a batched write, page cache intact) and checks the
// torn tail is dropped while every complete record replays — the
// process-crash guarantee shared by all policies.
func TestJournalCrashTornBatch(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		for _, policy := range []SyncPolicy{SyncGroup, SyncNone} {
			t.Run(string(codec)+"/"+string(policy), func(t *testing.T) {
				dir := t.TempDir()
				j, err := OpenJournalWith(dir, NewSharded(4),
					JournalOptions{CompactEvery: 1_000_000, Sync: policy, Codec: codec})
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				for i := 0; i < 8; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						if err := j.AddProblem(confMC(t, fmt.Sprintf("q%d", i))); err != nil {
							t.Errorf("AddProblem: %v", err)
						}
					}(i)
				}
				wg.Wait()
				crashStop(j)
				// Tear the last record in half.
				raw, err := os.ReadFile(j.walPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(j.walPath, raw[:len(raw)-20], 0o644); err != nil {
					t.Fatal(err)
				}
				back, err := OpenJournal(dir, NewSharded(4), 0)
				if err != nil {
					t.Fatalf("reopen over torn batch: %v", err)
				}
				defer back.Close()
				if got := back.ProblemCount(); got != 7 {
					t.Errorf("recovered %d problems, want 7 (torn final record dropped)", got)
				}
			})
		}
	}
}

// TestJournalPoisonedAfterWriteFailure: once a batch write fails, the
// journal refuses every further mutation (memory and disk have diverged)
// while reads keep serving the in-memory state.
func TestJournalPoisonedAfterWriteFailure(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournalSync(dir, NewSharded(4), 1_000_000, SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	pw := newPowerCutWAL(t, j)
	if err := j.AddProblem(confMC(t, "ok")); err != nil {
		t.Fatal(err)
	}
	pw.FailNextWrite()
	if err := j.AddProblem(confMC(t, "doomed")); err == nil {
		t.Fatal("write through failing WAL succeeded")
	}
	if err := j.AddProblem(confMC(t, "after")); err == nil {
		t.Fatal("poisoned journal accepted a mutation")
	}
	if err := j.Compact(); err == nil {
		t.Fatal("poisoned journal accepted a compaction")
	}
	// Reads still serve memory, including the unjournaled mutation.
	if _, err := j.Problem("doomed"); err != nil {
		t.Errorf("in-memory read after poison: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("Close of poisoned journal: %v", err)
	}
	// A restart replays only what reached the WAL.
	back, err := OpenJournal(dir, NewSharded(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if _, err := back.Problem("ok"); err != nil {
		t.Errorf("journaled mutation lost: %v", err)
	}
	if _, err := back.Problem("doomed"); err == nil {
		t.Error("unjournaled mutation resurrected")
	}
}

// TestJournalCompactionNeverSnapshotsFailedWrite races a compaction against
// a mutation whose WAL commit is doomed to fail. The compaction scan may
// only capture mutations that are already in the WAL — if the scan ran
// between the doomed mutation's apply+enqueue and its failing batch write,
// the published snapshot would durably resurrect a mutation whose caller
// received an error. Iterated to give the scheduler chances to land in the
// window; the invariant must hold on every interleaving.
func TestJournalCompactionNeverSnapshotsFailedWrite(t *testing.T) {
	for i := 0; i < 40; i++ {
		dir := t.TempDir()
		j, err := OpenJournalSync(dir, NewSharded(4), 1_000_000, SyncGroup)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.AddProblem(confMC(t, "base")); err != nil {
			t.Fatal(err)
		}
		pw := newPowerCutWAL(t, j)
		pw.FailNextWrite()
		var wg sync.WaitGroup
		wg.Add(2)
		var addErr error
		go func() {
			defer wg.Done()
			addErr = j.AddProblem(confMC(t, "doomed"))
		}()
		go func() {
			defer wg.Done()
			_ = j.Compact() // may succeed (ran first) or fail (poisoned)
		}()
		wg.Wait()
		crashStop(j)

		back, err := OpenJournal(dir, NewSharded(4), 0)
		if err != nil {
			t.Fatalf("iteration %d: reopen: %v", i, err)
		}
		if _, err := back.Problem("base"); err != nil {
			t.Fatalf("iteration %d: acknowledged mutation lost: %v", i, err)
		}
		_, probeErr := back.Problem("doomed")
		if addErr != nil && probeErr == nil {
			t.Fatalf("iteration %d: failed mutation resurrected by a compaction snapshot", i)
		}
		// If Compact won the race and rotated the wrapper away, the add may
		// legitimately have succeeded; then it must be durable.
		if addErr == nil && probeErr != nil {
			t.Fatalf("iteration %d: acknowledged mutation lost: %v", i, probeErr)
		}
		_ = back.Close()
	}
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
