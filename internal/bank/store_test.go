package bank

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"mineassess/internal/cognition"
	"mineassess/internal/item"
)

func mustMC(t *testing.T, id string) *item.Problem {
	t.Helper()
	p, err := item.NewMultipleChoice(id, "question for "+id,
		[]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStoreProblemCRUD(t *testing.T) {
	s := New()
	p := mustMC(t, "q1")
	if err := s.AddProblem(p); err != nil {
		t.Fatalf("AddProblem: %v", err)
	}
	if err := s.AddProblem(p); !errors.Is(err, ErrProblemExists) {
		t.Errorf("duplicate add = %v, want ErrProblemExists", err)
	}
	got, err := s.Problem("q1")
	if err != nil || got.ID != "q1" {
		t.Fatalf("Problem = %v, %v", got, err)
	}
	got.Question = "mutated"
	again, err := s.Problem("q1")
	if err != nil {
		t.Fatal(err)
	}
	if again.Question == "mutated" {
		t.Error("store must hand out copies")
	}
	p2 := p.Clone()
	p2.Question = "updated text"
	if err := s.UpdateProblem(p2); err != nil {
		t.Fatalf("UpdateProblem: %v", err)
	}
	upd, err := s.Problem("q1")
	if err != nil {
		t.Fatal(err)
	}
	if upd.Question != "updated text" {
		t.Error("update not applied")
	}
	if err := s.DeleteProblem("q1"); err != nil {
		t.Fatalf("DeleteProblem: %v", err)
	}
	if _, err := s.Problem("q1"); !errors.Is(err, ErrProblemNotFound) {
		t.Errorf("after delete = %v, want ErrProblemNotFound", err)
	}
	if err := s.UpdateProblem(p2); !errors.Is(err, ErrProblemNotFound) {
		t.Errorf("update missing = %v, want ErrProblemNotFound", err)
	}
	if err := s.DeleteProblem("q1"); !errors.Is(err, ErrProblemNotFound) {
		t.Errorf("double delete = %v, want ErrProblemNotFound", err)
	}
}

func TestStoreRejectsInvalidProblem(t *testing.T) {
	s := New()
	bad := &item.Problem{ID: "x", Style: item.MultipleChoice, Question: "?"}
	if err := s.AddProblem(bad); err == nil {
		t.Error("invalid problem should be rejected")
	}
}

func TestStoreProblemIDsSorted(t *testing.T) {
	s := New()
	for _, id := range []string{"qc", "qa", "qb"} {
		if err := s.AddProblem(mustMC(t, id)); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.ProblemIDs()
	if len(ids) != 3 || ids[0] != "qa" || ids[2] != "qc" {
		t.Errorf("IDs = %v", ids)
	}
	if s.ProblemCount() != 3 {
		t.Errorf("count = %d", s.ProblemCount())
	}
}

func TestStoreProblemsBatch(t *testing.T) {
	s := New()
	if err := s.AddProblem(mustMC(t, "q1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Problems([]string{"q1", "ghost"}); !errors.Is(err, ErrProblemNotFound) {
		t.Errorf("missing batch = %v, want ErrProblemNotFound", err)
	}
	got, err := s.Problems([]string{"q1"})
	if err != nil || len(got) != 1 {
		t.Errorf("Problems = %v, %v", got, err)
	}
}

func TestStoreExamCRUD(t *testing.T) {
	s := New()
	if err := s.AddProblem(mustMC(t, "q1")); err != nil {
		t.Fatal(err)
	}
	exam := &ExamRecord{ID: "e1", Title: "Midterm", ProblemIDs: []string{"q1"},
		Display: item.FixedOrder, TestTimeSeconds: 3600}
	if err := s.AddExam(exam); err != nil {
		t.Fatalf("AddExam: %v", err)
	}
	if err := s.AddExam(exam); !errors.Is(err, ErrExamExists) {
		t.Errorf("duplicate exam = %v, want ErrExamExists", err)
	}
	got, err := s.Exam("e1")
	if err != nil || got.Title != "Midterm" {
		t.Fatalf("Exam = %v, %v", got, err)
	}
	got.ProblemIDs[0] = "mutated"
	again, _ := s.Exam("e1")
	if again.ProblemIDs[0] == "mutated" {
		t.Error("exam copies must be isolated")
	}
	if err := s.DeleteExam("e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exam("e1"); !errors.Is(err, ErrExamNotFound) {
		t.Errorf("after delete = %v, want ErrExamNotFound", err)
	}
	if err := s.DeleteExam("e1"); !errors.Is(err, ErrExamNotFound) {
		t.Errorf("double delete = %v", err)
	}
}

func TestStoreExamValidatesReferences(t *testing.T) {
	s := New()
	exam := &ExamRecord{ID: "e1", ProblemIDs: []string{"ghost"}}
	if err := s.AddExam(exam); !errors.Is(err, ErrProblemNotFound) {
		t.Errorf("dangling reference = %v, want ErrProblemNotFound", err)
	}
	if err := s.AddExam(&ExamRecord{ID: " "}); err == nil {
		t.Error("blank exam ID should fail")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := New()
	p := mustMC(t, "q1")
	p.Subject = "algebra"
	p.Level = cognition.Application
	p.Keywords = []string{"quadratic"}
	if err := s.AddProblem(p); err != nil {
		t.Fatal(err)
	}
	if err := s.AddProblem(mustMC(t, "q2")); err != nil {
		t.Fatal(err)
	}
	exam := &ExamRecord{ID: "e1", Title: "Final", ProblemIDs: []string{"q1", "q2"},
		Display: item.RandomOrder,
		Groups:  []ExamGroup{{Name: "part A", ProblemIDs: []string{"q1"}}}}
	if err := s.AddExam(exam); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "bank.json")
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	lp, err := loaded.Problem("q1")
	if err != nil {
		t.Fatal(err)
	}
	if lp.Subject != "algebra" || lp.Level != cognition.Application || len(lp.Keywords) != 1 {
		t.Errorf("loaded problem lost fields: %+v", lp)
	}
	le, err := loaded.Exam("e1")
	if err != nil {
		t.Fatal(err)
	}
	if le.Display != item.RandomOrder || len(le.Groups) != 1 || le.Groups[0].Name != "part A" {
		t.Errorf("loaded exam lost fields: %+v", le)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("corrupt file should fail")
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	s := New()
	if err := s.AddProblem(mustMC(t, "q1")); err != nil {
		t.Fatal(err)
	}
	// A directory path cannot be written as a file.
	if err := s.Save(t.TempDir()); err == nil {
		t.Error("saving over a directory should fail")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			id := fmt.Sprintf("q%02d", n)
			_ = s.AddProblem(mustMC(t, id))
			_, _ = s.Problem(id)
			_ = s.ProblemIDs()
			_ = s.Search(Query{Keyword: "question"})
		}(i)
	}
	wg.Wait()
	if s.ProblemCount() != 32 {
		t.Errorf("count = %d, want 32", s.ProblemCount())
	}
}
