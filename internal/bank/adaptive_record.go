package bank

import (
	"errors"
	"fmt"
	"strings"
)

// ErrAdaptiveSessionNotFound is returned when an adaptive session ID is not
// in the store.
var ErrAdaptiveSessionNotFound = errors.New("bank: adaptive session not found")

// Adaptive session lifecycle states as persisted. The catdelivery engine
// owns the transitions; the bank only stores and replays them.
const (
	AdaptiveStateActive   = "active"
	AdaptiveStateFinished = "finished"
)

// AdaptiveSessionRecord is the persisted state of one live adaptive (CAT)
// session. The catdelivery engine writes a record after every mutation
// (start, response, finish), so a journaled bank replays adaptive sessions
// across restarts exactly like problems and exams. Everything needed to
// rehydrate the session is here: the response stream re-derives theta/SE,
// and item selection is re-seeded from Seed plus the administration count,
// so a restarted session continues deterministically.
type AdaptiveSessionRecord struct {
	ID        string `json:"id"`
	ExamID    string `json:"examId"`
	StudentID string `json:"studentId"`
	Seed      int64  `json:"seed"`

	// Stopping-rule and selection configuration, fixed at start.
	MaxItems     int     `json:"maxItems"`
	MinItems     int     `json:"minItems,omitempty"`
	TargetSE     float64 `json:"targetSE,omitempty"`
	Selector     string  `json:"selector,omitempty"`
	RandomesqueK int     `json:"randomesqueK,omitempty"`
	MaxExposure  float64 `json:"maxExposure,omitempty"`

	// Progress. PendingID is the item handed out and not yet answered;
	// Administered/Correct are the answered items in administration order.
	PendingID    string   `json:"pendingId,omitempty"`
	Administered []string `json:"administered,omitempty"`
	Correct      []bool   `json:"correct,omitempty"`
	Theta        float64  `json:"theta"`
	SE           float64  `json:"se"`
	State        string   `json:"state"`
	StopReason   string   `json:"stopReason,omitempty"`
}

// validate checks the record is storable.
func (r *AdaptiveSessionRecord) validate() error {
	if strings.TrimSpace(r.ID) == "" {
		return errors.New("bank: adaptive session ID must not be empty")
	}
	if r.State != AdaptiveStateActive && r.State != AdaptiveStateFinished {
		return fmt.Errorf("bank: adaptive session %s has unknown state %q", r.ID, r.State)
	}
	if len(r.Administered) != len(r.Correct) {
		return fmt.Errorf("bank: adaptive session %s has %d administered items but %d results",
			r.ID, len(r.Administered), len(r.Correct))
	}
	return nil
}

// cloneAdaptive deep-copies a record so stores never share slices with
// callers.
func cloneAdaptive(r *AdaptiveSessionRecord) *AdaptiveSessionRecord {
	cp := *r
	cp.Administered = append([]string(nil), r.Administered...)
	cp.Correct = append([]bool(nil), r.Correct...)
	return &cp
}
