package bank

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"mineassess/internal/item"
)

// Journal adds write-ahead durability to any Storage backend. Instead of
// rewriting the whole bank file on every change (the reference Store's Save
// is O(bank)), each mutation appends one JSON line to a WAL; reopening the
// journal replays snapshot + WAL to rebuild the backend. Once CompactEvery
// mutations accumulate, the journal folds the WAL into a fresh snapshot and
// truncates it, bounding both recovery time and log growth.
//
// Reads delegate straight to the backend and take no journal lock, so the
// backend's concurrency (per-shard locks for *Sharded) is preserved;
// mutations serialize on the appender, which is the WAL ordering point.
//
// Durability: the journal is process-crash-safe. WAL appends go through the
// OS page cache without a per-record fsync (fsyncing every mutation would
// serialize all writes on the disk), so an OS crash or power failure can
// lose the most recent acknowledged mutations; replay drops at most a torn
// final record. Snapshots ARE fsynced before the rename that publishes
// them, so a compacted state is never torn. If a WAL append itself fails
// (disk full), the journal closes itself: the failed mutation is live in
// memory but not durable, and refusing further writes keeps the divergence
// bounded to that one operation until a restart replays the WAL.
//
// Revision history follows the bank file's long-standing semantics: Save
// never persisted history, so compaction folds superseded revisions into the
// current state. Until a compaction runs, WAL replay reconstructs history
// exactly (update and rollback records re-execute).
type Journal struct {
	backend Storage

	mu           sync.Mutex // serializes WAL appends and compaction
	wal          *os.File
	dir          string
	snapshotPath string
	walPath      string
	dirty        int // mutations since the last compaction
	compactEvery int
	closed       bool
	compactErr   error // last automatic-compaction failure (see CompactError)
	// epoch counts compactions. Every WAL record carries the epoch it was
	// written under and the snapshot records the epoch it folded up to, so
	// a crash between the snapshot rename and the WAL truncation is
	// harmless: replay skips records from epochs the snapshot already
	// contains instead of re-applying them.
	epoch int64
}

// DefaultCompactEvery is the WAL length that triggers automatic compaction.
const DefaultCompactEvery = 4096

// walRecord is one journaled mutation.
type walRecord struct {
	Op      string                 `json:"op"`
	Problem *item.Problem          `json:"problem,omitempty"`
	Exam    *ExamRecord            `json:"exam,omitempty"`
	Session *AdaptiveSessionRecord `json:"session,omitempty"`
	ID      string                 `json:"id,omitempty"`
	// Epoch is the journal epoch the record was written under (see
	// Journal.epoch).
	Epoch int64 `json:"epoch,omitempty"`
}

// WAL operation names.
const (
	opAddProblem     = "add_problem"
	opUpdateProblem  = "update_problem"
	opDeleteProblem  = "delete_problem"
	opAddExam        = "add_exam"
	opUpdateExam     = "update_exam"
	opDeleteExam     = "delete_exam"
	opRollback       = "rollback"
	opPutAdaptive    = "put_adaptive_session"
	opDeleteAdaptive = "delete_adaptive_session"
)

// OpenJournal opens (or creates) the journal in dir over the given backend,
// replaying any existing snapshot and WAL into it. The backend must be
// empty. compactEvery <= 0 means DefaultCompactEvery.
func OpenJournal(dir string, backend Storage, compactEvery int) (*Journal, error) {
	if backend == nil {
		backend = New()
	}
	if backend.ProblemCount() != 0 || len(backend.ExamIDs()) != 0 ||
		len(backend.AdaptiveSessionIDs()) != 0 {
		return nil, errors.New("bank: journal backend must start empty")
	}
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bank: journal dir %s: %w", dir, err)
	}
	snapshotPath, walPath := journalPaths(dir)
	j := &Journal{
		backend:      backend,
		dir:          dir,
		snapshotPath: snapshotPath,
		walPath:      walPath,
		compactEvery: compactEvery,
	}
	if _, err := os.Stat(snapshotPath); err == nil {
		snap, err := readSnapshotFile(snapshotPath)
		if err != nil {
			return nil, err
		}
		if err := loadSnapshot(snap, backend); err != nil {
			return nil, err
		}
		j.epoch = snap.WalEpoch
	}
	replayed, validBytes, err := j.replayWAL()
	if err != nil {
		return nil, err
	}
	j.dirty = replayed
	// Cut off a torn final record before appending: without the truncate,
	// the next append would concatenate onto the torn bytes and corrupt the
	// WAL for every later reopen.
	if validBytes >= 0 {
		if err := os.Truncate(walPath, validBytes); err != nil {
			return nil, fmt.Errorf("bank: truncate torn wal: %w", err)
		}
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bank: open wal: %w", err)
	}
	j.wal = f
	return j, nil
}

// replayWAL applies every complete record in the WAL to the backend. A
// truncated trailing line (torn write on crash) ends the replay without
// error; everything before it is recovered. It returns the record count and
// the byte offset of the end of the last complete record (-1 when the WAL
// does not exist) so the caller can truncate a torn tail.
func (j *Journal) replayWAL() (records int, validBytes int64, err error) {
	f, err := os.Open(j.walPath)
	if errors.Is(err, os.ErrNotExist) {
		return 0, -1, nil
	}
	if err != nil {
		return 0, -1, fmt.Errorf("bank: open wal: %w", err)
	}
	defer f.Close()
	n := 0
	var offset int64
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// io.EOF with a partial line = torn final record: drop it.
			if errors.Is(err, io.EOF) {
				return n, offset, nil
			}
			return n, offset, fmt.Errorf("bank: read wal: %w", err)
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return n, offset, fmt.Errorf("bank: wal record %d: %w", n+1, err)
		}
		// A record from an older epoch is already folded into the snapshot
		// (crash between snapshot rename and WAL truncation): skip it
		// rather than re-apply it.
		if rec.Epoch >= j.epoch {
			if err := j.apply(rec); err != nil {
				return n, offset, fmt.Errorf("bank: replay wal record %d: %w", n+1, err)
			}
		}
		offset += int64(len(line))
		n++
	}
}

// apply replays one record against the backend. Replay is idempotent: a
// crash between compaction's snapshot rename and the WAL truncation leaves
// snapshot and WAL overlapping, so every WAL record may already be folded
// into the snapshot — redo errors (already exists / not found) mean exactly
// that and are skipped rather than failing the boot.
func (j *Journal) apply(rec walRecord) error {
	switch rec.Op {
	case opAddProblem:
		return ignoreRedo(j.backend.AddProblem(rec.Problem), ErrProblemExists)
	case opUpdateProblem:
		return ignoreRedo(j.backend.UpdateProblem(rec.Problem), ErrProblemNotFound)
	case opDeleteProblem:
		return ignoreRedo(j.backend.DeleteProblem(rec.ID), ErrProblemNotFound)
	case opAddExam:
		if err := j.backend.AddExam(rec.Exam); err != nil {
			if errors.Is(err, ErrExamExists) {
				return nil
			}
			// The record was valid when appended; a missing problem here
			// means an earlier tolerant snapshot load carried a dangling
			// reference forward. Mirror that tolerance.
			if errors.Is(err, ErrProblemNotFound) {
				if putter, ok := j.backend.(examPutter); ok {
					return ignoreRedo(putter.putExamUnchecked(rec.Exam), ErrExamExists)
				}
			}
			return err
		}
		return nil
	case opUpdateExam:
		// UpdateExam replay is naturally idempotent; a vanished exam means a
		// later deletion is already folded into the snapshot, and missing
		// problems mirror the add_exam tolerance for dangling references
		// carried forward by a tolerant snapshot load.
		if err := j.backend.UpdateExam(rec.Exam); err != nil &&
			!errors.Is(err, ErrExamNotFound) && !errors.Is(err, ErrProblemNotFound) {
			return err
		}
		return nil
	case opDeleteExam:
		return ignoreRedo(j.backend.DeleteExam(rec.ID), ErrExamNotFound)
	case opPutAdaptive:
		// Upsert: replay is naturally idempotent.
		return j.backend.PutAdaptiveSession(rec.Session)
	case opDeleteAdaptive:
		return ignoreRedo(j.backend.DeleteAdaptiveSession(rec.ID), ErrAdaptiveSessionNotFound)
	case opRollback:
		if _, err := j.backend.Rollback(rec.ID); err != nil {
			// A compaction snapshot earlier in this recovery dropped the
			// revision history the rollback popped live. The record carries
			// the restored state, so replay it as an update: the current
			// problem ends up exactly as it was live, which is the
			// invariant snapshots guarantee (history itself is folded by
			// compaction; see the type comment).
			if rec.Problem != nil {
				return ignoreRedo(j.backend.UpdateProblem(rec.Problem), ErrProblemNotFound)
			}
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

// ignoreRedo maps a redo error (the record's effect is already present in —
// or already absent from — the compacted snapshot) to success.
func ignoreRedo(err, redo error) error {
	if errors.Is(err, redo) {
		return nil
	}
	return err
}

// mutate applies one mutation to the backend and journals it as a single
// critical section, so WAL order always matches backend apply order and a
// compaction snapshot can never include a mutation whose record would then
// replay on top of it. Reads stay lock-free; mutations serialize here, which
// is the WAL append ordering point anyway. Every mutation — including
// Rollback, whose record depends on the apply result — goes through this one
// function, so the protocol (closed check, apply, append, poisoning) cannot
// drift between operations. apply returns the record to journal.
func (j *Journal) mutate(apply func() (walRecord, error)) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("bank: journal is closed")
	}
	rec, err := apply()
	if err != nil {
		return err
	}
	return j.appendLocked(rec)
}

// appendLocked journals one already-applied mutation and compacts when due.
// A failed append poisons the journal: the backend now holds a mutation the
// WAL does not, so rather than let memory and disk diverge further, every
// subsequent mutation errors until the process restarts and replays the WAL
// (which drops the unjournaled mutation). Callers hold j.mu.
func (j *Journal) appendLocked(rec walRecord) error {
	rec.Epoch = j.epoch
	raw, err := json.Marshal(rec)
	if err != nil {
		j.closed = true
		_ = j.wal.Close()
		return fmt.Errorf("bank: marshal wal record (journal now closed): %w", err)
	}
	raw = append(raw, '\n')
	if _, err := j.wal.Write(raw); err != nil {
		j.closed = true
		_ = j.wal.Close()
		return fmt.Errorf("bank: append wal (journal now closed): %w", err)
	}
	j.dirty++
	if j.dirty >= j.compactEvery {
		// Compaction is maintenance, not part of the mutation: the change
		// is applied and durably journaled, so a failed snapshot must not
		// be reported as a failed write. Defer the retry a full window so a
		// persistent snapshot error (disk full) doesn't pay O(bank) on
		// every subsequent mutation; the failure stays visible through
		// CompactError until a compaction succeeds, and explicit
		// Compact/Close surface it directly.
		if err := j.compactLocked(); err != nil {
			j.dirty = 0
			j.compactErr = err
		}
	}
	return nil
}

// CompactError reports the most recent automatic-compaction failure, or nil
// if the last compaction succeeded. While non-nil the WAL keeps growing past
// CompactEvery; operators should surface this (examserver logs it at
// shutdown).
func (j *Journal) CompactError() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactErr
}

// Compact folds the WAL into a fresh snapshot and truncates it. Safe to call
// at any time; automatic compaction happens every CompactEvery mutations.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("bank: journal is closed")
	}
	return j.compactLocked()
}

// compactLocked writes the snapshot, syncs it, and resets the WAL. A
// snapshot failure leaves the WAL fully intact (retryable); a failure
// rotating the WAL after the snapshot poisons the journal, since the append
// handle can no longer be trusted. Callers hold j.mu.
func (j *Journal) compactLocked() error {
	snap, err := buildSnapshot(j.backend)
	if err != nil {
		return err
	}
	// Stamp the next epoch into the snapshot BEFORE the rename: if the
	// process dies between the rename and the truncation below, the stale
	// WAL's lower-epoch records are skipped on replay. The in-memory epoch
	// advances whenever the rename LANDED — even if the directory fsync
	// after it failed — because new appends must match the snapshot a
	// reopen would read; otherwise replay would silently skip them.
	snap.WalEpoch = j.epoch + 1
	published, err := writeSnapshotFile(snap, j.snapshotPath)
	if published {
		j.epoch++
	}
	if err != nil {
		return err
	}
	if err := j.wal.Close(); err != nil {
		j.closed = true
		return fmt.Errorf("bank: close wal (journal now closed): %w", err)
	}
	f, err := os.OpenFile(j.walPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		j.closed = true
		return fmt.Errorf("bank: truncate wal (journal now closed): %w", err)
	}
	j.wal = f
	j.dirty = 0
	j.compactErr = nil
	return nil
}

// Close compacts and releases the WAL file. The journal must not be used
// afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.compactLocked()
	j.closed = true
	if cerr := j.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Mutations: backend apply + WAL append under one lock (see mutate).

// AddProblem validates, stores and journals the problem.
func (j *Journal) AddProblem(p *item.Problem) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.AddProblem(p); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opAddProblem, Problem: p.Clone()}, nil
	})
}

// UpdateProblem replaces the stored problem and journals the change.
func (j *Journal) UpdateProblem(p *item.Problem) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.UpdateProblem(p); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opUpdateProblem, Problem: p.Clone()}, nil
	})
}

// DeleteProblem removes the problem and journals the deletion.
func (j *Journal) DeleteProblem(id string) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.DeleteProblem(id); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opDeleteProblem, ID: id}, nil
	})
}

// AddExam stores the exam and journals it.
func (j *Journal) AddExam(e *ExamRecord) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.AddExam(e); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opAddExam, Exam: cloneExam(e)}, nil
	})
}

// putExamUnchecked journals an exam inserted without reference validation
// (snapshot loading only; replay mirrors the tolerance in apply).
func (j *Journal) putExamUnchecked(e *ExamRecord) error {
	putter, ok := j.backend.(examPutter)
	if !ok {
		return j.AddExam(e)
	}
	return j.mutate(func() (walRecord, error) {
		if err := putter.putExamUnchecked(e); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opAddExam, Exam: cloneExam(e)}, nil
	})
}

// UpdateExam replaces the stored exam record and journals the change.
func (j *Journal) UpdateExam(e *ExamRecord) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.UpdateExam(e); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opUpdateExam, Exam: cloneExam(e)}, nil
	})
}

// DeleteExam removes the exam and journals the deletion.
func (j *Journal) DeleteExam(id string) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.DeleteExam(id); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opDeleteExam, ID: id}, nil
	})
}

// PutAdaptiveSession stores the adaptive-session record and journals it.
func (j *Journal) PutAdaptiveSession(rec *AdaptiveSessionRecord) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.PutAdaptiveSession(rec); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opPutAdaptive, Session: cloneAdaptive(rec)}, nil
	})
}

// DeleteAdaptiveSession removes the record and journals the deletion.
func (j *Journal) DeleteAdaptiveSession(id string) error {
	return j.mutate(func() (walRecord, error) {
		if err := j.backend.DeleteAdaptiveSession(id); err != nil {
			return walRecord{}, err
		}
		return walRecord{Op: opDeleteAdaptive, ID: id}, nil
	})
}

// Rollback restores the previous problem revision and journals the
// operation. The record carries the restored state so replay stays correct
// even when an intervening compaction folded the history away.
func (j *Journal) Rollback(id string) (*item.Problem, error) {
	var p *item.Problem
	err := j.mutate(func() (walRecord, error) {
		var rerr error
		p, rerr = j.backend.Rollback(id)
		if rerr != nil {
			return walRecord{}, rerr
		}
		return walRecord{Op: opRollback, ID: id, Problem: p.Clone()}, nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Reads delegate to the backend.

// Problem returns a copy of the stored problem.
func (j *Journal) Problem(id string) (*item.Problem, error) { return j.backend.Problem(id) }

// ProblemCount returns the number of stored problems.
func (j *Journal) ProblemCount() int { return j.backend.ProblemCount() }

// ProblemIDs returns all problem IDs, sorted.
func (j *Journal) ProblemIDs() []string { return j.backend.ProblemIDs() }

// Problems returns copies of the identified problems.
func (j *Journal) Problems(ids []string) ([]*item.Problem, error) { return j.backend.Problems(ids) }

// Exam returns a copy of the stored exam record.
func (j *Journal) Exam(id string) (*ExamRecord, error) { return j.backend.Exam(id) }

// ExamIDs returns all exam IDs, sorted.
func (j *Journal) ExamIDs() []string { return j.backend.ExamIDs() }

// AdaptiveSession returns a copy of the stored adaptive-session record.
func (j *Journal) AdaptiveSession(id string) (*AdaptiveSessionRecord, error) {
	return j.backend.AdaptiveSession(id)
}

// AdaptiveSessionIDs returns all adaptive-session IDs, sorted.
func (j *Journal) AdaptiveSessionIDs() []string { return j.backend.AdaptiveSessionIDs() }

// Search returns copies of matching problems ordered by ID.
func (j *Journal) Search(q Query) []*item.Problem { return j.backend.Search(q) }

// Subjects returns the distinct subjects present in the bank, sorted.
func (j *Journal) Subjects() []string { return j.backend.Subjects() }

// CountByStyle tallies stored problems per style.
func (j *Journal) CountByStyle() map[item.Style]int { return j.backend.CountByStyle() }

// History returns a problem's superseded versions.
func (j *Journal) History(id string) []Revision { return j.backend.History(id) }

// Version returns the problem's current version number.
func (j *Journal) Version(id string) int { return j.backend.Version(id) }

// Save exports the full contents as one JSON bank file at path (independent
// of the journal's own snapshot).
func (j *Journal) Save(path string) error { return j.backend.Save(path) }
